//! End-to-end tests of the `dgf` command-line warehouse: every command
//! runs as a separate process, so these tests also cover cold-restart
//! recovery of the catalog, the namespace, and the index's KV log.

use std::path::Path;
use std::process::{Command, Output};

use dgf_common::TempDir;

fn dgf(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dgf"))
        .args(args)
        .output()
        .expect("spawn dgf")
}

fn dgf_ok(args: &[&str]) -> String {
    let out = dgf(args);
    assert!(
        out.status.success(),
        "dgf {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn write_rows_file(dir: &Path, name: &str, lines: &[&str]) -> String {
    let p = dir.join(name);
    std::fs::write(&p, lines.join("\n")).unwrap();
    p.to_string_lossy().into_owned()
}

#[test]
fn full_cli_lifecycle() {
    let tmp = TempDir::new("cli").unwrap();
    let wh = tmp.path().join("wh");
    let wh = wh.to_str().unwrap();

    // init + create-table + load from a file.
    dgf_ok(&["init", wh]);
    dgf_ok(&[
        "create-table",
        wh,
        "readings",
        "--schema",
        "user_id:int,region_id:int,ts:date,power:float",
    ]);
    let data = write_rows_file(
        tmp.path(),
        "rows.txt",
        &[
            "1|0|2013-01-01|10.5",
            "2|1|2013-01-01|20.0",
            "3|0|2013-01-02|30.25",
            "4|1|2013-01-02|40.0",
        ],
    );
    let out = dgf_ok(&["load", wh, "readings", &data]);
    assert!(out.contains("loaded 4 rows"), "{out}");

    // tables lists it (fresh process — catalog restored).
    let out = dgf_ok(&["tables", wh]);
    assert!(out.contains("readings"), "{out}");

    // Build an index, again in a fresh process.
    let out = dgf_ok(&[
        "index",
        wh,
        "dgf_readings",
        "--table",
        "readings",
        "--dims",
        "user_id:0:2,ts:2013-01-01:1",
        "--precompute",
        "sum(power), count(*)",
    ]);
    assert!(out.contains("built index"), "{out}");

    // Query through the index and through a scan; both must agree.
    let sql = "SELECT sum(power), count(*) WHERE ts = '2013-01-01'";
    let indexed = dgf_ok(&["query", wh, "readings", sql, "--index", "dgf_readings"]);
    let scanned = dgf_ok(&["query", wh, "readings", sql]);
    assert_eq!(indexed.trim(), "30.5 | 2");
    assert_eq!(scanned.trim(), indexed.trim());

    // Append through the index (extends the base table too).
    let more = write_rows_file(
        tmp.path(),
        "more.txt",
        &["5|0|2013-01-03|5.0", "6|1|2013-01-03|6.0"],
    );
    let out = dgf_ok(&["append", wh, "dgf_readings", &more]);
    assert!(out.contains("appended 2 rows"), "{out}");
    let total = dgf_ok(&[
        "query",
        wh,
        "readings",
        "SELECT count(*)",
        "--index",
        "dgf_readings",
    ]);
    assert_eq!(total.trim(), "6");

    // GROUP BY through the index.
    let grouped = dgf_ok(&[
        "query",
        wh,
        "readings",
        "SELECT ts, sum(power) WHERE user_id >= 1 AND user_id <= 6 GROUP BY ts",
        "--index",
        "dgf_readings",
    ]);
    let lines: Vec<&str> = grouped.trim().lines().collect();
    assert_eq!(lines.len(), 3, "{grouped}");
    assert!(lines[0].starts_with("2013-01-01"), "{grouped}");

    // The advisor runs on warehouse data.
    let out = dgf_ok(&[
        "advise",
        wh,
        "readings",
        "--dims",
        "user_id,ts",
        "--history",
        "user_id >= 1 AND user_id < 3; ts = '2013-01-02'",
    ]);
    assert!(out.contains("recommended policy"), "{out}");
}

#[test]
fn cli_errors_are_clean() {
    let tmp = TempDir::new("cli-err").unwrap();
    let wh = tmp.path().join("wh");
    let wh_s = wh.to_str().unwrap();

    // Unknown command.
    let out = dgf(&["frobnicate"]);
    assert!(!out.status.success());

    // Query before init.
    let out = dgf(&["query", wh_s, "t", "SELECT count(*)"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("init"));

    dgf_ok(&["init", wh_s]);
    // Bad schema.
    let out = dgf(&["create-table", wh_s, "t", "--schema", "a:blob"]);
    assert!(!out.status.success());
    // Unknown table.
    let out = dgf(&["query", wh_s, "nope", "SELECT count(*)"]);
    assert!(!out.status.success());
    // Bad SQL.
    dgf_ok(&["create-table", wh_s, "t", "--schema", "a:int"]);
    let out = dgf(&["query", wh_s, "t", "SELEKT count(*)"]);
    assert!(!out.status.success());
    // Bad dims spec.
    let out = dgf(&["index", wh_s, "i", "--table", "t", "--dims", "a:zero:1"]);
    assert!(!out.status.success());
    // String dimension rejected.
    dgf_ok(&["create-table", wh_s, "s", "--schema", "name:string"]);
    let out = dgf(&["index", wh_s, "i2", "--table", "s", "--dims", "name:0:1"]);
    assert!(!out.status.success());
}
