//! Maintenance daemon end-to-end (DESIGN.md §16).
//!
//! Long-running indexes leak four ways: streaming flushes scatter
//! slices across ever more delta files, retired files linger, the
//! append-only KV log keeps dead bytes forever (serving never calls
//! `flush()`), and the `(generation, gfu)` header cache accumulates
//! dead epochs. Each test here pins one counter-measure:
//!
//! * delta compaction keeps the live data-file count within a fixed
//!   budget under repeated append+maintain cycles, with answers
//!   **bit-identical** across every pass (headers copied verbatim);
//! * retired files get exactly one round of GC grace before deletion;
//! * `KvStore::maintain` bounds the log without any flush;
//! * a published view retires every older header-cache generation;
//! * a regrid after a compaction re-reads only *live* slice bytes —
//!   the regression for the double-count bug where whole-file splits
//!   re-read dead ranges of retained files;
//! * boundary heat drives the split/merge decision and the rewrite
//!   preserves answers;
//! * a crash at any instrumented `maint.*` / `apply.*` site recovers
//!   to a store that agrees with a ground-truth scan and still
//!   converges to the file budget.

use std::collections::HashMap;
use std::sync::Arc;

use dgfindex::core::{all_gfus, DimScale, MaintenanceConfig, Maintainer};
use dgfindex::core::txn::{STAGE_PREFIX, TXN_MANIFEST_KEY};
use dgfindex::format::is_sidecar_path;
use dgfindex::kvstore::LogKvConfig;
use dgfindex::prelude::*;
use dgfindex::workload::{generate_meter_data, meter_schema, MeterConfig};

const INDEX: &str = "dgf_maint";

fn retry() -> RetryPolicy {
    RetryPolicy::fast(40)
}

fn aggs() -> Vec<AggFunc> {
    vec![AggFunc::Sum("power_consumed".into()), AggFunc::Count]
}

fn meter_cfg() -> MeterConfig {
    MeterConfig {
        users: 8,
        days: 4,
        ..MeterConfig::default()
    }
}

fn grid(cfg: &MeterConfig) -> SplittingPolicy {
    SplittingPolicy::new(vec![
        DimPolicy::int("user_id", 0, 4),
        DimPolicy::date("ts", cfg.start_day, 1),
    ])
    .unwrap()
}

/// Full COUNT, misaligned range aggregate (boundary slices + inner
/// headers), GROUP BY — the mix that exposes moved or double-counted
/// rows.
fn queries(cfg: &MeterConfig) -> Vec<Query> {
    let range = Predicate::all()
        .and(
            "user_id",
            ColumnRange::half_open(Value::Int(1), Value::Int(7)),
        )
        .and(
            "ts",
            ColumnRange::half_open(
                Value::Date(cfg.start_day + 1),
                Value::Date(cfg.start_day + 3),
            ),
        );
    vec![
        Query::Aggregate {
            aggs: vec![AggFunc::Count],
            predicate: Predicate::all(),
        },
        Query::Aggregate {
            aggs: aggs(),
            predicate: range.clone(),
        },
        Query::GroupBy {
            key: "user_id".into(),
            aggs: aggs(),
            predicate: range,
        },
    ]
}

struct World {
    _tmp: TempDir,
    ctx: Arc<HiveContext>,
    base: TableRef,
    inner: Arc<dyn KvStore>,
}

fn world(tag: &str) -> World {
    world_on(tag, Arc::new(MemKvStore::new()))
}

fn world_on(tag: &str, kv: Arc<dyn KvStore>) -> World {
    let tmp = TempDir::new(&format!("maint-{tag}")).unwrap();
    let hdfs = SimHdfs::open(tmp.path()).unwrap();
    let ctx = HiveContext::new(hdfs, MrEngine::new(1));
    let base = ctx
        .create_table("meter", meter_schema(), FileFormat::Text)
        .unwrap();
    World {
        _tmp: tmp,
        ctx,
        base,
        inner: kv,
    }
}

/// Bulk-build the first two days, then append the rest in `batches`
/// small batches — each append lands one delta file, so the data
/// directory ends up with `batches` deltas on top of the build output.
fn seed_with_deltas(w: &World, batches: usize) -> (Arc<DgfIndex>, MeterConfig) {
    let cfg = meter_cfg();
    let rows = generate_meter_data(&cfg);
    let per_day = rows.len() / cfg.days as usize;
    let (seeded, rest) = rows.split_at(2 * per_day);
    w.ctx.load_rows(&w.base, seeded, 2).unwrap();
    let (index, _) = DgfIndex::build(
        Arc::clone(&w.ctx),
        Arc::clone(&w.base),
        grid(&cfg),
        aggs(),
        Arc::clone(&w.inner),
        INDEX,
    )
    .unwrap();
    let index = Arc::new(index);
    let chunk = (rest.len() / batches).max(1);
    for batch in rest.chunks(chunk) {
        index.append(batch).unwrap();
    }
    (index, cfg)
}

/// Data files currently on disk (sidecars excluded, retired-but-not-
/// yet-reclaimed files included).
fn disk_files(index: &DgfIndex) -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = index
        .ctx
        .hdfs
        .list_files(&index.data.location)
        .into_iter()
        .filter(|(p, _)| !is_sidecar_path(p))
        .collect();
    v.sort();
    v
}

/// Files still serving at least one committed slice.
fn live_files(index: &DgfIndex) -> Vec<(String, u64)> {
    let gc: std::collections::HashSet<String> = index.gc_list().unwrap().into_iter().collect();
    disk_files(index)
        .into_iter()
        .filter(|(p, _)| !gc.contains(p))
        .collect()
}

fn answers(index: &Arc<DgfIndex>, cfg: &MeterConfig) -> Vec<QueryResult> {
    let engine = DgfEngine::new(Arc::clone(index));
    queries(cfg)
        .iter()
        .map(|q| engine.run(q).unwrap().result)
        .collect()
}

/// Exact-bits equality: compaction is pure data movement, so answers
/// must survive it to the last float ulp — a tolerance would mask a
/// re-folded aggregate.
fn bits_eq(a: &[QueryResult], b: &[QueryResult]) -> bool {
    fn val(a: &Value, b: &Value) -> bool {
        match (a, b) {
            (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
            _ => a == b,
        }
    }
    fn one(a: &QueryResult, b: &QueryResult) -> bool {
        match (a, b) {
            (QueryResult::Scalars(x), QueryResult::Scalars(y)) => {
                x.len() == y.len() && x.iter().zip(y).all(|(p, q)| val(p, q))
            }
            (QueryResult::Groups(x), QueryResult::Groups(y)) => {
                x.len() == y.len()
                    && x.iter().zip(y).all(|((ka, va), (kb, vb))| {
                        val(ka, kb)
                            && va.len() == vb.len()
                            && va.iter().zip(vb).all(|(p, q)| val(p, q))
                    })
            }
            _ => a == b,
        }
    }
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| one(x, y))
}

fn assert_matches_scan(w: &World, index: &Arc<DgfIndex>, cfg: &MeterConfig, label: &str) {
    let scan = ScanEngine::new(Arc::clone(&w.ctx), Arc::clone(&w.base));
    let engine = DgfEngine::new(Arc::clone(index));
    for (qi, q) in queries(cfg).iter().enumerate() {
        let truth = scan.run(q).unwrap().result;
        let got = engine.run(q).unwrap().result;
        assert!(
            got.approx_eq(&truth, 1e-9),
            "{label} q{qi}: index disagrees with scan:\n  got   {got:?}\n  truth {truth:?}"
        );
    }
}

/// Tentpole: repeated append+maintain cycles keep the live data-file
/// count within the delta budget, retired files get exactly one round
/// of grace, and every answer stays bit-identical throughout.
#[test]
fn compaction_bounds_live_files_and_preserves_answer_bits() {
    let w = world("budget");
    let (index, cfg) = seed_with_deltas(&w, 6);
    let budget = 3;
    assert!(
        live_files(&index).len() > budget,
        "setup produced too few delta files for the harness to bite"
    );

    let oracle = answers(&index, &cfg);
    let maintainer = Maintainer::new(
        Arc::clone(&index),
        MaintenanceConfig {
            delta_file_budget: budget,
            ..MaintenanceConfig::default()
        },
    );

    // First pass: compaction retires the small deltas but leaves them
    // on disk — readers pinned to the prior view get one full round.
    let r1 = maintainer.run_once().unwrap();
    assert!(r1.compacted_files > 0, "nothing compacted: {r1:?}");
    assert!(r1.compacted_gfus > 0);
    assert_eq!(r1.reclaimed_files, 0, "no earlier round to reclaim yet");
    let gc = index.gc_list().unwrap();
    assert_eq!(gc.len(), r1.compacted_files);
    for path in &gc {
        assert!(
            w.ctx.hdfs.file_exists(path),
            "{path} deleted at commit instead of deferred"
        );
    }
    assert!(
        live_files(&index).len() <= budget,
        "live files over budget after compaction: {:?}",
        live_files(&index)
    );
    assert!(bits_eq(&answers(&index, &cfg), &oracle), "compaction moved float bits");

    // Second pass: the grace round ends, the retired files disappear,
    // and with the store under budget nothing new compacts.
    let r2 = maintainer.run_once().unwrap();
    assert_eq!(r2.reclaimed_files, r1.compacted_files);
    assert_eq!(r2.compacted_files, 0);
    for path in &gc {
        assert!(!w.ctx.hdfs.file_exists(path), "{path} survived its grace round");
    }
    assert!(index.gc_list().unwrap().is_empty());
    assert!(disk_files(&index).len() <= budget);
    assert!(bits_eq(&answers(&index, &cfg), &oracle));

    // Sustained churn: more flush-like appends, more passes — the bound
    // and the bits hold at every step.
    let extra = generate_meter_data(&MeterConfig {
        users: cfg.users,
        days: 2,
        start_day: cfg.start_day + cfg.days as i64,
        seed: 99,
        ..cfg.clone()
    });
    let chunk = (extra.len() / 4).max(1);
    for (i, batch) in extra.chunks(chunk).enumerate() {
        index.append(batch).unwrap();
        let oracle = answers(&index, &cfg);
        let report = maintainer.run_once().unwrap();
        assert!(
            live_files(&index).len() <= budget,
            "cycle {i}: live files over budget after {report:?}"
        );
        assert!(
            bits_eq(&answers(&index, &cfg), &oracle),
            "cycle {i}: maintenance moved float bits"
        );
    }
    assert_matches_scan(&w, &index, &cfg, "after churn");
}

/// Satellite: the KV log stays bounded through `maintain()` alone — no
/// serving path ever calls `flush()`, so without the threshold-gated
/// compaction the dead bytes of overwritten GFU values would grow
/// without bound.
#[test]
fn kv_log_stays_bounded_without_flush() {
    let tmp = TempDir::new("maint-kvlog").unwrap();
    let log = Arc::new(
        LogKvStore::open_with(
            tmp.path().join("gfu.log"),
            LogKvConfig {
                // No flush-time trigger: the daemon is the only bound.
                auto_compact: false,
                compact_min_bytes: 1 << 12,
                compact_dead_ratio: 0.5,
            },
        )
        .unwrap(),
    );
    let w = world_on("kvlog", Arc::clone(&log) as Arc<dyn KvStore>);
    let (index, cfg) = seed_with_deltas(&w, 2);
    let maintainer = Maintainer::new(
        Arc::clone(&index),
        MaintenanceConfig {
            // Large enough that file compaction stays out of the way:
            // this test isolates the KV log bound.
            delta_file_budget: 1 << 16,
            ..MaintenanceConfig::default()
        },
    );

    let churn = generate_meter_data(&MeterConfig {
        users: cfg.users,
        days: 6,
        start_day: cfg.start_day + cfg.days as i64,
        seed: 7,
        ..cfg.clone()
    });
    let chunk = (churn.len() / 12).max(1);
    let mut reclaimed_total = 0;
    for batch in churn.chunks(chunk) {
        // Every append overwrites live GFU values, the view, and the
        // extents — all dead bytes in an append-only log.
        index.append(batch).unwrap();
        let report = maintainer.run_once().unwrap();
        reclaimed_total += report.kv_reclaimed_bytes;
        // The maintained invariant: dead bytes never exceed the
        // configured fraction of a log worth compacting.
        let (len, dead) = (log.log_len(), log.dead_bytes());
        assert!(
            len < (1 << 12) || (dead as f64) / (len as f64) <= 0.5,
            "log unbounded: {len} bytes, {dead} dead"
        );
    }
    assert!(
        reclaimed_total > 0,
        "churn never tripped the maintenance compaction — harness is vacuous"
    );
    assert_matches_scan(&w, &index, &cfg, "after kv churn");
}

/// Satellite: publishing a view retires every older header-cache
/// generation eagerly. Before the fix the cache held one dead epoch of
/// entries per append until capacity eviction got around to them.
#[test]
fn header_cache_drops_dead_generations_on_view_advance() {
    let w = world("cache");
    let (index, cfg) = seed_with_deltas(&w, 2);
    // Force the per-cell header path (the pyramid would answer inner
    // regions without touching the cache).
    let engine = DgfEngine::new(Arc::clone(&index)).without_precompute();
    let q = &queries(&cfg)[1];

    engine.run(q).unwrap();
    let cache = index.header_cache();
    assert!(!cache.is_empty(), "query filled no headers");
    assert_eq!(cache.live_generations().len(), 1);

    let extra = generate_meter_data(&MeterConfig {
        users: cfg.users,
        days: 3,
        start_day: cfg.start_day + cfg.days as i64,
        seed: 11,
        ..cfg.clone()
    });
    let chunk = (extra.len() / 3).max(1);
    for (i, batch) in extra.chunks(chunk).enumerate() {
        index.append(batch).unwrap();
        engine.run(q).unwrap();
        let gens = cache.live_generations();
        assert_eq!(
            gens.len(),
            1,
            "cycle {i}: dead generations linger in the cache: {gens:?}"
        );
        // Occupancy is bounded by the live grid, not by history.
        let cells = all_gfus(w.inner.as_ref(), 2).unwrap().len();
        assert!(
            cache.len() <= cells,
            "cycle {i}: {} cached headers for {cells} live cells",
            cache.len()
        );
    }
}

/// Regression: regrid after compaction must read only *live* slice
/// ranges. A file retained through compaction (because an untouched
/// GFU still references part of it) holds dead byte ranges whose rows
/// were rewritten into the compacted file; whole-file splits re-read
/// them and double-count. Narrow appends guarantee such a file exists
/// before the regrid.
#[test]
fn regrid_after_compaction_does_not_double_count() {
    let w = world("regrid");
    let cfg = meter_cfg();
    let rows = generate_meter_data(&cfg);
    let per_day = rows.len() / cfg.days as usize;
    let seeded = &rows[..2 * per_day];
    w.ctx.load_rows(&w.base, seeded, 2).unwrap();
    let (index, _) = DgfIndex::build(
        Arc::clone(&w.ctx),
        Arc::clone(&w.base),
        grid(&cfg),
        aggs(),
        Arc::clone(&w.inner),
        INDEX,
    )
    .unwrap();
    let index = Arc::new(index);
    // Narrow deltas: only users 0–1, so compaction rewrites the low
    // user cells while the high cells keep their seed-file slices —
    // the seed files survive with dead ranges inside.
    let narrow = generate_meter_data(&MeterConfig {
        users: 2,
        days: cfg.days,
        seed: 5,
        ..cfg.clone()
    });
    let chunk = (narrow.len() / 4).max(1);
    for batch in narrow.chunks(chunk) {
        index.append(batch).unwrap();
    }

    let maintainer = Maintainer::new(
        Arc::clone(&index),
        MaintenanceConfig {
            delta_file_budget: 4,
            ..MaintenanceConfig::default()
        },
    );
    let report = maintainer.run_once().unwrap();
    assert!(report.compacted_files > 0);

    // Precondition for the regression to have teeth: some retained
    // file holds bytes no live slice covers.
    let mut live_bytes: HashMap<String, u64> = HashMap::new();
    for (_, v) in all_gfus(index.kv.as_ref(), 2).unwrap() {
        for s in &v.slices {
            *live_bytes.entry(s.file.clone()).or_default() += s.end - s.start;
        }
    }
    let has_dead_range = live_files(&index)
        .iter()
        .any(|(p, size)| live_bytes.get(p).copied().unwrap_or(0) < *size);
    assert!(
        has_dead_range,
        "no retained file with dead ranges — regression scenario not reproduced"
    );

    // Halve the user_id interval: the rewrite re-cells every record.
    // Before the fix this double-counted the dead ranges (COUNT jumped
    // by the compacted rows; the scan comparison below caught it).
    let mut dims = grid(&cfg).dims().to_vec();
    dims[0] = DimPolicy::int("user_id", 0, 2);
    maintainer.regrid_to(SplittingPolicy::new(dims).unwrap()).unwrap();
    assert_matches_scan(&w, &index, &cfg, "after halving regrid");

    // And back out to a coarser grid over the regridded store.
    let mut dims = grid(&cfg).dims().to_vec();
    dims[0] = DimPolicy::int("user_id", 0, 8);
    maintainer.regrid_to(SplittingPolicy::new(dims).unwrap()).unwrap();
    assert_matches_scan(&w, &index, &cfg, "after doubling regrid");
}

/// Satellite: planner boundary heat drives the adaptation decision —
/// the misaligned dimension splits, a later merge pass coarsens it
/// back — and both rewrites preserve answers.
#[test]
fn adaptation_follows_boundary_heat_and_preserves_answers() {
    let w = world("adapt");
    let (index, cfg) = seed_with_deltas(&w, 2);
    // The range query is misaligned on user_id (1..7 against interval
    // 4) and day-aligned on ts, so only user_id accumulates heat.
    let engine = DgfEngine::new(Arc::clone(&index));
    for _ in 0..3 {
        engine.run(&queries(&cfg)[1]).unwrap();
    }
    let heat = index.heat().snapshot();
    assert!(heat[0] > heat[1], "expected user_id to be the hot dimension: {heat:?}");

    let split = Maintainer::new(
        Arc::clone(&index),
        MaintenanceConfig {
            delta_file_budget: 1 << 16,
            adapt: true,
            split_records_per_cell: 1,
            merge_records_per_cell: 0,
            ..MaintenanceConfig::default()
        },
    );
    let report = split.run_once().unwrap();
    let desc = report.adapted.expect("overfull cells should have split");
    assert!(desc.starts_with("user_id"), "split the wrong dimension: {desc}");
    assert_eq!(
        index.policy().dims()[0].scale,
        DimScale::Int { min: 0, interval: 2 }
    );
    assert_matches_scan(&w, &index, &cfg, "after heat-driven split");

    let merge = Maintainer::new(
        Arc::clone(&index),
        MaintenanceConfig {
            delta_file_budget: 1 << 16,
            adapt: true,
            split_records_per_cell: u64::MAX,
            merge_records_per_cell: u64::MAX,
            ..MaintenanceConfig::default()
        },
    );
    let report = merge.run_once().unwrap();
    // The scan comparison above re-ran the misaligned query, so user_id
    // is hot again and the merge coarsens the *coldest* dimension: ts.
    let desc = report.adapted.expect("underfull cells should have merged");
    assert!(desc.starts_with("ts"), "merged the wrong dimension: {desc}");
    assert_eq!(
        index.policy().dims()[0].scale,
        DimScale::Int { min: 0, interval: 2 },
        "the hot dimension must keep its fine interval"
    );
    assert_matches_scan(&w, &index, &cfg, "after merge");
}

/// Drive one maintenance pass over chaos handles; returns whether the
/// plan's scheduled crash fired.
fn crash_maintain(w: &World, budget: usize, plan: &Arc<FaultPlan>) -> bool {
    w.ctx.hdfs.enable_faults(Arc::clone(plan), retry());
    let kv: Arc<dyn KvStore> = Arc::new(ChaosKv::new(Arc::clone(&w.inner), Arc::clone(plan)));
    let outcome = (|| -> dgfindex::common::Result<()> {
        let writer = DgfIndex::open_with_options(
            Arc::clone(&w.ctx),
            Arc::clone(&w.base),
            kv,
            INDEX,
            aggs(),
            IndexOptions {
                retry: retry(),
                fault: Some(Arc::clone(plan)),
                ..IndexOptions::default()
            },
        )?;
        Maintainer::new(
            Arc::new(writer),
            MaintenanceConfig {
                delta_file_budget: budget,
                ..MaintenanceConfig::default()
            },
        )
        .run_once()?;
        Ok(())
    })();
    w.ctx.hdfs.disable_faults();
    if plan.crashed() {
        assert!(outcome.is_err(), "crash fired but maintenance succeeded");
    }
    plan.crashed()
}

/// Satellite: crash the compaction at sites spanning the whole commit
/// window — intent, staging, around the commit point, apply, cleanup.
/// Recovery must leave no transaction residue, answers must equal a
/// ground-truth scan, and a clean pass afterwards must still converge
/// to the file budget.
#[test]
fn crashes_across_the_maintenance_window_recover_cleanly() {
    let budget = 3;
    // Count the crash ordinals one fault-free pass walks through.
    let sites = {
        let w = world("crash-record");
        seed_with_deltas(&w, 6);
        let quiet = Arc::new(FaultPlan::new(FaultConfig::quiet(0)));
        assert!(!crash_maintain(&w, budget, &quiet));
        let n = quiet.points_hit();
        assert!(n >= 6, "expected a rich maintenance crash-site space, got {n}");
        n
    };
    let picks = [
        0,
        sites / 5,
        sites / 3,
        sites / 2,
        2 * sites / 3,
        4 * sites / 5,
        sites - 1,
    ];
    for (k, &site) in picks.iter().enumerate() {
        let w = world(&format!("crash{k}"));
        let (_, cfg) = seed_with_deltas(&w, 6);
        let crash = Arc::new(FaultPlan::new(FaultConfig::crash_at(site, site)));
        assert!(
            crash_maintain(&w, budget, &crash),
            "site {site}: scheduled crash did not fire"
        );

        DgfIndex::recover(&w.ctx.hdfs, &w.inner, retry()).unwrap();
        assert!(
            w.inner.scan_prefix(STAGE_PREFIX).unwrap().is_empty(),
            "site {site}: staged keys survived recovery"
        );
        assert!(
            w.inner.get(TXN_MANIFEST_KEY).unwrap().is_none(),
            "site {site}: manifest survived recovery"
        );

        let index = Arc::new(
            DgfIndex::open(
                Arc::clone(&w.ctx),
                Arc::clone(&w.base),
                Arc::clone(&w.inner),
                INDEX,
                aggs(),
            )
            .unwrap(),
        );
        assert_matches_scan(&w, &index, &cfg, &format!("site {site} recovered"));

        // The daemon still converges after the crash: one pass to get
        // back within budget, one more to end the grace round.
        let maintainer = Maintainer::new(
            Arc::clone(&index),
            MaintenanceConfig {
                delta_file_budget: budget,
                ..MaintenanceConfig::default()
            },
        );
        maintainer.run_once().unwrap();
        maintainer.run_once().unwrap();
        assert!(
            disk_files(&index).len() <= budget,
            "site {site}: post-recovery maintenance left {} files on disk",
            disk_files(&index).len()
        );
        assert!(index.gc_list().unwrap().is_empty() || disk_files(&index).len() <= budget);
        assert_matches_scan(&w, &index, &cfg, &format!("site {site} post-maintenance"));
    }
}
