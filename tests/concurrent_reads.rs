//! Deterministic interleaving harness: concurrent queries vs
//! append / flush / recovery must never observe a torn index state.
//!
//! The writer side (staged-commit append, streaming flush, recovery
//! re-apply) and the reader side (query planning) both pass through
//! seeded scheduling points ([`FaultConfig::interleave`]): at each named
//! site the thread yields or sleeps a seeded-random pause, stretching
//! the commit protocol wide open so reader threads land *between* its
//! individual KV writes. Every concurrent answer must then equal either
//! the pre-commit oracle or the post-commit oracle — bit-for-bit one
//! snapshot, never a blend of cells from both sides.
//!
//! The seed sweep defaults to a handful of schedules; CI widens it via
//! the `DGF_STRESS_SEEDS` environment variable (comma-separated u64s).
//!
//! Regression note: emulating the pre-fix planner — skip the `m:view`
//! read in `pin_view` (no staged overlay, legacy synthesized view) and
//! force `let view_ok = true;` in `plan.rs` — makes
//! `queries_during_append_see_pre_or_post_state_only` reproduce a torn
//! read within the default seed sweep on every run tried (e.g. seed 5,
//! round 1: a range SUM equal to pre+post — boundary rows counted from
//! both generations at once). The pinned-view protocol (single-put
//! visibility switch + post-fetch validation + generation-tagged cache
//! fills) is what makes this file pass.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dgfindex::common::DgfError;
use dgfindex::core::txn::{STAGE_PREFIX, TXN_MANIFEST_KEY};
use dgfindex::core::{MaintenanceConfig, Maintainer};
use dgfindex::ingest::IngestConfig;
use dgfindex::kvstore::{KvPair, KvStats};
use dgfindex::prelude::*;
use dgfindex::workload::{generate_meter_data, meter_schema, MeterConfig};
use proptest::prelude::*;

const INDEX: &str = "dgf_conc";
const DATA_DIR: &str = "/warehouse/dgf_conc/data";

fn retry() -> RetryPolicy {
    RetryPolicy::fast(40)
}

fn aggs() -> Vec<AggFunc> {
    vec![AggFunc::Sum("power_consumed".into()), AggFunc::Count]
}

fn meter_cfg() -> MeterConfig {
    MeterConfig {
        users: 8,
        days: 4,
        ..MeterConfig::default()
    }
}

fn grid(cfg: &MeterConfig) -> SplittingPolicy {
    SplittingPolicy::new(vec![
        DimPolicy::int("user_id", 0, 4),
        DimPolicy::date("ts", cfg.start_day, 1),
    ])
    .unwrap()
}

/// The query mix every reader thread loops over: a full COUNT (torn
/// states show up as impossible intermediate row counts), a misaligned
/// range aggregate (boundary Slices + inner headers), and a GROUP BY
/// (exercises the grouped sink and per-group float sums).
fn queries(cfg: &MeterConfig) -> Vec<Query> {
    let range = Predicate::all()
        .and(
            "user_id",
            ColumnRange::half_open(Value::Int(1), Value::Int(7)),
        )
        .and(
            "ts",
            ColumnRange::half_open(
                Value::Date(cfg.start_day + 1),
                Value::Date(cfg.start_day + 3),
            ),
        );
    vec![
        Query::Aggregate {
            aggs: vec![AggFunc::Count],
            predicate: Predicate::all(),
        },
        Query::Aggregate {
            aggs: aggs(),
            predicate: range.clone(),
        },
        Query::GroupBy {
            key: "user_id".into(),
            aggs: aggs(),
            predicate: range,
        },
    ]
}

struct World {
    tmp: TempDir,
    ctx: Arc<HiveContext>,
    base: TableRef,
    inner: Arc<dyn KvStore>,
}

fn world(tag: &str) -> World {
    let tmp = TempDir::new(&format!("conc-{tag}")).unwrap();
    let hdfs = SimHdfs::open(tmp.path()).unwrap();
    let ctx = HiveContext::new(hdfs, MrEngine::new(1));
    let base = ctx
        .create_table("meter", meter_schema(), FileFormat::Text)
        .unwrap();
    World {
        tmp,
        ctx,
        base,
        inner: Arc::new(MemKvStore::new()),
    }
}

/// Load and index the first two days fault-free; return the seeded rows
/// and the batch for the concurrent writer to land. The batch
/// deliberately revisits the seeded days *and* opens new ones: half its
/// rows merge into existing GFU cells (each live header is overwritten
/// at publish — the racy path), half create fresh cells and extend the
/// extents. A batch of only-new cells would hide tears behind the old
/// extent snapshot.
fn seed_index(w: &World) -> (Vec<Row>, Vec<Row>) {
    let cfg = meter_cfg();
    let rows = generate_meter_data(&cfg);
    let per_day = rows.len() / cfg.days as usize;
    let (seeded, rest) = rows.split_at(2 * per_day);
    w.ctx.load_rows(&w.base, seeded, 2).unwrap();
    let (_, _) = DgfIndex::build(
        Arc::clone(&w.ctx),
        Arc::clone(&w.base),
        grid(&cfg),
        aggs(),
        Arc::clone(&w.inner),
        INDEX,
    )
    .unwrap();
    let mut batch = seeded.to_vec();
    batch.extend(rest.iter().cloned());
    (seeded.to_vec(), batch)
}

/// Open a handle over `kv` with an attached fault plan (scheduling
/// points, transient noise, or crash schedule — whatever the plan says).
fn open_with(w: &World, kv: Arc<dyn KvStore>, plan: &Arc<FaultPlan>) -> Arc<DgfIndex> {
    Arc::new(
        DgfIndex::open_with_options(
            Arc::clone(&w.ctx),
            Arc::clone(&w.base),
            kv,
            INDEX,
            aggs(),
            IndexOptions {
                retry: retry(),
                fault: Some(Arc::clone(plan)),
                ..IndexOptions::default()
            },
        )
        .unwrap(),
    )
}

/// A seeded scheduling plan: pause at every named site, up to 500µs.
/// The pauses dwarf the work between commit-protocol writes, so the
/// publish window stays open long enough for reader fetches to land
/// inside it (in debug and release builds alike).
fn interleave(seed: u64) -> Arc<FaultPlan> {
    Arc::new(FaultPlan::new(FaultConfig::interleave(
        seed,
        1.0,
        Duration::from_micros(500),
    )))
}

/// One atomic observation of the whole query mix.
fn answers(index: &Arc<DgfIndex>, cfg: &MeterConfig) -> Vec<QueryResult> {
    let engine = DgfEngine::new(Arc::clone(index));
    queries(cfg)
        .iter()
        .map(|q| engine.run(q).unwrap().result)
        .collect()
}

/// Snapshot equality. The tolerance is for float formatting noise only
/// (1e-9 relative); a torn read moves whole rows between snapshots, so
/// it lands far outside it.
fn matches(a: &[QueryResult], b: &[QueryResult]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.approx_eq(y, 1e-9))
}

/// Per-query torn-read check. Isolation is per *query* (each pins its
/// own view), so a commit may land between two queries of one
/// observation — but every individual answer must wholly equal its pre
/// or its post counterpart, never a blend of cells from both.
fn obs_ok(obs: &[QueryResult], pre: &[QueryResult], post: &[QueryResult]) -> bool {
    obs.len() == pre.len()
        && obs
            .iter()
            .enumerate()
            .all(|(j, r)| r.approx_eq(&pre[j], 1e-9) || r.approx_eq(&post[j], 1e-9))
}

/// Seeds to sweep: `DGF_STRESS_SEEDS=1,2,3` overrides (CI uses this to
/// widen the sweep in release mode), default is a small fixed set.
fn stress_seeds() -> Vec<u64> {
    match std::env::var("DGF_STRESS_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim())
            .filter(|t| !t.is_empty())
            .map(|t| t.parse().expect("DGF_STRESS_SEEDS entries must be u64"))
            .collect(),
        Err(_) => (1..=6).collect(),
    }
}

/// Run `write` on the main thread while `readers` query threads hammer
/// the same index; return every observation made while the write was in
/// flight (each thread keeps observing briefly after the write returns,
/// which is harmless — those must equal the post state).
fn observe_during<F: FnOnce()>(
    index: &Arc<DgfIndex>,
    cfg: &MeterConfig,
    readers: usize,
    write: F,
) -> Vec<Vec<QueryResult>> {
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..readers)
            .map(|_| {
                let index = Arc::clone(index);
                let stop = &stop;
                s.spawn(move || {
                    let mut seen = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        seen.push(answers(&index, cfg));
                    }
                    seen
                })
            })
            .collect();
        write();
        stop.store(true, Ordering::Relaxed);
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    })
}

/// Tentpole, writer = `append`. Readers race a staged-commit append
/// under a seeded schedule; every answer must equal the pre-append or
/// the post-append snapshot — never a mixture of old and new cells.
#[test]
fn queries_during_append_see_pre_or_post_state_only() {
    for seed in stress_seeds() {
        // Two rounds per seed: thread scheduling is the one source of
        // nondeterminism left, so extra rounds multiply the chance that
        // reader fetches land inside the publish window.
        for round in 0..4u64 {
            let w = world(&format!("append{seed}x{round}"));
            let cfg = meter_cfg();
            let (_, rest) = seed_index(&w);
            let plan = interleave(seed.wrapping_mul(31).wrapping_add(round));
            let index = open_with(&w, Arc::clone(&w.inner), &plan);

            let pre = answers(&index, &cfg);
            let seen = observe_during(&index, &cfg, 3, || {
                index.append(&rest).unwrap();
            });
            let post = answers(&index, &cfg);

            // Sanity: the commit actually changed the answers, so
            // pre/post are distinguishable and the harness has teeth.
            assert!(
                !matches(&post, &pre),
                "seed {seed}: append changed nothing — harness is vacuous"
            );
            assert!(!seen.is_empty(), "seed {seed}: readers never ran");
            for (i, obs) in seen.iter().enumerate() {
                assert!(
                    obs_ok(obs, &pre, &post),
                    "seed {seed} round {round}: observation {i} is a torn read:\n  got  {obs:?}\n  pre  {pre:?}\n  post {post:?}"
                );
            }
        }
    }
}

/// Tentpole, writer = streaming `flush`. A flush moves acknowledged
/// rows from the memtable into the index without changing what queries
/// see, so here there is only ONE legal answer the whole time.
#[test]
fn queries_during_flush_never_waver() {
    for seed in stress_seeds() {
        let w = world(&format!("flush{seed}"));
        let cfg = meter_cfg();
        let (_, rest) = seed_index(&w);
        let plan = interleave(seed ^ 0xF10C);
        let index = open_with(&w, Arc::clone(&w.inner), &plan);
        let ingestor = dgfindex::ingest::StreamIngestor::open(
            Arc::clone(&index),
            w.tmp.path().join("ingest.wal"),
            IngestConfig {
                flush_rows: u64::MAX,
                auto_flush_interval: None,
                fault: Some(Arc::clone(&plan)),
                ..IngestConfig::default()
            },
        )
        .unwrap();
        ingestor.ingest(&rest).unwrap();

        let pre = answers(&index, &cfg);
        let seen = observe_during(&index, &cfg, 3, || {
            ingestor.flush().unwrap();
        });
        let post = answers(&index, &cfg);

        assert!(
            matches(&post, &pre),
            "seed {seed}: flush changed answers: {pre:?} vs {post:?}"
        );
        for (i, obs) in seen.iter().enumerate() {
            assert!(
                matches(obs, &pre),
                "seed {seed}: observation {i} tore during flush:\n  got {obs:?}\n  want {pre:?}"
            );
        }
    }
}

/// Drive one crashing append over chaos handles; the durable stores
/// survive. Returns whether the plan's scheduled crash fired.
fn crash_append(w: &World, rest: &[Row], plan: &Arc<FaultPlan>) -> bool {
    w.ctx.hdfs.enable_faults(Arc::clone(plan), retry());
    let kv: Arc<dyn KvStore> = Arc::new(ChaosKv::new(Arc::clone(&w.inner), Arc::clone(plan)));
    let outcome = (|| -> dgfindex::common::Result<()> {
        let writer = DgfIndex::open_with_options(
            Arc::clone(&w.ctx),
            Arc::clone(&w.base),
            kv,
            INDEX,
            aggs(),
            IndexOptions {
                retry: retry(),
                fault: Some(Arc::clone(plan)),
                ..IndexOptions::default()
            },
        )?;
        writer.append(rest)?;
        Ok(())
    })();
    w.ctx.hdfs.disable_faults();
    if plan.crashed() {
        assert!(outcome.is_err(), "crash fired but the append succeeded");
    }
    plan.crashed()
}

/// Tentpole, writer = `recover`. Crash an append at sites across the
/// whole protocol (rollback cases and re-apply cases), then run
/// recovery under a seeded schedule while a pre-existing reader handle
/// keeps querying. Readers must see the pre-crash state or the final
/// recovered state — recovery's re-published cells must never leak into
/// a pinned pre-crash plan.
#[test]
fn queries_during_recovery_see_pre_or_post_state_only() {
    // Count the crash ordinals one append passes through.
    let sites = {
        let w = world("rec-record");
        let (_, rest) = seed_index(&w);
        let quiet = Arc::new(FaultPlan::new(FaultConfig::quiet(0)));
        assert!(!crash_append(&w, &rest, &quiet));
        let n = quiet.points_hit();
        assert!(n >= 6, "expected a rich append crash-site space, got {n}");
        n
    };
    // Early (Intent → rollback), middle (reorganize), around the commit
    // point, and the cleanup tail.
    let picks = [0, sites / 3, sites / 2, 2 * sites / 3, sites - 1];
    for (k, &site) in picks.iter().enumerate() {
        let w = world(&format!("rec{k}"));
        let cfg = meter_cfg();
        let (_, rest) = seed_index(&w);
        // The reader attaches over the durable store *before* the crash
        // and survives it, with its own seeded schedule.
        let reader = open_with(&w, Arc::clone(&w.inner), &interleave(site + 11));

        let pre = answers(&reader, &cfg);
        let crash = Arc::new(FaultPlan::new(FaultConfig::crash_at(site, site)));
        assert!(
            crash_append(&w, &rest, &crash),
            "site {site}: scheduled crash did not fire"
        );

        let plan = interleave(site + 29);
        let seen = observe_during(&reader, &cfg, 3, || {
            DgfIndex::recover_with_fault(&w.ctx.hdfs, &w.inner, retry(), Some(&plan)).unwrap();
        });
        let post = answers(&reader, &cfg);

        for (i, obs) in seen.iter().enumerate() {
            assert!(
                obs_ok(obs, &pre, &post),
                "site {site}: observation {i} tore during recovery:\n  got  {obs:?}\n  pre  {pre:?}\n  post {post:?}"
            );
        }
        // Recovery converged: no residue, and the index agrees with a
        // ground-truth scan of whatever base table state survived.
        assert!(w.inner.scan_prefix(STAGE_PREFIX).unwrap().is_empty());
        assert!(w.inner.get(TXN_MANIFEST_KEY).unwrap().is_none());
        let scan = ScanEngine::new(Arc::clone(&w.ctx), Arc::clone(&w.base));
        let fresh = open_with(&w, Arc::clone(&w.inner), &interleave(0));
        let engine = DgfEngine::new(fresh);
        for q in &queries(&cfg) {
            let truth = scan.run(q).unwrap().result;
            let got = engine.run(q).unwrap().result;
            assert!(
                got.approx_eq(&truth, 1e-9),
                "site {site}: recovered index disagrees with scan"
            );
        }
    }
}

/// A pass-through store that fails every staged (`s:`) put while armed
/// with a *non-transient* error — a deterministic mid-reorganize
/// failure no retry policy will absorb.
struct FailStagedPuts {
    inner: Arc<dyn KvStore>,
    armed: AtomicBool,
}

impl KvStore for FailStagedPuts {
    fn put(&self, key: &[u8], value: &[u8]) -> dgfindex::common::Result<()> {
        if self.armed.load(Ordering::Relaxed) && key.starts_with(STAGE_PREFIX) {
            return Err(DgfError::KvStore("injected staged-put failure".into()));
        }
        self.inner.put(key, value)
    }
    fn get(&self, key: &[u8]) -> dgfindex::common::Result<Option<Vec<u8>>> {
        self.inner.get(key)
    }
    fn delete(&self, key: &[u8]) -> dgfindex::common::Result<bool> {
        self.inner.delete(key)
    }
    fn scan_range(&self, start: &[u8], end: &[u8]) -> dgfindex::common::Result<Vec<KvPair>> {
        self.inner.scan_range(start, end)
    }
    fn update(
        &self,
        key: &[u8],
        f: &mut dyn FnMut(Option<&[u8]>) -> Vec<u8>,
    ) -> dgfindex::common::Result<()> {
        self.inner.update(key, f)
    }
    fn multi_get(&self, keys: &[Vec<u8>]) -> dgfindex::common::Result<Vec<Option<Vec<u8>>>> {
        self.inner.multi_get(keys)
    }
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn logical_size_bytes(&self) -> u64 {
        self.inner.logical_size_bytes()
    }
    fn flush(&self) -> dgfindex::common::Result<()> {
        self.inner.flush()
    }
    fn stats(&self) -> &KvStats {
        self.inner.stats()
    }
}

/// Satellite: a failed `append` must roll itself back in-process — no
/// dangling Intent manifest, no staged keys, no orphaned delta file —
/// and the very next append on the same handle must succeed.
#[test]
fn failed_append_rolls_back_in_process() {
    let w = world("rollback");
    let cfg = meter_cfg();
    let (_, rest) = seed_index(&w);
    let failing = Arc::new(FailStagedPuts {
        inner: Arc::clone(&w.inner),
        armed: AtomicBool::new(true),
    });
    let index = DgfIndex::open_with_options(
        Arc::clone(&w.ctx),
        Arc::clone(&w.base),
        Arc::clone(&failing) as Arc<dyn KvStore>,
        INDEX,
        aggs(),
        IndexOptions {
            retry: retry(),
            fault: None,
            ..IndexOptions::default()
        },
    )
    .unwrap();
    let index = Arc::new(index);

    let files_before = w.ctx.hdfs.list_files(DATA_DIR).len();
    let pre = answers(&index, &cfg);

    let err = index.append(&rest).unwrap_err();
    assert!(
        err.to_string().contains("injected staged-put failure"),
        "unexpected append error: {err}"
    );
    // In-process rollback: nothing of the failed transaction survives.
    assert!(
        w.inner.get(TXN_MANIFEST_KEY).unwrap().is_none(),
        "failed append left its Intent manifest behind"
    );
    assert!(
        w.inner.scan_prefix(STAGE_PREFIX).unwrap().is_empty(),
        "failed append left staged keys behind"
    );
    assert_eq!(
        w.ctx.hdfs.list_files(DATA_DIR).len(),
        files_before,
        "failed append left an orphaned delta file behind"
    );
    // Queries on the same handle are unperturbed...
    assert!(matches(&answers(&index, &cfg), &pre));

    // ...and with the fault gone, the SAME handle appends cleanly.
    failing.armed.store(false, Ordering::Relaxed);
    index.append(&rest).unwrap();
    let scan = ScanEngine::new(Arc::clone(&w.ctx), Arc::clone(&w.base));
    let engine = DgfEngine::new(Arc::clone(&index));
    for q in &queries(&cfg) {
        let truth = scan.run(q).unwrap().result;
        let got = engine.run(q).unwrap().result;
        assert!(got.approx_eq(&truth, 1e-9));
    }
}

/// Exact-bits equality across two answer sets: `Float`s must agree in
/// raw bit pattern, not just within a tolerance.
fn bits_eq(a: &[QueryResult], b: &[QueryResult]) -> bool {
    fn val(a: &Value, b: &Value) -> bool {
        match (a, b) {
            (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
            _ => a == b,
        }
    }
    fn one(a: &QueryResult, b: &QueryResult) -> bool {
        match (a, b) {
            (QueryResult::Scalars(x), QueryResult::Scalars(y)) => {
                x.len() == y.len() && x.iter().zip(y).all(|(p, q)| val(p, q))
            }
            (QueryResult::Groups(x), QueryResult::Groups(y)) => {
                x.len() == y.len()
                    && x.iter().zip(y).all(|((ka, va), (kb, vb))| {
                        val(ka, kb)
                            && va.len() == vb.len()
                            && va.iter().zip(vb).all(|(p, q)| val(p, q))
                    })
            }
            _ => a == b,
        }
    }
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| one(x, y))
}

/// Satellite: float aggregates are bit-identical however many MapReduce
/// workers compute them. Compensated (Kahan/Neumaier) summation plus a
/// task-ordered merge makes the fold deterministic; before the fix, sum
/// order varied with worker scheduling and answers wobbled in the last
/// ulps.
#[test]
fn aggregate_results_bit_identical_across_worker_counts() {
    let cfg = meter_cfg();
    let rows = generate_meter_data(&cfg);
    let run = |workers: usize| -> Vec<QueryResult> {
        let tmp = TempDir::new(&format!("bits{workers}")).unwrap();
        let hdfs = SimHdfs::open(tmp.path()).unwrap();
        let ctx = HiveContext::new(hdfs, MrEngine::new(workers));
        let base = ctx
            .create_table("meter", meter_schema(), FileFormat::Text)
            .unwrap();
        ctx.load_rows(&base, &rows, 2).unwrap();
        let (index, _) = DgfIndex::build(
            Arc::clone(&ctx),
            Arc::clone(&base),
            grid(&cfg),
            aggs(),
            Arc::new(MemKvStore::new()),
            INDEX,
        )
        .unwrap();
        let index = Arc::new(index);
        let precompute = DgfEngine::new(Arc::clone(&index));
        let raw = DgfEngine::new(Arc::clone(&index)).without_precompute();
        queries(&cfg)
            .iter()
            .flat_map(|q| {
                [
                    precompute.run(q).unwrap().result,
                    raw.run(q).unwrap().result,
                ]
            })
            .collect()
    };
    let one = run(1);
    let two = run(2);
    let eight = run(8);
    assert!(
        bits_eq(&one, &two),
        "1-worker vs 2-worker answers differ in float bits:\n{one:?}\nvs\n{two:?}"
    );
    assert!(
        bits_eq(&one, &eight),
        "1-worker vs 8-worker answers differ in float bits:\n{one:?}\nvs\n{eight:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Satellite: one streaming flush THEN one append, with concurrent
    /// aggregation + GROUP BY readers, under a proptest-chosen schedule
    /// seed and batch split. Acked-but-unflushed rows are query-visible
    /// before the flush, so the flush is invisible and the append is
    /// the only transition: every concurrent observation equals the
    /// pre-writer or post-writer oracle.
    #[test]
    fn concurrent_flush_and_append_match_pre_or_post_oracle(
        seed in 0u64..u64::MAX,
        split in 2usize..6,
    ) {
        let w = world("prop");
        let cfg = meter_cfg();
        let (_, rest) = seed_index(&w);
        let (ingest_rows, append_rows) = rest.split_at(rest.len() / split);

        let plan = interleave(seed);
        let index = open_with(&w, Arc::clone(&w.inner), &plan);
        let ingestor = dgfindex::ingest::StreamIngestor::open(
            Arc::clone(&index),
            w.tmp.path().join("ingest.wal"),
            IngestConfig {
                flush_rows: u64::MAX,
                auto_flush_interval: None,
                fault: Some(Arc::clone(&plan)),
                ..IngestConfig::default()
            },
        )
        .unwrap();
        // Acknowledged before the race starts: part of the pre oracle.
        ingestor.ingest(ingest_rows).unwrap();

        let pre = answers(&index, &cfg);
        let seen = observe_during(&index, &cfg, 2, || {
            // Writers are sequential on one thread (appends are not
            // serialized against each other); readers are the chaos.
            ingestor.flush().unwrap();
            index.append(append_rows).unwrap();
        });
        let post = answers(&index, &cfg);

        prop_assert!(
            !matches(&post, &pre),
            "append changed nothing — oracle pair is degenerate"
        );
        for (i, obs) in seen.iter().enumerate() {
            prop_assert!(
                obs_ok(obs, &pre, &post),
                "seed {seed} split {split}: observation {i} is a torn read:\n  got  {obs:?}\n  pre  {pre:?}\n  post {post:?}"
            );
        }
    }
}

/// Seed the index and pile up delta files with fault-free appends so a
/// maintenance pass has something to compact; returns the batch count.
fn seed_with_deltas(w: &World, batches: usize) -> usize {
    let (_, rest) = seed_index(w);
    let quiet = Arc::new(FaultPlan::new(FaultConfig::quiet(0)));
    let writer = open_with(w, Arc::clone(&w.inner), &quiet);
    let chunk = (rest.len() / batches).max(1);
    let mut n = 0;
    for batch in rest.chunks(chunk) {
        writer.append(batch).unwrap();
        n += 1;
    }
    n
}

/// Tentpole (maintenance), writer = delta compaction. Compaction is
/// pure data movement — headers verbatim, per-GFU row order preserved —
/// so concurrent readers have exactly ONE legal answer the whole time,
/// and it must hold in **float bits**, not within a tolerance: a
/// re-folded aggregate or a torn old/new slice mix shifts the low bits
/// long before it shifts 1e-9.
#[test]
fn queries_during_compaction_never_waver_in_float_bits() {
    for seed in stress_seeds().into_iter().take(3) {
        let w = world(&format!("compact{seed}"));
        let cfg = meter_cfg();
        seed_with_deltas(&w, 5);

        let plan = interleave(seed ^ 0xC0A7);
        let index = open_with(&w, Arc::clone(&w.inner), &plan);
        let maintainer = Maintainer::new(
            Arc::clone(&index),
            MaintenanceConfig {
                delta_file_budget: 2,
                ..MaintenanceConfig::default()
            },
        );

        let pre = answers(&index, &cfg);
        let mut report = None;
        let seen = observe_during(&index, &cfg, 3, || {
            report = Some(maintainer.run_once().unwrap());
        });
        let post = answers(&index, &cfg);

        let report = report.unwrap();
        assert!(
            report.compacted_files > 0,
            "seed {seed}: nothing compacted — harness is vacuous: {report:?}"
        );
        assert!(!seen.is_empty(), "seed {seed}: readers never ran");
        assert!(
            bits_eq(&post, &pre),
            "seed {seed}: compaction moved float bits:\n  pre  {pre:?}\n  post {post:?}"
        );
        for (i, obs) in seen.iter().enumerate() {
            assert!(
                bits_eq(obs, &pre),
                "seed {seed}: observation {i} wavered during compaction:\n  got {obs:?}\n  want {pre:?}"
            );
        }
    }
}

/// Tentpole (maintenance), writer = grid adaptation. A regrid re-cells
/// every record under a finer policy through one staged commit whose
/// manifest also retires the old-granularity keys. Readers racing it
/// must see wholly the old grid or wholly the new one: a blend pairs
/// one epoch's cell geometry with the other's values and double-counts
/// boundary rows. (The published view carries its own policy precisely
/// so a pinned plan can never make that pairing.)
#[test]
fn queries_during_regrid_see_pre_or_post_state_only() {
    for seed in stress_seeds().into_iter().take(3) {
        let w = world(&format!("regrid{seed}"));
        let cfg = meter_cfg();
        seed_with_deltas(&w, 3);

        let plan = interleave(seed ^ 0x5EED);
        let index = open_with(&w, Arc::clone(&w.inner), &plan);
        let maintainer = Maintainer::new(Arc::clone(&index), MaintenanceConfig::default());
        let mut dims = grid(&cfg).dims().to_vec();
        dims[0] = DimPolicy::int("user_id", 0, 2);
        let finer = SplittingPolicy::new(dims).unwrap();

        let pre = answers(&index, &cfg);
        let seen = observe_during(&index, &cfg, 3, || {
            maintainer.regrid_to(finer.clone()).unwrap();
        });
        let post = answers(&index, &cfg);

        // The regrid preserves answers (different fold order, same
        // rows) — so pre ≈ post, and every observation must match one
        // of them; a torn read double-counts whole boundary cells and
        // lands far outside the tolerance.
        assert!(
            matches(&post, &pre),
            "seed {seed}: regrid changed answers:\n  pre  {pre:?}\n  post {post:?}"
        );
        assert!(!seen.is_empty(), "seed {seed}: readers never ran");
        for (i, obs) in seen.iter().enumerate() {
            assert!(
                obs_ok(obs, &pre, &post),
                "seed {seed}: observation {i} tore during regrid:\n  got  {obs:?}\n  pre  {pre:?}\n  post {post:?}"
            );
        }
        assert_eq!(*index.policy(), finer, "regrid did not install the finer grid");
    }
}

/// Satellite (serving tier): the append race replayed on the *sharded*
/// path. The reader opens over a 4-way [`ShardedKv`] router with
/// `fetch_parallelism: 2`, so the seeded schedule now pauses inside the
/// coordinator's scatter/fetch/merge (`serve.*`) and the router's own
/// fan-out (`serve.router.*`) sync points too — a torn cross-shard read
/// (shard A fetched pre-commit, shard B post-commit) is reproducible by
/// seed exactly like the single-store tears above. The deeper sweep
/// lives in `serving_equivalence.rs`; this case keeps the sharded race
/// inside the same harness that found the original single-store tears.
#[test]
fn queries_during_append_on_the_sharded_path_see_pre_or_post_only() {
    for seed in stress_seeds().into_iter().take(3) {
        let w = world(&format!("shard{seed}"));
        let cfg = meter_cfg();
        let (_, rest) = seed_index(&w);

        // Mirror the built store into a router split on the seeded
        // extents; router and reader share one seeded schedule.
        let extents = {
            let probe = open_with(&w, Arc::clone(&w.inner), &interleave(0));
            probe.extents().unwrap()
        };
        let plan = interleave(seed ^ 0x0D1F);
        let router = Arc::new(
            sharded_mem(&extents, 4)
                .unwrap()
                .with_fault(Arc::clone(&plan)),
        );
        mirror_kv(w.inner.as_ref(), router.as_ref()).unwrap();
        let index = Arc::new(
            DgfIndex::open_with_options(
                Arc::clone(&w.ctx),
                Arc::clone(&w.base),
                Arc::clone(&router) as Arc<dyn KvStore>,
                INDEX,
                aggs(),
                IndexOptions {
                    retry: retry(),
                    fault: Some(Arc::clone(&plan)),
                    fetch_parallelism: 2,
                    ..IndexOptions::default()
                },
            )
            .unwrap(),
        );

        let pre = answers(&index, &cfg);
        let seen = observe_during(&index, &cfg, 3, || {
            index.append(&rest).unwrap();
        });
        let post = answers(&index, &cfg);

        assert!(
            !matches(&post, &pre),
            "seed {seed}: sharded append changed nothing — harness is vacuous"
        );
        assert!(!seen.is_empty(), "seed {seed}: readers never ran");
        for (i, obs) in seen.iter().enumerate() {
            assert!(
                obs_ok(obs, &pre, &post),
                "seed {seed}: sharded observation {i} is a torn cross-shard read:\n  got  {obs:?}\n  pre  {pre:?}\n  post {post:?}"
            );
        }
    }
}

