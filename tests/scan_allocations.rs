//! The row-wise fallback hot loop must not allocate per row.
//!
//! `RcReader::next_row_into` refills one caller-owned scratch `Row` from
//! the decoded batch, so draining a numeric table allocates per *group*
//! (typed column vectors, payload buffers), not per row. The boxing path
//! `next_row` allocates at least one `Vec` per row. A counting global
//! allocator measures both; this file holds a single test so no parallel
//! test pollutes the counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dgfindex::format::{RcReader, RcWriter, RecordReader};
use dgfindex::prelude::*;
use dgfindex::storage::FileSplit;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn row_wise_drain_allocates_per_group_not_per_row() {
    const N: i64 = 20_000;
    const ROWS_PER_GROUP: usize = 1_000;

    let tmp = TempDir::new("scanalloc").unwrap();
    let hdfs = SimHdfs::new(
        tmp.path(),
        HdfsConfig {
            block_size: 1 << 20,
            replication: 1,
        },
    )
    .unwrap();
    // Numeric-only schema: scratch-row refills never touch the heap.
    let schema = Arc::new(Schema::from_pairs(&[
        ("id", ValueType::Int),
        ("v", ValueType::Float),
    ]));
    let mut w = RcWriter::create(&hdfs, "/t/f", schema.clone(), ROWS_PER_GROUP).unwrap();
    for i in 0..N {
        w.write_row(&vec![Value::Int(i), Value::Float(i as f64 * 0.5)])
            .unwrap();
    }
    w.close().unwrap();
    let split = FileSplit::new("/t/f", 0, hdfs.file_len("/t/f").unwrap());

    // Scratch-row path: the satellite claim under test.
    let mut reader = RcReader::open(&hdfs, schema.clone(), &split).unwrap();
    let mut scratch = Row::new();
    let mut n = 0i64;
    let mut sum = 0i64;
    let before = allocs();
    while reader.next_row_into(&mut scratch).unwrap() {
        n += 1;
        sum += scratch[0].as_i64().unwrap();
    }
    let scratch_allocs = allocs() - before;
    assert_eq!(n, N);
    assert_eq!(sum, N * (N - 1) / 2);

    // Boxing path: one fresh Row per record, at least.
    let mut reader = RcReader::open(&hdfs, schema.clone(), &split).unwrap();
    let mut n = 0i64;
    let before = allocs();
    while let Some(row) = reader.next_row().unwrap() {
        n += 1;
        std::hint::black_box(&row);
    }
    let boxing_allocs = allocs() - before;
    assert_eq!(n, N);

    // Per-group overhead only: decode buffers scale with groups (20), not
    // rows (20k). The bound is generous — the claim is the *order*.
    assert!(
        scratch_allocs < (N / 10) as u64,
        "scratch drain allocated {scratch_allocs} times for {N} rows"
    );
    assert!(
        boxing_allocs >= N as u64,
        "boxing drain allocated only {boxing_allocs} times for {N} rows"
    );
    assert!(
        scratch_allocs * 10 < boxing_allocs,
        "scratch path ({scratch_allocs}) not clearly below boxing path ({boxing_allocs})"
    );
}
