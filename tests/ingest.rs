//! Streaming ingestion: freshness, crash recovery, and build equivalence.
//!
//! Three pillars:
//!
//! * **Freshness** — a query issued immediately after an acknowledged
//!   streaming write returns that row, with zero header-cache generation
//!   bumps between flushes.
//! * **Chaos matrix** — crash at every instrumented site (WAL append,
//!   WAL sync, flush staging, flush commit, plus every append/reorg/
//!   apply site the flush passes through) × transient-noise seeds; after
//!   reopening, the recovered answer equals the batch-built oracle over
//!   the acknowledged batches (an unacknowledged in-flight batch may
//!   land either way — atomically — and nothing else may differ).
//! * **Equivalence** — property test: streamed-then-flushed ingestion
//!   answers queries identically to a one-shot batch `build` over the
//!   same rows.

use std::sync::Arc;

use dgfindex::common::DgfError;
use dgfindex::core::txn::{STAGE_PREFIX, TXN_MANIFEST_KEY};
use dgfindex::format::{is_sidecar_path, sidecar_path};
use dgfindex::ingest::IngestConfig;
use dgfindex::prelude::*;
use dgfindex::workload::{generate_meter_data, meter_schema, stream_meter_data, MeterConfig};
use proptest::prelude::*;

const INDEX: &str = "dgf_stream";

fn retry() -> RetryPolicy {
    RetryPolicy::fast(40)
}

fn aggs() -> Vec<AggFunc> {
    vec![AggFunc::Sum("power_consumed".into()), AggFunc::Count]
}

fn meter_cfg() -> MeterConfig {
    MeterConfig {
        users: 8,
        days: 4,
        ..MeterConfig::default()
    }
}

fn grid(cfg: &MeterConfig) -> SplittingPolicy {
    SplittingPolicy::new(vec![
        DimPolicy::int("user_id", 0, 4),
        DimPolicy::date("ts", cfg.start_day, 1),
    ])
    .unwrap()
}

fn queries(cfg: &MeterConfig) -> Vec<Query> {
    vec![
        Query::Aggregate {
            aggs: vec![AggFunc::Count],
            predicate: Predicate::all(),
        },
        Query::Aggregate {
            aggs: aggs(),
            predicate: Predicate::all()
                .and(
                    "user_id",
                    ColumnRange::half_open(Value::Int(1), Value::Int(7)),
                )
                .and(
                    "ts",
                    ColumnRange::half_open(
                        Value::Date(cfg.start_day + 1),
                        Value::Date(cfg.start_day + 3),
                    ),
                ),
        },
    ]
}

struct World {
    tmp: TempDir,
    ctx: Arc<HiveContext>,
    base: TableRef,
    inner: Arc<dyn KvStore>,
}

fn world(tag: &str) -> World {
    let tmp = TempDir::new(&format!("stream-{tag}")).unwrap();
    let hdfs = SimHdfs::open(tmp.path()).unwrap();
    let ctx = HiveContext::new(hdfs, MrEngine::new(1));
    let base = ctx
        .create_table("meter", meter_schema(), FileFormat::Text)
        .unwrap();
    World {
        tmp,
        ctx,
        base,
        inner: Arc::new(MemKvStore::new()),
    }
}

/// Build the index fault-free over the first two days of data. The
/// streaming phase then runs under whatever fault plan the test chooses.
fn seed_index(w: &World) -> (Vec<Row>, Vec<Row>) {
    let cfg = meter_cfg();
    let rows = generate_meter_data(&cfg);
    let per_day = rows.len() / cfg.days as usize;
    let (seeded, streamed) = rows.split_at(2 * per_day);
    w.ctx.load_rows(&w.base, seeded, 2).unwrap();
    let (_, _) = DgfIndex::build(
        Arc::clone(&w.ctx),
        Arc::clone(&w.base),
        grid(&cfg),
        aggs(),
        Arc::clone(&w.inner),
        INDEX,
    )
    .unwrap();
    (seeded.to_vec(), streamed.to_vec())
}

fn deterministic_config(fault: Option<Arc<FaultPlan>>) -> IngestConfig {
    IngestConfig {
        // Inline flush roughly every other batch; no background thread so
        // crash-point ordinals are a pure function of the batch sequence.
        flush_rows: 12,
        auto_flush_interval: None,
        fault,
        ..IngestConfig::default()
    }
}

fn wal_path(w: &World) -> std::path::PathBuf {
    w.tmp.path().join("ingest.wal")
}

/// Expected scalar answers computed directly from a row set.
fn oracle(cfg: &MeterConfig, rows: &[Row]) -> Vec<Vec<f64>> {
    let mut count_all = 0f64;
    let (mut sum_r, mut count_r) = (0f64, 0f64);
    for row in rows {
        count_all += 1.0;
        let user = row[0].as_i64().unwrap();
        let ts = row[2].as_i64().unwrap();
        if (1..7).contains(&user) && (cfg.start_day + 1..cfg.start_day + 3).contains(&ts) {
            sum_r += row[3].as_f64().unwrap();
            count_r += 1.0;
        }
    }
    vec![vec![count_all], vec![sum_r, count_r]]
}

fn run_queries(engine: &DgfEngine, cfg: &MeterConfig) -> Vec<Vec<f64>> {
    queries(cfg)
        .iter()
        .map(|q| {
            engine
                .run(q)
                .unwrap()
                .result
                .into_scalars()
                .iter()
                .map(|v| v.as_f64().unwrap())
                .collect()
        })
        .collect()
}

fn close_to(a: &[Vec<f64>], b: &[Vec<f64>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.len() == y.len() && x.iter().zip(y).all(|(p, q)| (p - q).abs() < 1e-6)
        })
}

/// Acknowledged writes are immediately query-visible, and no flush means
/// no header-cache generation bump — the acceptance criterion verbatim.
#[test]
fn acked_writes_visible_with_zero_generation_bumps() {
    let w = world("fresh");
    let cfg = meter_cfg();
    let (seeded, streamed) = seed_index(&w);
    let index = Arc::new(
        DgfIndex::open(
            Arc::clone(&w.ctx),
            Arc::clone(&w.base),
            Arc::clone(&w.inner),
            INDEX,
            aggs(),
        )
        .unwrap(),
    );
    let ingestor = dgfindex::ingest::StreamIngestor::open(
        Arc::clone(&index),
        wal_path(&w),
        IngestConfig {
            flush_rows: u64::MAX,
            auto_flush_interval: None,
            ..IngestConfig::default()
        },
    )
    .unwrap();
    let engine = DgfEngine::new(Arc::clone(&index));

    let gen_before = index.generation();
    let mut present = seeded.clone();
    for batch in streamed.chunks(5) {
        ingestor.ingest(batch).unwrap();
        present.extend(batch.iter().cloned());
        // Immediately after the ack, every query sees the batch.
        assert!(
            close_to(&run_queries(&engine, &cfg), &oracle(&cfg, &present)),
            "acknowledged batch not visible to the very next query"
        );
    }
    assert_eq!(
        index.generation(),
        gen_before,
        "freshness merge must not bump the header-cache generation"
    );
    assert_eq!(ingestor.stats().flushes, 0);

    // The flush changes where the rows live, not what queries see.
    ingestor.flush().unwrap();
    assert!(index.generation() > gen_before);
    assert!(close_to(&run_queries(&engine, &cfg), &oracle(&cfg, &present)));
    // And now the persisted index alone (scan vs dgf) agrees too.
    let scan = ScanEngine::new(Arc::clone(&w.ctx), Arc::clone(&w.base));
    for q in &queries(&cfg) {
        let truth = scan.run(q).unwrap().result;
        let got = engine.run(q).unwrap().result;
        assert!(got.approx_eq(&truth, 1e-9));
    }
}

/// Acknowledged-but-unflushed rows survive a process exit: WAL replay at
/// reopen restores them, and they are query-visible again before any
/// flush happens.
#[test]
fn wal_replay_restores_unflushed_rows_across_reopen() {
    let w = world("replay");
    let cfg = meter_cfg();
    let (seeded, streamed) = seed_index(&w);
    let mut present = seeded.clone();
    {
        let index = Arc::new(
            DgfIndex::open(
                Arc::clone(&w.ctx),
                Arc::clone(&w.base),
                Arc::clone(&w.inner),
                INDEX,
                aggs(),
            )
            .unwrap(),
        );
        let ingestor = dgfindex::ingest::StreamIngestor::open(
            Arc::clone(&index),
            wal_path(&w),
            IngestConfig {
                flush_rows: u64::MAX,
                auto_flush_interval: None,
                ..IngestConfig::default()
            },
        )
        .unwrap();
        for batch in streamed.chunks(7).take(3) {
            ingestor.ingest(batch).unwrap();
            present.extend(batch.iter().cloned());
        }
        // Dropped without flush: rows exist only in the WAL now.
    }
    let ingested = (present.len() - seeded.len()) as u64;
    let batches = streamed.chunks(7).take(3).count() as u64;
    let index = Arc::new(
        DgfIndex::open(
            Arc::clone(&w.ctx),
            Arc::clone(&w.base),
            Arc::clone(&w.inner),
            INDEX,
            aggs(),
        )
        .unwrap(),
    );
    let ingestor =
        dgfindex::ingest::StreamIngestor::open(Arc::clone(&index), wal_path(&w), deterministic_config(None))
            .unwrap();
    let replayed = ingestor.stats();
    assert!(ingested > 0);
    assert_eq!(replayed.replayed_batches, batches);
    assert_eq!(replayed.replayed_rows, ingested);
    let engine = DgfEngine::new(Arc::clone(&index));
    assert!(
        close_to(&run_queries(&engine, &cfg), &oracle(&cfg, &present)),
        "replayed rows must be query-visible before any flush"
    );
}

/// Concurrent ingesters racing inline flushes: every acknowledged batch
/// survives a reopen. This is the regression test for the seq/watermark
/// race — without the batch gate, a flush could snapshot the memtable
/// while a lower, already-WAL-appended sequence was still on its way in,
/// commit a watermark covering it, and recovery would then drop the
/// acknowledged batch from both the WAL and the memtable.
#[test]
fn concurrent_ingest_with_racing_flushes_loses_no_acked_batch() {
    let w = world("race");
    let cfg = meter_cfg();
    let (seeded, streamed) = seed_index(&w);
    let index = Arc::new(
        DgfIndex::open(
            Arc::clone(&w.ctx),
            Arc::clone(&w.base),
            Arc::clone(&w.inner),
            INDEX,
            aggs(),
        )
        .unwrap(),
    );
    let ingestor = Arc::new(
        dgfindex::ingest::StreamIngestor::open(
            Arc::clone(&index),
            wal_path(&w),
            IngestConfig {
                // Tiny threshold: inline flushes constantly race the
                // other ingest threads.
                flush_rows: 8,
                auto_flush_interval: None,
                ..IngestConfig::default()
            },
        )
        .unwrap(),
    );
    let threads = 4;
    std::thread::scope(|s| {
        for t in 0..threads {
            let ingestor = Arc::clone(&ingestor);
            let batches: Vec<&[Row]> = streamed.chunks(3).skip(t).step_by(threads).collect();
            s.spawn(move || {
                for b in batches {
                    ingestor.ingest(b).unwrap();
                }
            });
        }
    });
    // Drop without a final flush: whatever is still buffered must come
    // back from the WAL alone.
    drop(ingestor);

    let index = Arc::new(
        DgfIndex::open(
            Arc::clone(&w.ctx),
            Arc::clone(&w.base),
            Arc::clone(&w.inner),
            INDEX,
            aggs(),
        )
        .unwrap(),
    );
    let _ingestor = dgfindex::ingest::StreamIngestor::open(
        Arc::clone(&index),
        wal_path(&w),
        deterministic_config(None),
    )
    .unwrap();
    let engine = DgfEngine::new(Arc::clone(&index));
    let mut present = seeded;
    present.extend(streamed.iter().cloned());
    assert!(
        close_to(&run_queries(&engine, &cfg), &oracle(&cfg, &present)),
        "an acknowledged batch went missing across concurrent flushes"
    );
}

/// Admission control: a buffer past the byte bound rejects with
/// `Backpressure` (counted, no side effects); a flush reopens admission.
#[test]
fn backpressure_rejects_then_flush_reopens_admission() {
    let w = world("backpressure");
    let (_, streamed) = seed_index(&w);
    let index = Arc::new(
        DgfIndex::open(
            Arc::clone(&w.ctx),
            Arc::clone(&w.base),
            Arc::clone(&w.inner),
            INDEX,
            aggs(),
        )
        .unwrap(),
    );
    let ingestor = dgfindex::ingest::StreamIngestor::open(
        Arc::clone(&index),
        wal_path(&w),
        IngestConfig {
            max_buffered_bytes: 600,
            flush_rows: u64::MAX,
            auto_flush_interval: None,
            ..IngestConfig::default()
        },
    )
    .unwrap();
    let mut acked = 0u64;
    let mut rejected = false;
    for batch in streamed.chunks(4) {
        match ingestor.ingest(batch) {
            Ok(_) => acked += batch.len() as u64,
            Err(DgfError::Backpressure(_)) => {
                rejected = true;
                break;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(rejected, "tiny buffer bound never rejected");
    assert!(acked > 0, "first batches should have been admitted");
    assert_eq!(ingestor.stats().rejections, 1);
    assert_eq!(ingestor.stats().rows, acked);

    // Flushing drains the buffer; the same batch is admitted now.
    ingestor.flush().unwrap();
    ingestor.ingest(&streamed[..4]).unwrap();
}

/// Outcome of one faulted streaming run.
struct DriveOutcome {
    /// Rows of every acknowledged batch, in ack order.
    acked: Vec<Row>,
    /// The batch in flight when the crash fired (if any): atomic — the
    /// recovered index may contain all of it or none of it.
    inflight: Vec<Row>,
    err: Option<DgfError>,
}

/// Stream two days of data in small batches under `plan`; inline flushes
/// (every other batch) route through the full staged-commit append path,
/// so the crash-site space covers WAL, memtable swap, reorganize, and
/// apply.
fn drive_streaming(w: &World, plan: &Arc<FaultPlan>) -> DriveOutcome {
    let (_, streamed) = seed_index(w);
    w.ctx.hdfs.enable_faults(Arc::clone(plan), retry());
    let kv: Arc<dyn KvStore> = Arc::new(ChaosKv::new(Arc::clone(&w.inner), Arc::clone(plan)));
    let index = Arc::new(
        DgfIndex::open_with_options(
            Arc::clone(&w.ctx),
            Arc::clone(&w.base),
            kv,
            INDEX,
            aggs(),
            IndexOptions {
                retry: retry(),
                fault: Some(Arc::clone(plan)),
                ..IndexOptions::default()
            },
        )
        .unwrap(),
    );
    let mut out = DriveOutcome {
        acked: Vec::new(),
        inflight: Vec::new(),
        err: None,
    };
    let ingestor = match dgfindex::ingest::StreamIngestor::open(
        Arc::clone(&index),
        wal_path(w),
        deterministic_config(Some(Arc::clone(plan))),
    ) {
        Ok(i) => i,
        Err(e) => {
            out.err = Some(e);
            return out;
        }
    };
    for batch in streamed.chunks(5) {
        match ingestor.ingest(batch) {
            Ok(_) => out.acked.extend(batch.iter().cloned()),
            Err(e) => {
                out.inflight = batch.to_vec();
                out.err = Some(e);
                return out;
            }
        }
    }
    if let Err(e) = ingestor.flush() {
        out.err = Some(e);
    }
    out
}

/// Reopen everything fault-free and assert the recovery invariants: the
/// answer equals the oracle over seeded + acknowledged rows (possibly
/// plus the atomic in-flight batch), before AND after a full flush, and
/// no transaction residue leaks.
fn verify_recovered(w: &World, out: &DriveOutcome, label: &str) {
    w.ctx.hdfs.disable_faults();
    let cfg = meter_cfg();
    let index = Arc::new(
        DgfIndex::open(
            Arc::clone(&w.ctx),
            Arc::clone(&w.base),
            Arc::clone(&w.inner),
            INDEX,
            aggs(),
        )
        .unwrap(),
    );
    let ingestor = dgfindex::ingest::StreamIngestor::open(
        Arc::clone(&index),
        wal_path(w),
        deterministic_config(None),
    )
    .unwrap();
    let engine = DgfEngine::new(Arc::clone(&index));

    let seeded_rows = generate_meter_data(&cfg);
    let per_day = seeded_rows.len() / cfg.days as usize;
    let mut with_acked: Vec<Row> = seeded_rows[..2 * per_day].to_vec();
    with_acked.extend(out.acked.iter().cloned());
    let mut with_inflight = with_acked.clone();
    with_inflight.extend(out.inflight.iter().cloned());

    let got = run_queries(&engine, &cfg);
    let ok_acked = close_to(&got, &oracle(&cfg, &with_acked));
    let ok_inflight = close_to(&got, &oracle(&cfg, &with_inflight));
    assert!(
        ok_acked || ok_inflight,
        "{label}: recovered answer {got:?} matches neither acked-only \
         {:?} nor acked+inflight {:?}",
        oracle(&cfg, &with_acked),
        oracle(&cfg, &with_inflight),
    );

    // Flushing the replayed remainder must not change any answer.
    ingestor.flush().unwrap();
    let after = run_queries(&engine, &cfg);
    assert!(
        close_to(&got, &after),
        "{label}: flush changed the recovered answer: {got:?} vs {after:?}"
    );
    // And the persisted state now agrees with a ground-truth scan.
    let scan = ScanEngine::new(Arc::clone(&w.ctx), Arc::clone(&w.base));
    for q in &queries(&cfg) {
        let truth = scan.run(q).unwrap().result;
        let got = engine.run(q).unwrap().result;
        assert!(
            got.approx_eq(&truth, 1e-9),
            "{label}: post-flush index disagrees with scan"
        );
    }
    // No residue from any interrupted transaction.
    assert!(
        w.inner.scan_prefix(STAGE_PREFIX).unwrap().is_empty(),
        "{label}: staged keys leaked"
    );
    assert!(
        w.inner.get(TXN_MANIFEST_KEY).unwrap().is_none(),
        "{label}: transaction manifest leaked"
    );
}

/// Count crash sites with a quiet plan, checking the run itself.
fn record_sites(tag: &str) -> u64 {
    let quiet = Arc::new(FaultPlan::new(FaultConfig::quiet(0)));
    let w = world(tag);
    let out = drive_streaming(&w, &quiet);
    assert!(out.err.is_none(), "quiet run failed: {:?}", out.err);
    verify_recovered(&w, &out, "record");
    let sites = quiet.points_hit();
    assert!(
        sites >= 12,
        "expected WAL + flush + append sites, got {sites}"
    );
    sites
}

/// Crash at every instrumented site once; the recovered index must match
/// the batch-built oracle from each of them.
#[test]
fn ingest_crash_matrix_every_site_recovers() {
    let sites = record_sites("record");
    for site in 0..sites {
        let w = world(&format!("site{site}"));
        let plan = Arc::new(FaultPlan::new(FaultConfig::crash_at(site, site)));
        let out = drive_streaming(&w, &plan);
        assert!(
            plan.crashed(),
            "site {site}: scheduled crash did not fire ({:?})",
            out.err
        );
        verify_recovered(&w, &out, &format!("site {site}"));
    }
}

/// The same matrix under 20% transient-fault noise, four seeds. Retries
/// absorb the noise; the crash still lands on the intended site.
#[test]
fn ingest_crash_matrix_with_transient_noise_recovers() {
    let sites = record_sites("record-noise");
    for seed in 1..=4u64 {
        for site in 0..sites {
            let w = world(&format!("s{seed}x{site}"));
            let plan = Arc::new(FaultPlan::new(FaultConfig {
                p_transient: 0.2,
                ..FaultConfig::crash_at(seed, site)
            }));
            let out = drive_streaming(&w, &plan);
            assert!(
                plan.crashed(),
                "seed {seed} site {site}: crash did not fire ({:?})",
                out.err
            );
            verify_recovered(&w, &out, &format!("seed {seed} site {site}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Streamed-then-flushed ingestion is query-equivalent to one-shot
    /// batch construction over the same rows.
    #[test]
    fn streamed_ingest_equals_one_shot_build(
        users in 4u64..10,
        days in 2u64..5,
        batch in 3usize..17,
        flush_rows in 5u64..40,
    ) {
        let cfg = MeterConfig { users, days, ..MeterConfig::default() };
        let per_day = (cfg.row_count() / cfg.days) as usize;

        // Path A: one-shot build over the full table.
        let wa = world("prop-a");
        let all: Vec<Row> = stream_meter_data(&cfg, usize::MAX).flatten().collect();
        wa.ctx.load_rows(&wa.base, &all, 2).unwrap();
        let (index_a, _) = DgfIndex::build(
            Arc::clone(&wa.ctx),
            Arc::clone(&wa.base),
            grid(&cfg),
            aggs(),
            Arc::clone(&wa.inner),
            INDEX,
        )
        .unwrap();
        let engine_a = DgfEngine::new(Arc::new(index_a));

        // Path B: build over day one, stream the rest, final flush.
        let wb = world("prop-b");
        wb.ctx.load_rows(&wb.base, &all[..per_day], 2).unwrap();
        let (index_b, _) = DgfIndex::build(
            Arc::clone(&wb.ctx),
            Arc::clone(&wb.base),
            grid(&cfg),
            aggs(),
            Arc::clone(&wb.inner),
            INDEX,
        )
        .unwrap();
        let index_b = Arc::new(index_b);
        let ingestor = dgfindex::ingest::StreamIngestor::open(
            Arc::clone(&index_b),
            wb.tmp.path().join("ingest.wal"),
            IngestConfig {
                flush_rows,
                auto_flush_interval: None,
                ..IngestConfig::default()
            },
        )
        .unwrap();
        for b in all[per_day..].chunks(batch) {
            ingestor.ingest(b).unwrap();
        }
        ingestor.close().unwrap();
        let engine_b = DgfEngine::new(Arc::clone(&index_b));

        for q in &queries(&cfg) {
            let a = engine_a.run(q).unwrap().result;
            let b = engine_b.run(q).unwrap().result;
            prop_assert!(
                a.approx_eq(&b, 1e-9),
                "streamed vs one-shot diverged: {a:?} vs {b:?}"
            );
        }
    }
}

/// Satellite (maintenance PR): a streaming flush on an RcFile-backed
/// index writes a `.scx` sidecar beside every slice file it lands —
/// the sidecar rides the flush's staged-commit renames exactly like a
/// build's — and queries over the flushed data actually consult them
/// (`scan.sidecar.*` counters move) while answering in the same float
/// bits as the sidecar-free scan. Before the fix, flushed deltas were
/// the one write path without sidecars, so a long-streamed index
/// silently lost sub-slice pruning on exactly its newest (hottest)
/// data.
#[test]
fn flush_emits_consultable_sidecars_on_rcfile_indexes() {
    let cfg = meter_cfg();
    let rows = generate_meter_data(&cfg);
    let per_day = rows.len() / cfg.days as usize;
    let (seeded, streamed) = rows.split_at(2 * per_day);

    let tmp = TempDir::new("stream-scx").unwrap();
    let hdfs = SimHdfs::open(tmp.path()).unwrap();
    let ctx = HiveContext::new(hdfs, MrEngine::new(1));
    let created = ctx
        .create_table("meter_rc", meter_schema(), FileFormat::RcFile)
        .unwrap();
    // Small row groups so the flushed slices hold several groups each —
    // otherwise there is nothing sub-slice for a sidecar to skip.
    let mut desc = (*created).clone();
    desc.rows_per_group = 8;
    let base: TableRef = Arc::new(desc);
    ctx.load_rows(&base, seeded, 2).unwrap();
    let (index, _) = DgfIndex::build(
        Arc::clone(&ctx),
        Arc::clone(&base),
        grid(&cfg),
        aggs(),
        Arc::new(MemKvStore::new()),
        INDEX,
    )
    .unwrap();
    let index = Arc::new(index);

    let before: std::collections::HashSet<String> = ctx
        .hdfs
        .list_files(&index.data.location)
        .into_iter()
        .map(|(p, _)| p)
        .collect();

    let ingestor = dgfindex::ingest::StreamIngestor::open(
        Arc::clone(&index),
        tmp.path().join("ingest.wal"),
        IngestConfig {
            flush_rows: u64::MAX,
            auto_flush_interval: None,
            ..IngestConfig::default()
        },
    )
    .unwrap();
    ingestor.ingest(streamed).unwrap();
    ingestor.flush().unwrap();

    // Every slice file the flush landed has its sidecar twin.
    let flushed: Vec<String> = ctx
        .hdfs
        .list_files(&index.data.location)
        .into_iter()
        .map(|(p, _)| p)
        .filter(|p| !before.contains(p) && !is_sidecar_path(p))
        .collect();
    assert!(!flushed.is_empty(), "flush landed no slice files");
    for f in &flushed {
        assert!(
            ctx.hdfs.file_exists(&sidecar_path(f)),
            "flushed slice {f} has no .scx sidecar"
        );
    }

    // The misaligned range covers a flushed day, so its boundary scan
    // reads flushed slices: pruning must consult their sidecars and the
    // answer must not move a single float bit.
    let q = &queries(&cfg)[1];
    ctx.set_scan_options(ScanOptions {
        columnar: true,
        prefetch: true,
        sidecar: false,
    });
    let off = DgfEngine::new(Arc::clone(&index)).run(q).unwrap();
    assert_eq!(
        off.stats.scan.sidecar_hits + off.stats.scan.sidecar_misses,
        0,
        "pruning disabled but sidecars were consulted"
    );
    ctx.set_scan_options(ScanOptions {
        columnar: true,
        prefetch: true,
        sidecar: true,
    });
    let on = DgfEngine::new(Arc::clone(&index)).run(q).unwrap();
    assert!(
        on.stats.scan.sidecar_hits > 0,
        "query over flushed data never consulted a sidecar: {:?}",
        on.stats.scan
    );
    let (a, b) = (off.result.into_scalars(), on.result.into_scalars());
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        let same = match (x, y) {
            (Value::Float(p), Value::Float(q)) => p.to_bits() == q.to_bits(),
            _ => x == y,
        };
        assert!(same, "sidecar pruning moved float bits: {a:?} vs {b:?}");
    }
}
