//! Pyramid-equivalence harness: the aggregate pyramid must be
//! *indistinguishable by answers* from flat inner-cell enumeration.
//!
//! The pyramid (DESIGN.md §14) replaces per-cell inner header reads with
//! O(surface × levels) pre-computed `p:` node reads. Because every
//! strategy folds the inner region through the same canonical merge tree
//! ([`dgfindex::core::pyramid`]), decomposed answers are claimed to be
//! **bit**-identical — `f64::to_bits`, not approx-equal — to both flat
//! strategies, and this file holds that claim under:
//!
//! * fixed and proptest-random grids, null patterns in the aggregated
//!   measure, staged-commit appends, and unflushed ingest overlays
//!   (fresh memtable cells sit outside the persisted tree and merge
//!   after the canonical fold, identically in every strategy);
//! * shard counts {1, 2, 4} — `p:` keys route to the metadata shard, so
//!   the scatter path must serve them like any other plan;
//! * a crash-site sweep over the whole append protocol, including the
//!   pyramid staging sites and mid-publish of the staged nodes:
//!   recovery via the staged-commit manifest must leave cells and
//!   ancestors consistent (pyramid answers still bit-equal flat ones).

use std::sync::Arc;

use dgfindex::core::txn::{STAGE_PREFIX, TXN_MANIFEST_KEY};
use dgfindex::ingest::IngestConfig;
use dgfindex::prelude::*;
use dgfindex::workload::{generate_meter_data, meter_schema, MeterConfig};
use proptest::prelude::*;

const INDEX: &str = "dgf_pyr";

fn retry() -> RetryPolicy {
    RetryPolicy::fast(40)
}

fn aggs() -> Vec<AggFunc> {
    vec![AggFunc::Sum("power_consumed".into()), AggFunc::Count]
}

/// A finer grid than the serving tests use (cell width 1 on both
/// dimensions): wide queries then cover enough inner cells for the
/// decomposition to emit level ≥ 1 nodes, so pyramid reads actually
/// engage instead of degenerating to leaf lookups.
fn fine_grid(cfg: &MeterConfig) -> SplittingPolicy {
    SplittingPolicy::new(vec![
        DimPolicy::int("user_id", 0, 1),
        DimPolicy::date("ts", cfg.start_day, 1),
    ])
    .unwrap()
}

/// The query mix: a full COUNT, a wide range aggregate whose inner
/// region dwarfs its boundary, a misaligned narrow range, and a GROUP
/// BY (headers unusable — exercises the wholesale fallback).
fn queries(cfg: &MeterConfig) -> Vec<Query> {
    let wide = Predicate::all()
        .and(
            "user_id",
            ColumnRange::half_open(Value::Int(1), Value::Int(cfg.users as i64 - 1)),
        )
        .and(
            "ts",
            ColumnRange::half_open(
                Value::Date(cfg.start_day),
                Value::Date(cfg.start_day + cfg.days as i64 - 1),
            ),
        );
    let narrow = Predicate::all()
        .and(
            "user_id",
            ColumnRange::half_open(Value::Int(1), Value::Int(3)),
        )
        .and(
            "ts",
            ColumnRange::half_open(
                Value::Date(cfg.start_day + 1),
                Value::Date(cfg.start_day + 2),
            ),
        );
    vec![
        Query::Aggregate {
            aggs: vec![AggFunc::Count],
            predicate: Predicate::all(),
        },
        Query::Aggregate {
            aggs: aggs(),
            predicate: wide.clone(),
        },
        Query::Aggregate {
            aggs: aggs(),
            predicate: narrow,
        },
        Query::GroupBy {
            key: "user_id".into(),
            aggs: aggs(),
            predicate: wide,
        },
    ]
}

struct World {
    tmp: TempDir,
    ctx: Arc<HiveContext>,
    base: TableRef,
}

fn world(tag: &str) -> World {
    let tmp = TempDir::new(&format!("pyr-{tag}")).unwrap();
    let hdfs = SimHdfs::open(tmp.path()).unwrap();
    let ctx = HiveContext::new(hdfs, MrEngine::new(1));
    let base = ctx
        .create_table("meter", meter_schema(), FileFormat::Text)
        .unwrap();
    World { tmp, ctx, base }
}

fn build_over(
    w: &World,
    kv: Arc<dyn KvStore>,
    seeded: &[Row],
    policy: SplittingPolicy,
) -> Arc<DgfIndex> {
    w.ctx.load_rows(&w.base, seeded, 2).unwrap();
    let (index, _) = DgfIndex::build(
        Arc::clone(&w.ctx),
        Arc::clone(&w.base),
        policy,
        aggs(),
        kv,
        INDEX,
    )
    .unwrap();
    Arc::new(index)
}

fn open_reader(w: &World, kv: Arc<dyn KvStore>, parallelism: usize) -> Arc<DgfIndex> {
    Arc::new(
        DgfIndex::open_with_options(
            Arc::clone(&w.ctx),
            Arc::clone(&w.base),
            kv,
            INDEX,
            aggs(),
            IndexOptions {
                retry: retry(),
                fetch_parallelism: parallelism,
                ..IndexOptions::default()
            },
        )
        .unwrap(),
    )
}

/// One observation of the whole query mix under a fetch strategy.
fn answers_with(
    index: &Arc<DgfIndex>,
    cfg: &MeterConfig,
    strategy: PlanStrategy,
) -> Vec<QueryResult> {
    let engine = DgfEngine::new(Arc::clone(index)).with_strategy(strategy);
    queries(cfg)
        .iter()
        .map(|q| engine.run(q).unwrap().result)
        .collect()
}

/// Exact-bits equality: `Float`s must agree in raw bit pattern. The
/// canonical merge tree claims *bit* identity; a tolerance would hide
/// exactly the fold-order bugs this file exists to catch.
fn bits_eq(a: &[QueryResult], b: &[QueryResult]) -> bool {
    fn val(a: &Value, b: &Value) -> bool {
        match (a, b) {
            (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
            _ => a == b,
        }
    }
    fn one(a: &QueryResult, b: &QueryResult) -> bool {
        match (a, b) {
            (QueryResult::Scalars(x), QueryResult::Scalars(y)) => {
                x.len() == y.len() && x.iter().zip(y).all(|(p, q)| val(p, q))
            }
            (QueryResult::Groups(x), QueryResult::Groups(y)) => {
                x.len() == y.len()
                    && x.iter().zip(y).all(|((ka, va), (kb, vb))| {
                        val(ka, kb)
                            && va.len() == vb.len()
                            && va.iter().zip(vb).all(|(p, q)| val(p, q))
                    })
            }
            _ => a == b,
        }
    }
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| one(x, y))
}

/// Tentpole (fixed): on a 24×8-cell grid grown by a staged-commit
/// append, all three strategies answer bit-identically, the wide query
/// actually engages level ≥ 1 pyramid nodes, and the decomposition
/// reads strictly fewer headers than it summarizes cells.
#[test]
fn all_three_strategies_answer_bit_identically_and_pyramid_engages() {
    let cfg = MeterConfig {
        users: 24,
        days: 8,
        ..MeterConfig::default()
    };
    let rows = generate_meter_data(&cfg);
    let per_day = rows.len() / cfg.days as usize;
    let (seeded, rest) = rows.split_at(4 * per_day);
    let w = world("fixed");
    let index = build_over(&w, Arc::new(MemKvStore::new()), seeded, fine_grid(&cfg));
    // The append dirties existing subtrees AND extends the extents, so
    // the staged pyramid delta (not just the build) is under test.
    index.append(rest).unwrap();
    assert!(index.pyramid_levels().is_some(), "build skipped the pyramid");

    let flat = answers_with(&index, &cfg, PlanStrategy::PrefixScan);
    let point = answers_with(&index, &cfg, PlanStrategy::PointGets);
    let pyramid = answers_with(&index, &cfg, PlanStrategy::Pyramid);
    assert!(
        bits_eq(&flat, &point),
        "PrefixScan vs PointGets differ in float bits:\n{flat:?}\nvs\n{point:?}"
    );
    assert!(
        bits_eq(&flat, &pyramid),
        "flat vs pyramid answers differ in float bits:\n{flat:?}\nvs\n{pyramid:?}"
    );

    // The wide aggregate must have decomposed into coarse nodes — an
    // all-leaf decomposition would make the bit-identity claim vacuous.
    let wide = &queries(&cfg)[1];
    let plan = index
        .plan_with_strategy(wide, true, PlanStrategy::Pyramid)
        .unwrap();
    assert!(plan.pyramid_nodes > 0, "wide query never read a pyramid node");
    assert!(
        plan.pyramid_cells > plan.pyramid_nodes,
        "pyramid nodes summarized no more cells than reads spent"
    );
    let flat_plan = index
        .plan_with_strategy(wide, true, PlanStrategy::PrefixScan)
        .unwrap();
    assert_eq!(
        plan.inner_records, flat_plan.inner_records,
        "pyramid plan accounts different inner records than flat"
    );
}

/// Satellite: a store built with the pyramid disabled stores no
/// `m:pyramid` meta and no `p:` keys; the Pyramid strategy then falls
/// back wholesale and still answers bit-identically to flat.
#[test]
fn pyramid_strategy_falls_back_cleanly_on_a_legacy_store() {
    let cfg = MeterConfig {
        users: 12,
        days: 4,
        ..MeterConfig::default()
    };
    let rows = generate_meter_data(&cfg);
    let w = world("legacy");
    let kv: Arc<dyn KvStore> = Arc::new(MemKvStore::new());
    w.ctx.load_rows(&w.base, &rows, 2).unwrap();
    let (index, _) = DgfIndex::build_with_options(
        Arc::clone(&w.ctx),
        Arc::clone(&w.base),
        fine_grid(&cfg),
        aggs(),
        Arc::clone(&kv),
        INDEX,
        IndexOptions {
            retry: retry(),
            pyramid: false,
            ..IndexOptions::default()
        },
    )
    .unwrap();
    let index = Arc::new(index);
    assert!(index.pyramid_levels().is_none());
    assert!(
        kv.scan_prefix(dgfindex::core::PYRAMID_PREFIX)
            .unwrap()
            .is_empty(),
        "pyramid-disabled build wrote p: keys"
    );

    let flat = answers_with(&index, &cfg, PlanStrategy::PrefixScan);
    let pyramid = answers_with(&index, &cfg, PlanStrategy::Pyramid);
    assert!(bits_eq(&flat, &pyramid));
    let plan = index
        .plan_with_strategy(&queries(&cfg)[1], true, PlanStrategy::Pyramid)
        .unwrap();
    assert_eq!(plan.pyramid_nodes, 0, "fallback plan claimed pyramid reads");
}

/// Drive one crashing append over chaos handles; the durable store
/// survives. Returns whether the plan's scheduled crash fired.
fn crash_append(w: &World, inner: &Arc<dyn KvStore>, rest: &[Row], plan: &Arc<FaultPlan>) -> bool {
    w.ctx.hdfs.enable_faults(Arc::clone(plan), retry());
    let kv: Arc<dyn KvStore> = Arc::new(ChaosKv::new(Arc::clone(inner), Arc::clone(plan)));
    let outcome = (|| -> dgfindex::common::Result<()> {
        let writer = DgfIndex::open_with_options(
            Arc::clone(&w.ctx),
            Arc::clone(&w.base),
            kv,
            INDEX,
            aggs(),
            IndexOptions {
                retry: retry(),
                fault: Some(Arc::clone(plan)),
                ..IndexOptions::default()
            },
        )?;
        writer.append(rest)?;
        Ok(())
    })();
    w.ctx.hdfs.disable_faults();
    if plan.crashed() {
        assert!(outcome.is_err(), "crash fired but the append succeeded");
    }
    plan.crashed()
}

/// Tentpole (chaos): crash an append at every instrumented protocol
/// site — which now includes the pyramid staging site and the apply
/// phase that publishes staged `p:` nodes — then recover via the
/// staged-commit manifest. After recovery: no staged residue, no
/// manifest, and the pyramid answers bit-equal the flat answers (a
/// half-published pyramid would break here: ancestors from one epoch
/// over cells from another).
#[test]
fn crash_anywhere_in_append_recovers_a_consistent_pyramid() {
    let cfg = MeterConfig {
        users: 12,
        days: 4,
        ..MeterConfig::default()
    };
    let rows = generate_meter_data(&cfg);
    let per_day = rows.len() / cfg.days as usize;
    let (seeded, rest) = rows.split_at(2 * per_day);

    // Record the crash-site space with a quiet plan.
    let sites = {
        let w = world("rec-record");
        let inner: Arc<dyn KvStore> = Arc::new(MemKvStore::new());
        build_over(&w, Arc::clone(&inner), seeded, fine_grid(&cfg));
        let quiet = Arc::new(FaultPlan::new(FaultConfig::quiet(0)));
        assert!(!crash_append(&w, &inner, rest, &quiet));
        let n = quiet.points_hit();
        assert!(n >= 8, "expected a rich crash-site space, got {n}");
        n
    };

    for site in 0..sites {
        let w = world(&format!("rec{site}"));
        let inner: Arc<dyn KvStore> = Arc::new(MemKvStore::new());
        build_over(&w, Arc::clone(&inner), seeded, fine_grid(&cfg));
        let crash = Arc::new(FaultPlan::new(FaultConfig::crash_at(site, site)));
        assert!(
            crash_append(&w, &inner, rest, &crash),
            "site {site}: scheduled crash did not fire"
        );
        DgfIndex::recover(&w.ctx.hdfs, &inner, retry()).unwrap();
        assert!(inner.scan_prefix(STAGE_PREFIX).unwrap().is_empty());
        assert!(inner.get(TXN_MANIFEST_KEY).unwrap().is_none());

        let index = open_reader(&w, Arc::clone(&inner), 1);
        let flat = answers_with(&index, &cfg, PlanStrategy::PrefixScan);
        let pyramid = answers_with(&index, &cfg, PlanStrategy::Pyramid);
        assert!(
            bits_eq(&flat, &pyramid),
            "site {site}: recovered pyramid disagrees with flat enumeration:\n{pyramid:?}\nvs\n{flat:?}"
        );
        // Ground truth over whatever base-table state survived.
        let scan = ScanEngine::new(Arc::clone(&w.ctx), Arc::clone(&w.base));
        let engine = DgfEngine::new(Arc::clone(&index)).with_strategy(PlanStrategy::Pyramid);
        for q in &queries(&cfg) {
            let truth = scan.run(q).unwrap().result;
            let got = engine.run(q).unwrap().result;
            assert!(
                got.approx_eq(&truth, 1e-9),
                "site {site}: recovered pyramid answers disagree with a scan"
            );
        }
    }
}

/// Tentpole (chaos, mid-publish): crash after the n-th KV *write*
/// instead of at a protocol site, sweeping the apply phase so the crash
/// lands between individual staged-key publishes — cells visible,
/// ancestors half-published, view not yet flipped. Recovery re-applies
/// from the Committed manifest and the pyramid must come out whole.
#[test]
fn crash_between_individual_publish_writes_recovers_a_consistent_pyramid() {
    let cfg = MeterConfig {
        users: 12,
        days: 4,
        ..MeterConfig::default()
    };
    let rows = generate_meter_data(&cfg);
    let per_day = rows.len() / cfg.days as usize;
    let (seeded, rest) = rows.split_at(2 * per_day);

    // Count the append's total KV writes with a quiet recording plan.
    let writes = {
        let w = world("wr-record");
        let inner: Arc<dyn KvStore> = Arc::new(MemKvStore::new());
        build_over(&w, Arc::clone(&inner), seeded, fine_grid(&cfg));
        let before = inner.stats().puts.load(std::sync::atomic::Ordering::Relaxed);
        let quiet = Arc::new(FaultPlan::new(FaultConfig::quiet(0)));
        assert!(!crash_append(&w, &inner, rest, &quiet));
        inner.stats().puts.load(std::sync::atomic::Ordering::Relaxed) - before
    };
    assert!(writes >= 16, "append issued too few writes to sweep: {writes}");

    // Sweep the back half of the write sequence — the publish tail
    // (staged keys land first; apply re-puts them under live keys).
    let picks = [writes / 2, 2 * writes / 3, 3 * writes / 4, writes - 2];
    for &n in &picks {
        let w = world(&format!("wr{n}"));
        let inner: Arc<dyn KvStore> = Arc::new(MemKvStore::new());
        build_over(&w, Arc::clone(&inner), seeded, fine_grid(&cfg));
        let crash = Arc::new(FaultPlan::new(FaultConfig::crash_after_writes(n, n)));
        if !crash_append(&w, &inner, rest, &crash) {
            continue; // timing shifted the write count; other picks cover it
        }
        DgfIndex::recover(&w.ctx.hdfs, &inner, retry()).unwrap();
        assert!(inner.scan_prefix(STAGE_PREFIX).unwrap().is_empty());
        assert!(inner.get(TXN_MANIFEST_KEY).unwrap().is_none());

        let index = open_reader(&w, Arc::clone(&inner), 1);
        let flat = answers_with(&index, &cfg, PlanStrategy::PrefixScan);
        let pyramid = answers_with(&index, &cfg, PlanStrategy::Pyramid);
        assert!(
            bits_eq(&flat, &pyramid),
            "write {n}: recovered pyramid disagrees with flat enumeration"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Tentpole (randomized): proptest-chosen grid spans, null patterns,
    /// a staged-commit append, an *unflushed* ingest overlay, and shard
    /// counts {1, 2, 4}. The Pyramid strategy on the sharded store must
    /// answer bit-identically to flat enumeration on a single node —
    /// fresh overlay cells included, since they merge after the
    /// canonical fold in every strategy alike.
    #[test]
    fn random_grids_nulls_ingest_and_shards_answer_bit_identically(
        users in 4u64..12,
        days in 2u64..5,
        user_span in 1i64..3,
        day_span in 1i64..3,
        null_mask in any::<u64>(),
        seed in any::<u64>(),
        shard_pick in 0usize..3,
    ) {
        let shards = [1usize, 2, 4][shard_pick];
        let cfg = MeterConfig { users, days, seed, ..MeterConfig::default() };
        let mut rows = generate_meter_data(&cfg);
        let power = meter_schema().index_of("power_consumed").unwrap();
        for (i, row) in rows.iter_mut().enumerate() {
            if (null_mask >> (i % 64)) & 1 == 1 {
                row[power] = Value::Null;
            }
        }
        let third = (rows.len() / 3).max(1);
        let (seeded, rest) = rows.split_at(third);
        let (appended, fresh) = rest.split_at(rest.len() / 2);
        let policy = || SplittingPolicy::new(vec![
            DimPolicy::int("user_id", 0, user_span),
            DimPolicy::date("ts", cfg.start_day, day_span),
        ]).unwrap();

        // Single-node oracle: flat enumeration, fresh rows overlaid.
        let wo = world("prop-oracle");
        let oracle_index = build_over(&wo, Arc::new(MemKvStore::new()), seeded, policy());
        let extents = oracle_index.extents().unwrap();
        oracle_index.append(appended).unwrap();
        let oracle_ing = StreamIngestor::open(
            Arc::clone(&oracle_index),
            wo.tmp.path().join("ingest.wal"),
            IngestConfig { flush_rows: u64::MAX, auto_flush_interval: None, ..IngestConfig::default() },
        ).unwrap();
        oracle_ing.ingest(fresh).unwrap();
        let oracle = answers_with(&oracle_index, &cfg, PlanStrategy::PrefixScan);
        let oracle_points = answers_with(&oracle_index, &cfg, PlanStrategy::PointGets);
        prop_assert!(bits_eq(&oracle, &oracle_points), "flat strategies disagree");

        // Sharded pyramid reader over an identically grown store.
        let ws = world(&format!("prop-s{shards}"));
        let router = Arc::new(sharded_mem(&extents, shards).unwrap());
        build_over(&ws, Arc::clone(&router) as Arc<dyn KvStore>, seeded, policy());
        let reader = open_reader(&ws, Arc::clone(&router) as Arc<dyn KvStore>, shards.max(2));
        reader.append(appended).unwrap();
        let reader_ing = StreamIngestor::open(
            Arc::clone(&reader),
            ws.tmp.path().join("ingest.wal"),
            IngestConfig { flush_rows: u64::MAX, auto_flush_interval: None, ..IngestConfig::default() },
        ).unwrap();
        reader_ing.ingest(fresh).unwrap();
        let got = answers_with(&reader, &cfg, PlanStrategy::Pyramid);
        prop_assert!(
            bits_eq(&got, &oracle),
            "{shards}-shard pyramid answers differ from flat single-node under grid ({user_span}, {day_span}), {users} users x {days} days:\n{got:?}\nvs\n{oracle:?}"
        );
    }
}
