//! Shard-equivalence harness: the sharded serving tier must be
//! *indistinguishable by answers* from the single-node engine.
//!
//! The serving tier (DESIGN.md §13) range-partitions the GFU keyspace
//! across N shards and scatters the planner's prefix-scan runs over a
//! worker pool, but absorption stays single-threaded in odometer order:
//! the Collector sees cells in exactly the sequence a sequential fetch
//! would produce, so the Neumaier fold order — and therefore every
//! float bit — is preserved. This file holds that claim to the
//! strictest standard available:
//!
//! * every query answer over shard counts {1, 2, 4, 7} is **bit**-equal
//!   to the single-node oracle (not approx-equal — `f64::to_bits`),
//!   under fixed and proptest-random grids, null patterns, and mixed
//!   ingest;
//! * the router's *logical* KvStats for a plan equal the single-node
//!   counters exactly (the LatencyKv double-charge regression);
//! * concurrent frontend clients racing an append observe pre- or
//!   post-commit snapshots only, never a torn cross-shard blend, under
//!   the seeded interleaving schedules of `concurrent_reads.rs`
//!   (`DGF_STRESS_SEEDS` widens the sweep in CI);
//! * a shard crashing mid-scatter yields a clean error or a
//!   committed-view answer — never a partial merge.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dgfindex::common::DgfError;
use dgfindex::ingest::IngestConfig;
use dgfindex::kvstore::{KvPair, KvStats};
use dgfindex::prelude::*;
use dgfindex::workload::{generate_meter_data, meter_schema, MeterConfig};
use proptest::prelude::*;

const INDEX: &str = "dgf_shard";

/// The shard-count sweep: 1 (the degenerate router), powers of two, and
/// a prime that never divides the cell count evenly.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn retry() -> RetryPolicy {
    RetryPolicy::fast(40)
}

fn aggs() -> Vec<AggFunc> {
    vec![AggFunc::Sum("power_consumed".into()), AggFunc::Count]
}

fn meter_cfg() -> MeterConfig {
    MeterConfig {
        users: 8,
        days: 4,
        ..MeterConfig::default()
    }
}

fn grid(cfg: &MeterConfig) -> SplittingPolicy {
    SplittingPolicy::new(vec![
        DimPolicy::int("user_id", 0, 4),
        DimPolicy::date("ts", cfg.start_day, 1),
    ])
    .unwrap()
}

/// The query mix (same shape as `concurrent_reads.rs`): a full COUNT, a
/// misaligned range aggregate that mixes boundary Slices with inner
/// headers, and a GROUP BY. Between them they exercise every fetch the
/// coordinator can scatter.
fn queries(cfg: &MeterConfig) -> Vec<Query> {
    let range = Predicate::all()
        .and(
            "user_id",
            ColumnRange::half_open(Value::Int(1), Value::Int(7)),
        )
        .and(
            "ts",
            ColumnRange::half_open(
                Value::Date(cfg.start_day + 1),
                Value::Date(cfg.start_day + 3),
            ),
        );
    vec![
        Query::Aggregate {
            aggs: vec![AggFunc::Count],
            predicate: Predicate::all(),
        },
        Query::Aggregate {
            aggs: aggs(),
            predicate: range.clone(),
        },
        Query::GroupBy {
            key: "user_id".into(),
            aggs: aggs(),
            predicate: range,
        },
    ]
}

struct World {
    tmp: TempDir,
    ctx: Arc<HiveContext>,
    base: TableRef,
}

fn world(tag: &str) -> World {
    let tmp = TempDir::new(&format!("shard-{tag}")).unwrap();
    let hdfs = SimHdfs::open(tmp.path()).unwrap();
    let ctx = HiveContext::new(hdfs, MrEngine::new(1));
    let base = ctx
        .create_table("meter", meter_schema(), FileFormat::Text)
        .unwrap();
    World { tmp, ctx, base }
}

/// Load `seeded` and build the index over `kv`. Builds are
/// deterministic, so identically seeded worlds produce byte-identical
/// GFU content whatever store they build through — including a
/// [`ShardedKv`] router, which is how a sharded serving world is stood
/// up from scratch.
fn build_over(w: &World, kv: Arc<dyn KvStore>, seeded: &[Row], policy: SplittingPolicy) -> Arc<DgfIndex> {
    w.ctx.load_rows(&w.base, seeded, 2).unwrap();
    let (index, _) = DgfIndex::build(
        Arc::clone(&w.ctx),
        Arc::clone(&w.base),
        policy,
        aggs(),
        kv,
        INDEX,
    )
    .unwrap();
    Arc::new(index)
}

/// Open a serving reader over `kv` with a scatter width and an optional
/// scheduling plan.
fn open_reader(
    w: &World,
    kv: Arc<dyn KvStore>,
    parallelism: usize,
    fault: Option<Arc<FaultPlan>>,
) -> dgfindex::common::Result<Arc<DgfIndex>> {
    Ok(Arc::new(DgfIndex::open_with_options(
        Arc::clone(&w.ctx),
        Arc::clone(&w.base),
        kv,
        INDEX,
        aggs(),
        IndexOptions {
            retry: retry(),
            fault,
            fetch_parallelism: parallelism,
            ..IndexOptions::default()
        },
    )?))
}

/// One observation of the whole query mix.
fn answers(index: &Arc<DgfIndex>, cfg: &MeterConfig) -> Vec<QueryResult> {
    let engine = DgfEngine::new(Arc::clone(index));
    queries(cfg)
        .iter()
        .map(|q| engine.run(q).unwrap().result)
        .collect()
}

fn matches(a: &[QueryResult], b: &[QueryResult]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.approx_eq(y, 1e-9))
}

/// Exact-bits equality: `Float`s must agree in raw bit pattern. The
/// serving tier's merge claims *bit* identity, so a tolerance would
/// hide exactly the fold-order bugs this file exists to catch.
fn bits_eq(a: &[QueryResult], b: &[QueryResult]) -> bool {
    fn val(a: &Value, b: &Value) -> bool {
        match (a, b) {
            (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
            _ => a == b,
        }
    }
    fn one(a: &QueryResult, b: &QueryResult) -> bool {
        match (a, b) {
            (QueryResult::Scalars(x), QueryResult::Scalars(y)) => {
                x.len() == y.len() && x.iter().zip(y).all(|(p, q)| val(p, q))
            }
            (QueryResult::Groups(x), QueryResult::Groups(y)) => {
                x.len() == y.len()
                    && x.iter().zip(y).all(|((ka, va), (kb, vb))| {
                        val(ka, kb)
                            && va.len() == vb.len()
                            && va.iter().zip(vb).all(|(p, q)| val(p, q))
                    })
            }
            _ => a == b,
        }
    }
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| one(x, y))
}

/// Seeds to sweep (CI widens via `DGF_STRESS_SEEDS`, same contract as
/// `concurrent_reads.rs`).
fn stress_seeds() -> Vec<u64> {
    match std::env::var("DGF_STRESS_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim())
            .filter(|t| !t.is_empty())
            .map(|t| t.parse().expect("DGF_STRESS_SEEDS entries must be u64"))
            .collect(),
        Err(_) => (1..=6).collect(),
    }
}

fn interleave(seed: u64) -> Arc<FaultPlan> {
    Arc::new(FaultPlan::new(FaultConfig::interleave(
        seed,
        1.0,
        Duration::from_micros(500),
    )))
}

/// The seeded meter world every deterministic test shares: first two
/// days indexed, plus an append batch that revisits the seeded days
/// *and* opens new ones (half its rows overwrite live cells — the racy
/// path — half extend the extents past the shard boundaries computed
/// from the seeded grid).
fn seeded_and_batch(cfg: &MeterConfig) -> (Vec<Row>, Vec<Row>) {
    let rows = generate_meter_data(cfg);
    let per_day = rows.len() / cfg.days as usize;
    let (seeded, rest) = rows.split_at(2 * per_day);
    let mut batch = seeded.to_vec();
    batch.extend(rest.iter().cloned());
    (seeded.to_vec(), batch)
}

/// Tentpole: build through the router, append through the router, and
/// answer through the router at every shard count — every float bit
/// must equal the single-node engine's. Shard count 7 on a 4-cell
/// seeded grid also covers the empty-tail-shard topology, and the
/// append pushes keys past every boundary computed from the seeded
/// extents.
#[test]
fn every_shard_count_answers_bit_identically_to_single_node() {
    let cfg = meter_cfg();
    let (seeded, batch) = seeded_and_batch(&cfg);

    let (oracle, extents) = {
        let w = world("oracle");
        let index = build_over(&w, Arc::new(MemKvStore::new()), &seeded, grid(&cfg));
        let extents = index.extents().unwrap();
        index.append(&batch).unwrap();
        (answers(&index, &cfg), extents)
    };

    for shards in SHARD_COUNTS {
        let w = world(&format!("s{shards}"));
        let router = Arc::new(sharded_mem(&extents, shards).unwrap());
        build_over(
            &w,
            Arc::clone(&router) as Arc<dyn KvStore>,
            &seeded,
            grid(&cfg),
        );
        let reader = open_reader(
            &w,
            Arc::clone(&router) as Arc<dyn KvStore>,
            shards.max(2),
            None,
        )
        .unwrap();
        reader.append(&batch).unwrap();
        let got = answers(&reader, &cfg);
        assert!(
            bits_eq(&got, &oracle),
            "{shards}-shard answers differ from single-node in float bits:\n{got:?}\nvs\n{oracle:?}"
        );
        if shards >= 2 {
            let occupied = router.shards().iter().filter(|s| !s.is_empty()).count();
            assert!(
                occupied >= 2,
                "{shards}-shard world kept all keys on one shard — the split never engaged"
            );
        }
    }
}

/// Satellite: the router's *logical* KvStats for a plan must equal a
/// single-node store's, byte for byte — one `multi_get` however many
/// shards it straddles, one scan per logical range. (Physical per-shard
/// sub-ops land in each shard's own stats; before the fix, a fanned-out
/// batch was recounted per underlying shard op, so cost models read the
/// sharded tier as N× more expensive than the identical plan.)
#[test]
fn sharded_plan_counters_match_single_node_exactly() {
    let cfg = meter_cfg();
    let rows = generate_meter_data(&cfg);
    let w = world("stats");
    let built: Arc<dyn KvStore> = Arc::new(MemKvStore::new());
    let index = build_over(&w, Arc::clone(&built), &rows, grid(&cfg));
    let extents = index.extents().unwrap();
    drop(index);

    // Mirror the built store into a fresh single-node copy and a 4-way
    // router: identical bytes, independent counters.
    let single = Arc::new(MemKvStore::new());
    let router = Arc::new(sharded_mem(&extents, 4).unwrap());
    let copied = mirror_kv(built.as_ref(), single.as_ref()).unwrap();
    assert_eq!(copied, mirror_kv(built.as_ref(), router.as_ref()).unwrap());

    let a = open_reader(&w, Arc::clone(&single) as Arc<dyn KvStore>, 1, None).unwrap();
    let b = open_reader(&w, Arc::clone(&router) as Arc<dyn KvStore>, 1, None).unwrap();
    let before_single = single.stats().snapshot();
    let before_router = router.stats().snapshot();

    let ea = DgfEngine::new(a);
    let eb = DgfEngine::new(b);
    for q in &queries(&cfg) {
        let ra = ea.run(q).unwrap().result;
        let rb = eb.run(q).unwrap().result;
        assert!(ra.approx_eq(&rb, 0.0));
    }

    let da = single.stats().snapshot().since(&before_single);
    let db = router.stats().snapshot().since(&before_router);
    assert_eq!(
        da, db,
        "router logical counters diverged from single-node for the same plan"
    );
}

/// Satellite: concurrent frontend clients racing a staged-commit append
/// on the sharded path. The seeded schedules stretch the commit wide
/// open at the coordinator's scatter/fetch/merge sites and the router's
/// own sync points; every served answer must wholly equal the
/// pre-append or post-append snapshot — a cross-shard blend (some cells
/// old, some new) fails here.
#[test]
fn concurrent_clients_vs_append_never_see_torn_cross_shard_state() {
    let cfg = meter_cfg();
    let (seeded, batch) = seeded_and_batch(&cfg);
    let extents = {
        let w = world("conc-extents");
        build_over(&w, Arc::new(MemKvStore::new()), &seeded, grid(&cfg))
            .extents()
            .unwrap()
    };

    for seed in stress_seeds().into_iter().take(3) {
        let w = world(&format!("conc{seed}"));
        let plan = interleave(seed);
        let router = Arc::new(
            sharded_mem(&extents, 4)
                .unwrap()
                .with_fault(Arc::clone(&plan)),
        );
        build_over(
            &w,
            Arc::clone(&router) as Arc<dyn KvStore>,
            &seeded,
            grid(&cfg),
        );
        let index = open_reader(
            &w,
            Arc::clone(&router) as Arc<dyn KvStore>,
            2,
            Some(Arc::clone(&plan)),
        )
        .unwrap();

        let mix = queries(&cfg);
        let pre = answers(&index, &cfg);
        let qs: Vec<Query> = (0..8).flat_map(|_| mix.iter().cloned()).collect();
        let front = ServeFrontend::new(
            DgfEngine::new(Arc::clone(&index)),
            ServeOptions {
                workers: 2,
                ..ServeOptions::default()
            },
        );
        let report = std::thread::scope(|s| {
            let writer = s.spawn(|| index.append(&batch).unwrap());
            let report = front.run_concurrent(&qs, 3);
            writer.join().unwrap();
            report
        });
        let post = answers(&index, &cfg);

        assert!(
            !matches(&post, &pre),
            "seed {seed}: append changed nothing — harness is vacuous"
        );
        assert_eq!(front.stats().snapshot().failed, 0, "seed {seed}: queries failed");
        for served in &report.served {
            let got = served.result.as_ref().expect("query dropped");
            let j = served.query_index % mix.len();
            assert!(
                got.approx_eq(&pre[j], 1e-9) || got.approx_eq(&post[j], 1e-9),
                "seed {seed}: served query {} is a torn cross-shard read:\n  got  {got:?}\n  pre  {:?}\n  post {:?}",
                served.query_index,
                pre[j],
                post[j]
            );
        }
    }
}

/// Satellite: same race, writer = streaming flush. A flush moves
/// acked-but-already-visible rows from the memtable into the index, so
/// on the sharded path too there is only ONE legal answer the whole
/// time.
#[test]
fn concurrent_clients_vs_flush_hold_one_answer_on_the_sharded_path() {
    let cfg = meter_cfg();
    let rows = generate_meter_data(&cfg);
    let per_day = rows.len() / cfg.days as usize;
    let (seeded, rest) = rows.split_at(2 * per_day);
    let extents = {
        let w = world("flush-extents");
        build_over(&w, Arc::new(MemKvStore::new()), seeded, grid(&cfg))
            .extents()
            .unwrap()
    };

    for seed in stress_seeds().into_iter().take(2) {
        let w = world(&format!("flush{seed}"));
        let plan = interleave(seed ^ 0x5A4D);
        let router = Arc::new(
            sharded_mem(&extents, 4)
                .unwrap()
                .with_fault(Arc::clone(&plan)),
        );
        build_over(
            &w,
            Arc::clone(&router) as Arc<dyn KvStore>,
            seeded,
            grid(&cfg),
        );
        let index = open_reader(
            &w,
            Arc::clone(&router) as Arc<dyn KvStore>,
            2,
            Some(Arc::clone(&plan)),
        )
        .unwrap();
        let ingestor = StreamIngestor::open(
            Arc::clone(&index),
            w.tmp.path().join("ingest.wal"),
            IngestConfig {
                flush_rows: u64::MAX,
                auto_flush_interval: None,
                fault: Some(Arc::clone(&plan)),
                ..IngestConfig::default()
            },
        )
        .unwrap();
        ingestor.ingest(rest).unwrap();

        let mix = queries(&cfg);
        let pre = answers(&index, &cfg);
        let qs: Vec<Query> = (0..6).flat_map(|_| mix.iter().cloned()).collect();
        let front = ServeFrontend::new(
            DgfEngine::new(Arc::clone(&index)),
            ServeOptions {
                workers: 2,
                ..ServeOptions::default()
            },
        );
        let report = std::thread::scope(|s| {
            let flusher = s.spawn(|| ingestor.flush().unwrap());
            let report = front.run_concurrent(&qs, 3);
            flusher.join().unwrap();
            report
        });
        let post = answers(&index, &cfg);

        assert!(
            matches(&post, &pre),
            "seed {seed}: flush changed answers on the sharded path"
        );
        for served in &report.served {
            let got = served.result.as_ref().expect("query dropped");
            let j = served.query_index % mix.len();
            assert!(
                got.approx_eq(&pre[j], 1e-9),
                "seed {seed}: served query {} wavered during flush:\n  got  {got:?}\n  want {:?}",
                served.query_index,
                pre[j]
            );
        }
    }
}

/// A shard that dies mid-read-path: after `countdown` read operations
/// it fails every subsequent operation permanently (sticky, like a dead
/// region server). [`ChaosKv`]'s crash triggers are write-anchored
/// (`crash_after_writes` / commit-protocol crash points), so the
/// read-path crash-site sweep needs this read-anchored shim with the
/// same sticky semantics.
struct DeadShard {
    inner: Arc<dyn KvStore>,
    countdown: AtomicI64,
}

impl DeadShard {
    fn tick(&self) -> dgfindex::common::Result<()> {
        if self.countdown.fetch_sub(1, Ordering::SeqCst) <= 0 {
            return Err(DgfError::KvStore("injected shard crash".into()));
        }
        Ok(())
    }
}

impl KvStore for DeadShard {
    fn put(&self, key: &[u8], value: &[u8]) -> dgfindex::common::Result<()> {
        self.tick()?;
        self.inner.put(key, value)
    }
    fn get(&self, key: &[u8]) -> dgfindex::common::Result<Option<Vec<u8>>> {
        self.tick()?;
        self.inner.get(key)
    }
    fn delete(&self, key: &[u8]) -> dgfindex::common::Result<bool> {
        self.tick()?;
        self.inner.delete(key)
    }
    fn scan_range(&self, start: &[u8], end: &[u8]) -> dgfindex::common::Result<Vec<KvPair>> {
        self.tick()?;
        self.inner.scan_range(start, end)
    }
    fn update(
        &self,
        key: &[u8],
        f: &mut dyn FnMut(Option<&[u8]>) -> Vec<u8>,
    ) -> dgfindex::common::Result<()> {
        self.tick()?;
        self.inner.update(key, f)
    }
    fn multi_get(&self, keys: &[Vec<u8>]) -> dgfindex::common::Result<Vec<Option<Vec<u8>>>> {
        self.tick()?;
        self.inner.multi_get(keys)
    }
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn logical_size_bytes(&self) -> u64 {
        self.inner.logical_size_bytes()
    }
    fn flush(&self) -> dgfindex::common::Result<()> {
        self.inner.flush()
    }
    fn stats(&self) -> &KvStats {
        self.inner.stats()
    }
}

/// Satellite (chaos): one shard dies mid-scatter. Each query must
/// either error cleanly or answer with the committed view — never a
/// partial merge of the surviving shards' headers with the dead shard's
/// absence. The crash-site sweep walks the read-op space (shard dead on
/// arrival through dead-after-the-whole-mix), so both outcomes are
/// exercised — asserted at the bottom, an all-error or all-clean sweep
/// would be vacuous. A second pass storms the same shard with
/// [`ChaosKv`] transient faults past retry exhaustion: same invariant.
#[test]
fn shard_crash_mid_scatter_is_clean_error_or_committed_answer() {
    let cfg = meter_cfg();
    let (seeded, batch) = seeded_and_batch(&cfg);
    let w = world("chaos");
    let extents = {
        let probe = world("chaos-extents");
        build_over(&probe, Arc::new(MemKvStore::new()), &seeded, grid(&cfg))
            .extents()
            .unwrap()
    };
    let router = Arc::new(sharded_mem(&extents, 4).unwrap());
    let built = build_over(
        &w,
        Arc::clone(&router) as Arc<dyn KvStore>,
        &seeded,
        grid(&cfg),
    );
    built.append(&batch).unwrap();
    drop(built);

    // The committed-view oracle, through the healthy router.
    let healthy = open_reader(&w, Arc::clone(&router) as Arc<dyn KvStore>, 2, None).unwrap();
    let oracle = answers(&healthy, &cfg);

    // Kill a GFU-bearing shard below the metadata (last) shard, so the
    // view pin itself survives and the crash lands inside the scatter.
    let target = router
        .shards()
        .iter()
        .take(router.shards().len() - 1)
        .position(|s| !s.is_empty())
        .expect("a data shard below the metadata shard");

    // A router identical to `router` except shard `target` is wrapped.
    let wrap = |wrapped: Arc<dyn KvStore>| -> Arc<ShardedKv> {
        let shards: Vec<Arc<dyn KvStore>> = router
            .shards()
            .iter()
            .enumerate()
            .map(|(i, s)| {
                if i == target {
                    Arc::clone(&wrapped)
                } else {
                    Arc::clone(s)
                }
            })
            .collect();
        Arc::new(ShardedKv::new(shards, router.boundaries().to_vec()).unwrap())
    };

    let mix = queries(&cfg);
    let (mut crashed, mut clean) = (0u32, 0u32);
    for site in 0..16i64 {
        let dead = wrap(Arc::new(DeadShard {
            inner: Arc::clone(&router.shards()[target]),
            countdown: AtomicI64::new(site),
        }));
        let reader = match open_reader(&w, dead as Arc<dyn KvStore>, 2, None) {
            Ok(reader) => reader,
            Err(_) => {
                // Crash fired during open: a clean refusal, no answer.
                crashed += 1;
                continue;
            }
        };
        let engine = DgfEngine::new(reader);
        for (j, q) in mix.iter().enumerate() {
            match engine.run(q) {
                Ok(run) => {
                    clean += 1;
                    assert!(
                        run.result.approx_eq(&oracle[j], 0.0),
                        "site {site}: a crashed shard leaked a partial merge:\n  got  {:?}\n  want {:?}",
                        run.result,
                        oracle[j]
                    );
                }
                Err(_) => crashed += 1,
            }
        }
    }
    assert!(crashed > 0, "no crash site ever fired — the sweep is vacuous");
    assert!(clean > 0, "every site crashed — committed answers never exercised");

    // ChaosKv transient storm: every read on the target shard fails
    // with a retryable error until the reader's RetryPolicy gives up.
    let storm_plan = Arc::new(FaultPlan::new(FaultConfig::transient(7, 1.0)));
    let stormy = wrap(Arc::new(ChaosKv::new(
        Arc::clone(&router.shards()[target]),
        storm_plan,
    )));
    let mut stormed = 0u32;
    if let Ok(reader) = open_reader(&w, stormy as Arc<dyn KvStore>, 2, None) {
        let engine = DgfEngine::new(reader);
        for (j, q) in mix.iter().enumerate() {
            match engine.run(q) {
                Ok(run) => assert!(
                    run.result.approx_eq(&oracle[j], 0.0),
                    "storm: a partial merge leaked past retry exhaustion"
                ),
                Err(_) => stormed += 1,
            }
        }
    } else {
        stormed += 1;
    }
    assert!(stormed > 0, "a full transient storm never surfaced an error");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Tentpole (randomized): proptest-chosen grid spans, data shapes,
    /// null patterns in the aggregated measure, and a mixed-ingest
    /// split. Whatever the grid, the sharded answers must match the
    /// single-node engine bit for bit.
    #[test]
    fn random_grids_nulls_and_ingest_serve_bit_identically(
        users in 4u64..12,
        days in 2u64..5,
        user_span in 1i64..5,
        day_span in 1i64..3,
        null_mask in any::<u64>(),
        seed in any::<u64>(),
        shard_pick in 0usize..3,
    ) {
        let shards = [2usize, 4, 7][shard_pick];
        let cfg = MeterConfig { users, days, seed, ..MeterConfig::default() };
        let mut rows = generate_meter_data(&cfg);
        let power = meter_schema().index_of("power_consumed").unwrap();
        for (i, row) in rows.iter_mut().enumerate() {
            if (null_mask >> (i % 64)) & 1 == 1 {
                row[power] = Value::Null;
            }
        }
        let (seeded, rest) = rows.split_at((rows.len() / 2).max(1));
        let policy = || SplittingPolicy::new(vec![
            DimPolicy::int("user_id", 0, user_span),
            DimPolicy::date("ts", cfg.start_day, day_span),
        ]).unwrap();

        let wo = world("prop-oracle");
        let oracle_index = build_over(&wo, Arc::new(MemKvStore::new()), seeded, policy());
        let extents = oracle_index.extents().unwrap();
        oracle_index.append(rest).unwrap();
        let oracle = answers(&oracle_index, &cfg);

        let ws = world(&format!("prop-s{shards}"));
        let router = Arc::new(sharded_mem(&extents, shards).unwrap());
        build_over(&ws, Arc::clone(&router) as Arc<dyn KvStore>, seeded, policy());
        let reader = open_reader(&ws, Arc::clone(&router) as Arc<dyn KvStore>, shards, None).unwrap();
        reader.append(rest).unwrap();
        let got = answers(&reader, &cfg);
        prop_assert!(
            bits_eq(&got, &oracle),
            "{shards}-shard answers differ from single-node under grid ({user_span}, {day_span}), {users} users x {days} days:\n{got:?}\nvs\n{oracle:?}"
        );
    }
}
