//! Invariants of the observability layer (DESIGN.md §8): span trees nest,
//! profile metric totals reconcile with the legacy per-subsystem stats
//! blocks, chaos-mode retries surface in profiles, and collection is
//! inert when tracing is off.

use std::sync::Arc;

use dgfindex::common::obs::{names, Profiler};
use dgfindex::prelude::*;

/// A small warehouse with a DGFIndex whose profiler is supplied by the
/// caller: enabled for the reconciliation tests, disabled for the
/// zero-collection test, chaos-wrapped for the retry test.
struct World {
    _tmp: TempDir,
    ctx: Arc<HiveContext>,
    idx: Arc<DgfIndex>,
    fault: Option<Arc<FaultPlan>>,
}

fn build_world(profiler: Profiler, fault: Option<Arc<FaultPlan>>) -> World {
    let tmp = TempDir::new("profile-inv").unwrap();
    let hdfs = SimHdfs::new(
        tmp.path().join("hdfs"),
        HdfsConfig {
            block_size: 64 * 1024,
            replication: 1,
        },
    )
    .unwrap();
    let ctx = HiveContext::new(hdfs, MrEngine::new(3));
    let schema = Arc::new(Schema::from_pairs(&[
        ("user_id", ValueType::Int),
        ("day", ValueType::Int),
        ("power", ValueType::Float),
    ]));
    let table = ctx.create_table("meter", schema, FileFormat::Text).unwrap();
    let rows: Vec<Row> = (0..4_000)
        .map(|i| {
            let i = i as i64;
            vec![
                Value::Int((i * 7) % 120),
                Value::Int((i * 13) % 30),
                Value::Float((i % 97) as f64 / 3.0),
            ]
        })
        .collect();
    ctx.load_rows(&table, &rows, 3).unwrap();

    let inner: Arc<dyn KvStore> = Arc::new(MemKvStore::new());
    let (kv, retry): (Arc<dyn KvStore>, RetryPolicy) = match &fault {
        Some(p) => {
            ctx.hdfs.enable_faults(Arc::clone(p), RetryPolicy::fast(64));
            (
                Arc::new(ChaosKv::new(Arc::clone(&inner), Arc::clone(p))),
                RetryPolicy::fast(64),
            )
        }
        None => (inner, RetryPolicy::default()),
    };
    let policy = SplittingPolicy::new(vec![
        DimPolicy::int("user_id", 0, 8),
        DimPolicy::int("day", 0, 4),
    ])
    .unwrap();
    let (idx, _) = DgfIndex::build_with_options(
        Arc::clone(&ctx),
        table,
        policy,
        vec![AggFunc::Count, AggFunc::Sum("power".into())],
        kv,
        "dgf_profile",
        IndexOptions {
            retry,
            profiler,
            ..IndexOptions::default()
        },
    )
    .unwrap();
    World {
        _tmp: tmp,
        ctx,
        idx: Arc::new(idx),
        fault,
    }
}

/// A boundary-heavy MDRQ: both ranges are misaligned with the 8×4 grid,
/// so the plan has inner GFUs answered from headers *and* boundary
/// Slices that reach the storage layer.
fn boundary_heavy_query() -> Query {
    Query::Aggregate {
        aggs: vec![AggFunc::Count, AggFunc::Sum("power".into())],
        predicate: Predicate::all()
            .and(
                "user_id",
                ColumnRange::half_open(Value::Int(3), Value::Int(101)),
            )
            .and("day", ColumnRange::half_open(Value::Int(1), Value::Int(27))),
    }
}

#[test]
fn span_trees_nest_and_cover_the_query_lifecycle() {
    let w = build_world(Profiler::enabled(), None);
    let run = DgfEngine::new(Arc::clone(&w.idx))
        .run(&boundary_heavy_query())
        .unwrap();
    let profile = &run.stats.profile;
    assert!(!profile.is_empty(), "enabled profiler collected nothing");
    let violations = profile.check_nesting();
    assert!(violations.is_empty(), "nesting violations: {violations:?}");
    // The lifecycle stages are all present, in their places.
    let root = profile.find("query").expect("query root span");
    assert!(root.find("query.plan").is_some());
    assert!(root.find("plan.meta").is_some());
    assert!(root.find("plan.fetch").is_some());
    assert!(root.find("plan.splits").is_some());
    assert!(root.find("query.scan").is_some());
}

#[test]
fn profile_totals_reconcile_with_legacy_stats_blocks() {
    let w = build_world(Profiler::enabled(), None);
    let q = boundary_heavy_query();
    let kv_before = w.idx.kv.stats().snapshot();
    let io_before = w.ctx.hdfs.stats().snapshot();
    let run = DgfEngine::new(Arc::clone(&w.idx)).run(&q).unwrap();
    let kv_delta = w.idx.kv.stats().snapshot().since(&kv_before);
    let io_delta = w.ctx.hdfs.stats().snapshot().since(&io_before);
    let profile = &run.stats.profile;

    // Every key-value operation of the run is attributed to exactly one
    // planning stage, so profile totals equal the legacy KvStats delta.
    assert!(kv_delta.read_ops() > 0);
    assert_eq!(profile.metric_total(names::KV_GETS), kv_delta.gets);
    assert_eq!(profile.metric_total(names::KV_SCANS), kv_delta.scans);
    assert_eq!(
        profile.metric_total(names::KV_MULTI_GETS),
        kv_delta.multi_gets
    );
    assert_eq!(
        profile.metric_total(names::KV_BYTES_READ),
        kv_delta.bytes_read
    );
    // Storage I/O is attributed once, to the scan stage, and matches
    // both the legacy IoStats delta and the RunStats counters.
    assert!(io_delta.bytes_read > 0, "boundary scan read no data");
    assert_eq!(
        profile.metric_total(names::HDFS_BYTES_READ),
        io_delta.bytes_read
    );
    assert_eq!(
        profile.metric_total(names::HDFS_RECORDS_READ),
        io_delta.records_read
    );
    assert_eq!(profile.metric_total(names::HDFS_BYTES_READ), run.stats.data_bytes_read);
    assert_eq!(
        profile.metric_total(names::HDFS_RECORDS_READ),
        run.stats.data_records_read
    );

    // The registry projections agree with the structs they summarize.
    let reg = dgfindex::common::MetricsRegistry::new();
    kv_delta.record_into(&reg);
    assert_eq!(reg.get(names::KV_GETS), kv_delta.gets);
    assert_eq!(reg.get(names::KV_BYTES_READ), kv_delta.bytes_read);
    let reg = dgfindex::common::MetricsRegistry::new();
    run.stats.record_into(&reg);
    assert_eq!(reg.get(names::HDFS_BYTES_READ), run.stats.data_bytes_read);
    assert_eq!(reg.get(names::PLAN_SPLITS_READ), run.stats.splits_read);
    // And the index-lifetime registry equals the lifetime snapshots.
    let reg = w.idx.metrics();
    assert_eq!(reg.get(names::KV_GETS), w.idx.kv.stats().snapshot().gets);
    assert_eq!(
        reg.get(names::HDFS_BYTES_READ),
        w.ctx.hdfs.stats().snapshot().bytes_read
    );
}

#[test]
fn columnar_scan_counters_reconcile_with_batches() {
    // An RCFile table drives the columnar path (DESIGN.md §12): the
    // scan.decode/scan.kernel spans must appear under query.scan and
    // their metrics must reconcile with group geometry, the records-read
    // I/O counter and the query's own answer.
    let tmp = TempDir::new("profile-col").unwrap();
    let hdfs = SimHdfs::new(
        tmp.path(),
        HdfsConfig {
            block_size: 64 * 1024,
            replication: 1,
        },
    )
    .unwrap();
    let ctx = HiveContext::new(hdfs.clone(), MrEngine::new(3));
    let schema = Arc::new(Schema::from_pairs(&[
        ("user_id", ValueType::Int),
        ("day", ValueType::Int),
        ("power", ValueType::Float),
    ]));
    let created = ctx
        .create_table("meter_rc", schema, FileFormat::RcFile)
        .unwrap();
    let mut desc = (*created).clone();
    desc.rows_per_group = 256;
    let rows: Vec<Row> = (0..4_000)
        .map(|i| {
            let i = i as i64;
            vec![
                Value::Int((i * 7) % 120),
                Value::Int((i * 13) % 30),
                Value::Float((i % 97) as f64 / 3.0),
            ]
        })
        .collect();
    ctx.load_rows(&desc, &rows, 3).unwrap();
    let table: TableRef = Arc::new(desc);

    // Ground truth for the batch count: the groups actually written.
    let total_groups: u64 = hdfs
        .list_files(&table.location)
        .iter()
        .map(|(path, _)| {
            dgfindex::format::read_group_offsets(&hdfs, path).unwrap().len() as u64
        })
        .sum();
    assert!(total_groups > 3);

    let io_before = hdfs.stats().snapshot();
    let run = ScanEngine::new(Arc::clone(&ctx), Arc::clone(&table))
        .with_profiler(Profiler::enabled())
        .run(&boundary_heavy_query())
        .unwrap();
    let io_delta = hdfs.stats().snapshot().since(&io_before);
    let profile = &run.stats.profile;
    assert!(profile.check_nesting().is_empty());

    // The kernel spans hang off the scan stage.
    let scan_span = profile.find("query.scan").expect("query.scan span");
    assert!(scan_span.find("scan.decode").is_some());
    assert!(scan_span.find("scan.kernel").is_some());

    // Batches ≡ row groups; decoded rows ≡ records read (full scan, no
    // row filter); selected rows ≡ the COUNT(*) the query returned; the
    // whole run stayed on the columnar path.
    let scan = &run.stats.scan;
    assert_eq!(scan.batches, total_groups);
    assert_eq!(profile.metric_total(names::SCAN_BATCHES), scan.batches);
    assert_eq!(scan.rows_decoded, io_delta.records_read);
    assert_eq!(scan.rows_decoded, run.stats.data_records_read);
    assert_eq!(
        profile.metric_total(names::SCAN_ROWS_DECODED),
        scan.rows_decoded
    );
    let count = run.result.clone().into_scalars()[0].as_i64().unwrap() as u64;
    assert_eq!(scan.rows_selected, count);
    assert_eq!(
        profile.metric_total(names::SCAN_ROWS_SELECTED),
        scan.rows_selected
    );
    assert_eq!(scan.rowwise_rows, 0);
    assert_eq!(
        profile.metric_total(names::SCAN_PREFETCH_WAITS),
        scan.prefetch_waits
    );

    // The RunStats registry projection carries the scan counters too.
    let reg = dgfindex::common::MetricsRegistry::new();
    run.stats.record_into(&reg);
    assert_eq!(reg.get(names::SCAN_BATCHES), scan.batches);
    assert_eq!(reg.get(names::SCAN_ROWS_SELECTED), scan.rows_selected);

    // Forcing the row-wise oracle moves every record to rowwise_rows and
    // decodes no batches.
    ctx.set_scan_options(ScanOptions {
        columnar: false,
        prefetch: false,
        sidecar: true,
    });
    let before = ctx.scan_stats.snapshot();
    let rerun = ScanEngine::new(Arc::clone(&ctx), table)
        .run(&boundary_heavy_query())
        .unwrap();
    let delta = ctx.scan_stats.snapshot().since(&before);
    assert_eq!(delta.batches, 0);
    assert_eq!(delta.rowwise_rows, rows.len() as u64);
    assert_eq!(rerun.result, run.result, "paths disagree");
}

#[test]
fn sidecar_reads_reconcile_with_io_and_the_ledger() {
    // Sidecar consultation (DESIGN.md §15) is planner-side index I/O:
    // it must show up in the IoStats delta and the profile's
    // `plan.sidecar` span, stay out of `data_bytes_read`, and the
    // bytes-skipped ledger must account exactly for the slice bytes the
    // unpruned plan would have read.
    let tmp = TempDir::new("profile-scx").unwrap();
    let hdfs = SimHdfs::new(
        tmp.path(),
        HdfsConfig {
            block_size: 64 * 1024,
            replication: 1,
        },
    )
    .unwrap();
    let ctx = HiveContext::new(hdfs.clone(), MrEngine::new(3));
    let schema = Arc::new(Schema::from_pairs(&[
        ("user_id", ValueType::Int),
        ("day", ValueType::Int),
        ("seq", ValueType::Int),
        ("power", ValueType::Float),
    ]));
    let created = ctx
        .create_table("meter_rc", schema, FileFormat::RcFile)
        .unwrap();
    let mut desc = (*created).clone();
    desc.rows_per_group = 64;
    let rows: Vec<Row> = (0..4_000)
        .map(|i| {
            let i = i as i64;
            vec![
                Value::Int((i * 7) % 120),
                Value::Int((i * 13) % 30),
                Value::Int(i),
                Value::Float((i % 97) as f64 / 3.0),
            ]
        })
        .collect();
    ctx.load_rows(&desc, &rows, 3).unwrap();
    let table: TableRef = Arc::new(desc);
    let policy = SplittingPolicy::new(vec![
        DimPolicy::int("user_id", 0, 8),
        DimPolicy::int("day", 0, 4),
    ])
    .unwrap();
    let (idx, _) = DgfIndex::build_with_options(
        Arc::clone(&ctx),
        table,
        policy,
        vec![AggFunc::Count, AggFunc::Sum("power".into())],
        Arc::new(MemKvStore::new()),
        "dgf_scx_profile",
        IndexOptions {
            profiler: Profiler::enabled(),
            ..IndexOptions::default()
        },
    )
    .unwrap();
    let idx = Arc::new(idx);

    // `seq` is clustered and not a grid dimension: only the sidecar's
    // zone maps can narrow it, so pruning provably engages.
    let q = Query::Aggregate {
        aggs: vec![AggFunc::Count, AggFunc::Sum("power".into())],
        predicate: Predicate::all().and(
            "seq",
            ColumnRange::half_open(Value::Int(500), Value::Int(900)),
        ),
    };
    let io_before = hdfs.stats().snapshot();
    let run = DgfEngine::new(Arc::clone(&idx)).run(&q).unwrap();
    let io_delta = hdfs.stats().snapshot().since(&io_before);
    let scan = &run.stats.scan;
    assert!(scan.sidecar_hits > 0, "no sidecar was consulted");
    assert!(scan.sidecar_bytes > 0, "sidecar reads charged no bytes");
    assert!(scan.sidecar_groups_pruned > 0, "clustered range pruned nothing");
    assert_eq!(scan.sidecar_misses + scan.sidecar_corrupt, 0);

    // Every byte of the run is accounted for exactly once: data bytes
    // to the scan, sidecar bytes to the planner.
    assert_eq!(
        io_delta.bytes_read,
        run.stats.data_bytes_read + scan.sidecar_bytes
    );
    // The profile agrees: the sidecar span exists under planning, holds
    // the sidecar counters, and HDFS totals cover both I/O kinds.
    let profile = &run.stats.profile;
    assert!(profile.check_nesting().is_empty());
    let plan_span = profile.find("query.plan").expect("query.plan span");
    assert!(plan_span.find("plan.sidecar").is_some());
    assert_eq!(
        profile.metric_total(names::HDFS_BYTES_READ),
        io_delta.bytes_read
    );
    assert_eq!(
        profile.metric_total(names::SCAN_SIDECAR_BYTES),
        scan.sidecar_bytes
    );
    assert_eq!(
        profile.metric_total(names::SCAN_SIDECAR_GROUPS_PRUNED),
        scan.sidecar_groups_pruned
    );

    // The registry projection (the `dgf profile` table) carries the
    // sidecar counters.
    let reg = dgfindex::common::MetricsRegistry::new();
    run.stats.record_into(&reg);
    assert_eq!(reg.get(names::SCAN_SIDECAR_HITS), scan.sidecar_hits);
    assert_eq!(reg.get(names::SCAN_SIDECAR_BYTES), scan.sidecar_bytes);
    assert_eq!(
        reg.get(names::SCAN_SIDECAR_BYTES_SKIPPED),
        scan.sidecar_bytes_skipped
    );

    // Ledger reconciliation: the pruned run's data bytes plus the bytes
    // it skipped equal the unpruned run's data bytes exactly — skipping
    // is the only difference between the two plans.
    ctx.set_scan_options(ScanOptions {
        columnar: true,
        prefetch: true,
        sidecar: false,
    });
    let unpruned = DgfEngine::new(Arc::clone(&idx)).run(&q).unwrap();
    assert_eq!(unpruned.result, run.result, "pruning changed the answer");
    assert_eq!(unpruned.stats.scan.sidecar_bytes, 0);
    assert_eq!(
        run.stats.data_bytes_read + scan.sidecar_bytes_skipped,
        unpruned.stats.data_bytes_read,
        "bytes-skipped ledger does not reconcile with the unpruned scan"
    );
}

#[test]
fn chaos_retries_surface_in_the_profile() {
    let plan = Arc::new(FaultPlan::new(FaultConfig::transient(4242, 0.4)));
    let w = build_world(Profiler::enabled(), Some(Arc::clone(&plan)));
    let fault = w.fault.as_ref().unwrap();
    let injected_before = fault.faults_injected();
    let run = DgfEngine::new(Arc::clone(&w.idx))
        .run(&boundary_heavy_query())
        .unwrap();
    let injected = fault.faults_injected() - injected_before;
    assert!(injected > 0, "chaos schedule produced no faults");
    // Every fault injected during the query was absorbed by a counted
    // retry, and every one of those retries is visible in the profile:
    // kv retries on the planning stages, file retries on the scan stage.
    let absorbed = run.stats.profile.metric_total(names::KV_RETRIES_ABSORBED)
        + run.stats.profile.metric_total(names::HDFS_RETRIES);
    assert_eq!(absorbed, injected);
    assert_eq!(absorbed, run.stats.retries_absorbed);
}

#[test]
fn disabled_profiler_collects_nothing() {
    let w = build_world(Profiler::disabled(), None);
    let run = DgfEngine::new(Arc::clone(&w.idx))
        .run(&boundary_heavy_query())
        .unwrap();
    assert!(run.stats.profile.is_empty());
    // Planning alone is just as inert.
    let plan = w.idx.plan(&boundary_heavy_query(), true).unwrap();
    assert!(plan.profile.is_empty());
}
