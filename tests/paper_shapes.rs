//! Structural claims of the paper's evaluation, asserted as tests: who
//! reads less, whose index is smaller, what degrades with selectivity.
//! These are the shapes the benchmark harness measures; the tests pin
//! them so a regression cannot silently invert a paper result.

use std::sync::Arc;

use dgfindex::prelude::*;
use dgfindex::workload::tpch::{
    generate_lineitem, lineitem_schema, q6, q6_revenue_agg, ship_min_day, TpchConfig,
};
use dgfindex::workload::{
    aggregation_query, generate_meter_data, meter_schema, MeterConfig, Selectivity,
};

struct MeterWorld {
    _tmp: TempDir,
    cfg: MeterConfig,
    ctx: Arc<HiveContext>,
    text: TableRef,
    rc: TableRef,
    dgf: Arc<DgfIndex>,
    dgf_report: dgfindex::hive::BuildReport,
    compact2_report: dgfindex::hive::BuildReport,
    compact: Arc<CompactIndex>,
}

fn meter_world() -> MeterWorld {
    let cfg = MeterConfig {
        users: 1_000,
        days: 30,
        ..MeterConfig::default()
    };
    let rows = generate_meter_data(&cfg);
    let tmp = TempDir::new("shapes").unwrap();
    let hdfs = SimHdfs::new(
        tmp.path(),
        HdfsConfig {
            block_size: 128 * 1024,
            replication: 1,
        },
    )
    .unwrap();
    let ctx = HiveContext::new(hdfs, MrEngine::new(4));
    let text = ctx
        .create_table("meter_text", meter_schema(), FileFormat::Text)
        .unwrap();
    ctx.load_rows(&text, &rows, 4).unwrap();
    let rc = ctx
        .create_table("meter_rc", meter_schema(), FileFormat::RcFile)
        .unwrap();
    ctx.load_rows(&rc, &rows, 4).unwrap();

    let policy = SplittingPolicy::new(vec![
        DimPolicy::int("user_id", 0, 50),
        DimPolicy::int("region_id", 0, 1),
        DimPolicy::date("ts", cfg.start_day, 1),
    ])
    .unwrap();
    let (dgf, dgf_report) = DgfIndex::build(
        Arc::clone(&ctx),
        Arc::clone(&text),
        policy,
        vec![AggFunc::Sum("power_consumed".into())],
        Arc::new(MemKvStore::new()),
        "dgf_meter",
    )
    .unwrap();
    let (compact, compact2_report) = CompactIndex::build(
        Arc::clone(&ctx),
        Arc::clone(&rc),
        vec!["region_id".into(), "ts".into()],
        "compact2",
    )
    .unwrap();
    MeterWorld {
        _tmp: tmp,
        cfg,
        ctx,
        text,
        rc,
        dgf: Arc::new(dgf),
        dgf_report,
        compact2_report,
        compact: Arc::new(compact),
    }
}

/// Table 2's shape: a 3-D Compact Index over a high-cardinality dimension
/// stores one entry per dimension combination — orders of magnitude more
/// entries than the grid, approaching the base table itself.
#[test]
fn compact_3d_index_is_enormous_dgf_is_small() {
    let w = meter_world();
    let (_, c3) = CompactIndex::build(
        Arc::clone(&w.ctx),
        Arc::clone(&w.rc),
        vec!["user_id".into(), "region_id".into(), "ts".into()],
        "compact3",
    )
    .map(|(i, r)| (Arc::new(i), r))
    .unwrap();
    // Every (user, day) combo is distinct: entries = rows, and the index
    // table is a sizable fraction of the base table (the paper's 821 GB
    // case). The grid stores only cells, so it is far smaller. (At paper
    // scale the ratios are ~1000x; the toy scale compresses them.)
    assert_eq!(c3.index_entries, 30_000);
    let base = w.ctx.table_size_bytes(&w.rc);
    assert!(c3.index_size_bytes * 4 > base, "compact-3D ~ base table size");
    assert!(w.dgf_report.index_entries * 4 < c3.index_entries);
    assert!(w.dgf_report.index_size_bytes < c3.index_size_bytes);
    // A coarser grid (the paper's "large" interval) shrinks the index
    // much further below the 3-D Compact Index.
    let policy_l = SplittingPolicy::new(vec![
        DimPolicy::int("user_id", 0, 200),
        DimPolicy::int("region_id", 0, 1),
        DimPolicy::date("ts", w.cfg.start_day, 1),
    ])
    .unwrap();
    let (_, dgf_l) = DgfIndex::build(
        Arc::clone(&w.ctx),
        Arc::clone(&w.text),
        policy_l,
        vec![AggFunc::Sum("power_consumed".into())],
        Arc::new(MemKvStore::new()),
        "dgf_meter_large",
    )
    .unwrap();
    assert!(dgf_l.index_size_bytes * 5 < c3.index_size_bytes);
    assert!(dgf_l.index_entries * 15 < c3.index_entries);
    // 2-D Compact over low-cardinality dims stays small (its viable mode).
    assert!(w.compact2_report.index_entries <= 11 * 30 * 4);
}

/// Table 3's shape: with pre-computation, DGF's records-read stays nearly
/// flat across selectivities (boundary only), while Compact's grows with
/// the number of chosen splits.
#[test]
fn dgf_records_read_is_nearly_selectivity_independent() {
    let w = meter_world();
    let mut dgf_reads = Vec::new();
    let mut compact_reads = Vec::new();
    let mut accurate = Vec::new();
    let schema = meter_schema();
    let rows = generate_meter_data(&w.cfg);
    for sel in [Selectivity::Frac(0.05), Selectivity::Frac(0.12), Selectivity::Frac(0.3)] {
        let q = aggregation_query(&w.cfg, sel);
        let d = DgfEngine::new(Arc::clone(&w.dgf)).run(&q).unwrap();
        let c = CompactEngine::new(Arc::clone(&w.compact)).run(&q).unwrap();
        assert!(d.result.approx_eq(&c.result, 1e-6));
        dgf_reads.push(d.stats.data_records_read);
        compact_reads.push(c.stats.data_records_read);
        let bound = q.predicate().bind(&schema).unwrap();
        accurate.push(rows.iter().filter(|r| bound.matches(r)).count() as u64);
    }
    // DGF reads only the boundary: far less than the accurate count.
    for (d, a) in dgf_reads.iter().zip(&accurate) {
        assert!(d < a, "dgf {d} >= accurate {a}");
    }
    // Compact reads whole splits: more than the accurate count.
    for (c, a) in compact_reads.iter().zip(&accurate) {
        assert!(c > a, "compact {c} <= accurate {a}");
    }
    // DGF growth from 5% to 30% is sublinear vs the 6x selectivity growth.
    assert!(dgf_reads[2] < dgf_reads[0] * 6);
}

/// §5.4's shape: evenly scattered dimension values defeat split-granular
/// filtering entirely; Compact reads everything, DGF does not.
#[test]
fn scattered_data_defeats_compact_but_not_dgf() {
    let cfg = TpchConfig {
        rows: 30_000,
        seed: 3,
    };
    let rows = generate_lineitem(&cfg);
    let tmp = TempDir::new("tpch-shape").unwrap();
    let hdfs = SimHdfs::new(
        tmp.path(),
        HdfsConfig {
            block_size: 256 * 1024,
            replication: 1,
        },
    )
    .unwrap();
    let ctx = HiveContext::new(hdfs, MrEngine::new(4));
    let text = ctx
        .create_table("li_text", lineitem_schema(), FileFormat::Text)
        .unwrap();
    ctx.load_rows(&text, &rows, 4).unwrap();
    let rc = ctx
        .create_table("li_rc", lineitem_schema(), FileFormat::RcFile)
        .unwrap();
    ctx.load_rows(&rc, &rows, 4).unwrap();

    let policy = SplittingPolicy::new(vec![
        DimPolicy::float("l_discount", 0.0, 0.01),
        DimPolicy::float("l_quantity", 1.0, 1.0),
        DimPolicy::date("l_shipdate", ship_min_day(), 100),
    ])
    .unwrap();
    let (dgf, _) = DgfIndex::build(
        Arc::clone(&ctx),
        Arc::clone(&text),
        policy,
        vec![q6_revenue_agg()],
        Arc::new(MemKvStore::new()),
        "dgf_li",
    )
    .unwrap();
    let (compact, _) = CompactIndex::build(
        Arc::clone(&ctx),
        rc,
        vec!["l_discount".into(), "l_quantity".into()],
        "compact2_li",
    )
    .unwrap();

    let q = q6(1994, 0.06, 24.0);
    let scan = ScanEngine::new(Arc::clone(&ctx), text).run(&q).unwrap();
    let d = DgfEngine::new(Arc::new(dgf)).run(&q).unwrap();
    let c = CompactEngine::new(Arc::new(compact)).run(&q).unwrap();
    assert!(d.result.approx_eq(&scan.result, 1e-6));
    assert!(c.result.approx_eq(&scan.result, 1e-6));
    // Compact filters nothing on scattered data: it reads every record
    // of the table (splits holding row-group starts are all chosen).
    assert_eq!(c.stats.data_records_read, rows.len() as u64);
    // Its total work even exceeds scanning (index table scan on top).
    assert!(c.stats.index_records_read > 0);
    // DGF reads a small fraction.
    assert!(d.stats.data_records_read * 10 < scan.stats.data_records_read);
}

/// The ablation ordering: full DGF <= no-precompute <= no-skipping in
/// records read, all correct.
#[test]
fn feature_ablation_ordering_holds() {
    let w = meter_world();
    let q = aggregation_query(&w.cfg, Selectivity::Frac(0.12));
    let full = DgfEngine::new(Arc::clone(&w.dgf)).run(&q).unwrap();
    let nopre = DgfEngine::new(Arc::clone(&w.dgf))
        .without_precompute()
        .run(&q)
        .unwrap();
    let noskip = DgfEngine::new(Arc::clone(&w.dgf))
        .without_precompute()
        .without_slice_skipping()
        .run(&q)
        .unwrap();
    assert!(full.result.approx_eq(&nopre.result, 1e-6));
    assert!(full.result.approx_eq(&noskip.result, 1e-6));
    assert!(full.stats.data_records_read < nopre.stats.data_records_read);
    assert!(nopre.stats.data_records_read < noskip.stats.data_records_read);
}

/// The write-path shape behind Figure 3: indexed ingest writes multiples
/// of the pages sequential ingest writes.
#[test]
fn indexed_ingest_amplifies_writes() {
    use dgfindex::rdbms::{measure_ingest, IngestTarget};
    let cfg = MeterConfig {
        users: 300,
        days: 20,
        ..MeterConfig::default()
    };
    let rows = generate_meter_data(&cfg);
    let tmp = TempDir::new("fig3-shape").unwrap();
    let heap = measure_ingest(&tmp.path().join("h"), &rows, IngestTarget::Heap).unwrap();
    let btree = measure_ingest(
        &tmp.path().join("b"),
        &rows,
        IngestTarget::BTree { key_col: 0 },
    )
    .unwrap();
    assert!(btree.page_writes > 2 * heap.page_writes);
}

/// §2.2: partition pruning works but NameNode memory grows linearly in
/// directory count, which is why multidimensional partitioning is ruled
/// out in favor of DGFIndex.
#[test]
fn partitioning_prunes_but_costs_namenode_memory() {
    let cfg = MeterConfig {
        users: 200,
        days: 10,
        ..MeterConfig::default()
    };
    let rows = generate_meter_data(&cfg);
    let tmp = TempDir::new("part-shape").unwrap();
    let hdfs = SimHdfs::open(tmp.path()).unwrap();
    let ctx = HiveContext::new(hdfs, MrEngine::new(2));
    let before = ctx.hdfs.namenode_memory_bytes();
    let pt = PartitionedTable::create(
        Arc::clone(&ctx),
        "meter",
        meter_schema(),
        FileFormat::Text,
        "ts",
        &rows,
        1,
    )
    .unwrap();
    assert_eq!(pt.partition_count(), 10);
    let after = ctx.hdfs.namenode_memory_bytes();
    assert!(after > before);
    let q = Query::Aggregate {
        aggs: vec![AggFunc::Count],
        predicate: Predicate::all().and("ts", ColumnRange::eq(Value::Date(cfg.start_day + 2))),
    };
    let run = PartitionEngine::new(Arc::new(pt)).run(&q).unwrap();
    assert_eq!(run.result.into_scalars()[0], Value::Int(200));
    assert_eq!(run.stats.data_records_read, 200); // exactly one partition
}
