//! Incremental append equivalence and index durability.
//!
//! * Appending data in batches must leave the index equivalent to one
//!   built from scratch over all the data (and to a scan) — the paper's
//!   rebuild-free load path.
//! * A DGFIndex whose GFU store is the persistent `LogKvStore` must
//!   survive a process restart and a torn log tail.

use std::sync::Arc;

use dgfindex::core::all_gfus;
use dgfindex::prelude::*;
use dgfindex::workload::{generate_meter_data, meter_schema, MeterConfig};
use proptest::prelude::*;

fn world(kv: Arc<dyn KvStore>, name: &str, tmp: &TempDir) -> (Arc<HiveContext>, TableRef) {
    let hdfs = SimHdfs::open(tmp.path().join(name)).unwrap();
    let ctx = HiveContext::new(hdfs, MrEngine::new(2));
    let table = ctx
        .create_table("meter", meter_schema(), FileFormat::Text)
        .unwrap();
    drop(kv);
    (ctx, table)
}

fn policy(cfg: &MeterConfig) -> SplittingPolicy {
    SplittingPolicy::new(vec![
        DimPolicy::int("user_id", 0, 20),
        DimPolicy::int("region_id", 0, 1),
        DimPolicy::date("ts", cfg.start_day, 1),
    ])
    .unwrap()
}

#[test]
fn appends_equal_bulk_build_and_scan() {
    let cfg = MeterConfig {
        users: 120,
        days: 12,
        ..MeterConfig::default()
    };
    let rows = generate_meter_data(&cfg);
    let per_day = rows.len() / cfg.days as usize;
    let tmp = TempDir::new("append-eq").unwrap();

    // Incremental: first 4 days bulk, the rest appended in 2-day batches.
    let (ctx_a, table_a) = world(Arc::new(MemKvStore::new()), "a", &tmp);
    ctx_a.load_rows(&table_a, &rows[..4 * per_day], 2).unwrap();
    let (inc, _) = DgfIndex::build(
        Arc::clone(&ctx_a),
        table_a,
        policy(&cfg),
        vec![AggFunc::Sum("power_consumed".into()), AggFunc::Count],
        Arc::new(MemKvStore::new()),
        "dgf_inc",
    )
    .unwrap();
    let inc = Arc::new(inc);
    for batch in rows[4 * per_day..].chunks(2 * per_day) {
        inc.append(batch).unwrap();
    }

    // Bulk: all 12 days at once.
    let (ctx_b, table_b) = world(Arc::new(MemKvStore::new()), "b", &tmp);
    ctx_b.load_rows(&table_b, &rows, 2).unwrap();
    let (bulk, _) = DgfIndex::build(
        Arc::clone(&ctx_b),
        Arc::clone(&table_b),
        policy(&cfg),
        vec![AggFunc::Sum("power_consumed".into()), AggFunc::Count],
        Arc::new(MemKvStore::new()),
        "dgf_bulk",
    )
    .unwrap();
    let bulk = Arc::new(bulk);

    // Same cells, same per-cell record counts.
    let mut inc_cells: Vec<(GfuKey, u64)> = all_gfus(inc.kv.as_ref(), 3)
        .unwrap()
        .into_iter()
        .map(|(k, v)| (k, v.record_count))
        .collect();
    let mut bulk_cells: Vec<(GfuKey, u64)> = all_gfus(bulk.kv.as_ref(), 3)
        .unwrap()
        .into_iter()
        .map(|(k, v)| (k, v.record_count))
        .collect();
    inc_cells.sort();
    bulk_cells.sort();
    assert_eq!(inc_cells, bulk_cells);

    // Same answers as a scan, for aligned and misaligned regions.
    let queries = [
        Query::Aggregate {
            aggs: vec![AggFunc::Count, AggFunc::Sum("power_consumed".into())],
            predicate: Predicate::all(),
        },
        Query::Aggregate {
            aggs: vec![AggFunc::Count, AggFunc::Sum("power_consumed".into())],
            predicate: Predicate::all()
                .and("user_id", ColumnRange::half_open(Value::Int(33), Value::Int(77)))
                .and(
                    "ts",
                    ColumnRange::half_open(
                        Value::Date(cfg.start_day + 3),
                        Value::Date(cfg.start_day + 9),
                    ),
                ),
        },
    ];
    for q in &queries {
        let truth = ScanEngine::new(Arc::clone(&ctx_b), Arc::clone(&table_b))
            .run(q)
            .unwrap()
            .result;
        let a = DgfEngine::new(Arc::clone(&inc)).run(q).unwrap().result;
        let b = DgfEngine::new(Arc::clone(&bulk)).run(q).unwrap().result;
        assert!(a.approx_eq(&truth, 1e-6), "incremental vs scan");
        assert!(b.approx_eq(&truth, 1e-6), "bulk vs scan");
    }
}

#[test]
fn dgf_index_survives_kv_restart() {
    let cfg = MeterConfig {
        users: 80,
        days: 6,
        ..MeterConfig::default()
    };
    let rows = generate_meter_data(&cfg);
    let tmp = TempDir::new("durable").unwrap();
    let kv_path = tmp.path().join("gfu.log");

    let hdfs = SimHdfs::open(tmp.path().join("hdfs")).unwrap();
    let ctx = HiveContext::new(hdfs, MrEngine::new(2));
    let table = ctx
        .create_table("meter", meter_schema(), FileFormat::Text)
        .unwrap();
    ctx.load_rows(&table, &rows, 2).unwrap();

    let q = Query::Aggregate {
        aggs: vec![AggFunc::Sum("power_consumed".into())],
        predicate: Predicate::all().and(
            "ts",
            ColumnRange::half_open(
                Value::Date(cfg.start_day + 1),
                Value::Date(cfg.start_day + 4),
            ),
        ),
    };

    let expected = {
        let kv: Arc<dyn KvStore> = Arc::new(LogKvStore::open(&kv_path).unwrap());
        let (index, _) = DgfIndex::build(
            Arc::clone(&ctx),
            Arc::clone(&table),
            policy(&cfg),
            vec![AggFunc::Sum("power_consumed".into())],
            kv,
            "dgf_durable",
        )
        .unwrap();
        DgfEngine::new(Arc::new(index)).run(&q).unwrap().result
    };

    // "Restart": reopen the log store and reattach without rebuilding.
    let kv: Arc<dyn KvStore> = Arc::new(LogKvStore::open(&kv_path).unwrap());
    let index = DgfIndex::open(
        Arc::clone(&ctx),
        Arc::clone(&table),
        kv,
        "dgf_durable",
        vec![AggFunc::Sum("power_consumed".into())],
    )
    .unwrap();
    assert_eq!(*index.policy(), policy(&cfg));
    let index = Arc::new(index);
    let got = DgfEngine::new(Arc::clone(&index)).run(&q).unwrap().result;
    assert!(got.approx_eq(&expected, 1e-9));

    // Appends keep working after the restart (generation resumes).
    let extra: Vec<Row> = generate_meter_data(&MeterConfig {
        users: 80,
        days: 1,
        start_day: cfg.start_day + 6,
        seed: 99,
        ..cfg.clone()
    });
    index.append(&extra).unwrap();
    let all = Query::Aggregate {
        aggs: vec![AggFunc::Count],
        predicate: Predicate::all(),
    };
    let run = DgfEngine::new(Arc::clone(&index)).run(&all).unwrap();
    assert_eq!(
        run.result.into_scalars()[0],
        Value::Int((rows.len() + extra.len()) as i64)
    );

    // Mismatched aggregates are rejected at open.
    let kv2: Arc<dyn KvStore> = Arc::new(LogKvStore::open(&kv_path).unwrap());
    assert!(DgfIndex::open(ctx, table, kv2, "dgf_durable", vec![AggFunc::Count]).is_err());
}

#[test]
fn kv_restart_preserves_all_gfus() {
    let cfg = MeterConfig {
        users: 80,
        days: 6,
        ..MeterConfig::default()
    };
    let rows = generate_meter_data(&cfg);
    let tmp = TempDir::new("durable2").unwrap();
    let kv_path = tmp.path().join("gfu.log");

    let hdfs = SimHdfs::open(tmp.path().join("hdfs")).unwrap();
    let ctx = HiveContext::new(hdfs, MrEngine::new(2));
    let table = ctx
        .create_table("meter", meter_schema(), FileFormat::Text)
        .unwrap();
    ctx.load_rows(&table, &rows, 2).unwrap();

    let before = {
        let kv: Arc<dyn KvStore> = Arc::new(LogKvStore::open(&kv_path).unwrap());
        let (index, _) = DgfIndex::build(
            Arc::clone(&ctx),
            Arc::clone(&table),
            policy(&cfg),
            vec![AggFunc::Sum("power_consumed".into())],
            kv,
            "dgf_durable",
        )
        .unwrap();
        index.kv.flush().unwrap();
        let mut g = all_gfus(index.kv.as_ref(), 3).unwrap();
        g.sort_by(|a, b| a.0.cmp(&b.0));
        g
    };
    // Reopen: identical contents.
    let kv = LogKvStore::open(&kv_path).unwrap();
    let mut after = all_gfus(&kv, 3).unwrap();
    after.sort_by(|a, b| a.0.cmp(&b.0));
    assert_eq!(before, after);
    assert!(!before.is_empty());
    // Policy and extents metadata are intact too.
    assert!(kv.get(dgfindex::core::gfu::META_POLICY_KEY).unwrap().is_some());
    assert!(kv.get(dgfindex::core::gfu::META_EXTENT_KEY).unwrap().is_some());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random append batch splits always equal the bulk build.
    #[test]
    fn random_append_batches_equal_bulk(splits in prop::collection::vec(1usize..5, 1..4)) {
        let cfg = MeterConfig { users: 40, days: 8, ..MeterConfig::default() };
        let rows = generate_meter_data(&cfg);
        let tmp = TempDir::new("append-prop").unwrap();

        let hdfs = SimHdfs::open(tmp.path().join("h")).unwrap();
        let ctx = HiveContext::new(hdfs, MrEngine::new(2));
        let table = ctx.create_table("meter", meter_schema(), FileFormat::Text).unwrap();
        // Initial slice: one day.
        let per_day = rows.len() / cfg.days as usize;
        ctx.load_rows(&table, &rows[..per_day], 1).unwrap();
        let (index, _) = DgfIndex::build(
            Arc::clone(&ctx),
            table,
            policy(&cfg),
            vec![AggFunc::Count],
            Arc::new(MemKvStore::new()),
            "dgf_prop",
        ).unwrap();
        let index = Arc::new(index);

        // Append the rest in batches whose sizes follow `splits` (cycled).
        let rest = &rows[per_day..];
        let mut at = 0;
        let mut si = 0;
        while at < rest.len() {
            let n = (splits[si % splits.len()] * per_day).min(rest.len() - at);
            index.append(&rest[at..at + n]).unwrap();
            at += n;
            si += 1;
        }

        let q = Query::Aggregate {
            aggs: vec![AggFunc::Count],
            predicate: Predicate::all(),
        };
        let run = DgfEngine::new(Arc::clone(&index)).run(&q).unwrap();
        prop_assert_eq!(run.result.into_scalars()[0].clone(), Value::Int(rows.len() as i64));
    }
}
