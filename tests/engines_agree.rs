//! Cross-engine agreement: every engine in the workspace must return the
//! same answer as a full table scan for every query shape at every
//! selectivity — the property that makes the benchmark comparisons
//! measurements of cost rather than correctness drift.

use std::sync::Arc;

use dgfindex::hadoopdb::{HadoopDb, HadoopDbConfig, HadoopDbEngine};
use dgfindex::prelude::*;
use dgfindex::workload::{
    aggregation_query, generate_meter_data, generate_user_info, group_by_query, join_query,
    meter_schema, partial_query, user_info_schema, MeterConfig, Selectivity,
};

struct World {
    _tmp: TempDir,
    cfg: MeterConfig,
    ctx: Arc<HiveContext>,
    meter_text: TableRef,
    meter_rc: TableRef,
    users: TableRef,
    dgf: Arc<DgfIndex>,
    compact: Arc<CompactIndex>,
    bitmap: Arc<BitmapIndex>,
    hadoopdb: Arc<HadoopDb>,
}

fn build_world() -> World {
    let cfg = MeterConfig {
        users: 500,
        regions: 11,
        days: 20,
        ..MeterConfig::default()
    };
    let rows = generate_meter_data(&cfg);
    let user_rows = generate_user_info(&cfg);

    let tmp = TempDir::new("agree").unwrap();
    let hdfs = SimHdfs::new(
        tmp.path().join("hdfs"),
        HdfsConfig {
            block_size: 128 * 1024,
            replication: 1,
        },
    )
    .unwrap();
    let ctx = HiveContext::new(hdfs, MrEngine::new(4));
    let meter_text = ctx
        .create_table("meter_text", meter_schema(), FileFormat::Text)
        .unwrap();
    ctx.load_rows(&meter_text, &rows, 3).unwrap();
    let meter_rc = ctx
        .create_table("meter_rc", meter_schema(), FileFormat::RcFile)
        .unwrap();
    ctx.load_rows(&meter_rc, &rows, 3).unwrap();
    let users = ctx
        .create_table("user_info", user_info_schema(), FileFormat::Text)
        .unwrap();
    ctx.load_rows(&users, &user_rows, 1).unwrap();

    let policy = SplittingPolicy::new(vec![
        DimPolicy::int("user_id", 0, 25),
        DimPolicy::int("region_id", 0, 1),
        DimPolicy::date("ts", cfg.start_day, 1),
    ])
    .unwrap();
    let (dgf, _) = DgfIndex::build(
        Arc::clone(&ctx),
        Arc::clone(&meter_text),
        policy,
        vec![AggFunc::Sum("power_consumed".into())],
        Arc::new(MemKvStore::new()),
        "dgf_meter",
    )
    .unwrap();

    let (compact, _) = CompactIndex::build(
        Arc::clone(&ctx),
        Arc::clone(&meter_rc),
        vec!["region_id".into(), "ts".into()],
        "compact2",
    )
    .unwrap();
    let (bitmap, _) = BitmapIndex::build(
        Arc::clone(&ctx),
        Arc::clone(&meter_rc),
        vec!["region_id".into(), "ts".into()],
        "bitmap2",
    )
    .unwrap();
    let mut hdb = HadoopDb::load(
        tmp.path().join("hdb"),
        (*meter_schema()).clone(),
        &rows,
        "user_id",
        &["region_id", "ts"],
        HadoopDbConfig {
            nodes: 3,
            chunks_per_node: 3,
            node_parallelism: 2,
            per_chunk_overhead: std::time::Duration::ZERO,
        },
    )
    .unwrap();
    hdb.replicate_right((*user_info_schema()).clone(), user_rows);

    World {
        _tmp: tmp,
        cfg,
        ctx,
        meter_text,
        meter_rc,
        users,
        dgf: Arc::new(dgf),
        compact: Arc::new(compact),
        bitmap: Arc::new(bitmap),
        hadoopdb: Arc::new(hdb),
    }
}

fn check_all(w: &World, query: &Query, label: &str) {
    let truth = ScanEngine::new(Arc::clone(&w.ctx), Arc::clone(&w.meter_text))
        .with_right(Arc::clone(&w.users))
        .run(query)
        .unwrap()
        .result
        .normalized();
    let engines: Vec<(String, Box<dyn Engine>)> = vec![
        (
            "scan-rc".into(),
            Box::new(
                ScanEngine::new(Arc::clone(&w.ctx), Arc::clone(&w.meter_rc))
                    .with_right(Arc::clone(&w.users)),
            ),
        ),
        (
            "dgf".into(),
            Box::new(DgfEngine::new(Arc::clone(&w.dgf)).with_right(Arc::clone(&w.users))),
        ),
        (
            "dgf-noprecompute".into(),
            Box::new(
                DgfEngine::new(Arc::clone(&w.dgf))
                    .without_precompute()
                    .with_right(Arc::clone(&w.users)),
            ),
        ),
        (
            "dgf-noskip".into(),
            Box::new(
                DgfEngine::new(Arc::clone(&w.dgf))
                    .without_slice_skipping()
                    .with_right(Arc::clone(&w.users)),
            ),
        ),
        (
            "compact".into(),
            Box::new(CompactEngine::new(Arc::clone(&w.compact)).with_right(Arc::clone(&w.users))),
        ),
        (
            "bitmap".into(),
            Box::new(BitmapEngine::new(Arc::clone(&w.bitmap)).with_right(Arc::clone(&w.users))),
        ),
        (
            "hadoopdb".into(),
            Box::new(HadoopDbEngine::new(Arc::clone(&w.hadoopdb))),
        ),
    ];
    for (name, engine) in engines {
        let got = engine.run(query).unwrap().result.normalized();
        assert!(
            got.approx_eq(&truth, 1e-6),
            "{label}: engine {name} disagrees with scan\n  scan: {truth:?}\n  got:  {got:?}"
        );
    }
}

#[test]
fn aggregation_queries_agree_at_all_selectivities() {
    let w = build_world();
    for sel in Selectivity::paper_settings() {
        let q = aggregation_query(&w.cfg, sel);
        check_all(&w, &q, &format!("aggregation {}", sel.label()));
    }
}

#[test]
fn group_by_queries_agree_at_all_selectivities() {
    let w = build_world();
    for sel in Selectivity::paper_settings() {
        let q = group_by_query(&w.cfg, sel);
        check_all(&w, &q, &format!("group-by {}", sel.label()));
    }
}

#[test]
fn join_queries_agree_at_all_selectivities() {
    let w = build_world();
    for sel in Selectivity::paper_settings() {
        let q = join_query(&w.cfg, sel);
        check_all(&w, &q, &format!("join {}", sel.label()));
    }
}

#[test]
fn partial_and_edge_queries_agree() {
    let w = build_world();
    check_all(&w, &partial_query(&w.cfg), "partial");
    // Predicate with a non-indexed column mixed in.
    let q = Query::Aggregate {
        aggs: vec![AggFunc::Count, AggFunc::Min("power_consumed".into())],
        predicate: Predicate::all()
            .and("ts", ColumnRange::eq(Value::Date(w.cfg.start_day + 3)))
            .and(
                "power_consumed",
                ColumnRange::open(Value::Float(5.0), Value::Float(20.0)),
            ),
    };
    check_all(&w, &q, "mixed indexed/unindexed");
    // Empty result.
    let q = Query::Aggregate {
        aggs: vec![AggFunc::Count],
        predicate: Predicate::all().and("user_id", ColumnRange::eq(Value::Int(10_000_000))),
    };
    check_all(&w, &q, "empty");
    // Select shape.
    let q = Query::Select {
        project: vec!["user_id".into(), "power_consumed".into()],
        predicate: Predicate::all()
            .and("user_id", ColumnRange::half_open(Value::Int(7), Value::Int(9)))
            .and("ts", ColumnRange::eq(Value::Date(w.cfg.start_day))),
    };
    // HadoopDB/bitmap handle Select too; use the full checker.
    check_all(&w, &q, "select");
}

#[test]
fn random_mdrq_queries_agree() {
    let w = build_world();
    // A deterministic sweep of range shapes: aligned, misaligned, thin,
    // wide, single-cell, cross-extent.
    let cases = [
        (0i64, 500i64, 0i64, 20i64),
        (13, 14, 0, 20),
        (0, 500, 7, 8),
        (33, 467, 3, 17),
        (25, 50, 0, 1),
        (475, 500, 19, 20),
        (-100, 1000, -5, 50),
        (250, 251, 10, 11),
    ];
    for (u0, u1, d0, d1) in cases {
        let q = Query::Aggregate {
            aggs: vec![
                AggFunc::Count,
                AggFunc::Sum("power_consumed".into()),
                AggFunc::Max("power_consumed".into()),
            ],
            predicate: Predicate::all()
                .and(
                    "user_id",
                    ColumnRange::half_open(Value::Int(u0), Value::Int(u1)),
                )
                .and(
                    "ts",
                    ColumnRange::half_open(
                        Value::Date(w.cfg.start_day + d0),
                        Value::Date(w.cfg.start_day + d1),
                    ),
                ),
        };
        check_all(&w, &q, &format!("sweep u[{u0},{u1}) d[{d0},{d1})"));
    }
}
