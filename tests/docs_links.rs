//! Docs lint: the prose must not rot.
//!
//! Validates, for the repo's top-level documents:
//!
//! * every relative markdown link `[text](path)` points at a file that
//!   exists (external `http(s)://` links are skipped — CI has no
//!   network);
//! * every in-document anchor `[text](#slug)` (and cross-document
//!   `[text](FILE.md#slug)`) resolves to a heading whose GitHub slug
//!   matches;
//! * every `§N` section reference inside DESIGN.md resolves to an
//!   actual `## N.` heading — stale cross-references after a renumber
//!   fail here, not in a reader's head;
//! * every repo source path mentioned in backticks (`crates/...`,
//!   `tests/...`) exists on disk. Committed `BENCH_*.json` artifacts
//!   are covered by the link check via README's Benchmarks index
//!   (bare backticked `BENCH_*` names also name bench *outputs* under
//!   `target/`, which CI builds fresh).
//!
//! CI runs this as the docs-lint step (`cargo test --test docs_links`).

use std::collections::BTreeSet;
use std::path::PathBuf;

const DOCS: &[&str] = &[
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "EXPERIMENTS_RESULTS.md",
    "ROADMAP.md",
];

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn read_doc(name: &str) -> String {
    let path = repo_root().join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// GitHub's heading-to-anchor slug: lowercase, spaces to hyphens,
/// punctuation (except hyphens/underscores) dropped.
fn slug(heading: &str) -> String {
    let mut out = String::new();
    for ch in heading.trim().chars() {
        let ch = ch.to_ascii_lowercase();
        match ch {
            'a'..='z' | '0'..='9' | '_' | '-' => out.push(ch),
            ' ' => out.push('-'),
            _ => {}
        }
    }
    out
}

/// All heading slugs of a document, with GitHub's `-1`, `-2` suffixes
/// for duplicates.
fn heading_slugs(text: &str) -> BTreeSet<String> {
    let mut seen: Vec<String> = Vec::new();
    let mut out = BTreeSet::new();
    let mut in_code = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_code = !in_code;
            continue;
        }
        if in_code || !line.starts_with('#') {
            continue;
        }
        let heading = line.trim_start_matches('#');
        if heading.trim().is_empty() {
            continue;
        }
        let base = slug(heading.trim_matches('`'));
        let dup = seen.iter().filter(|s| **s == base).count();
        seen.push(base.clone());
        if dup == 0 {
            out.insert(base);
        } else {
            out.insert(format!("{base}-{dup}"));
        }
    }
    out
}

/// Extract `[text](target)` links, skipping fenced code blocks and
/// inline code spans.
fn links(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_code = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_code = !in_code;
            continue;
        }
        if in_code {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b'[' {
                if let Some(close) = line[i..].find("](").map(|p| i + p) {
                    if let Some(end) = line[close + 2..].find(')').map(|p| close + 2 + p) {
                        out.push(line[close + 2..end].to_owned());
                        i = end + 1;
                        continue;
                    }
                }
            }
            i += 1;
        }
    }
    out
}

#[test]
fn relative_links_and_anchors_resolve() {
    let root = repo_root();
    let mut broken = Vec::new();
    for doc in DOCS {
        let text = read_doc(doc);
        for link in links(&text) {
            if link.starts_with("http://") || link.starts_with("https://") {
                continue;
            }
            let (path_part, anchor) = match link.split_once('#') {
                Some((p, a)) => (p, Some(a.to_owned())),
                None => (link.as_str(), None),
            };
            // Resolve the file the link points at (empty path = self).
            let target_doc: Option<String> = if path_part.is_empty() {
                Some((*doc).to_owned())
            } else {
                let target = root.join(path_part);
                if !target.exists() {
                    broken.push(format!("{doc}: [{link}] -> missing file {path_part}"));
                    continue;
                }
                path_part.ends_with(".md").then(|| path_part.to_owned())
            };
            if let (Some(anchor), Some(target_doc)) = (anchor, target_doc) {
                let target_text =
                    if target_doc == *doc { text.clone() } else { read_doc(&target_doc) };
                if !heading_slugs(&target_text).contains(&anchor) {
                    broken.push(format!(
                        "{doc}: [{link}] -> no heading with slug #{anchor} in {target_doc}"
                    ));
                }
            }
        }
    }
    assert!(broken.is_empty(), "broken markdown links:\n  {}", broken.join("\n  "));
}

#[test]
fn design_section_references_resolve() {
    let text = read_doc("DESIGN.md");
    // Sections actually present: "## 7. Failure model ..." etc.
    let mut sections = BTreeSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("## ") {
            if let Some(num) = rest.split('.').next() {
                if let Ok(n) = num.trim().parse::<u32>() {
                    sections.insert(n);
                }
            }
        }
    }
    assert!(!sections.is_empty(), "DESIGN.md has no numbered `## N.` sections");

    // Every §N reference anywhere in the repo's docs must name one.
    let mut broken = Vec::new();
    for doc in DOCS {
        let doc_text = read_doc(doc);
        for (idx, line) in doc_text.lines().enumerate() {
            let mut rest = line;
            while let Some(pos) = rest.find('§') {
                rest = &rest['§'.len_utf8() + pos..];
                let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
                if digits.is_empty() {
                    continue;
                }
                let n: u32 = digits.parse().unwrap();
                // §N refs that cite the *paper* ("paper §5.3", "the
                // paper's §8") are out of scope; only DESIGN.md's own
                // architecture sections are checked, and those never
                // use a dotted sub-number.
                let dotted = rest[digits.len()..].starts_with('.');
                if *doc == "DESIGN.md" && !dotted && !paperish(line) && !sections.contains(&n) {
                    broken.push(format!("DESIGN.md:{}: §{n} has no `## {n}.` section", idx + 1));
                }
            }
        }
    }
    assert!(broken.is_empty(), "stale section references:\n  {}", broken.join("\n  "));
}

/// Lines citing the source paper's numbering rather than DESIGN.md's.
fn paperish(line: &str) -> bool {
    let l = line.to_ascii_lowercase();
    l.contains("paper") || l.contains("algorithm") || l.contains("listing")
}

#[test]
fn backticked_repo_paths_exist() {
    let root = repo_root();
    let mut broken = Vec::new();
    for doc in DOCS {
        let text = read_doc(doc);
        let mut in_code = false;
        for (idx, line) in text.lines().enumerate() {
            if line.trim_start().starts_with("```") {
                in_code = !in_code;
                continue;
            }
            if in_code {
                continue;
            }
            for span in line.split('`').skip(1).step_by(2) {
                let candidate = span.trim();
                let looks_like_path = (candidate.starts_with("crates/")
                    || candidate.starts_with("tests/"))
                    && candidate
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || "/._-".contains(c));
                if looks_like_path && !root.join(candidate).exists() {
                    broken.push(format!("{doc}:{}: `{candidate}` does not exist", idx + 1));
                }
            }
        }
    }
    assert!(broken.is_empty(), "docs cite missing paths:\n  {}", broken.join("\n  "));
}
