//! Sidecar ≡ unpruned equivalence (DESIGN.md §15).
//!
//! The slice sidecar (zone maps + hierarchical bitmaps) is an
//! *accelerator, never a correctness dependency*: with pruning on, off,
//! or actively sabotaged — a sidecar deleted, a sidecar overwritten
//! with garbage — every query answer must equal the unpruned scan in
//! **float bits**, and sabotage must surface only in the
//! `scan.sidecar.*` degrade counters. The matrix here covers:
//!
//! * {no-sidecar, sidecar, sidecar+corrupt-one-file,
//!   sidecar+delete-one-file} × KV shard counts {1, 4}, under fixed and
//!   proptest-random grids, null patterns and predicates — including
//!   predicates on columns that are *not* grid dimensions (the zone-map
//!   and bitmap columns a grid planner cannot see);
//! * a chaos crash sweep across sidecar publication: the `.scx` file
//!   rides the staged-commit renames, so a crash at any instrumented
//!   site must leave either no sidecar or a matched slice+sidecar pair,
//!   and recovery must answer exactly like a scan of the base table.

use std::sync::Arc;

use dgfindex::format::{is_sidecar_path, sidecar_path};
use dgfindex::prelude::*;
use dgfindex::workload::{generate_meter_data, meter_schema, MeterConfig};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

const INDEX: &str = "dgf_scx";

fn schema() -> SchemaRef {
    Arc::new(Schema::from_pairs(&[
        ("user", ValueType::Int),
        ("day", ValueType::Int),
        ("cat", ValueType::Int),
        ("seq", ValueType::Int),
        ("power", ValueType::Float),
    ]))
}

fn aggs() -> Vec<AggFunc> {
    vec![AggFunc::Sum("power".into()), AggFunc::Count]
}

fn grid() -> SplittingPolicy {
    SplittingPolicy::new(vec![
        DimPolicy::int("user", 0, 8),
        DimPolicy::int("day", 0, 3),
    ])
    .unwrap()
}

/// Rows with non-null grid dimensions (`user`, `day`) and null holes in
/// the sidecar-only columns. `cat` is low-cardinality (bitmap-indexed),
/// `seq` is clustered (zone maps prune it hard), `power` is the float
/// the Neumaier fold order must survive pruning for.
fn fixed_rows(n: usize, null_p: f64) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(42);
    (0..n)
        .map(|i| {
            let i = i as i64;
            let cat = if rng.random_bool(null_p) {
                Value::Null
            } else {
                Value::Int(i % 6)
            };
            let power = if rng.random_bool(null_p) {
                Value::Null
            } else {
                Value::Float(rng.random_range(-50.0..50.0))
            };
            vec![
                Value::Int(i % 40),
                Value::Int(i % 15),
                cat,
                Value::Int(i),
                power,
            ]
        })
        .collect()
}

/// Query mix: misaligned grid ranges (boundary Slices), a clustered
/// non-grid range (zone pruning), a low-cardinality equality (bitmap
/// pruning), and every sink shape.
fn queries() -> Vec<Query> {
    vec![
        Query::Aggregate {
            aggs: aggs(),
            predicate: Predicate::all()
                .and("user", ColumnRange::half_open(Value::Int(5), Value::Int(21)))
                .and("day", ColumnRange::half_open(Value::Int(3), Value::Int(11))),
        },
        Query::Aggregate {
            aggs: aggs(),
            predicate: Predicate::all().and(
                "seq",
                ColumnRange::half_open(Value::Int(100), Value::Int(140)),
            ),
        },
        Query::Aggregate {
            aggs: vec![AggFunc::Count, AggFunc::Min("power".into())],
            predicate: Predicate::all()
                .and("cat", ColumnRange::eq(Value::Int(3)))
                .and("user", ColumnRange::half_open(Value::Int(0), Value::Int(16))),
        },
        Query::GroupBy {
            key: "day".into(),
            aggs: aggs(),
            predicate: Predicate::all().and(
                "power",
                ColumnRange::open(Value::Float(-20.0), Value::Float(30.0)),
            ),
        },
        Query::Select {
            project: vec!["user".into(), "power".into()],
            predicate: Predicate::all().and(
                "seq",
                ColumnRange::half_open(Value::Int(200), Value::Int(260)),
            ),
        },
    ]
}

struct World {
    _tmp: TempDir,
    ctx: Arc<HiveContext>,
    base: TableRef,
}

fn world(tag: &str, rows: &[Row], rows_per_group: usize) -> World {
    let tmp = TempDir::new(&format!("scx-{tag}")).unwrap();
    let hdfs = SimHdfs::open(tmp.path()).unwrap();
    let ctx = HiveContext::new(hdfs, MrEngine::new(1));
    let created = ctx
        .create_table("meter_rc", schema(), FileFormat::RcFile)
        .unwrap();
    let mut desc = (*created).clone();
    desc.rows_per_group = rows_per_group;
    ctx.load_rows(&desc, rows, 3).unwrap();
    World {
        _tmp: tmp,
        ctx,
        base: Arc::new(desc),
    }
}

fn build(w: &World, kv: Arc<dyn KvStore>) -> Arc<DgfIndex> {
    let (index, _) = DgfIndex::build(
        Arc::clone(&w.ctx),
        Arc::clone(&w.base),
        grid(),
        aggs(),
        kv,
        INDEX,
    )
    .unwrap();
    Arc::new(index)
}

/// Exact-bits value equality: `Float`s must agree in raw bit pattern.
fn val_bits(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

/// `f64::to_bits` equality over normalized results (row order is
/// unspecified for SELECT, so both sides sort first).
fn assert_bits_eq(a: &QueryResult, b: &QueryResult, label: &str) {
    let (a, b) = (a.clone().normalized(), b.clone().normalized());
    let ok = match (&a, &b) {
        (QueryResult::Scalars(x), QueryResult::Scalars(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(p, q)| val_bits(p, q))
        }
        (QueryResult::Groups(x), QueryResult::Groups(y)) => {
            x.len() == y.len()
                && x.iter().zip(y).all(|((ka, va), (kb, vb))| {
                    val_bits(ka, kb)
                        && va.len() == vb.len()
                        && va.iter().zip(vb).all(|(p, q)| val_bits(p, q))
                })
        }
        (QueryResult::Rows(x), QueryResult::Rows(y)) => {
            x.len() == y.len()
                && x.iter().zip(y).all(|(ra, rb)| {
                    ra.len() == rb.len() && ra.iter().zip(rb).all(|(p, q)| val_bits(p, q))
                })
        }
        _ => false,
    };
    assert!(ok, "{label}: float bits diverged:\n{a:?}\nvs\n{b:?}");
}

fn run_with_sidecar(w: &World, index: &Arc<DgfIndex>, q: &Query, sidecar: bool) -> EngineRun {
    w.ctx.set_scan_options(ScanOptions {
        columnar: true,
        prefetch: true,
        sidecar,
    });
    DgfEngine::new(Arc::clone(index)).run(q).unwrap()
}

/// Every `.scx` file under the index's data directory.
fn sidecar_files(ctx: &HiveContext, index: &DgfIndex) -> Vec<String> {
    let mut v: Vec<String> = ctx
        .hdfs
        .list_files(&index.data.location)
        .into_iter()
        .map(|(p, _)| p)
        .filter(|p| is_sidecar_path(p))
        .collect();
    v.sort();
    v
}

/// The full sabotage matrix over one built index. `truth` comes from a
/// plain scan of the base table with pruning disabled.
fn assert_matrix(w: &World, index: &Arc<DgfIndex>, label: &str) {
    let scx = sidecar_files(&w.ctx, index);
    assert!(!scx.is_empty(), "{label}: build emitted no sidecars");

    for (qi, q) in queries().iter().enumerate() {
        w.ctx.set_scan_options(ScanOptions {
            columnar: false,
            prefetch: false,
            sidecar: false,
        });
        let truth = ScanEngine::new(Arc::clone(&w.ctx), Arc::clone(&w.base))
            .run(q)
            .unwrap()
            .result;
        let off = run_with_sidecar(w, index, q, false);
        assert_bits_eq(&off.result, &truth, &format!("{label} q{qi} sidecar=off"));
        assert_eq!(
            off.stats.scan.sidecar_hits + off.stats.scan.sidecar_misses,
            0,
            "{label} q{qi}: pruning disabled but sidecars were consulted"
        );
        let on = run_with_sidecar(w, index, q, true);
        assert_bits_eq(&on.result, &truth, &format!("{label} q{qi} sidecar=on"));
    }

    // Sabotage one sidecar: garbage bytes must degrade that slice to a
    // full scan (counted as corrupt), never change an answer.
    let victim = &scx[0];
    let original = w.ctx.hdfs.read_file(victim).unwrap();
    w.ctx.hdfs.delete_file(victim).unwrap();
    let mut wr = w.ctx.hdfs.create(victim).unwrap();
    std::io::Write::write_all(&mut wr, b"not a sidecar, sorry").unwrap();
    wr.close().unwrap();
    for (qi, q) in queries().iter().enumerate() {
        let off = run_with_sidecar(w, index, q, false);
        let got = run_with_sidecar(w, index, q, true);
        assert_bits_eq(
            &got.result,
            &off.result,
            &format!("{label} q{qi} corrupt-one-file"),
        );
        assert_eq!(
            got.stats.scan.sidecar_corrupt > 0,
            got.stats.scan.sidecar_bytes > 0,
            "{label} q{qi}: read the corrupt sidecar without flagging it"
        );
    }

    // Delete it outright: a missing sidecar is a miss, not an error.
    w.ctx.hdfs.delete_file(victim).unwrap();
    for (qi, q) in queries().iter().enumerate() {
        let off = run_with_sidecar(w, index, q, false);
        let got = run_with_sidecar(w, index, q, true);
        assert_bits_eq(
            &got.result,
            &off.result,
            &format!("{label} q{qi} missing-one-file"),
        );
    }

    // Restore for any later pass over the same world.
    let mut wr = w.ctx.hdfs.create(victim).unwrap();
    std::io::Write::write_all(&mut wr, &original).unwrap();
    wr.close().unwrap();
}

/// Tentpole matrix: fixed world, shard counts {1, 4}, all four sidecar
/// states, `f64::to_bits` equality throughout — plus proof that the
/// accelerator actually engages (hits and pruned groups on the
/// clustered non-grid predicate).
#[test]
fn sabotage_matrix_is_bit_identical_across_shards() {
    let rows = fixed_rows(600, 0.15);
    let w = world("fixed", &rows, 16);
    let index = build(&w, Arc::new(MemKvStore::new()));
    let extents = index.extents().unwrap();
    assert_matrix(&w, &index, "shards=1");

    // The clustered `seq` predicate must show real pruning work, and
    // the bytes-skipped ledger must move with it.
    let q = &queries()[1];
    let run = run_with_sidecar(&w, &index, q, true);
    assert!(
        run.stats.scan.sidecar_hits > 0,
        "no sidecar was consulted on a boundary-heavy plan"
    );
    assert!(
        run.stats.scan.sidecar_groups_pruned > 0,
        "clustered non-grid predicate pruned nothing"
    );
    assert!(
        run.stats.scan.sidecar_bytes_skipped > 0,
        "pruned groups charged no skipped bytes"
    );

    // Same data, same grid, GFUs routed over 4 KV shards: the sidecar
    // path reads files, not KV, so sharding must change nothing.
    let w4 = world("shard4", &rows, 16);
    let router: Arc<dyn KvStore> = Arc::new(sharded_mem(&extents, 4).unwrap());
    let index4 = build(&w4, router);
    assert_matrix(&w4, &index4, "shards=4");
}

fn random_predicate(rng: &mut StdRng) -> Predicate {
    let mut p = Predicate::all();
    if rng.random_bool(0.6) {
        let lo = rng.random_range(0i64..30);
        let hi = lo + rng.random_range(1i64..20);
        p = p.and("user", ColumnRange::half_open(Value::Int(lo), Value::Int(hi)));
    }
    if rng.random_bool(0.5) {
        let lo = rng.random_range(0i64..12);
        let hi = lo + rng.random_range(1i64..8);
        p = p.and("day", ColumnRange::half_open(Value::Int(lo), Value::Int(hi)));
    }
    // Non-grid dimensions: the grid planner cannot narrow these; only
    // the sidecar can.
    if rng.random_bool(0.5) {
        p = p.and("cat", ColumnRange::eq(Value::Int(rng.random_range(0i64..6))));
    }
    if rng.random_bool(0.5) {
        let lo = rng.random_range(0i64..350);
        let hi = lo + rng.random_range(1i64..120);
        p = p.and("seq", ColumnRange::half_open(Value::Int(lo), Value::Int(hi)));
    }
    if rng.random_bool(0.3) {
        p = p.and(
            "power",
            ColumnRange::open(Value::Float(-25.0), Value::Float(25.0)),
        );
    }
    p
}

fn random_query(rng: &mut StdRng) -> Query {
    let predicate = random_predicate(rng);
    match rng.random_range(0u32..3) {
        0 => Query::Aggregate {
            aggs: vec![
                AggFunc::Count,
                AggFunc::Sum("power".into()),
                AggFunc::Min("seq".into()),
                AggFunc::Max("power".into()),
            ],
            predicate,
        },
        1 => Query::GroupBy {
            key: "cat".into(),
            aggs: vec![AggFunc::Count, AggFunc::Sum("power".into())],
            predicate,
        },
        _ => Query::Select {
            project: vec!["user".into(), "seq".into(), "power".into()],
            predicate,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random rows, null densities, group geometry and predicates
    /// (including non-grid dimensions): sidecar on, off and corrupted
    /// all return the scan oracle's float bits, on 1 and 4 KV shards.
    #[test]
    fn random_worlds_survive_the_matrix(
        seed in 0u64..1_000_000,
        n_rows in 50usize..400,
        rows_per_group in 4usize..48,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let null_p = if rng.random_bool(0.25) { 0.4 } else { 0.1 };
        let mut rows = fixed_rows(n_rows, null_p);
        // Re-deal the non-key columns from this case's rng so worlds
        // differ by more than length.
        for (i, r) in rows.iter_mut().enumerate() {
            r[3] = Value::Int(i as i64);
            if !rng.random_bool(null_p) {
                r[2] = Value::Int(rng.random_range(0i64..6));
            }
            if !rng.random_bool(null_p) {
                r[4] = Value::Float(rng.random_range(-50.0..50.0));
            }
        }
        let w = world(&format!("p{seed}"), &rows, rows_per_group);
        let index = build(&w, Arc::new(MemKvStore::new()));
        let extents = index.extents().unwrap();
        let w4 = world(&format!("p{seed}x4"), &rows, rows_per_group);
        let index4 = build(&w4, Arc::new(sharded_mem(&extents, 4).unwrap()));

        let scx = sidecar_files(&w.ctx, &index);
        prop_assert!(!scx.is_empty());
        let victim = &scx[seed as usize % scx.len()];
        w.ctx.hdfs.delete_file(victim).unwrap();
        let mut wr = w.ctx.hdfs.create(victim).unwrap();
        std::io::Write::write_all(&mut wr, &[0xde, 0xad, 0xbe, 0xef]).unwrap();
        wr.close().unwrap();

        for qi in 0..3 {
            let q = random_query(&mut rng);
            w.ctx.set_scan_options(ScanOptions {
                columnar: false,
                prefetch: false,
                sidecar: false,
            });
            let truth = ScanEngine::new(Arc::clone(&w.ctx), Arc::clone(&w.base))
                .run(&q)
                .unwrap()
                .result;
            // Shard 1, one sidecar corrupted.
            let off = run_with_sidecar(&w, &index, &q, false);
            let on = run_with_sidecar(&w, &index, &q, true);
            assert_bits_eq(&off.result, &truth, &format!("seed {seed} q{qi} off"));
            assert_bits_eq(&on.result, &truth, &format!("seed {seed} q{qi} corrupt"));
            // Shard 4, sidecars intact.
            let on4 = run_with_sidecar(&w4, &index4, &q, true);
            assert_bits_eq(&on4.result, &truth, &format!("seed {seed} q{qi} shards=4"));
        }
    }
}

/// Crash sweep across sidecar publication. The base table is RCFile so
/// every slice write also writes a `.scx`; crashing at each
/// instrumented storage/KV site (including the sidecar create/write
/// sites and the staged renames that publish slice and sidecar
/// together) must leave a recoverable index whose answers equal a scan
/// — and never a slice directory polluted with staging leftovers.
#[test]
fn sidecar_publication_crash_sweep_recovers() {
    const STAGING_ROOT: &str = "/warehouse/dgf_scx_data/data_staging";
    let cfg = MeterConfig {
        users: 6,
        days: 3,
        ..MeterConfig::default()
    };
    let policy = || {
        SplittingPolicy::new(vec![
            DimPolicy::int("user_id", 0, 3),
            DimPolicy::date("ts", cfg.start_day, 1),
        ])
        .unwrap()
    };
    let the_aggs = || vec![AggFunc::Sum("power_consumed".into()), AggFunc::Count];
    let retry = RetryPolicy::fast(40);

    let drive = |tag: &str, plan: &Arc<FaultPlan>| -> (
        TempDir,
        Arc<HiveContext>,
        TableRef,
        Arc<dyn KvStore>,
        dgfindex::common::Result<()>,
    ) {
        let tmp = TempDir::new(&format!("scx-chaos-{tag}")).unwrap();
        let hdfs = SimHdfs::open(tmp.path()).unwrap();
        let ctx = HiveContext::new(hdfs, MrEngine::new(1));
        let base = ctx
            .create_table("meter", meter_schema(), FileFormat::RcFile)
            .unwrap();
        let inner: Arc<dyn KvStore> = Arc::new(MemKvStore::new());
        let rows = generate_meter_data(&cfg);
        let per_day = rows.len() / cfg.days as usize;
        ctx.load_rows(&base, &rows[..2 * per_day], 2).unwrap();

        ctx.hdfs.enable_faults(Arc::clone(plan), retry);
        let kv: Arc<dyn KvStore> = Arc::new(ChaosKv::new(Arc::clone(&inner), Arc::clone(plan)));
        let options = IndexOptions {
            retry,
            fault: Some(Arc::clone(plan)),
            ..IndexOptions::default()
        };
        let out = (|| {
            let (index, _) = DgfIndex::build_with_options(
                Arc::clone(&ctx),
                Arc::clone(&base),
                policy(),
                the_aggs(),
                kv,
                "dgf_scx",
                options,
            )?;
            index.append(&rows[2 * per_day..])?;
            Ok(())
        })();
        (tmp, ctx, base, inner, out)
    };

    let verify = |ctx: &Arc<HiveContext>, base: &TableRef, inner: &Arc<dyn KvStore>| {
        ctx.hdfs.disable_faults();
        let index = match DgfIndex::open(
            Arc::clone(ctx),
            Arc::clone(base),
            Arc::clone(inner),
            "dgf_scx",
            the_aggs(),
        ) {
            Ok(index) => Arc::new(index),
            Err(e) => {
                assert!(
                    e.to_string().contains("no DGFIndex metadata"),
                    "unexpected open error: {e}"
                );
                ctx.drop_table("dgf_scx_data").unwrap();
                let (index, _) = DgfIndex::build(
                    Arc::clone(ctx),
                    Arc::clone(base),
                    policy(),
                    the_aggs(),
                    Arc::clone(inner),
                    "dgf_scx",
                )
                .unwrap();
                Arc::new(index)
            }
        };
        // Every committed slice has exactly the sidecars the data dir
        // says it should: no orphan .scx without its data file.
        for scx in sidecar_files(ctx, &index) {
            let data = scx.strip_suffix(".scx").unwrap();
            assert!(
                ctx.hdfs.file_exists(data),
                "orphan sidecar {scx} survived recovery"
            );
        }
        assert!(
            ctx.hdfs.list_files(STAGING_ROOT).is_empty(),
            "staging files leaked"
        );
        // Answers equal a scan of the current base table — with
        // pruning on, over whatever mix of sidecars the crash left.
        ctx.set_scan_options(ScanOptions {
            columnar: true,
            prefetch: true,
            sidecar: true,
        });
        let q = Query::Aggregate {
            aggs: the_aggs(),
            predicate: Predicate::all()
                .and(
                    "user_id",
                    ColumnRange::half_open(Value::Int(1), Value::Int(5)),
                )
                .and(
                    "ts",
                    ColumnRange::half_open(
                        Value::Date(cfg.start_day),
                        Value::Date(cfg.start_day + 2),
                    ),
                ),
        };
        let truth = ScanEngine::new(Arc::clone(ctx), Arc::clone(base))
            .run(&q)
            .unwrap()
            .result;
        let got = DgfEngine::new(index).run(&q).unwrap().result;
        assert!(
            got.approx_eq(&truth, 1e-9),
            "recovered index disagrees with scan: {got:?} vs {truth:?}"
        );
    };

    // Record the crash-site space with a quiet plan.
    let quiet = Arc::new(FaultPlan::new(FaultConfig::quiet(0)));
    let (_tmp, ctx, base, inner, out) = drive("record", &quiet);
    out.unwrap();
    verify(&ctx, &base, &inner);
    let sites = quiet.points_hit();
    assert!(sites >= 10, "expected a rich crash-site space, got {sites}");

    // Crash once at every site; recovery must converge from each.
    for site in 0..sites {
        let plan = Arc::new(FaultPlan::new(FaultConfig::crash_at(site, site)));
        let (_tmp, ctx, base, inner, out) = drive(&format!("s{site}"), &plan);
        assert!(out.is_err(), "site {site}: scheduled crash did not fire");
        assert!(plan.crashed(), "site {site}: failed without crashing: {out:?}");
        verify(&ctx, &base, &inner);
    }
}

/// The sidecar file itself round-trips the staged commit: after a clean
/// build every slice has exactly one sidecar, named by suffix.
#[test]
fn every_slice_gets_exactly_one_sidecar() {
    let rows = fixed_rows(300, 0.1);
    let w = world("pair", &rows, 16);
    let index = build(&w, Arc::new(MemKvStore::new()));
    let files = w.ctx.hdfs.list_files(&index.data.location);
    let data: Vec<&String> = files
        .iter()
        .map(|(p, _)| p)
        .filter(|p| !is_sidecar_path(p))
        .collect();
    let scx: Vec<&String> = files
        .iter()
        .map(|(p, _)| p)
        .filter(|p| is_sidecar_path(p))
        .collect();
    assert!(!data.is_empty());
    assert_eq!(data.len(), scx.len(), "slice/sidecar pairing broke");
    for d in data {
        assert!(
            scx.iter().any(|s| **s == sidecar_path(d)),
            "slice {d} has no sidecar"
        );
    }
}
