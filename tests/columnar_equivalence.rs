//! Vectorized ≡ row-wise equivalence (DESIGN.md §12).
//!
//! The columnar batch path (decode once into `ColumnBatch`, selection
//! vectors, slice aggregate kernels, optional background prefetch) must
//! return **bit-identical** results to the row-at-a-time oracle for every
//! query shape, any worker count, any projection, any null pattern and
//! any row-group geometry. The kernels preserve fold order and Neumaier
//! compensation exactly, so the assertion here is `assert_eq!` on
//! `QueryResult` — no float tolerance.

use std::collections::HashMap;
use std::sync::Arc;

use dgfindex::format::Bitmap;
use dgfindex::hive::{execute, ScanInput};
use dgfindex::prelude::*;
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn schema() -> SchemaRef {
    Arc::new(Schema::from_pairs(&[
        ("id", ValueType::Int),
        ("cat", ValueType::Int),
        ("power", ValueType::Float),
        ("name", ValueType::Str),
        ("ts", ValueType::Date),
    ]))
}

const BASE_DAY: i64 = 15_000;

/// Random rows with per-cell null holes (never the whole table null).
fn random_rows(rng: &mut StdRng, n: usize, null_p: f64) -> Vec<Row> {
    fn cell(rng: &mut StdRng, null_p: f64, v: Value) -> Value {
        if rng.random_bool(null_p) {
            Value::Null
        } else {
            v
        }
    }
    (0..n)
        .map(|_| {
            let id = Value::Int(rng.random_range(0i64..200));
            let cat = Value::Int(rng.random_range(0i64..6));
            let power = Value::Float(rng.random_range(-50.0..50.0));
            let name = Value::Str(format!("n{}", rng.random_range(0i64..40)));
            let ts = Value::Date(BASE_DAY + rng.random_range(0i64..10));
            vec![
                cell(rng, null_p, id),
                cell(rng, null_p, cat),
                cell(rng, null_p, power),
                cell(rng, null_p, name),
                cell(rng, null_p, ts),
            ]
        })
        .collect()
}

fn random_predicate(rng: &mut StdRng) -> Predicate {
    let mut p = Predicate::all();
    if rng.random_bool(0.6) {
        let lo = rng.random_range(0i64..150);
        let hi = lo + rng.random_range(1i64..120);
        p = p.and("id", ColumnRange::half_open(Value::Int(lo), Value::Int(hi)));
    }
    if rng.random_bool(0.4) {
        p = p.and("cat", ColumnRange::eq(Value::Int(rng.random_range(0i64..6))));
    }
    if rng.random_bool(0.4) {
        let lo = BASE_DAY + rng.random_range(0i64..8);
        p = p.and(
            "ts",
            ColumnRange::half_open(Value::Date(lo), Value::Date(lo + rng.random_range(1i64..5))),
        );
    }
    if rng.random_bool(0.3) {
        p = p.and(
            "power",
            ColumnRange::open(Value::Float(-20.0), Value::Float(30.0)),
        );
    }
    if rng.random_bool(0.2) {
        // A string-typed bound exercises the allocation-free string kernel.
        p = p.and(
            "name",
            ColumnRange::half_open(Value::Str("n1".into()), Value::Str("n3".into())),
        );
    }
    p
}

fn random_query(rng: &mut StdRng) -> Query {
    let predicate = random_predicate(rng);
    match rng.random_range(0u32..4) {
        0 => {
            let pool = [
                AggFunc::Count,
                AggFunc::Sum("power".into()),
                AggFunc::Min("power".into()),
                AggFunc::Max("power".into()),
                AggFunc::Avg("power".into()),
                AggFunc::Min("name".into()),
                AggFunc::Max("ts".into()),
                AggFunc::Sum("id".into()),
            ];
            let mut aggs: Vec<AggFunc> = pool
                .iter()
                .filter(|_| rng.random_bool(0.5))
                .cloned()
                .collect();
            if aggs.is_empty() {
                aggs.push(AggFunc::Sum("power".into()));
            }
            Query::Aggregate { aggs, predicate }
        }
        1 => Query::GroupBy {
            key: "cat".into(),
            aggs: vec![
                AggFunc::Count,
                AggFunc::Sum("power".into()),
                AggFunc::Max("power".into()),
            ],
            predicate,
        },
        2 => {
            let all = ["id", "cat", "power", "name", "ts"];
            let project: Vec<String> = all
                .iter()
                .filter(|_| rng.random_bool(0.4))
                .map(|s| s.to_string())
                .collect();
            // Empty projection means SELECT * — also worth covering.
            Query::Select { project, predicate }
        }
        _ => Query::Join {
            left_key: "id".into(),
            right_key: "uid".into(),
            left_project: vec!["power".into(), "name".into()],
            right_project: vec!["uname".into()],
            predicate,
        },
    }
}

struct World {
    _tmp: TempDir,
    hdfs: dgfindex::storage::HdfsRef,
    table: TableRef,
    users: TableRef,
}

/// Write `rows` as one RCFile table with the given group geometry, plus
/// a small text dimension table for joins.
fn build_world(rows: &[Row], rows_per_group: usize, num_files: usize) -> World {
    let tmp = TempDir::new("coleq").unwrap();
    let hdfs = SimHdfs::new(
        tmp.path(),
        HdfsConfig {
            block_size: 4 * 1024,
            replication: 1,
        },
    )
    .unwrap();
    let ctx = HiveContext::new(hdfs.clone(), MrEngine::new(1));
    let created = ctx.create_table("t", schema(), FileFormat::RcFile).unwrap();
    let mut desc = (*created).clone();
    desc.rows_per_group = rows_per_group;
    ctx.load_rows(&desc, rows, num_files).unwrap();

    let user_schema = Arc::new(Schema::from_pairs(&[
        ("uid", ValueType::Int),
        ("uname", ValueType::Str),
    ]));
    let users = ctx
        .create_table("users", user_schema, FileFormat::Text)
        .unwrap();
    let user_rows: Vec<Row> = (0..200)
        .map(|i| vec![Value::Int(i), Value::Str(format!("u{i}"))])
        .collect();
    ctx.load_rows(&users, &user_rows, 1).unwrap();

    World {
        _tmp: tmp,
        hdfs,
        table: Arc::new(desc),
        users,
    }
}

/// Run `query` under the given scan options and worker count on a fresh
/// context over the world's files.
fn run_with(w: &World, query: &Query, options: ScanOptions, workers: usize) -> QueryResult {
    let ctx = HiveContext::new(w.hdfs.clone(), MrEngine::new(workers));
    ctx.set_scan_options(options);
    ScanEngine::new(ctx, Arc::clone(&w.table))
        .with_right(Arc::clone(&w.users))
        .run(query)
        .unwrap()
        .result
}

/// The full matrix: row-wise oracle vs columnar vs columnar+prefetch,
/// each at 1, 2 and 8 map workers, all bit-identical.
fn assert_equivalent(w: &World, query: &Query, label: &str) {
    let oracle = run_with(
        w,
        query,
        ScanOptions {
            columnar: false,
            prefetch: false,
            sidecar: true,
        },
        1,
    );
    for workers in [1usize, 2, 8] {
        for (columnar, prefetch) in [(false, false), (true, false), (true, true)] {
            let got = run_with(
                w,
                query,
                ScanOptions { columnar, prefetch, sidecar: true },
                workers,
            );
            assert_eq!(
                got, oracle,
                "{label}: columnar={columnar} prefetch={prefetch} workers={workers} \
                 diverged from the row-wise oracle"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random rows, null patterns, group geometry, file counts, query
    /// shapes and predicates: every engine configuration returns exactly
    /// the row-wise oracle's answer.
    #[test]
    fn vectorized_path_is_bit_identical_to_rowwise(
        seed in 0u64..1_000_000,
        n_rows in 0usize..600,
        rows_per_group in 1usize..64,
        num_files in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let null_p = if rng.random_bool(0.2) { 0.5 } else { 0.1 };
        let rows = random_rows(&mut rng, n_rows, null_p);
        let w = build_world(&rows, rows_per_group, num_files);
        for q in 0..3 {
            let query = random_query(&mut rng);
            assert_equivalent(&w, &query, &format!("seed {seed} query {q}"));
        }
    }
}

#[test]
fn empty_table_and_all_filtered_batches() {
    // Zero groups: the batched reader must hand back nothing, not panic.
    let w = build_world(&[], 8, 1);
    let count = Query::Aggregate {
        aggs: vec![AggFunc::Count, AggFunc::Sum("power".into())],
        predicate: Predicate::all(),
    };
    assert_equivalent(&w, &count, "empty table");

    // Every batch filtered out: selections are empty in every group.
    let mut rng = StdRng::seed_from_u64(7);
    let rows = random_rows(&mut rng, 100, 0.1);
    let w = build_world(&rows, 8, 2);
    let none = Query::Aggregate {
        aggs: vec![AggFunc::Count, AggFunc::Min("power".into())],
        predicate: Predicate::all().and("id", ColumnRange::eq(Value::Int(1_000_000))),
    };
    assert_equivalent(&w, &none, "all filtered");
}

#[test]
fn last_partial_group_round_trips() {
    // 10 rows in groups of 4: the final group holds 2 rows.
    let mut rng = StdRng::seed_from_u64(11);
    let rows = random_rows(&mut rng, 10, 0.2);
    let w = build_world(&rows, 4, 1);
    let q = Query::Select {
        project: vec![],
        predicate: Predicate::all(),
    };
    assert_equivalent(&w, &q, "partial last group");
}

#[test]
fn row_filter_with_empty_bitmap_group_matches_rowwise() {
    // An RcFiltered input whose bitmap keeps no rows of group 0 produces
    // an *empty batch* on the columnar path (the group is still fetched);
    // a group absent from the map is never fetched at all. Both paths
    // must agree.
    let mut rng = StdRng::seed_from_u64(23);
    let rows = random_rows(&mut rng, 30, 0.1);
    let w = build_world(&rows, 10, 1);
    let path = w.hdfs.list_files(&w.table.location)[0].0.clone();
    let offsets = dgfindex::format::read_group_offsets(&w.hdfs, &path).unwrap();
    assert_eq!(offsets.len(), 3);
    let mut filter: HashMap<u64, Bitmap> = HashMap::new();
    filter.insert(offsets[0], Bitmap::new()); // fetched, all rows dropped
    filter.insert(offsets[1], [1usize, 3, 9].into_iter().collect());
    // offsets[2] absent: never fetched.
    let query = Query::Aggregate {
        aggs: vec![AggFunc::Count, AggFunc::Sum("power".into())],
        predicate: Predicate::all(),
    };
    let len = w.hdfs.file_len(&path).unwrap();
    let input = ScanInput::RcFiltered {
        split: dgfindex::storage::FileSplit::new(path, 0, len),
        row_filter: filter,
    };
    let mut results = Vec::new();
    for (columnar, prefetch) in [(false, false), (true, false), (true, true)] {
        let ctx = HiveContext::new(w.hdfs.clone(), MrEngine::new(2));
        ctx.set_scan_options(ScanOptions { columnar, prefetch, sidecar: true });
        let r = execute(&ctx, &w.table, &query, None, vec![input.clone()]).unwrap();
        results.push(r);
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[0], results[2]);
    // Exactly the 3 surviving rows of group 1 were counted.
    assert_eq!(results[0].clone().into_scalars()[0], Value::Int(3));
}
