//! Seeded chaos suite: deterministic crash injection across the
//! build / append / reorganize stack.
//!
//! The model is a client (job) process dying while the key-value store
//! and the file system survive as durable services: every test crashes
//! the driver at an instrumented site, reattaches with fresh fault-free
//! handles over the *same* stores, and asserts the recovery invariants:
//!
//! * `DgfIndex::open` succeeds (or fails only with "no DGFIndex
//!   metadata", which can happen solely when the initial build crashed
//!   before its commit point — and then the store must be empty enough
//!   to rebuild from scratch);
//! * the recovered index answers queries identically to a full scan of
//!   the current base table;
//! * no staged keys, no transaction manifest, and no staging files leak.
//!
//! Everything is a pure function of the seeds below — a failure here
//! reproduces exactly.

use std::sync::Arc;

use dgfindex::core::txn::{STAGE_PREFIX, TXN_MANIFEST_KEY};
use dgfindex::prelude::*;
use dgfindex::workload::{generate_meter_data, meter_schema, MeterConfig};

const INDEX: &str = "dgf_chaos";
/// Sibling of the reorganized data directory; must be empty after
/// recovery, whichever side of the commit point the crash landed on.
const STAGING_ROOT: &str = "/warehouse/dgf_chaos/data_staging";

fn retry() -> RetryPolicy {
    // Zero backoff keeps the sweep wall-clock-free; 40 attempts makes
    // budget exhaustion at p_transient = 0.2 astronomically unlikely.
    RetryPolicy::fast(40)
}

fn aggs() -> Vec<AggFunc> {
    vec![AggFunc::Sum("power_consumed".into()), AggFunc::Count]
}

fn meter_cfg() -> MeterConfig {
    MeterConfig {
        users: 8,
        days: 4,
        ..MeterConfig::default()
    }
}

fn grid(cfg: &MeterConfig) -> SplittingPolicy {
    SplittingPolicy::new(vec![
        DimPolicy::int("user_id", 0, 4),
        DimPolicy::date("ts", cfg.start_day, 1),
    ])
    .unwrap()
}

struct World {
    tmp: TempDir,
    ctx: Arc<HiveContext>,
    base: TableRef,
    inner: Arc<dyn KvStore>,
}

fn world(tag: &str) -> World {
    let tmp = TempDir::new(&format!("chaos-{tag}")).unwrap();
    let hdfs = SimHdfs::open(tmp.path()).unwrap();
    // One worker so crash-point ordinals are globally deterministic.
    let ctx = HiveContext::new(hdfs, MrEngine::new(1));
    let base = ctx
        .create_table("meter", meter_schema(), FileFormat::Text)
        .unwrap();
    World {
        tmp,
        ctx,
        base,
        inner: Arc::new(MemKvStore::new()),
    }
}

/// Load two days fault-free, then build the index and append the
/// remaining two days entirely under `plan`. A scheduled crash surfaces
/// as `Err` from whichever call hit it.
fn drive(w: &World, plan: &Arc<FaultPlan>) -> dgfindex::common::Result<()> {
    let cfg = meter_cfg();
    let rows = generate_meter_data(&cfg);
    let per_day = rows.len() / cfg.days as usize;
    w.ctx.load_rows(&w.base, &rows[..2 * per_day], 2).unwrap();

    w.ctx.hdfs.enable_faults(Arc::clone(plan), retry());
    let kv: Arc<dyn KvStore> = Arc::new(ChaosKv::new(Arc::clone(&w.inner), Arc::clone(plan)));
    let options = IndexOptions {
        retry: retry(),
        fault: Some(Arc::clone(plan)),
        ..IndexOptions::default()
    };
    let (index, _) = DgfIndex::build_with_options(
        Arc::clone(&w.ctx),
        Arc::clone(&w.base),
        grid(&cfg),
        aggs(),
        kv,
        INDEX,
        options,
    )?;
    index.append(&rows[2 * per_day..3 * per_day])?;
    index.append(&rows[3 * per_day..])?;
    Ok(())
}

/// The recovered index must agree with a full scan of the *current*
/// base table — whatever prefix of the workload committed.
fn check_answers(ctx: &Arc<HiveContext>, base: &TableRef, index: Arc<DgfIndex>) {
    let cfg = meter_cfg();
    let queries = [
        Query::Aggregate {
            aggs: vec![AggFunc::Count],
            predicate: Predicate::all(),
        },
        // Misaligned region: exercises boundary Slices and inner headers.
        Query::Aggregate {
            aggs: aggs(),
            predicate: Predicate::all()
                .and(
                    "user_id",
                    ColumnRange::half_open(Value::Int(1), Value::Int(7)),
                )
                .and(
                    "ts",
                    ColumnRange::half_open(
                        Value::Date(cfg.start_day + 1),
                        Value::Date(cfg.start_day + 3),
                    ),
                ),
        },
    ];
    let scan = ScanEngine::new(Arc::clone(ctx), Arc::clone(base));
    let dgf = DgfEngine::new(index);
    for q in &queries {
        let truth = scan.run(q).unwrap().result;
        let got = dgf.run(q).unwrap().result;
        assert!(
            got.approx_eq(&truth, 1e-9),
            "recovered index disagrees with scan: {got:?} vs {truth:?}"
        );
    }
}

/// Reattach with fault-free handles and assert every recovery invariant.
fn verify_recovered(ctx: &Arc<HiveContext>, base: &TableRef, inner: &Arc<dyn KvStore>) {
    ctx.hdfs.disable_faults();
    let cfg = meter_cfg();
    match DgfIndex::open(
        Arc::clone(ctx),
        Arc::clone(base),
        Arc::clone(inner),
        INDEX,
        aggs(),
    ) {
        Ok(index) => check_answers(ctx, base, Arc::new(index)),
        Err(e) => {
            // Only a crash before the initial build's commit point can
            // leave the store without metadata; recovery must then have
            // rolled the half-built index back to nothing.
            let msg = e.to_string();
            assert!(
                msg.contains("no DGFIndex metadata"),
                "unexpected open error: {msg}"
            );
            assert!(
                inner.scan_prefix(b"g:").unwrap().is_empty(),
                "rolled-back build leaked GFU entries"
            );
            // The store is clean, so a from-scratch rebuild must work.
            ctx.drop_table(&format!("{INDEX}_data")).unwrap();
            let (index, _) = DgfIndex::build(
                Arc::clone(ctx),
                Arc::clone(base),
                grid(&cfg),
                aggs(),
                Arc::clone(inner),
                INDEX,
            )
            .unwrap();
            check_answers(ctx, base, Arc::new(index));
        }
    }
    // No residue from the interrupted transaction, whichever way it went.
    assert!(
        inner.scan_prefix(STAGE_PREFIX).unwrap().is_empty(),
        "staged keys leaked"
    );
    assert!(
        inner.get(TXN_MANIFEST_KEY).unwrap().is_none(),
        "transaction manifest leaked"
    );
    assert!(
        ctx.hdfs.list_files(STAGING_ROOT).is_empty(),
        "staging files leaked"
    );
}

/// Count the crash sites the workload passes through with a quiet plan,
/// verifying the recording run itself is healthy.
fn record_sites(tag: &str) -> u64 {
    let quiet = Arc::new(FaultPlan::new(FaultConfig::quiet(0)));
    let w = world(tag);
    drive(&w, &quiet).unwrap();
    verify_recovered(&w.ctx, &w.base, &w.inner);
    let sites = quiet.points_hit();
    assert!(sites >= 10, "expected a rich crash-site space, got {sites}");
    sites
}

/// Crash at every instrumented site once; recovery must converge from
/// each of them.
#[test]
fn crash_matrix_every_site_recovers() {
    let sites = record_sites("record");
    for site in 0..sites {
        let w = world(&format!("site{site}"));
        let plan = Arc::new(FaultPlan::new(FaultConfig::crash_at(site, site)));
        let out = drive(&w, &plan);
        assert!(out.is_err(), "site {site}: scheduled crash did not fire");
        assert!(plan.crashed(), "site {site}: failed without crashing: {out:?}");
        verify_recovered(&w.ctx, &w.base, &w.inner);
    }
}

/// The same matrix under transient-fault noise: eight seeds, every
/// site, 20% of operations failing transiently on top of the crash.
/// Retries absorb the noise, so the ordinal space is unchanged and the
/// crash still lands on the intended site.
#[test]
fn crash_matrix_with_transient_noise_recovers() {
    let sites = record_sites("record-noise");
    for seed in 1..=8u64 {
        for site in 0..sites {
            let w = world(&format!("s{seed}x{site}"));
            let plan = Arc::new(FaultPlan::new(FaultConfig {
                p_transient: 0.2,
                ..FaultConfig::crash_at(seed, site)
            }));
            let out = drive(&w, &plan);
            assert!(out.is_err(), "seed {seed} site {site}: crash did not fire");
            assert!(
                plan.crashed(),
                "seed {seed} site {site}: failed without crashing: {out:?}"
            );
            verify_recovered(&w.ctx, &w.base, &w.inner);
        }
    }
}

/// Crash after the n-th storage write instead of at a protocol site —
/// lands mid-file, mid-reorganize, wherever the count falls. Large n
/// may outlive the workload (no crash); the invariants hold either way.
#[test]
fn crash_after_nth_write_recovers() {
    for n in [1u64, 3, 7, 15, 31, 63] {
        let w = world(&format!("w{n}"));
        let plan = Arc::new(FaultPlan::new(FaultConfig::crash_after_writes(n, n)));
        let out = drive(&w, &plan);
        if plan.crashed() {
            assert!(out.is_err(), "write {n}: crash was swallowed");
        } else {
            out.unwrap();
        }
        verify_recovered(&w.ctx, &w.base, &w.inner);
    }
}

/// A crash followed by a full warehouse restart: the namenode re-walks
/// the on-disk tree (picking up any staging directory or torn delta the
/// dying client left behind), the catalog is restored from a snapshot,
/// and recovery still converges over the rediscovered namespace.
#[test]
fn warehouse_restart_after_crash_recovers() {
    let sites = record_sites("record-restart");
    // An early build site, mid-workload, and the final append's tail.
    let picks = [1, sites / 2, sites.saturating_sub(3), sites - 1];
    for &site in &picks {
        let w = world(&format!("restart{site}"));
        let plan = Arc::new(FaultPlan::new(FaultConfig::crash_at(site, site)));
        assert!(drive(&w, &plan).is_err(), "site {site}: crash did not fire");

        let descs = w.ctx.tables_snapshot();
        let hdfs2 = SimHdfs::reopen(w.tmp.path(), HdfsConfig::default()).unwrap();
        let ctx2 = HiveContext::new(hdfs2, MrEngine::new(1));
        for d in descs {
            ctx2.register_restored_table(d).unwrap();
        }
        let base2 = ctx2.table("meter").unwrap();
        // The key-value service survives the restart untouched.
        verify_recovered(&ctx2, &base2, &w.inner);
    }
}
