//! The streaming ingestor: WAL → memtable → staged-commit flush.
//!
//! Write path of one batch (`ingest`):
//!
//! 1. **Validate** — every row's indexed dimensions standardize to GFU
//!    cells *before* any side effect, so a malformed batch is rejected
//!    whole.
//! 2. **Admit** — admission control bounds buffered bytes by *reserving*
//!    the batch's bytes atomically up front (released again on rejection
//!    or failure), so N racing batches cannot each pass a stale check and
//!    collectively overshoot the bound; over the limit the batch is
//!    rejected with [`DgfError::Backpressure`] and counted, never
//!    silently dropped or blocking.
//! 3. **Log** — the batch is appended to the [`IngestWal`] and made
//!    durable by a group commit (one writer flush + fsync covers every
//!    batch appended so far, judged by append ticket).
//! 4. **Buffer** — rows land in the active memtable slot, updating each
//!    touched GFU cell's running partial aggregates.
//!
//! Steps 3–4 (from sequence allocation through the memtable insert) run
//! under the shared side of a batch gate; a flush's memtable snapshot
//! takes the exclusive side. The snapshot therefore never observes a
//! `max_seq` while some lower, already-WAL-appended sequence is still on
//! its way into the memtable — without the gate such a flush would
//! commit a watermark covering that in-flight batch, and recovery would
//! drop it from both the WAL and the memtable: an acknowledged batch
//! lost. Concurrent ingesters share the gate (reads), so group-commit
//! amortization is unaffected.
//!
//! The ack (the returned sequence) means: durable in the WAL, and
//! visible to every subsequent query through the index's
//! [`FreshSource`] merge — with **zero** header-cache generation bumps
//! until a flush actually rewrites Slices.
//!
//! The flush (inline when the active slot fills, or from the background
//! flusher when it ages out) swaps the active slot into the flushing
//! slot — the union queries see is unchanged — and runs the existing
//! staged-commit append with the batch watermark riding the manifest's
//! meta puts: Slices publish and the watermark advances in the same
//! atomic commit, which is exactly when the slot stops being merged
//! from memory. Crash anywhere and `DgfIndex::recover` plus WAL replay
//! reconstruct a state equal to some prefix of acknowledged batches
//! (plus, possibly, one unacknowledged in-flight batch — atomic either
//! way).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};

use dgf_common::fault::FaultPlan;
use dgf_common::obs::{names, MetricsRegistry, SpanGuard};
use dgf_common::{format_row, parse_row, DgfError, Result, Row};
use dgf_core::{DgfIndex, FreshCell, FreshSource};
use dgf_query::AggSet;

use crate::memtable::Memtable;
use crate::wal::IngestWal;

/// Tuning knobs for [`StreamIngestor`].
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Admission control: reject batches that would push buffered bytes
    /// (formatted-row accounting) past this bound.
    pub max_buffered_bytes: u64,
    /// Flush inline once the active slot buffers this many rows.
    pub flush_rows: u64,
    /// Background flusher: flush a non-empty active slot older than this.
    pub flush_age: Duration,
    /// Poll interval of the background flusher thread; `None` disables
    /// the thread entirely (flushes then happen only inline or via
    /// [`StreamIngestor::flush`] — what deterministic tests want).
    pub auto_flush_interval: Option<Duration>,
    /// Fault schedule consulted at the ingest crash points
    /// (`ingest.wal-appended`, `ingest.wal-synced`, `ingest.flush-staged`,
    /// `ingest.flush-committed`), in addition to whatever plan the index
    /// itself was opened with.
    pub fault: Option<Arc<FaultPlan>>,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            max_buffered_bytes: 64 << 20,
            flush_rows: 50_000,
            flush_age: Duration::from_millis(200),
            auto_flush_interval: Some(Duration::from_millis(25)),
            fault: None,
        }
    }
}

/// Counters of the streaming write path (mirrored into the `ingest.*`
/// observability names).
#[derive(Debug, Default)]
pub struct IngestStats {
    /// Acknowledged batches.
    pub batches: AtomicU64,
    /// Acknowledged rows.
    pub rows: AtomicU64,
    /// Bytes appended to the WAL.
    pub wal_bytes: AtomicU64,
    /// WAL sync (group-commit) operations actually performed.
    pub wal_syncs: AtomicU64,
    /// Batches rejected by admission control.
    pub rejections: AtomicU64,
    /// Completed flushes.
    pub flushes: AtomicU64,
    /// Rows converted into Slices by completed flushes.
    pub flushed_rows: AtomicU64,
    /// Flush attempts that failed (the ingestor is then poisoned).
    pub flush_failures: AtomicU64,
    /// Batches restored from the WAL at open.
    pub replayed_batches: AtomicU64,
    /// Rows restored from the WAL at open.
    pub replayed_rows: AtomicU64,
}

impl IngestStats {
    /// Point-in-time copy of all counters.
    pub fn snapshot(&self) -> IngestStatsSnapshot {
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        IngestStatsSnapshot {
            batches: ld(&self.batches),
            rows: ld(&self.rows),
            wal_bytes: ld(&self.wal_bytes),
            wal_syncs: ld(&self.wal_syncs),
            rejections: ld(&self.rejections),
            flushes: ld(&self.flushes),
            flushed_rows: ld(&self.flushed_rows),
            flush_failures: ld(&self.flush_failures),
            replayed_batches: ld(&self.replayed_batches),
            replayed_rows: ld(&self.replayed_rows),
        }
    }
}

/// A plain-value copy of [`IngestStats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings documented on IngestStats
pub struct IngestStatsSnapshot {
    pub batches: u64,
    pub rows: u64,
    pub wal_bytes: u64,
    pub wal_syncs: u64,
    pub rejections: u64,
    pub flushes: u64,
    pub flushed_rows: u64,
    pub flush_failures: u64,
    pub replayed_batches: u64,
    pub replayed_rows: u64,
}

impl IngestStatsSnapshot {
    fn named(&self) -> [(&'static str, u64); 10] {
        [
            (names::INGEST_BATCHES, self.batches),
            (names::INGEST_ROWS, self.rows),
            (names::INGEST_WAL_BYTES, self.wal_bytes),
            (names::INGEST_WAL_SYNCS, self.wal_syncs),
            (names::INGEST_REJECTIONS, self.rejections),
            (names::INGEST_FLUSHES, self.flushes),
            (names::INGEST_FLUSHED_ROWS, self.flushed_rows),
            (names::INGEST_FLUSH_FAILURES, self.flush_failures),
            (names::INGEST_REPLAYED_BATCHES, self.replayed_batches),
            (names::INGEST_REPLAYED_ROWS, self.replayed_rows),
        ]
    }

    /// Project into a [`MetricsRegistry`] under the stable `ingest.*`
    /// names.
    pub fn record_into(&self, reg: &MetricsRegistry) {
        for (name, v) in self.named() {
            reg.add(name, v);
        }
    }

    /// Attach non-zero counters to a span under the `ingest.*` names.
    pub fn attach_to_span(&self, span: &SpanGuard) {
        for (name, v) in self.named() {
            if v > 0 {
                span.add(name, v);
            }
        }
    }
}

/// The memtable + epoch state shared between the ingestor and the
/// planner. The index holds this as its [`FreshSource`]; it holds no
/// reference back to the index, so dropping the [`StreamIngestor`]
/// leaves already-acknowledged (replayed or buffered) rows visible to
/// queries until the source is cleared or the process exits.
#[derive(Debug, Default)]
pub struct IngestShared {
    mem: Mutex<Memtable>,
    /// Flush epoch: even = quiescent, odd = a flush is publishing.
    /// Incremented once when a flush starts publishing and once when its
    /// memtable slot clears, so any plan that overlapped a flush sees the
    /// epoch change (or odd) and re-snapshots. See `DgfPlan`'s fetch loop.
    epoch: AtomicU64,
    buffered_bytes: AtomicU64,
}

impl IngestShared {
    /// Bytes currently buffered (admission-control accounting).
    pub fn buffered_bytes(&self) -> u64 {
        self.buffered_bytes.load(Ordering::SeqCst)
    }
}

impl FreshSource for IngestShared {
    fn has_fresh(&self) -> bool {
        self.mem.lock().has_rows()
    }

    fn fresh_cells(&self, flushed_seq: u64) -> Vec<FreshCell> {
        self.mem.lock().fresh_cells(flushed_seq)
    }

    fn flush_epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }
}

/// Everything the flush path needs, shared with the background flusher.
struct Core {
    index: Arc<DgfIndex>,
    shared: Arc<IngestShared>,
    wal: IngestWal,
    config: IngestConfig,
    agg_set: AggSet,
    dim_idx: Vec<usize>,
    next_seq: AtomicU64,
    /// Guards the seq-allocate → WAL-append → memtable-insert window:
    /// ingesters hold the shared side across it, the flush snapshot takes
    /// the exclusive side, so a snapshot's `max_seq` always covers every
    /// lower acknowledged sequence (see the module docs).
    batch_gate: RwLock<()>,
    /// Serializes flushes (inline, explicit, and background).
    flush_lock: Mutex<()>,
    stats: IngestStats,
    /// Set when a flush failed: a retried append could overwrite a
    /// Committed manifest with a fresh Intent and lose staged
    /// publications, so the only safe continuation is a reopen (which
    /// runs `DgfIndex::recover` and replays the WAL).
    poisoned: AtomicBool,
}

impl Core {
    fn crash_point(&self, site: &str) -> Result<()> {
        match &self.config.fault {
            Some(plan) => plan.crash_point(site),
            None => Ok(()),
        }
    }

    /// Seeded interleaving yield (see `FaultPlan::sync_point`): widens
    /// the window around the flush's index commit so the concurrency
    /// harness can drive query threads through it deterministically.
    fn sync_point(&self, site: &str) {
        if let Some(plan) = &self.config.fault {
            plan.sync_point(site);
        }
    }

    fn check_poisoned(&self) -> Result<()> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(DgfError::Index(
                "streaming ingestor is poisoned by a failed flush; reopen the \
                 index and the ingestor to recover (acknowledged rows are safe \
                 in the WAL)"
                    .into(),
            ));
        }
        Ok(())
    }

    /// Standardize every row to its GFU cell coordinates and formatted
    /// line. Pure validation — no side effects, so a bad row rejects the
    /// whole batch before the WAL sees it.
    fn route(&self, rows: &[Row]) -> Result<Vec<(Vec<i64>, String)>> {
        // Re-read the policy per batch: online adaptation may install a
        // finer or coarser grid between batches, and rows must be routed
        // by the policy the next flush will publish under.
        let policy = self.index.policy();
        let dims = policy.dims();
        rows.iter()
            .map(|row| {
                let mut cells = Vec::with_capacity(self.dim_idx.len());
                for (i, d) in self.dim_idx.iter().zip(dims) {
                    let v = row.get(*i).ok_or_else(|| {
                        DgfError::Schema(format!(
                            "ingest row has {} fields, schema needs {}",
                            row.len(),
                            self.index.base.schema.len()
                        ))
                    })?;
                    cells.push(d.cell_of(v)?);
                }
                Ok((cells, format_row(row)))
            })
            .collect()
    }

    /// Ingest one batch; returns its acknowledged sequence number.
    fn ingest(&self, rows: &[Row]) -> Result<u64> {
        self.check_poisoned()?;
        let stats = &self.stats;
        if rows.is_empty() {
            return Ok(self.next_seq.load(Ordering::SeqCst).saturating_sub(1));
        }
        let routed = self.route(rows)?;
        let batch_bytes: u64 = routed.iter().map(|(_, l)| l.len() as u64).sum();
        // Reserve the batch's bytes atomically: the check and the
        // accounting are one fetch_add, so concurrent batches cannot all
        // pass against the same stale reading and overshoot the bound.
        let already = self
            .shared
            .buffered_bytes
            .fetch_add(batch_bytes, Ordering::SeqCst);
        if already + batch_bytes > self.config.max_buffered_bytes {
            self.shared
                .buffered_bytes
                .fetch_sub(batch_bytes, Ordering::SeqCst);
            stats.rejections.fetch_add(1, Ordering::Relaxed);
            return Err(DgfError::Backpressure(format!(
                "{already} buffered + {batch_bytes} incoming exceeds the {} byte \
                 bound; flush (or wait for the background flusher) and resubmit",
                self.config.max_buffered_bytes
            )));
        }
        let span = self.index.profiler().span("ingest.batch");
        let written = (|| -> Result<(u64, u64)> {
            let _gate = self.batch_gate.read();
            let seq = self.next_seq.fetch_add(1, Ordering::SeqCst);
            let (wal_bytes, ticket) = self.wal.append_batch(seq, &lines_of(&routed))?;
            stats.wal_bytes.fetch_add(wal_bytes, Ordering::Relaxed);
            self.crash_point("ingest.wal-appended")?;
            if self.wal.sync(ticket)? {
                stats.wal_syncs.fetch_add(1, Ordering::Relaxed);
            }
            self.crash_point("ingest.wal-synced")?;
            let mut mem = self.shared.mem.lock();
            for ((cells, line), row) in routed.into_iter().zip(rows.iter().cloned()) {
                mem.active.insert(
                    cells,
                    row,
                    line.len() as u64,
                    &self.agg_set,
                    &self.index.base.schema,
                )?;
            }
            mem.active.max_seq = mem.active.max_seq.max(seq);
            Ok((seq, wal_bytes))
        })();
        let (seq, wal_bytes) = match written {
            Ok(v) => v,
            Err(e) => {
                // The batch never fully reached the memtable: release its
                // reservation so a still-live ingestor's admission
                // accounting matches what is actually buffered.
                self.shared
                    .buffered_bytes
                    .fetch_sub(batch_bytes, Ordering::SeqCst);
                span.finish();
                return Err(e);
            }
        };
        stats.batches.fetch_add(1, Ordering::Relaxed);
        stats.rows.fetch_add(rows.len() as u64, Ordering::Relaxed);
        span.add(names::INGEST_ROWS, rows.len() as u64);
        span.add(names::INGEST_WAL_BYTES, wal_bytes);
        span.finish();
        if self.active_rows() >= self.config.flush_rows {
            self.flush()?;
        }
        Ok(seq)
    }

    fn active_rows(&self) -> u64 {
        self.shared.mem.lock().active.rows
    }

    /// Convert the buffered slot into real Slices through the
    /// staged-commit append path. Returns the number of rows flushed
    /// (0 when there was nothing to flush).
    fn flush(&self) -> Result<u64> {
        let _serialize = self.flush_lock.lock();
        self.check_poisoned()?;
        let stats = &self.stats;
        let span = self.index.profiler().span("ingest.flush");
        let (snap_seq, rows, slot_bytes) = {
            // Exclusive side of the batch gate: wait out every batch
            // between WAL append and memtable insert, so the snapshot's
            // `max_seq` — committed below as the ingest watermark — never
            // covers an acknowledged sequence the memtable lacks.
            let _gate = self.batch_gate.write();
            let mut mem = self.shared.mem.lock();
            if mem.active.is_empty() {
                span.finish();
                return Ok(0);
            }
            // The swap is invisible to readers: the active/flushing union
            // the planner merges is unchanged, and both sides stay under
            // one lock.
            let slot = std::mem::take(&mut mem.active);
            let snap = (slot.max_seq, slot.all_rows(), slot.bytes);
            mem.flushing = Some(slot);
            snap
        };
        // Publishing begins: odd epoch tells overlapping plans to retry
        // until the commit (watermark advance) and the slot clear below
        // are both visible, so no plan ever mixes the pre-flush memtable
        // with post-flush store state.
        self.shared.epoch.fetch_add(1, Ordering::SeqCst);
        let published = (|| -> Result<()> {
            self.crash_point("ingest.flush-staged")?;
            self.sync_point("ingest.flush-commit");
            self.index
                .append_with_watermark(&rows, Some(snap_seq))?;
            self.sync_point("ingest.flush-commit");
            self.crash_point("ingest.flush-committed")?;
            Ok(())
        })();
        match published {
            Ok(()) => {
                {
                    let mut mem = self.shared.mem.lock();
                    mem.flushing = None;
                }
                self.shared
                    .buffered_bytes
                    .fetch_sub(slot_bytes, Ordering::SeqCst);
                self.shared.epoch.fetch_add(1, Ordering::SeqCst);
                stats.flushes.fetch_add(1, Ordering::Relaxed);
                stats
                    .flushed_rows
                    .fetch_add(rows.len() as u64, Ordering::Relaxed);
                span.add(names::INGEST_FLUSHED_ROWS, rows.len() as u64);
                span.finish();
                // Shrink the WAL; failing here is recoverable (replay
                // skips flushed batches by watermark), so no poisoning.
                self.wal.rewrite(snap_seq)?;
                Ok(rows.len() as u64)
            }
            Err(e) => {
                stats.flush_failures.fetch_add(1, Ordering::Relaxed);
                self.poisoned.store(true, Ordering::SeqCst);
                // Restore an even epoch so queries keep working: slot
                // visibility is decided by the persisted watermark alone
                // (not advanced → the slot stays merged and acknowledged
                // rows remain visible; advanced → the commit actually
                // landed and the slot is already excluded).
                self.shared.epoch.fetch_add(1, Ordering::SeqCst);
                span.finish();
                Err(e)
            }
        }
    }
}

fn lines_of(routed: &[(Vec<i64>, String)]) -> Vec<String> {
    routed.iter().map(|(_, l)| l.clone()).collect()
}

/// The streaming write front-end of a [`DgfIndex`]. See the module docs
/// for the write path and crash story.
pub struct StreamIngestor {
    core: Arc<Core>,
    flusher: Option<JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
}

impl StreamIngestor {
    /// Open a streaming ingestor over `index`, with its WAL at
    /// `wal_path`. Replays unflushed WAL batches into the memtable (so
    /// acknowledged-but-unflushed rows from a previous process are
    /// immediately query-visible again) and registers the memtable as the
    /// index's fresh source.
    pub fn open(
        index: Arc<DgfIndex>,
        wal_path: impl Into<std::path::PathBuf>,
        config: IngestConfig,
    ) -> Result<StreamIngestor> {
        let agg_set = AggSet::bind(&index.aggs, &index.base.schema)?;
        let policy = index.policy();
        let dim_idx: Vec<usize> = policy
            .dims()
            .iter()
            .map(|d| index.base.schema.index_of(&d.name))
            .collect::<Result<_>>()?;
        let flushed = index.ingest_watermark()?;
        let (wal, unflushed) = IngestWal::open(wal_path, flushed)?;
        let shared = Arc::new(IngestShared::default());
        let stats = IngestStats::default();
        let mut top_seq = flushed;
        {
            let mut mem = shared.mem.lock();
            let mut replayed_rows = 0u64;
            let mut replayed_bytes = 0u64;
            for batch in &unflushed {
                for line in &batch.lines {
                    let row = parse_row(line, &index.base.schema)?;
                    let mut cells = Vec::with_capacity(dim_idx.len());
                    for (i, d) in dim_idx.iter().zip(policy.dims()) {
                        cells.push(d.cell_of(&row[*i])?);
                    }
                    mem.active.insert(
                        cells,
                        row,
                        line.len() as u64,
                        &agg_set,
                        &index.base.schema,
                    )?;
                    replayed_rows += 1;
                    replayed_bytes += line.len() as u64;
                }
                mem.active.max_seq = mem.active.max_seq.max(batch.seq);
                top_seq = top_seq.max(batch.seq);
            }
            shared
                .buffered_bytes
                .store(replayed_bytes, Ordering::SeqCst);
            stats
                .replayed_batches
                .store(unflushed.len() as u64, Ordering::Relaxed);
            stats.replayed_rows.store(replayed_rows, Ordering::Relaxed);
        }
        let core = Arc::new(Core {
            index: index.clone(),
            shared: shared.clone(),
            wal,
            config: config.clone(),
            agg_set,
            dim_idx,
            next_seq: AtomicU64::new(top_seq + 1),
            batch_gate: RwLock::new(()),
            flush_lock: Mutex::new(()),
            poisoned: AtomicBool::new(false),
            stats,
        });
        index.set_fresh_source(shared);
        let shutdown = Arc::new(AtomicBool::new(false));
        let flusher = config.auto_flush_interval.map(|interval| {
            let core = core.clone();
            let shutdown = shutdown.clone();
            std::thread::spawn(move || {
                // The vendored parking_lot has no Condvar, so the flusher
                // polls; the interval bounds both freshness lag and the
                // shutdown latency.
                while !shutdown.load(Ordering::SeqCst) {
                    std::thread::sleep(interval);
                    if core.poisoned.load(Ordering::SeqCst) {
                        break;
                    }
                    let due = {
                        let mem = core.shared.mem.lock();
                        !mem.active.is_empty()
                            && mem
                                .active
                                .first_row_at
                                .is_some_and(|t| t.elapsed() >= core.config.flush_age)
                    };
                    if due {
                        // A failure poisons the ingestor; the next
                        // iteration then exits the loop.
                        let _ = core.flush();
                    }
                }
            })
        });
        Ok(StreamIngestor {
            core,
            flusher,
            shutdown,
        })
    }

    /// Ingest one batch of rows. On success the returned sequence is
    /// acknowledged: durable in the WAL and visible to every query from
    /// now on. Errors leave no trace ([`DgfError::Backpressure`] when
    /// admission control rejects; schema errors reject pre-WAL).
    pub fn ingest(&self, rows: &[Row]) -> Result<u64> {
        self.core.ingest(rows)
    }

    /// Flush buffered rows into real Slices now. Returns rows flushed.
    pub fn flush(&self) -> Result<u64> {
        self.core.flush()
    }

    /// Whether a failed flush poisoned this ingestor (reopen to recover).
    pub fn is_poisoned(&self) -> bool {
        self.core.poisoned.load(Ordering::SeqCst)
    }

    /// Streaming counters.
    pub fn stats(&self) -> IngestStatsSnapshot {
        self.core.stats.snapshot()
    }

    /// The shared memtable state (the index's registered fresh source).
    pub fn shared(&self) -> Arc<IngestShared> {
        self.core.shared.clone()
    }

    /// The WAL file length in bytes.
    pub fn wal_len_bytes(&self) -> u64 {
        self.core.wal.len_bytes()
    }

    /// Stop the background flusher, flush remaining rows, and detach.
    /// Prefer this over dropping when the process intends to exit
    /// cleanly; plain `drop` stops the flusher but leaves buffered rows
    /// in the WAL (and query-visible), the crash-recovery path.
    pub fn close(mut self) -> Result<()> {
        self.stop_flusher();
        self.flush().map(|_| ())
    }

    fn stop_flusher(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.flusher.take() {
            let _ = h.join();
        }
    }
}

impl Drop for StreamIngestor {
    fn drop(&mut self) {
        self.stop_flusher();
        // Deliberately no flush and no clear_fresh_source: acknowledged
        // rows stay in the WAL (durable) and in the shared memtable the
        // index still references (visible), matching crash semantics.
    }
}
