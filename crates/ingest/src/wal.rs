//! The streaming write-ahead log.
//!
//! Acknowledged batches hit this single-file log before they are visible
//! anywhere else; the memtable and every query answer derive from state
//! the WAL can reconstruct. The record framing is the same checksummed
//! idiom as [`dgf_kvstore::LogKvStore`]'s log —
//! `[u32 payload_len][payload][u64 fnv1a(payload)]` — so a torn or
//! corrupt tail truncates cleanly instead of poisoning recovery, and a
//! batch is atomic: after a crash it is either fully replayable or
//! entirely absent (its ack was then never returned).
//!
//! The payload of one record is one ingest batch:
//! `seq(u64) | nrows(u32) | nrows × (u32 line_len | line)`, where each
//! line is a [`dgf_common::format_row`] rendering of one row.
//!
//! Group commit: [`sync_up_to`](IngestWal::sync_up_to) makes everything
//! appended so far durable in one writer flush and *skips* entirely when
//! a concurrent caller's flush already covered the requested sequence —
//! N racing ingesters pay one sync, not N.

use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use dgf_common::codec::fnv1a;
use dgf_common::Result;

/// One acknowledged WAL batch (possibly not yet flushed into Slices).
#[derive(Debug, Clone)]
pub struct WalBatch {
    /// Monotone batch sequence number; the index's persisted ingest
    /// watermark is the highest `seq` whose rows are committed.
    pub seq: u64,
    /// The batch's rows in `format_row` text form.
    pub lines: Vec<String>,
}

#[derive(Debug)]
struct WalState {
    writer: BufWriter<File>,
    len: u64,
    /// Highest sequence appended (buffered; durable only once synced).
    appended_seq: u64,
    /// Highest sequence covered by a sync.
    synced_seq: u64,
    /// Appended batches not yet dropped by `rewrite`, oldest first.
    tail: VecDeque<WalBatch>,
}

/// A checksummed, group-committed write-ahead log of ingest batches.
#[derive(Debug)]
pub struct IngestWal {
    path: PathBuf,
    state: Mutex<WalState>,
}

impl IngestWal {
    /// Open (or create) the WAL at `path`. Batches with
    /// `seq <= flushed_seq` were committed into Slices by a flush whose
    /// watermark advance reached the store — they are dropped here (the
    /// log is rewritten without them). Everything newer is returned for
    /// the caller to rebuild the memtable from, and retained in the log
    /// until a future [`rewrite`](Self::rewrite) covers it.
    pub fn open(path: impl Into<PathBuf>, flushed_seq: u64) -> Result<(IngestWal, Vec<WalBatch>)> {
        let path = path.into();
        let mut batches = replay(&path)?;
        batches.retain(|b| b.seq > flushed_seq);
        write_whole_log(&path, &batches)?;
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let len = file.metadata()?.len();
        let top_seq = batches.iter().map(|b| b.seq).max().unwrap_or(flushed_seq);
        let wal = IngestWal {
            path,
            state: Mutex::new(WalState {
                writer: BufWriter::new(file),
                len,
                appended_seq: top_seq,
                synced_seq: top_seq,
                tail: batches.iter().cloned().collect(),
            }),
        };
        Ok((wal, batches))
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current log length in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.state.lock().len
    }

    /// Number of batches the log still retains.
    pub fn batch_count(&self) -> usize {
        self.state.lock().tail.len()
    }

    /// Append one batch (buffered — not durable until a sync covers
    /// `seq`). Returns the framed bytes written.
    pub fn append_batch(&self, seq: u64, lines: &[String]) -> Result<u64> {
        let mut st = self.state.lock();
        let n = write_batch_record(&mut st.writer, seq, lines)?;
        st.len += n;
        st.appended_seq = st.appended_seq.max(seq);
        st.tail.push_back(WalBatch {
            seq,
            lines: lines.to_vec(),
        });
        Ok(n)
    }

    /// Group commit: make every batch up to (at least) `seq` durable.
    /// Returns `false` when a concurrent sync already covered `seq` and
    /// this call did no I/O at all.
    pub fn sync_up_to(&self, seq: u64) -> Result<bool> {
        let mut st = self.state.lock();
        if st.synced_seq >= seq {
            return Ok(false);
        }
        st.writer.flush()?;
        // One flush covers everything appended so far, not just `seq`.
        st.synced_seq = st.appended_seq;
        Ok(true)
    }

    /// Drop batches with `seq <= flushed_seq` by rewriting the log
    /// (write-temporary-then-rename, like the key-value store's
    /// compaction). Crash-safe in both orders: if the rename never
    /// lands, replay still skips the stale prefix by watermark.
    pub fn rewrite(&self, flushed_seq: u64) -> Result<()> {
        let mut st = self.state.lock();
        st.writer.flush()?;
        while st.tail.front().is_some_and(|b| b.seq <= flushed_seq) {
            st.tail.pop_front();
        }
        let keep: Vec<WalBatch> = st.tail.iter().cloned().collect();
        write_whole_log(&self.path, &keep)?;
        let file = OpenOptions::new().append(true).open(&self.path)?;
        st.len = file.metadata()?.len();
        st.writer = BufWriter::new(file);
        Ok(())
    }
}

fn write_batch_record<W: Write>(w: &mut W, seq: u64, lines: &[String]) -> Result<u64> {
    let body: usize = lines.iter().map(|l| 4 + l.len()).sum();
    let mut payload = Vec::with_capacity(8 + 4 + body);
    payload.extend_from_slice(&seq.to_le_bytes());
    payload.extend_from_slice(&(lines.len() as u32).to_le_bytes());
    for line in lines {
        payload.extend_from_slice(&(line.len() as u32).to_le_bytes());
        payload.extend_from_slice(line.as_bytes());
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&payload)?;
    w.write_all(&fnv1a(&payload).to_le_bytes())?;
    Ok(4 + payload.len() as u64 + 8)
}

/// Replace the log file with exactly `batches` via tmp + rename.
fn write_whole_log(path: &Path, batches: &[WalBatch]) -> Result<()> {
    let tmp = path.with_extension("rewrite");
    {
        let mut w = BufWriter::new(File::create(&tmp)?);
        for b in batches {
            write_batch_record(&mut w, b.seq, &b.lines)?;
        }
        w.flush()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Replay every intact batch; stop (truncating implicitly) at the first
/// torn or corrupt record.
fn replay(path: &Path) -> Result<Vec<WalBatch>> {
    let mut out = Vec::new();
    let Ok(file) = File::open(path) else {
        return Ok(out);
    };
    let mut r = BufReader::new(file);
    loop {
        let mut len_buf = [0u8; 4];
        if r.read_exact(&mut len_buf).is_err() {
            break;
        }
        let n = u32::from_le_bytes(len_buf) as usize;
        let mut payload = vec![0u8; n];
        if r.read_exact(&mut payload).is_err() {
            break; // torn record
        }
        let mut sum_buf = [0u8; 8];
        if r.read_exact(&mut sum_buf).is_err() {
            break;
        }
        if u64::from_le_bytes(sum_buf) != fnv1a(&payload) {
            break; // corrupt record: the batch was never acknowledged
        }
        let Some(batch) = decode_batch(&payload) else {
            break;
        };
        out.push(batch);
    }
    Ok(out)
}

fn decode_batch(payload: &[u8]) -> Option<WalBatch> {
    if payload.len() < 12 {
        return None;
    }
    let seq = u64::from_le_bytes(payload[..8].try_into().ok()?);
    let nrows = u32::from_le_bytes(payload[8..12].try_into().ok()?) as usize;
    let mut lines = Vec::with_capacity(nrows);
    let mut at = 12;
    for _ in 0..nrows {
        let llen = u32::from_le_bytes(payload.get(at..at + 4)?.try_into().ok()?) as usize;
        at += 4;
        let line = std::str::from_utf8(payload.get(at..at + llen)?).ok()?;
        at += llen;
        lines.push(line.to_owned());
    }
    Some(WalBatch { seq, lines })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_common::TempDir;

    fn lines(tag: &str, n: usize) -> Vec<String> {
        (0..n).map(|i| format!("{tag}-{i}")).collect()
    }

    #[test]
    fn append_replay_roundtrip() {
        let t = TempDir::new("wal").unwrap();
        let p = t.path().join("ingest.wal");
        {
            let (wal, replayed) = IngestWal::open(&p, 0).unwrap();
            assert!(replayed.is_empty());
            wal.append_batch(1, &lines("a", 3)).unwrap();
            wal.append_batch(2, &lines("b", 2)).unwrap();
            assert!(wal.sync_up_to(2).unwrap());
        }
        let (wal, replayed) = IngestWal::open(&p, 0).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[0].seq, 1);
        assert_eq!(replayed[0].lines, lines("a", 3));
        assert_eq!(replayed[1].lines, lines("b", 2));
        assert_eq!(wal.batch_count(), 2);
    }

    #[test]
    fn open_drops_flushed_batches() {
        let t = TempDir::new("wal").unwrap();
        let p = t.path().join("ingest.wal");
        {
            let (wal, _) = IngestWal::open(&p, 0).unwrap();
            for s in 1..=4u64 {
                wal.append_batch(s, &lines("x", 1)).unwrap();
            }
            wal.sync_up_to(4).unwrap();
        }
        // Watermark 2: batches 1–2 are committed in Slices already.
        let (wal, replayed) = IngestWal::open(&p, 2).unwrap();
        assert_eq!(replayed.iter().map(|b| b.seq).collect::<Vec<_>>(), [3, 4]);
        drop(wal);
        // The rewrite stuck: a second open with watermark 0 no longer
        // sees the flushed prefix.
        let (_, replayed) = IngestWal::open(&p, 0).unwrap();
        assert_eq!(replayed.iter().map(|b| b.seq).collect::<Vec<_>>(), [3, 4]);
    }

    #[test]
    fn torn_tail_drops_only_last_batch() {
        let t = TempDir::new("wal").unwrap();
        let p = t.path().join("ingest.wal");
        {
            let (wal, _) = IngestWal::open(&p, 0).unwrap();
            wal.append_batch(1, &lines("a", 2)).unwrap();
            wal.append_batch(2, &lines("b", 2)).unwrap();
            wal.sync_up_to(2).unwrap();
        }
        let len = std::fs::metadata(&p).unwrap().len();
        let f = OpenOptions::new().write(true).open(&p).unwrap();
        f.set_len(len - 3).unwrap();

        let (_, replayed) = IngestWal::open(&p, 0).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].seq, 1);
    }

    #[test]
    fn group_commit_skips_covered_seqs() {
        let t = TempDir::new("wal").unwrap();
        let (wal, _) = IngestWal::open(t.path().join("ingest.wal"), 0).unwrap();
        wal.append_batch(1, &lines("a", 1)).unwrap();
        wal.append_batch(2, &lines("b", 1)).unwrap();
        wal.append_batch(3, &lines("c", 1)).unwrap();
        // One sync at 3 covers everything…
        assert!(wal.sync_up_to(3).unwrap());
        // …so syncing the earlier batches is free.
        assert!(!wal.sync_up_to(1).unwrap());
        assert!(!wal.sync_up_to(2).unwrap());
        assert!(!wal.sync_up_to(3).unwrap());
    }

    #[test]
    fn rewrite_shrinks_log() {
        let t = TempDir::new("wal").unwrap();
        let (wal, _) = IngestWal::open(t.path().join("ingest.wal"), 0).unwrap();
        for s in 1..=10u64 {
            wal.append_batch(s, &lines("r", 4)).unwrap();
        }
        wal.sync_up_to(10).unwrap();
        let before = wal.len_bytes();
        wal.rewrite(8).unwrap();
        assert!(wal.len_bytes() < before);
        assert_eq!(wal.batch_count(), 2);
    }
}
