//! The streaming write-ahead log.
//!
//! Acknowledged batches hit this single-file log before they are visible
//! anywhere else; the memtable and every query answer derive from state
//! the WAL can reconstruct. The record framing is the same checksummed
//! idiom as [`dgf_kvstore::LogKvStore`]'s log —
//! `[u32 payload_len][payload][u64 fnv1a(payload)]` — so a torn or
//! corrupt tail truncates cleanly instead of poisoning recovery, and a
//! batch is atomic: after a crash it is either fully replayable or
//! entirely absent (its ack was then never returned).
//!
//! The payload of one record is one ingest batch:
//! `seq(u64) | nrows(u32) | nrows × (u32 line_len | line)`, where each
//! line is a [`dgf_common::format_row`] rendering of one row.
//!
//! Group commit: [`append_batch`](IngestWal::append_batch) hands out a
//! monotone *ticket* under the log lock, and [`sync`](IngestWal::sync)
//! makes everything appended so far durable in one writer flush +
//! `fsync`, skipping entirely when a concurrent caller's sync already
//! covered this call's own ticket — N racing ingesters pay one fsync,
//! not N. Coverage is judged by append order (tickets), never by batch
//! sequence numbers: sequences are allocated before the log lock, so a
//! lower seq can be appended *after* a higher one was synced, and a
//! seq-based skip test would wrongly treat its buffered bytes as
//! durable.

use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use dgf_common::codec::fnv1a;
use dgf_common::Result;

/// One acknowledged WAL batch (possibly not yet flushed into Slices).
#[derive(Debug, Clone)]
pub struct WalBatch {
    /// Monotone batch sequence number; the index's persisted ingest
    /// watermark is the highest `seq` whose rows are committed.
    pub seq: u64,
    /// The batch's rows in `format_row` text form.
    pub lines: Vec<String>,
}

#[derive(Debug)]
struct WalState {
    writer: BufWriter<File>,
    len: u64,
    /// Monotone count of appends through this handle; each append's
    /// ticket is the counter value after it (buffered; durable only once
    /// a sync covers the ticket).
    append_ticket: u64,
    /// Highest append ticket covered by a durable sync.
    synced_ticket: u64,
    /// Appended batches not yet dropped by `rewrite`, oldest first.
    tail: VecDeque<WalBatch>,
}

/// A checksummed, group-committed write-ahead log of ingest batches.
#[derive(Debug)]
pub struct IngestWal {
    path: PathBuf,
    state: Mutex<WalState>,
}

impl IngestWal {
    /// Open (or create) the WAL at `path`. Batches with
    /// `seq <= flushed_seq` were committed into Slices by a flush whose
    /// watermark advance reached the store — they are dropped here (the
    /// log is rewritten without them). Everything newer is returned for
    /// the caller to rebuild the memtable from, and retained in the log
    /// until a future [`rewrite`](Self::rewrite) covers it.
    pub fn open(path: impl Into<PathBuf>, flushed_seq: u64) -> Result<(IngestWal, Vec<WalBatch>)> {
        let path = path.into();
        let mut batches = replay(&path)?;
        batches.retain(|b| b.seq > flushed_seq);
        write_whole_log(&path, &batches)?;
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let len = file.metadata()?.len();
        let wal = IngestWal {
            path,
            state: Mutex::new(WalState {
                writer: BufWriter::new(file),
                len,
                append_ticket: 0,
                synced_ticket: 0,
                tail: batches.iter().cloned().collect(),
            }),
        };
        Ok((wal, batches))
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current log length in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.state.lock().len
    }

    /// Number of batches the log still retains.
    pub fn batch_count(&self) -> usize {
        self.state.lock().tail.len()
    }

    /// Append one batch (buffered — not durable until a sync covers the
    /// returned ticket). Returns `(framed bytes written, append ticket)`;
    /// tickets are handed out in append order under the log lock, so
    /// ticket coverage — unlike seq coverage — is exactly byte coverage.
    pub fn append_batch(&self, seq: u64, lines: &[String]) -> Result<(u64, u64)> {
        let mut st = self.state.lock();
        let n = write_batch_record(&mut st.writer, seq, lines)?;
        st.len += n;
        st.append_ticket += 1;
        let ticket = st.append_ticket;
        st.tail.push_back(WalBatch {
            seq,
            lines: lines.to_vec(),
        });
        Ok((n, ticket))
    }

    /// Group commit: make every append up to (at least) `ticket` durable
    /// (writer flush + `sync_data`). Returns `false` when a concurrent
    /// sync already covered the ticket and this call did no I/O at all.
    pub fn sync(&self, ticket: u64) -> Result<bool> {
        let mut st = self.state.lock();
        if st.synced_ticket >= ticket {
            return Ok(false);
        }
        st.writer.flush()?;
        st.writer.get_ref().sync_data()?;
        // One fsync covers everything appended so far, not just `ticket`.
        st.synced_ticket = st.append_ticket;
        Ok(true)
    }

    /// Drop batches with `seq <= flushed_seq` by rewriting the log
    /// (write-temporary-then-rename, like the key-value store's
    /// compaction). Crash-safe in both orders: if the rename never
    /// lands, replay still skips the stale prefix by watermark.
    pub fn rewrite(&self, flushed_seq: u64) -> Result<()> {
        let mut st = self.state.lock();
        st.writer.flush()?;
        while st.tail.front().is_some_and(|b| b.seq <= flushed_seq) {
            st.tail.pop_front();
        }
        let keep: Vec<WalBatch> = st.tail.iter().cloned().collect();
        write_whole_log(&self.path, &keep)?;
        let file = OpenOptions::new().append(true).open(&self.path)?;
        st.len = file.metadata()?.len();
        st.writer = BufWriter::new(file);
        // The rewritten file holds exactly the retained tail, fsynced
        // before the rename — every outstanding ticket is durable now.
        st.synced_ticket = st.append_ticket;
        Ok(())
    }
}

fn write_batch_record<W: Write>(w: &mut W, seq: u64, lines: &[String]) -> Result<u64> {
    let body: usize = lines.iter().map(|l| 4 + l.len()).sum();
    let mut payload = Vec::with_capacity(8 + 4 + body);
    payload.extend_from_slice(&seq.to_le_bytes());
    payload.extend_from_slice(&(lines.len() as u32).to_le_bytes());
    for line in lines {
        payload.extend_from_slice(&(line.len() as u32).to_le_bytes());
        payload.extend_from_slice(line.as_bytes());
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&payload)?;
    w.write_all(&fnv1a(&payload).to_le_bytes())?;
    Ok(4 + payload.len() as u64 + 8)
}

/// Replace the log file with exactly `batches` via tmp + fsync + rename
/// (+ directory fsync, so the rename itself survives power loss).
fn write_whole_log(path: &Path, batches: &[WalBatch]) -> Result<()> {
    let tmp = path.with_extension("rewrite");
    {
        let mut w = BufWriter::new(File::create(&tmp)?);
        for b in batches {
            write_batch_record(&mut w, b.seq, &b.lines)?;
        }
        w.flush()?;
        w.get_ref().sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        File::open(dir)?.sync_all()?;
    }
    Ok(())
}

/// Replay every intact batch; stop (truncating implicitly) at the first
/// torn or corrupt record.
fn replay(path: &Path) -> Result<Vec<WalBatch>> {
    let mut out = Vec::new();
    let Ok(file) = File::open(path) else {
        return Ok(out);
    };
    let mut r = BufReader::new(file);
    loop {
        let mut len_buf = [0u8; 4];
        if r.read_exact(&mut len_buf).is_err() {
            break;
        }
        let n = u32::from_le_bytes(len_buf) as usize;
        let mut payload = vec![0u8; n];
        if r.read_exact(&mut payload).is_err() {
            break; // torn record
        }
        let mut sum_buf = [0u8; 8];
        if r.read_exact(&mut sum_buf).is_err() {
            break;
        }
        if u64::from_le_bytes(sum_buf) != fnv1a(&payload) {
            break; // corrupt record: the batch was never acknowledged
        }
        let Some(batch) = decode_batch(&payload) else {
            break;
        };
        out.push(batch);
    }
    Ok(out)
}

fn decode_batch(payload: &[u8]) -> Option<WalBatch> {
    if payload.len() < 12 {
        return None;
    }
    let seq = u64::from_le_bytes(payload[..8].try_into().ok()?);
    let nrows = u32::from_le_bytes(payload[8..12].try_into().ok()?) as usize;
    let mut lines = Vec::with_capacity(nrows);
    let mut at = 12;
    for _ in 0..nrows {
        let llen = u32::from_le_bytes(payload.get(at..at + 4)?.try_into().ok()?) as usize;
        at += 4;
        let line = std::str::from_utf8(payload.get(at..at + llen)?).ok()?;
        at += llen;
        lines.push(line.to_owned());
    }
    Some(WalBatch { seq, lines })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_common::TempDir;

    fn lines(tag: &str, n: usize) -> Vec<String> {
        (0..n).map(|i| format!("{tag}-{i}")).collect()
    }

    #[test]
    fn append_replay_roundtrip() {
        let t = TempDir::new("wal").unwrap();
        let p = t.path().join("ingest.wal");
        {
            let (wal, replayed) = IngestWal::open(&p, 0).unwrap();
            assert!(replayed.is_empty());
            wal.append_batch(1, &lines("a", 3)).unwrap();
            let (_, t) = wal.append_batch(2, &lines("b", 2)).unwrap();
            assert!(wal.sync(t).unwrap());
        }
        let (wal, replayed) = IngestWal::open(&p, 0).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[0].seq, 1);
        assert_eq!(replayed[0].lines, lines("a", 3));
        assert_eq!(replayed[1].lines, lines("b", 2));
        assert_eq!(wal.batch_count(), 2);
    }

    #[test]
    fn open_drops_flushed_batches() {
        let t = TempDir::new("wal").unwrap();
        let p = t.path().join("ingest.wal");
        {
            let (wal, _) = IngestWal::open(&p, 0).unwrap();
            let mut last = 0;
            for s in 1..=4u64 {
                last = wal.append_batch(s, &lines("x", 1)).unwrap().1;
            }
            wal.sync(last).unwrap();
        }
        // Watermark 2: batches 1–2 are committed in Slices already.
        let (wal, replayed) = IngestWal::open(&p, 2).unwrap();
        assert_eq!(replayed.iter().map(|b| b.seq).collect::<Vec<_>>(), [3, 4]);
        drop(wal);
        // The rewrite stuck: a second open with watermark 0 no longer
        // sees the flushed prefix.
        let (_, replayed) = IngestWal::open(&p, 0).unwrap();
        assert_eq!(replayed.iter().map(|b| b.seq).collect::<Vec<_>>(), [3, 4]);
    }

    #[test]
    fn torn_tail_drops_only_last_batch() {
        let t = TempDir::new("wal").unwrap();
        let p = t.path().join("ingest.wal");
        {
            let (wal, _) = IngestWal::open(&p, 0).unwrap();
            wal.append_batch(1, &lines("a", 2)).unwrap();
            let (_, t) = wal.append_batch(2, &lines("b", 2)).unwrap();
            wal.sync(t).unwrap();
        }
        let len = std::fs::metadata(&p).unwrap().len();
        let f = OpenOptions::new().write(true).open(&p).unwrap();
        f.set_len(len - 3).unwrap();

        let (_, replayed) = IngestWal::open(&p, 0).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].seq, 1);
    }

    #[test]
    fn group_commit_skips_covered_tickets() {
        let t = TempDir::new("wal").unwrap();
        let (wal, _) = IngestWal::open(t.path().join("ingest.wal"), 0).unwrap();
        let (_, t1) = wal.append_batch(1, &lines("a", 1)).unwrap();
        let (_, t2) = wal.append_batch(2, &lines("b", 1)).unwrap();
        let (_, t3) = wal.append_batch(3, &lines("c", 1)).unwrap();
        // One sync at the last ticket covers everything…
        assert!(wal.sync(t3).unwrap());
        // …so syncing the earlier appends is free.
        assert!(!wal.sync(t1).unwrap());
        assert!(!wal.sync(t2).unwrap());
        assert!(!wal.sync(t3).unwrap());
    }

    #[test]
    fn sync_covers_out_of_order_seq_appends() {
        // Batch sequences are allocated before the log lock, so a lower
        // seq can be appended after a higher one was already synced. The
        // later append's bytes are still only buffered — its sync must do
        // I/O (a seq-based `synced >= requested` test would skip it and
        // acknowledge a batch a crash could lose).
        let t = TempDir::new("wal").unwrap();
        let p = t.path().join("ingest.wal");
        let (wal, _) = IngestWal::open(&p, 0).unwrap();
        let (_, t6) = wal.append_batch(6, &lines("late", 1)).unwrap();
        assert!(wal.sync(t6).unwrap());
        let (_, t5) = wal.append_batch(5, &lines("early", 1)).unwrap();
        assert!(
            wal.sync(t5).unwrap(),
            "append after a sync must not be treated as covered"
        );
        assert!(!wal.sync(t5).unwrap());
        // Both batches replay.
        drop(wal);
        let (_, replayed) = IngestWal::open(&p, 0).unwrap();
        assert_eq!(replayed.iter().map(|b| b.seq).collect::<Vec<_>>(), [6, 5]);
    }

    #[test]
    fn rewrite_shrinks_log() {
        let t = TempDir::new("wal").unwrap();
        let (wal, _) = IngestWal::open(t.path().join("ingest.wal"), 0).unwrap();
        let mut last = 0;
        for s in 1..=10u64 {
            last = wal.append_batch(s, &lines("r", 4)).unwrap().1;
        }
        wal.sync(last).unwrap();
        let before = wal.len_bytes();
        wal.rewrite(8).unwrap();
        assert!(wal.len_bytes() < before);
        assert_eq!(wal.batch_count(), 2);
    }
}
