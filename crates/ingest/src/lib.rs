//! # dgf-ingest
//!
//! Streaming ingestion for the DGFIndex: a WAL-backed memtable write
//! path that makes meter rows query-visible the moment they are
//! acknowledged, while the existing staged-commit machinery keeps every
//! persisted structure crash-atomic.
//!
//! The paper's load path (§4.2) is batch: reorganize a file of new rows
//! into Slices with a MapReduce job. Real meter head-ends, though, hand
//! the warehouse a continuous trickle of small batches, and running a
//! reorganization per batch would melt both the job scheduler and the
//! header cache (every append bumps the planner's cache generation).
//! This crate adds the standard LSM-style answer on top of the paper's
//! design:
//!
//! * [`IngestWal`] — acknowledged batches first hit a checksummed
//!   write-ahead log (the same record framing as the key-value store's
//!   log), group-committed so concurrent writers share syncs.
//! * a memtable of per-GFU buffers maintaining the same running partial
//!   aggregates (`sum`/`count`/`min`/`max`) the index pre-computes into
//!   GFU headers, registered with the index as its
//!   [`FreshSource`](dgf_core::FreshSource): query plans merge buffered
//!   cells with persisted headers (covered cells through the header
//!   path, boundary cells as re-filtered rows) with **zero** header-cache
//!   generation bumps between flushes.
//! * [`StreamIngestor`] — the front-end tying them together: admission
//!   control with [`Backpressure`](dgf_common::DgfError::Backpressure)
//!   rejections, an inline flush when the buffer fills, a background
//!   flusher for aged buffers, and crash recovery (WAL replay restores
//!   unflushed batches; the flush's watermark advance rides the commit
//!   manifest, so replay knows exactly which batches are already in
//!   Slices).

#![warn(missing_docs)]

pub mod ingest;
pub mod memtable;
pub mod wal;

pub use ingest::{IngestConfig, IngestShared, IngestStats, IngestStatsSnapshot, StreamIngestor};
pub use memtable::{MemCell, Memtable, Slot};
pub use wal::{IngestWal, WalBatch};
