//! Per-GFU in-memory buffers with running partial aggregates.
//!
//! Every acknowledged row lands in the *active* slot's cell for its
//! GFUKey, updating the same aggregate states the index pre-computes into
//! GFU headers (`sum`/`count`/`min`/`max`, paper §4.2). A flush swaps the
//! active slot into the *flushing* slot — the union the planner sees is
//! unchanged by the swap — and converts it into real Slices through the
//! staged-commit append path.
//!
//! Visibility is decided per slot against the index's persisted ingest
//! watermark: a slot is part of [`fresh cells`](Slot::fresh_cells) exactly
//! while its highest batch sequence exceeds the watermark, so the instant
//! a flush's commit lands (watermark advance and Slice publication are one
//! atomic manifest put) the flushed slot stops being merged from memory —
//! no window where rows are counted twice or not at all.

use std::collections::BTreeMap;
use std::time::Instant;

use dgf_common::{Result, Row, Schema};
use dgf_core::{FreshCell, GfuKey};
use dgf_query::{AggSet, AggState};

/// Buffered rows and running partial aggregates of one GFU cell.
#[derive(Debug)]
pub struct MemCell {
    /// Partial states of the index's pre-computed aggregate list, in
    /// index order (encodable with `AggSet::encode_states` into the same
    /// header bytes a persisted GFU carries).
    pub states: Vec<AggState>,
    /// The buffered rows themselves, in arrival order (needed for
    /// boundary merges, non-aggregate queries, and the flush).
    pub rows: Vec<Row>,
}

/// One swap slot of the memtable: a set of GFU cells filled by a range of
/// acknowledged batches.
#[derive(Debug, Default)]
pub struct Slot {
    /// Cells keyed by GFU coordinates (ordered, like the store's keys).
    pub cells: BTreeMap<Vec<i64>, MemCell>,
    /// Total buffered rows.
    pub rows: u64,
    /// Total buffered bytes (formatted-line lengths — the same accounting
    /// admission control uses).
    pub bytes: u64,
    /// Highest batch sequence buffered here. The slot is query-visible
    /// while this exceeds the index's persisted ingest watermark.
    pub max_seq: u64,
    /// When the oldest still-buffered row arrived (drives age-based
    /// background flushes).
    pub first_row_at: Option<Instant>,
}

impl Slot {
    /// Whether the slot holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Insert one row into cell `cells`, updating the running aggregates.
    pub fn insert(
        &mut self,
        cells: Vec<i64>,
        row: Row,
        line_bytes: u64,
        agg_set: &AggSet,
        schema: &Schema,
    ) -> Result<()> {
        let cell = self
            .cells
            .entry(cells)
            .or_insert_with(|| MemCell {
                states: agg_set.new_states(),
                rows: Vec::new(),
            });
        agg_set.update(&mut cell.states, &row, schema)?;
        cell.rows.push(row);
        self.rows += 1;
        self.bytes += line_bytes;
        self.first_row_at.get_or_insert_with(Instant::now);
        Ok(())
    }

    /// Project every cell into the planner's [`FreshCell`] form.
    pub fn fresh_cells(&self, out: &mut Vec<FreshCell>) {
        for (cells, cell) in &self.cells {
            out.push(FreshCell {
                key: GfuKey::new(cells.clone()),
                header: AggSet::encode_states(&cell.states),
                record_count: cell.rows.len() as u64,
                rows: cell.rows.clone(),
            });
        }
    }

    /// All buffered rows in cell-key order (the flush feeds these to the
    /// append job, which re-groups them anyway).
    pub fn all_rows(&self) -> Vec<Row> {
        self.cells
            .values()
            .flat_map(|c| c.rows.iter().cloned())
            .collect()
    }
}

/// The two-slot memtable: `active` absorbs new batches; `flushing` holds
/// a snapshot being converted into Slices.
#[derive(Debug, Default)]
pub struct Memtable {
    /// The slot new ingests land in.
    pub active: Slot,
    /// The slot a running flush is publishing, if any.
    pub flushing: Option<Slot>,
}

impl Memtable {
    /// Whether any slot holds rows.
    pub fn has_rows(&self) -> bool {
        !self.active.is_empty() || self.flushing.as_ref().is_some_and(|s| !s.is_empty())
    }

    /// Fresh cells of every slot still ahead of `flushed_seq`.
    pub fn fresh_cells(&self, flushed_seq: u64) -> Vec<FreshCell> {
        let mut out = Vec::new();
        if !self.active.is_empty() && self.active.max_seq > flushed_seq {
            self.active.fresh_cells(&mut out);
        }
        if let Some(f) = &self.flushing {
            if !f.is_empty() && f.max_seq > flushed_seq {
                f.fresh_cells(&mut out);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_common::{Value, ValueType};
    use dgf_query::AggFunc;

    fn schema() -> Schema {
        Schema::from_pairs(&[("k", ValueType::Int), ("v", ValueType::Float)])
    }

    fn aggs(schema: &Schema) -> AggSet {
        AggSet::bind(
            &[AggFunc::Count, AggFunc::Sum("v".into())],
            schema,
        )
        .unwrap()
    }

    #[test]
    fn partial_states_match_index_encoding() {
        let schema = schema();
        let set = aggs(&schema);
        let mut slot = Slot::default();
        for (k, v) in [(1i64, 2.0f64), (1, 3.5), (2, 1.0)] {
            slot.insert(
                vec![k],
                vec![Value::Int(k), Value::Float(v)],
                10,
                &set,
                &schema,
            )
            .unwrap();
        }
        slot.max_seq = 7;
        assert_eq!(slot.rows, 3);
        assert_eq!(slot.bytes, 30);

        let mut out = Vec::new();
        slot.fresh_cells(&mut out);
        assert_eq!(out.len(), 2);
        // Cell [1] folded two rows: its header decodes to count=2, sum=5.5.
        let c1 = &out[0];
        assert_eq!(c1.key.cells, vec![1]);
        assert_eq!(c1.record_count, 2);
        let states = set.decode_states(&c1.header).unwrap();
        assert_eq!(states[0], AggState::Count(2));
        match &states[1] {
            AggState::Sum { sum, comp, non_null } => {
                assert!((sum + comp - 5.5).abs() < 1e-9);
                assert_eq!(*non_null, 2);
            }
            other => panic!("unexpected state {other:?}"),
        }
    }

    #[test]
    fn slot_visibility_follows_watermark() {
        let schema = schema();
        let set = aggs(&schema);
        let mut mem = Memtable::default();
        mem.active
            .insert(vec![1], vec![Value::Int(1), Value::Float(1.0)], 5, &set, &schema)
            .unwrap();
        mem.active.max_seq = 3;
        assert_eq!(mem.fresh_cells(0).len(), 1);
        assert_eq!(mem.fresh_cells(2).len(), 1);
        // Watermark caught up: the slot's rows are all committed.
        assert!(mem.fresh_cells(3).is_empty());

        // A flushing slot obeys the same rule, and the active/flushing
        // union is what the planner merges.
        mem.flushing = Some(std::mem::take(&mut mem.active));
        assert_eq!(mem.fresh_cells(0).len(), 1);
        assert!(mem.fresh_cells(3).is_empty());
        assert!(mem.has_rows());
    }
}
