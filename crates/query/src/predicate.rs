//! Conjunctive range predicates — the paper's MDRQ `WHERE` clauses.
//!
//! A multidimensional range query constrains several columns with interval
//! conditions joined by `AND` (paper Listing 2/4/5/6). [`Predicate`] models
//! exactly that: one optional interval per column. This is not a general
//! expression tree on purpose: the index planners (DGFIndex, Compact Index)
//! consume intervals per dimension, which is what HiveQL's index handlers
//! extract from the predicate as well.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::Bound;

use dgf_common::batch::{Column, ColumnBatch, ColumnData, Selection};
use dgf_common::{DgfError, Result, Row, Schema, Value};

/// An interval condition on one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnRange {
    /// Lower bound.
    pub low: Bound<Value>,
    /// Upper bound.
    pub high: Bound<Value>,
}

impl ColumnRange {
    /// The unconstrained interval.
    pub fn all() -> Self {
        ColumnRange {
            low: Bound::Unbounded,
            high: Bound::Unbounded,
        }
    }

    /// `column = v`.
    pub fn eq(v: Value) -> Self {
        ColumnRange {
            low: Bound::Included(v.clone()),
            high: Bound::Included(v),
        }
    }

    /// `low <= column < high` (the paper's left-closed right-open GFU form).
    pub fn half_open(low: Value, high: Value) -> Self {
        ColumnRange {
            low: Bound::Included(low),
            high: Bound::Excluded(high),
        }
    }

    /// `low < column < high` (the paper's query listings use strict bounds).
    pub fn open(low: Value, high: Value) -> Self {
        ColumnRange {
            low: Bound::Excluded(low),
            high: Bound::Excluded(high),
        }
    }

    /// Whether `v` satisfies the interval. `Null` never matches a bounded
    /// interval (SQL comparison semantics).
    pub fn contains(&self, v: &Value) -> bool {
        if v.is_null() {
            return matches!((&self.low, &self.high), (Bound::Unbounded, Bound::Unbounded));
        }
        let lo_ok = match &self.low {
            Bound::Unbounded => true,
            Bound::Included(b) => v >= b,
            Bound::Excluded(b) => v > b,
        };
        let hi_ok = match &self.high {
            Bound::Unbounded => true,
            Bound::Included(b) => v <= b,
            Bound::Excluded(b) => v < b,
        };
        lo_ok && hi_ok
    }

    /// Conjunction of two intervals on the same column.
    pub fn intersect(&self, other: &ColumnRange) -> ColumnRange {
        ColumnRange {
            low: tighter_low(&self.low, &other.low),
            high: tighter_high(&self.high, &other.high),
        }
    }
}

fn tighter_low(a: &Bound<Value>, b: &Bound<Value>) -> Bound<Value> {
    match (a, b) {
        (Bound::Unbounded, x) | (x, Bound::Unbounded) => x.clone(),
        (Bound::Included(x), Bound::Included(y)) => Bound::Included(x.clone().max(y.clone())),
        (Bound::Excluded(x), Bound::Excluded(y)) => Bound::Excluded(x.clone().max(y.clone())),
        (Bound::Included(x), Bound::Excluded(y)) | (Bound::Excluded(y), Bound::Included(x)) => {
            if y >= x {
                Bound::Excluded(y.clone())
            } else {
                Bound::Included(x.clone())
            }
        }
    }
}

fn tighter_high(a: &Bound<Value>, b: &Bound<Value>) -> Bound<Value> {
    match (a, b) {
        (Bound::Unbounded, x) | (x, Bound::Unbounded) => x.clone(),
        (Bound::Included(x), Bound::Included(y)) => Bound::Included(x.clone().min(y.clone())),
        (Bound::Excluded(x), Bound::Excluded(y)) => Bound::Excluded(x.clone().min(y.clone())),
        (Bound::Included(x), Bound::Excluded(y)) | (Bound::Excluded(y), Bound::Included(x)) => {
            if y <= x {
                Bound::Excluded(y.clone())
            } else {
                Bound::Included(x.clone())
            }
        }
    }
}

/// A conjunction of per-column interval conditions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Predicate {
    ranges: BTreeMap<String, ColumnRange>,
}

impl Predicate {
    /// The always-true predicate (full scan).
    pub fn all() -> Self {
        Predicate::default()
    }

    /// Add (AND) a condition on `column`; multiple conditions on the same
    /// column intersect.
    pub fn and(mut self, column: impl Into<String>, range: ColumnRange) -> Self {
        let column = column.into();
        let merged = match self.ranges.get(&column) {
            Some(existing) => existing.intersect(&range),
            None => range,
        };
        self.ranges.insert(column, merged);
        self
    }

    /// The interval on `column`, if constrained.
    pub fn range_of(&self, column: &str) -> Option<&ColumnRange> {
        self.ranges.get(column)
    }

    /// Constrained columns in name order.
    pub fn columns(&self) -> impl Iterator<Item = &str> {
        self.ranges.keys().map(|s| s.as_str())
    }

    /// Number of constrained columns.
    pub fn arity(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the predicate constrains nothing.
    pub fn is_trivial(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Resolve column names to indexes for fast row evaluation.
    pub fn bind(&self, schema: &Schema) -> Result<BoundPredicate> {
        let mut terms = Vec::with_capacity(self.ranges.len());
        for (col, range) in &self.ranges {
            terms.push((schema.index_of(col)?, range.clone()));
        }
        Ok(BoundPredicate { terms })
    }

    /// Drop conditions on columns not in `keep` (used when an index only
    /// understands a subset of the predicate, paper §5.3.4).
    pub fn project_columns(&self, keep: &[&str]) -> Predicate {
        Predicate {
            ranges: self
                .ranges
                .iter()
                .filter(|(c, _)| keep.contains(&c.as_str()))
                .map(|(c, r)| (c.clone(), r.clone()))
                .collect(),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ranges.is_empty() {
            return f.write_str("TRUE");
        }
        let mut first = true;
        for (c, r) in &self.ranges {
            if !first {
                f.write_str(" AND ")?;
            }
            first = false;
            match &r.low {
                Bound::Unbounded => {}
                Bound::Included(v) => write!(f, "{c} >= {v} AND ")?,
                Bound::Excluded(v) => write!(f, "{c} > {v} AND ")?,
            }
            match &r.high {
                Bound::Unbounded => write!(f, "{c} IS CONSTRAINED")?,
                Bound::Included(v) => write!(f, "{c} <= {v}")?,
                Bound::Excluded(v) => write!(f, "{c} < {v}")?,
            }
        }
        Ok(())
    }
}

/// A predicate resolved against a schema.
#[derive(Debug, Clone)]
pub struct BoundPredicate {
    terms: Vec<(usize, ColumnRange)>,
}

impl BoundPredicate {
    /// Evaluate against one row.
    pub fn matches(&self, row: &Row) -> bool {
        self.terms.iter().all(|(idx, range)| {
            row.get(*idx).is_some_and(|v| range.contains(v))
        })
    }

    /// Number of bound terms.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Selection-vector kernel: evaluate the predicate over a whole batch.
    ///
    /// Each term filters the selection in turn, reading the column's typed
    /// vector directly instead of materializing a [`Row`] per record. Row
    /// indexes come out ascending, and every per-cell decision delegates to
    /// [`ColumnRange::contains`] semantics (via stack-allocated `Value`s for
    /// primitives and an allocation-free mirror for strings), so the
    /// surviving set is exactly the set of rows [`Self::matches`] would
    /// accept — the property the columnar/row-wise equivalence suite pins.
    pub fn select(&self, batch: &ColumnBatch) -> Selection {
        let mut sel = Selection::All(batch.len());
        for (idx, range) in &self.terms {
            if sel.is_empty() {
                break;
            }
            sel = filter_column(batch.column(*idx), range, &sel);
        }
        sel
    }
}

/// Keep the selected rows of `col` that satisfy `range`.
fn filter_column(col: &Column, range: &ColumnRange, sel: &Selection) -> Selection {
    // The row path sees `Null` for null cells and unprojected columns alike.
    let null_ok = range.contains(&Value::Null);
    let mut out: Vec<u32> = Vec::with_capacity(sel.len());
    let nulls = &col.nulls;
    match &col.data {
        ColumnData::Int(v) => out.extend(sel.iter().filter_map(|i| {
            let ok = if nulls.is_null(i) {
                null_ok
            } else {
                range.contains(&Value::Int(v[i]))
            };
            ok.then_some(i as u32)
        })),
        ColumnData::Date(v) => out.extend(sel.iter().filter_map(|i| {
            let ok = if nulls.is_null(i) {
                null_ok
            } else {
                range.contains(&Value::Date(v[i]))
            };
            ok.then_some(i as u32)
        })),
        ColumnData::Float(v) => out.extend(sel.iter().filter_map(|i| {
            let ok = if nulls.is_null(i) {
                null_ok
            } else {
                range.contains(&Value::Float(v[i]))
            };
            ok.then_some(i as u32)
        })),
        ColumnData::Str(v) => out.extend(sel.iter().filter_map(|i| {
            let ok = if nulls.is_null(i) {
                null_ok
            } else {
                contains_str(range, &v[i])
            };
            ok.then_some(i as u32)
        })),
        ColumnData::Values(v) => out.extend(sel.iter().filter_map(|i| {
            let ok = if nulls.is_null(i) {
                null_ok
            } else {
                range.contains(&v[i])
            };
            ok.then_some(i as u32)
        })),
        ColumnData::Skipped => {
            if null_ok {
                return sel.clone();
            }
        }
    }
    Selection::Rows(out)
}

/// `range.contains(&Value::Str(s))` without cloning `s` into a `Value`:
/// mirrors `Value::cmp_value` for a string on the left-hand side.
fn contains_str(range: &ColumnRange, s: &str) -> bool {
    let cmp = |b: &Value| -> Ordering {
        match b {
            // Null sorts below everything; mixed string/number orders by
            // type rank, where strings sort above numerics.
            Value::Null => Ordering::Greater,
            Value::Str(t) => s.cmp(t.as_str()),
            Value::Int(_) | Value::Float(_) | Value::Date(_) => Ordering::Greater,
        }
    };
    let lo_ok = match &range.low {
        Bound::Unbounded => true,
        Bound::Included(b) => cmp(b) != Ordering::Less,
        Bound::Excluded(b) => cmp(b) == Ordering::Greater,
    };
    let hi_ok = match &range.high {
        Bound::Unbounded => true,
        Bound::Included(b) => cmp(b) != Ordering::Greater,
        Bound::Excluded(b) => cmp(b) == Ordering::Less,
    };
    lo_ok && hi_ok
}

/// Error helper used by engines that require a constrained column.
pub fn require_range<'p>(pred: &'p Predicate, column: &str) -> Result<&'p ColumnRange> {
    pred.range_of(column)
        .ok_or_else(|| DgfError::Query(format!("predicate does not constrain {column:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_common::{Schema, ValueType};

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("user_id", ValueType::Int),
            ("region_id", ValueType::Int),
            ("power", ValueType::Float),
        ])
    }

    #[test]
    fn contains_respects_bound_kinds() {
        let r = ColumnRange::half_open(Value::Int(10), Value::Int(20));
        assert!(r.contains(&Value::Int(10)));
        assert!(r.contains(&Value::Int(19)));
        assert!(!r.contains(&Value::Int(20)));
        assert!(!r.contains(&Value::Int(9)));

        let r = ColumnRange::open(Value::Int(10), Value::Int(20));
        assert!(!r.contains(&Value::Int(10)));
        assert!(r.contains(&Value::Int(11)));

        let r = ColumnRange::eq(Value::Int(5));
        assert!(r.contains(&Value::Int(5)));
        assert!(!r.contains(&Value::Int(6)));
    }

    #[test]
    fn null_never_matches_bounded_interval() {
        let r = ColumnRange::half_open(Value::Int(0), Value::Int(10));
        assert!(!r.contains(&Value::Null));
        assert!(ColumnRange::all().contains(&Value::Null));
    }

    #[test]
    fn predicate_eval_is_conjunctive() {
        let s = schema();
        let p = Predicate::all()
            .and("user_id", ColumnRange::half_open(Value::Int(100), Value::Int(200)))
            .and("power", ColumnRange::open(Value::Float(1.0), Value::Float(2.0)));
        let b = p.bind(&s).unwrap();
        assert!(b.matches(&vec![Value::Int(150), Value::Int(1), Value::Float(1.5)]));
        assert!(!b.matches(&vec![Value::Int(50), Value::Int(1), Value::Float(1.5)]));
        assert!(!b.matches(&vec![Value::Int(150), Value::Int(1), Value::Float(2.0)]));
    }

    #[test]
    fn repeated_column_conditions_intersect() {
        let p = Predicate::all()
            .and("user_id", ColumnRange::half_open(Value::Int(0), Value::Int(100)))
            .and("user_id", ColumnRange::half_open(Value::Int(50), Value::Int(200)));
        let r = p.range_of("user_id").unwrap();
        assert!(r.contains(&Value::Int(50)));
        assert!(r.contains(&Value::Int(99)));
        assert!(!r.contains(&Value::Int(100)));
        assert!(!r.contains(&Value::Int(49)));
    }

    #[test]
    fn intersect_mixed_bound_kinds() {
        let a = ColumnRange {
            low: Bound::Included(Value::Int(5)),
            high: Bound::Excluded(Value::Int(10)),
        };
        let b = ColumnRange {
            low: Bound::Excluded(Value::Int(5)),
            high: Bound::Included(Value::Int(10)),
        };
        let i = a.intersect(&b);
        assert!(!i.contains(&Value::Int(5)));
        assert!(i.contains(&Value::Int(6)));
        assert!(!i.contains(&Value::Int(10)));
    }

    #[test]
    fn binding_unknown_column_fails() {
        let p = Predicate::all().and("nope", ColumnRange::eq(Value::Int(1)));
        assert!(p.bind(&schema()).is_err());
    }

    #[test]
    fn projection_drops_columns() {
        let p = Predicate::all()
            .and("user_id", ColumnRange::eq(Value::Int(1)))
            .and("region_id", ColumnRange::eq(Value::Int(2)));
        let q = p.project_columns(&["region_id"]);
        assert_eq!(q.arity(), 1);
        assert!(q.range_of("user_id").is_none());
        assert!(q.range_of("region_id").is_some());
    }

    #[test]
    fn trivial_predicate_matches_everything() {
        let b = Predicate::all().bind(&schema()).unwrap();
        assert!(b.matches(&vec![Value::Null, Value::Null, Value::Null]));
        assert!(Predicate::all().is_trivial());
    }

    #[test]
    fn display_is_readable() {
        let p = Predicate::all().and(
            "user_id",
            ColumnRange::open(Value::Int(1), Value::Int(9)),
        );
        assert_eq!(p.to_string(), "user_id > 1 AND user_id < 9");
        assert_eq!(Predicate::all().to_string(), "TRUE");
    }
}
