//! Additive aggregate functions and their mergeable states.
//!
//! DGFIndex pre-computes per-GFU aggregation headers; the paper requires
//! these to be **additive functions** ("max, min, sum, count, and other
//! UDFs (need to be additive functions) supported by Hive", §4.1). An
//! additive function is one whose partial states merge associatively, so
//! the same [`AggState`] type serves three roles:
//!
//! 1. map-side partial aggregation in scan queries,
//! 2. the pre-computed GFU header (serialized with
//!    [`AggSet::encode_states`]),
//! 3. combining inner-region headers with boundary-region scan results.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use dgf_common::batch::{Column, ColumnBatch, ColumnData, Selection};
use dgf_common::codec::{self, Decoder};
use dgf_common::{DgfError, Result, Row, Schema, Value};

/// A user-defined additive aggregate.
///
/// State is a fixed vector of `f64` accumulators — enough for products,
/// weighted sums, sums of squares, and other additive statistics, while
/// staying trivially serializable into GFU headers.
pub trait AdditiveUdf: Send + Sync {
    /// Unique name, used for header compatibility checks (e.g.
    /// `"sum_product(num,price)"`).
    fn name(&self) -> String;
    /// The identity state.
    fn init(&self) -> Vec<f64>;
    /// Fold one row into the state.
    fn update(&self, state: &mut [f64], row: &Row, schema: &Schema) -> Result<()>;
    /// Merge another partial state into `state` (must be associative and
    /// commutative).
    fn merge(&self, state: &mut [f64], other: &[f64]);
    /// Produce the final value.
    fn finalize(&self, state: &[f64]) -> Value;
}

/// The paper's example UDF: `sum(a * b)` over two numeric columns
/// (§4.1 pre-computes `sum(num * price)`).
#[derive(Debug, Clone)]
pub struct SumProductUdf {
    /// First factor column.
    pub a: String,
    /// Second factor column.
    pub b: String,
}

impl AdditiveUdf for SumProductUdf {
    fn name(&self) -> String {
        format!("sum_product({},{})", self.a, self.b)
    }

    fn init(&self) -> Vec<f64> {
        vec![0.0, 0.0, 0.0] // [sum, Neumaier error term, non-null row count]
    }

    fn update(&self, state: &mut [f64], row: &Row, schema: &Schema) -> Result<()> {
        let a = &row[schema.index_of(&self.a)?];
        let b = &row[schema.index_of(&self.b)?];
        if a.is_null() || b.is_null() {
            return Ok(());
        }
        let x = a.as_f64()? * b.as_f64()?;
        let (sum, rest) = state.split_at_mut(1);
        kahan_add(&mut sum[0], &mut rest[0], x);
        state[2] += 1.0;
        Ok(())
    }

    fn merge(&self, state: &mut [f64], other: &[f64]) {
        let (sum, rest) = state.split_at_mut(1);
        kahan_add(&mut sum[0], &mut rest[0], other[0]);
        state[1] += other[1];
        state[2] += other[2];
    }

    fn finalize(&self, state: &[f64]) -> Value {
        if state[2] == 0.0 {
            Value::Null
        } else {
            Value::Float(state[0] + state[1])
        }
    }
}

/// An aggregate function specification.
#[derive(Clone)]
pub enum AggFunc {
    /// `COUNT(*)`.
    Count,
    /// `SUM(column)` (NULLs ignored; all-NULL input yields NULL).
    Sum(String),
    /// `MIN(column)`.
    Min(String),
    /// `MAX(column)`.
    Max(String),
    /// `AVG(column)`.
    Avg(String),
    /// A user-defined additive aggregate.
    Udf(Arc<dyn AdditiveUdf>),
}

impl AggFunc {
    /// Canonical key, used to match query aggregates against the
    /// aggregates pre-computed in an index header.
    pub fn key(&self) -> String {
        match self {
            AggFunc::Count => "count(*)".to_owned(),
            AggFunc::Sum(c) => format!("sum({c})"),
            AggFunc::Min(c) => format!("min({c})"),
            AggFunc::Max(c) => format!("max({c})"),
            AggFunc::Avg(c) => format!("avg({c})"),
            AggFunc::Udf(u) => format!("udf:{}", u.name()),
        }
    }
}

impl fmt::Debug for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.key())
    }
}

impl PartialEq for AggFunc {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

/// One step of Neumaier's compensated summation: fold `x` into the
/// running `sum`, accumulating the rounding error into `comp`. The true
/// total is `sum + comp` (added once, at finalize). Plain `+=` folds
/// make the low-order bits of a float sum depend on merge order; the
/// compensated form keeps the error term explicit so partial states
/// merge without drifting, and repeated runs of the same fold are
/// bit-identical regardless of how partials were grouped.
fn kahan_add(sum: &mut f64, comp: &mut f64, x: f64) {
    let t = *sum + x;
    *comp += if sum.abs() >= x.abs() {
        (*sum - t) + x
    } else {
        (x - t) + *sum
    };
    *sum = t;
}

/// SUM/AVG kernel: compensated fold of a column's selected non-null cells,
/// in ascending row order — the same values through the same [`kahan_add`]
/// steps as the row path, hence bit-identical.
fn fold_sum(
    col: &Column,
    sel: &Selection,
    sum: &mut f64,
    comp: &mut f64,
    n: &mut u64,
) -> Result<()> {
    match &col.data {
        ColumnData::Float(v) => {
            if col.nulls.any_nulls() {
                for i in sel.iter() {
                    if !col.nulls.is_null(i) {
                        kahan_add(sum, comp, v[i]);
                        *n += 1;
                    }
                }
            } else {
                match sel {
                    Selection::All(len) => {
                        for &x in &v[..*len] {
                            kahan_add(sum, comp, x);
                        }
                    }
                    Selection::Rows(rows) => {
                        for &i in rows {
                            kahan_add(sum, comp, v[i as usize]);
                        }
                    }
                }
                *n += sel.len() as u64;
            }
        }
        ColumnData::Int(v) | ColumnData::Date(v) => {
            if col.nulls.any_nulls() {
                for i in sel.iter() {
                    if !col.nulls.is_null(i) {
                        kahan_add(sum, comp, v[i] as f64);
                        *n += 1;
                    }
                }
            } else {
                match sel {
                    Selection::All(len) => {
                        for &x in &v[..*len] {
                            kahan_add(sum, comp, x as f64);
                        }
                    }
                    Selection::Rows(rows) => {
                        for &i in rows {
                            kahan_add(sum, comp, v[i as usize] as f64);
                        }
                    }
                }
                *n += sel.len() as u64;
            }
        }
        // An unprojected column reads as Null in the row path: nothing to
        // fold (and nothing the row path would have errored on).
        ColumnData::Skipped => {}
        // Strings and mixed-type columns go through `as_f64` so non-numeric
        // cells produce exactly the row path's error.
        ColumnData::Str(_) | ColumnData::Values(_) => {
            for i in sel.iter() {
                let v = col.value_at(i);
                if !v.is_null() {
                    kahan_add(sum, comp, v.as_f64()?);
                    *n += 1;
                }
            }
        }
    }
    Ok(())
}

/// Index of the best (per `want`) selected non-null cell, first-wins on
/// ties — the tie-break the evolving row-path fold has.
fn best_index<T, F>(col: &Column, sel: &Selection, v: &[T], cmp: F, want: Ordering) -> Option<usize>
where
    F: Fn(&T, &T) -> Ordering,
{
    let mut best: Option<usize> = None;
    for i in sel.iter() {
        if col.nulls.is_null(i) {
            continue;
        }
        match best {
            None => best = Some(i),
            Some(b) if cmp(&v[i], &v[b]) == want => best = Some(i),
            _ => {}
        }
    }
    best
}

/// MIN/MAX kernel: pick the column's best selected cell with native
/// comparisons, then merge it into the running state under `Value`
/// ordering. Native and `Value` orderings agree within a typed column, and
/// min/max folds are associative over a total order, so the result is the
/// value the row path would hold.
fn fold_extreme(col: &Column, sel: &Selection, m: &mut Option<Value>, want: Ordering) {
    let best: Option<Value> = match &col.data {
        ColumnData::Int(v) => {
            best_index(col, sel, v, |a, b| a.cmp(b), want).map(|i| Value::Int(v[i]))
        }
        ColumnData::Date(v) => {
            best_index(col, sel, v, |a, b| a.cmp(b), want).map(|i| Value::Date(v[i]))
        }
        ColumnData::Float(v) => best_index(
            col,
            sel,
            v,
            // NaN is rejected at construction, so this is a total order.
            |a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal),
            want,
        )
        .map(|i| Value::Float(v[i])),
        ColumnData::Str(v) => {
            best_index(col, sel, v, |a: &String, b| a.cmp(b), want).map(|i| Value::Str(v[i].clone()))
        }
        ColumnData::Values(vals) => {
            // Mixed-type column: replay the row path's evolving fold under
            // `Value` ordering directly.
            let mut best: Option<&Value> = None;
            for i in sel.iter() {
                let x = &vals[i];
                if col.nulls.is_null(i) || x.is_null() {
                    continue;
                }
                match best {
                    None => best = Some(x),
                    Some(b) if x.cmp_value(b) == want => best = Some(x),
                    _ => {}
                }
            }
            best.cloned()
        }
        ColumnData::Skipped => None,
    };
    if let Some(v) = best {
        let replace = match m {
            None => true,
            Some(cur) => v.cmp_value(cur) == want,
        };
        if replace {
            *m = Some(v);
        }
    }
}

/// A mergeable partial aggregation state.
#[derive(Debug, Clone, PartialEq)]
pub enum AggState {
    /// Row count.
    Count(u64),
    /// Running sum and non-null count (to distinguish 0 from NULL).
    Sum {
        /// Compensated sum of non-null values.
        sum: f64,
        /// Neumaier error term; the true sum is `sum + comp`.
        comp: f64,
        /// Number of non-null values folded in.
        non_null: u64,
    },
    /// Running minimum.
    Min(Option<Value>),
    /// Running maximum.
    Max(Option<Value>),
    /// Running sum and count for the mean.
    Avg {
        /// Compensated sum of non-null values.
        sum: f64,
        /// Neumaier error term; the true sum is `sum + comp`.
        comp: f64,
        /// Number of non-null values folded in.
        count: u64,
    },
    /// UDF accumulators.
    Udf(Vec<f64>),
}

/// A list of aggregate functions bound to a schema.
#[derive(Debug, Clone)]
pub struct AggSet {
    funcs: Vec<AggFunc>,
    cols: Vec<Option<usize>>,
}

impl AggSet {
    /// Resolve column references.
    pub fn bind(funcs: &[AggFunc], schema: &Schema) -> Result<AggSet> {
        let mut cols = Vec::with_capacity(funcs.len());
        for f in funcs {
            cols.push(match f {
                AggFunc::Count | AggFunc::Udf(_) => None,
                AggFunc::Sum(c) | AggFunc::Min(c) | AggFunc::Max(c) | AggFunc::Avg(c) => {
                    Some(schema.index_of(c)?)
                }
            });
        }
        Ok(AggSet {
            funcs: funcs.to_vec(),
            cols,
        })
    }

    /// The bound functions.
    pub fn funcs(&self) -> &[AggFunc] {
        &self.funcs
    }

    /// Number of aggregates.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// Whether there are no aggregates.
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }

    /// Identity states, one per function.
    pub fn new_states(&self) -> Vec<AggState> {
        self.funcs
            .iter()
            .map(|f| match f {
                AggFunc::Count => AggState::Count(0),
                AggFunc::Sum(_) => AggState::Sum { sum: 0.0, comp: 0.0, non_null: 0 },
                AggFunc::Min(_) => AggState::Min(None),
                AggFunc::Max(_) => AggState::Max(None),
                AggFunc::Avg(_) => AggState::Avg { sum: 0.0, comp: 0.0, count: 0 },
                AggFunc::Udf(u) => AggState::Udf(u.init()),
            })
            .collect()
    }

    /// Fold one row into the states.
    pub fn update(&self, states: &mut [AggState], row: &Row, schema: &Schema) -> Result<()> {
        for ((f, col), st) in self.funcs.iter().zip(&self.cols).zip(states.iter_mut()) {
            match (f, st) {
                (AggFunc::Count, AggState::Count(n)) => *n += 1,
                (AggFunc::Sum(_), AggState::Sum { sum, comp, non_null }) => {
                    let v = &row[col.expect("bound")];
                    if !v.is_null() {
                        kahan_add(sum, comp, v.as_f64()?);
                        *non_null += 1;
                    }
                }
                (AggFunc::Min(_), AggState::Min(m)) => {
                    let v = &row[col.expect("bound")];
                    if !v.is_null() && m.as_ref().is_none_or(|cur| v < cur) {
                        *m = Some(v.clone());
                    }
                }
                (AggFunc::Max(_), AggState::Max(m)) => {
                    let v = &row[col.expect("bound")];
                    if !v.is_null() && m.as_ref().is_none_or(|cur| v > cur) {
                        *m = Some(v.clone());
                    }
                }
                (AggFunc::Avg(_), AggState::Avg { sum, comp, count }) => {
                    let v = &row[col.expect("bound")];
                    if !v.is_null() {
                        kahan_add(sum, comp, v.as_f64()?);
                        *count += 1;
                    }
                }
                (AggFunc::Udf(u), AggState::Udf(s)) => u.update(s, row, schema)?,
                _ => return Err(DgfError::Query("agg state/function mismatch".into())),
            }
        }
        Ok(())
    }

    /// Fold every selected row of a batch into the states — the vectorized
    /// counterpart of calling [`Self::update`] once per selected row.
    ///
    /// Selected rows are folded in ascending row order through the same
    /// compensated-summation step as the row path, so the resulting states
    /// are **bit-identical** to a row-at-a-time fold of the same rows.
    /// UDF aggregates have no slice form; they fold through one reused
    /// scratch row.
    pub fn update_batch(
        &self,
        states: &mut [AggState],
        batch: &ColumnBatch,
        sel: &Selection,
        schema: &Schema,
    ) -> Result<()> {
        let mut scratch: Option<Row> = None;
        for ((f, col), st) in self.funcs.iter().zip(&self.cols).zip(states.iter_mut()) {
            match (f, st) {
                (AggFunc::Count, AggState::Count(n)) => *n += sel.len() as u64,
                (AggFunc::Sum(_), AggState::Sum { sum, comp, non_null }) => {
                    fold_sum(batch.column(col.expect("bound")), sel, sum, comp, non_null)?;
                }
                (AggFunc::Avg(_), AggState::Avg { sum, comp, count }) => {
                    fold_sum(batch.column(col.expect("bound")), sel, sum, comp, count)?;
                }
                (AggFunc::Min(_), AggState::Min(m)) => {
                    fold_extreme(batch.column(col.expect("bound")), sel, m, Ordering::Less);
                }
                (AggFunc::Max(_), AggState::Max(m)) => {
                    fold_extreme(batch.column(col.expect("bound")), sel, m, Ordering::Greater);
                }
                (AggFunc::Udf(u), AggState::Udf(s)) => {
                    let row = scratch.get_or_insert_with(Row::new);
                    for i in sel.iter() {
                        batch.read_row_into(i, row);
                        u.update(s, row, schema)?;
                    }
                }
                _ => return Err(DgfError::Query("agg state/function mismatch".into())),
            }
        }
        Ok(())
    }

    /// Merge `other` into `states` (both produced by this set).
    pub fn merge(&self, states: &mut [AggState], other: &[AggState]) -> Result<()> {
        for ((f, st), o) in self.funcs.iter().zip(states.iter_mut()).zip(other) {
            match (st, o) {
                (AggState::Count(a), AggState::Count(b)) => *a += b,
                (
                    AggState::Sum { sum: a, comp: ac, non_null: an },
                    AggState::Sum { sum: b, comp: bc, non_null: bn },
                ) => {
                    kahan_add(a, ac, *b);
                    *ac += bc;
                    *an += bn;
                }
                (AggState::Min(a), AggState::Min(b)) => {
                    if let Some(bv) = b {
                        if a.as_ref().is_none_or(|av| bv < av) {
                            *a = Some(bv.clone());
                        }
                    }
                }
                (AggState::Max(a), AggState::Max(b)) => {
                    if let Some(bv) = b {
                        if a.as_ref().is_none_or(|av| bv > av) {
                            *a = Some(bv.clone());
                        }
                    }
                }
                (
                    AggState::Avg { sum: a, comp: ac, count: an },
                    AggState::Avg { sum: b, comp: bc, count: bn },
                ) => {
                    kahan_add(a, ac, *b);
                    *ac += bc;
                    *an += bn;
                }
                (AggState::Udf(a), AggState::Udf(b)) => match f {
                    AggFunc::Udf(u) => u.merge(a, b),
                    _ => return Err(DgfError::Query("udf state under non-udf func".into())),
                },
                _ => return Err(DgfError::Query("merging mismatched agg states".into())),
            }
        }
        Ok(())
    }

    /// Produce final values.
    pub fn finalize(&self, states: &[AggState]) -> Vec<Value> {
        self.funcs
            .iter()
            .zip(states)
            .map(|(f, st)| match st {
                AggState::Count(n) => Value::Int(*n as i64),
                AggState::Sum { sum, comp, non_null } => {
                    if *non_null == 0 {
                        Value::Null
                    } else {
                        Value::Float(sum + comp)
                    }
                }
                AggState::Min(m) | AggState::Max(m) => m.clone().unwrap_or(Value::Null),
                AggState::Avg { sum, comp, count } => {
                    if *count == 0 {
                        Value::Null
                    } else {
                        Value::Float((sum + comp) / *count as f64)
                    }
                }
                AggState::Udf(s) => match f {
                    AggFunc::Udf(u) => u.finalize(s),
                    _ => Value::Null,
                },
            })
            .collect()
    }

    /// Serialize states (GFU header payload).
    pub fn encode_states(states: &[AggState]) -> Vec<u8> {
        let mut buf = Vec::new();
        codec::put_u32(&mut buf, states.len() as u32);
        for st in states {
            match st {
                AggState::Count(n) => {
                    buf.push(0);
                    codec::put_u64(&mut buf, *n);
                }
                AggState::Sum { sum, comp, non_null } => {
                    buf.push(1);
                    codec::put_f64(&mut buf, *sum);
                    codec::put_f64(&mut buf, *comp);
                    codec::put_u64(&mut buf, *non_null);
                }
                AggState::Min(m) => {
                    buf.push(2);
                    codec::put_value(&mut buf, &m.clone().unwrap_or(Value::Null));
                }
                AggState::Max(m) => {
                    buf.push(3);
                    codec::put_value(&mut buf, &m.clone().unwrap_or(Value::Null));
                }
                AggState::Avg { sum, comp, count } => {
                    buf.push(4);
                    codec::put_f64(&mut buf, *sum);
                    codec::put_f64(&mut buf, *comp);
                    codec::put_u64(&mut buf, *count);
                }
                AggState::Udf(s) => {
                    buf.push(5);
                    codec::put_u32(&mut buf, s.len() as u32);
                    for x in s {
                        codec::put_f64(&mut buf, *x);
                    }
                }
            }
        }
        buf
    }

    /// Deserialize states from [`encode_states`](Self::encode_states)
    /// output. The decoded state kinds must match this set's functions.
    pub fn decode_states(&self, bytes: &[u8]) -> Result<Vec<AggState>> {
        let mut dec = Decoder::new(bytes);
        let n = dec.u32()? as usize;
        if n != self.funcs.len() {
            return Err(DgfError::Corrupt(format!(
                "header has {n} agg states, query needs {}",
                self.funcs.len()
            )));
        }
        let mut out = Vec::with_capacity(n);
        for f in &self.funcs {
            let st = match dec.u8()? {
                0 => AggState::Count(dec.u64()?),
                1 => AggState::Sum {
                    sum: dec.f64()?,
                    comp: dec.f64()?,
                    non_null: dec.u64()?,
                },
                2 => AggState::Min(none_if_null(codec::get_value(&mut dec)?)),
                3 => AggState::Max(none_if_null(codec::get_value(&mut dec)?)),
                4 => AggState::Avg {
                    sum: dec.f64()?,
                    comp: dec.f64()?,
                    count: dec.u64()?,
                },
                5 => {
                    let k = dec.u32()? as usize;
                    let mut s = Vec::with_capacity(k);
                    for _ in 0..k {
                        s.push(dec.f64()?);
                    }
                    AggState::Udf(s)
                }
                t => return Err(DgfError::Corrupt(format!("unknown agg state tag {t}"))),
            };
            let compatible = matches!(
                (f, &st),
                (AggFunc::Count, AggState::Count(_))
                    | (AggFunc::Sum(_), AggState::Sum { .. })
                    | (AggFunc::Min(_), AggState::Min(_))
                    | (AggFunc::Max(_), AggState::Max(_))
                    | (AggFunc::Avg(_), AggState::Avg { .. })
                    | (AggFunc::Udf(_), AggState::Udf(_))
            );
            if !compatible {
                return Err(DgfError::Corrupt(
                    "header agg state does not match query aggregate".into(),
                ));
            }
            out.push(st);
        }
        Ok(out)
    }
}

fn none_if_null(v: Value) -> Option<Value> {
    if v.is_null() {
        None
    } else {
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_common::{Schema, ValueType};

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("id", ValueType::Int),
            ("power", ValueType::Float),
            ("price", ValueType::Float),
        ])
    }

    fn rows() -> Vec<Row> {
        vec![
            vec![Value::Int(1), Value::Float(2.0), Value::Float(10.0)],
            vec![Value::Int(2), Value::Float(4.0), Value::Float(20.0)],
            vec![Value::Int(3), Value::Null, Value::Float(30.0)],
            vec![Value::Int(4), Value::Float(-1.0), Value::Float(40.0)],
        ]
    }

    fn all_funcs() -> Vec<AggFunc> {
        vec![
            AggFunc::Count,
            AggFunc::Sum("power".into()),
            AggFunc::Min("power".into()),
            AggFunc::Max("power".into()),
            AggFunc::Avg("power".into()),
            AggFunc::Udf(Arc::new(SumProductUdf {
                a: "power".into(),
                b: "price".into(),
            })),
        ]
    }

    #[test]
    fn full_fold_produces_sql_answers() {
        let s = schema();
        let set = AggSet::bind(&all_funcs(), &s).unwrap();
        let mut states = set.new_states();
        for r in rows() {
            set.update(&mut states, &r, &s).unwrap();
        }
        let out = set.finalize(&states);
        assert_eq!(out[0], Value::Int(4)); // count(*) counts null rows too
        assert_eq!(out[1], Value::Float(5.0)); // sum ignores null
        assert_eq!(out[2], Value::Float(-1.0)); // min
        assert_eq!(out[3], Value::Float(4.0)); // max
        assert_eq!(out[4], Value::Float(5.0 / 3.0)); // avg over non-null
        assert_eq!(out[5], Value::Float(2.0 * 10.0 + 4.0 * 20.0 + -40.0));
    }

    #[test]
    fn empty_input_yields_nulls_except_count() {
        let s = schema();
        let set = AggSet::bind(&all_funcs(), &s).unwrap();
        let out = set.finalize(&set.new_states());
        assert_eq!(out[0], Value::Int(0));
        for v in &out[1..] {
            assert_eq!(*v, Value::Null);
        }
    }

    #[test]
    fn merge_of_partials_equals_full_fold() {
        let s = schema();
        let set = AggSet::bind(&all_funcs(), &s).unwrap();
        let rs = rows();
        // Full fold.
        let mut full = set.new_states();
        for r in &rs {
            set.update(&mut full, r, &s).unwrap();
        }
        // Two partials merged.
        let mut a = set.new_states();
        let mut b = set.new_states();
        for r in &rs[..2] {
            set.update(&mut a, r, &s).unwrap();
        }
        for r in &rs[2..] {
            set.update(&mut b, r, &s).unwrap();
        }
        set.merge(&mut a, &b).unwrap();
        assert_eq!(set.finalize(&a), set.finalize(&full));
    }

    #[test]
    fn states_round_trip_through_encoding() {
        let s = schema();
        let set = AggSet::bind(&all_funcs(), &s).unwrap();
        let mut states = set.new_states();
        for r in rows() {
            set.update(&mut states, &r, &s).unwrap();
        }
        let bytes = AggSet::encode_states(&states);
        let decoded = set.decode_states(&bytes).unwrap();
        assert_eq!(decoded, states);
    }

    #[test]
    fn decode_rejects_wrong_shape() {
        let s = schema();
        let set = AggSet::bind(&[AggFunc::Count], &s).unwrap();
        let other = AggSet::bind(&[AggFunc::Sum("power".into())], &s).unwrap();
        let bytes = AggSet::encode_states(&other.new_states());
        assert!(set.decode_states(&bytes).is_err());
        let two = AggSet::bind(&[AggFunc::Count, AggFunc::Count], &s).unwrap();
        let bytes = AggSet::encode_states(&two.new_states());
        assert!(set.decode_states(&bytes).is_err());
    }

    #[test]
    fn compensated_sum_survives_catastrophic_cancellation() {
        // A naive fold of [1e16, 1.0, -1e16] loses the 1.0 entirely
        // (1e16 + 1.0 == 1e16 in f64); Neumaier keeps it in the error
        // term. Exercised through update, merge, and the UDF path.
        let s = Schema::from_pairs(&[("id", ValueType::Int), ("power", ValueType::Float)]);
        let set = AggSet::bind(
            &[AggFunc::Sum("power".into()), AggFunc::Avg("power".into())],
            &s,
        )
        .unwrap();
        let vals = [1e16, 1.0, -1e16];
        let mut full = set.new_states();
        for v in vals {
            set.update(&mut full, &vec![Value::Int(0), Value::Float(v)], &s)
                .unwrap();
        }
        let out = set.finalize(&full);
        assert_eq!(out[0], Value::Float(1.0));
        assert_eq!(out[1], Value::Float(1.0 / 3.0));

        // One-row partials merged pairwise reach the same answer.
        let mut acc = set.new_states();
        for v in vals {
            let mut part = set.new_states();
            set.update(&mut part, &vec![Value::Int(0), Value::Float(v)], &s)
                .unwrap();
            set.merge(&mut acc, &part).unwrap();
        }
        assert_eq!(set.finalize(&acc), out);

        // The sum-product UDF compensates too (b == 1.0 ⇒ plain sum).
        let s2 = Schema::from_pairs(&[("a", ValueType::Float), ("b", ValueType::Float)]);
        let udf = SumProductUdf {
            a: "a".into(),
            b: "b".into(),
        };
        let mut st = udf.init();
        for v in vals {
            udf.update(&mut st, &vec![Value::Float(v), Value::Float(1.0)], &s2)
                .unwrap();
        }
        assert_eq!(udf.finalize(&st), Value::Float(1.0));
    }

    #[test]
    fn agg_func_keys_identify_functions() {
        assert_eq!(AggFunc::Count.key(), "count(*)");
        assert_eq!(AggFunc::Sum("x".into()).key(), "sum(x)");
        assert_eq!(
            AggFunc::Udf(Arc::new(SumProductUdf {
                a: "n".into(),
                b: "p".into()
            }))
            .key(),
            "udf:sum_product(n,p)"
        );
        assert_eq!(AggFunc::Sum("x".into()), AggFunc::Sum("x".into()));
        assert_ne!(AggFunc::Sum("x".into()), AggFunc::Sum("y".into()));
    }

    #[test]
    fn binding_unknown_column_fails() {
        assert!(AggSet::bind(&[AggFunc::Sum("nope".into())], &schema()).is_err());
    }
}
