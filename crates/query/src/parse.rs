//! A small text syntax for queries, in the spirit of the paper's HiveQL
//! listings.
//!
//! The grammar covers exactly the paper's workload — aggregates over
//! conjunctive range predicates, GROUP BY, and projection:
//!
//! ```text
//! query      := select [where] [group_by]
//! select     := "SELECT" (agg_list | column_list)
//! agg_list   := agg ("," agg)*
//! agg        := "count(*)" | ("sum"|"min"|"max"|"avg") "(" ident ")"
//! where      := "WHERE" cond ("AND" cond)*
//! cond       := ident op literal
//! op         := ">=" | "<=" | ">" | "<" | "="
//! literal    := integer | float | 'YYYY-MM-DD' | 'string'
//! group_by   := "GROUP BY" ident
//! ```
//!
//! Keywords are case-insensitive. Joins are built programmatically (they
//! need a second table handle), not parsed.

use std::ops::Bound;

use dgf_common::{parse_date, DgfError, Result, Schema, Value, ValueType};

use crate::agg::AggFunc;
use crate::predicate::{ColumnRange, Predicate};
use crate::spec::Query;

/// Parse a query string against a schema.
pub fn parse_query(text: &str, schema: &Schema) -> Result<Query> {
    let mut tokens = tokenize(text)?;
    expect_keyword(&mut tokens, "SELECT")?;

    // Peek: aggregate list or column list?
    let select_items = parse_select_items(&mut tokens)?;

    let mut predicate = Predicate::all();
    if peek_keyword(&tokens, "WHERE") {
        tokens.remove(0);
        predicate = parse_conditions(&mut tokens, schema)?;
    }

    let mut group_key = None;
    if peek_keyword(&tokens, "GROUP") {
        tokens.remove(0);
        expect_keyword(&mut tokens, "BY")?;
        group_key = Some(expect_ident(&mut tokens)?);
    }
    if !tokens.is_empty() {
        return Err(DgfError::Query(format!(
            "unexpected trailing input near {:?}",
            tokens[0]
        )));
    }

    // Validate column references eagerly.
    for item in &select_items {
        if let SelectItem::Column(c) = item {
            schema.index_of(c)?;
        }
        if let SelectItem::Agg(
            AggFunc::Sum(c) | AggFunc::Min(c) | AggFunc::Max(c) | AggFunc::Avg(c),
        ) = item
        {
            schema.index_of(c)?;
        }
    }

    let has_aggs = select_items.iter().any(|i| matches!(i, SelectItem::Agg(_)));
    let has_cols = select_items
        .iter()
        .any(|i| matches!(i, SelectItem::Column(_)));

    match (has_aggs, has_cols, group_key) {
        (true, false, None) => Ok(Query::Aggregate {
            aggs: select_items.into_iter().map(SelectItem::into_agg).collect(),
            predicate,
        }),
        (true, _, Some(key)) => {
            schema.index_of(&key)?;
            // GROUP BY allows the key column itself in the select list.
            let aggs: Vec<AggFunc> = select_items
                .into_iter()
                .filter_map(|i| match i {
                    SelectItem::Agg(a) => Some(a),
                    SelectItem::Column(c) if c == key => None,
                    SelectItem::Column(c) => Some(AggFunc::Max(c)), // non-key bare column: take max (Hive would reject; we pick a defined semantic)
                })
                .collect();
            Ok(Query::GroupBy {
                key,
                aggs,
                predicate,
            })
        }
        (false, true, None) => Ok(Query::Select {
            project: select_items
                .into_iter()
                .map(SelectItem::into_column)
                .collect(),
            predicate,
        }),
        (false, true, Some(_)) => Err(DgfError::Query(
            "GROUP BY requires at least one aggregate".into(),
        )),
        (true, true, None) => Err(DgfError::Query(
            "cannot mix bare columns and aggregates without GROUP BY".into(),
        )),
        (false, false, _) => Err(DgfError::Query("empty select list".into())),
    }
}

/// Parse just a predicate, e.g. `user_id >= 10 AND ts < '2013-01-01'`.
pub fn parse_predicate(text: &str, schema: &Schema) -> Result<Predicate> {
    let mut tokens = tokenize(text)?;
    if tokens.is_empty() {
        return Ok(Predicate::all());
    }
    let p = parse_conditions(&mut tokens, schema)?;
    if !tokens.is_empty() {
        return Err(DgfError::Query(format!(
            "unexpected trailing input near {:?}",
            tokens[0]
        )));
    }
    Ok(p)
}

/// Parse an aggregate list, e.g. `sum(power_consumed), count(*)`.
pub fn parse_aggs(text: &str, schema: &Schema) -> Result<Vec<AggFunc>> {
    let mut tokens = tokenize(text)?;
    let items = parse_select_items(&mut tokens)?;
    if !tokens.is_empty() {
        return Err(DgfError::Query(format!(
            "unexpected trailing input near {:?}",
            tokens[0]
        )));
    }
    let mut out = Vec::with_capacity(items.len());
    for i in items {
        match i {
            SelectItem::Agg(a) => {
                match &a {
                    AggFunc::Sum(c) | AggFunc::Min(c) | AggFunc::Max(c) | AggFunc::Avg(c) => {
                        schema.index_of(c)?;
                    }
                    _ => {}
                }
                out.push(a);
            }
            SelectItem::Column(c) => {
                return Err(DgfError::Query(format!(
                    "expected an aggregate, found bare column {c:?}"
                )))
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(String),
    Quoted(String),
    Symbol(char),
    Op(String),
    Star,
}

enum SelectItem {
    Agg(AggFunc),
    Column(String),
}

impl SelectItem {
    fn into_agg(self) -> AggFunc {
        match self {
            SelectItem::Agg(a) => a,
            SelectItem::Column(c) => AggFunc::Max(c),
        }
    }

    fn into_column(self) -> String {
        match self {
            SelectItem::Column(c) => c,
            SelectItem::Agg(a) => a.key(),
        }
    }
}

fn tokenize(text: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => break,
                        Some(ch) => s.push(ch),
                        None => {
                            return Err(DgfError::Query("unterminated string literal".into()))
                        }
                    }
                }
                out.push(Token::Quoted(s));
            }
            '(' | ')' | ',' => {
                chars.next();
                out.push(Token::Symbol(c));
            }
            '*' => {
                chars.next();
                out.push(Token::Star);
            }
            '>' | '<' | '=' | '!' => {
                chars.next();
                let mut op = c.to_string();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    op.push('=');
                }
                out.push(Token::Op(op));
            }
            c if c.is_ascii_digit() || c == '-' || c == '+' || c == '.' => {
                let mut s = String::new();
                s.push(c);
                chars.next();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() || d == '.' || d == 'e' || d == 'E' || d == '-' {
                        // Allow scientific notation; a '-' is only part of
                        // the number directly after an exponent marker.
                        if d == '-' && !matches!(s.chars().last(), Some('e') | Some('E')) {
                            break;
                        }
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token::Number(s));
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(s));
            }
            other => {
                return Err(DgfError::Query(format!("unexpected character {other:?}")));
            }
        }
    }
    Ok(out)
}

fn peek_keyword(tokens: &[Token], kw: &str) -> bool {
    matches!(tokens.first(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
}

fn expect_keyword(tokens: &mut Vec<Token>, kw: &str) -> Result<()> {
    if peek_keyword(tokens, kw) {
        tokens.remove(0);
        Ok(())
    } else {
        Err(DgfError::Query(format!(
            "expected {kw}, found {:?}",
            tokens.first()
        )))
    }
}

fn expect_ident(tokens: &mut Vec<Token>) -> Result<String> {
    match tokens.first() {
        Some(Token::Ident(_)) => {
            let Token::Ident(s) = tokens.remove(0) else {
                unreachable!()
            };
            Ok(s)
        }
        other => Err(DgfError::Query(format!("expected identifier, found {other:?}"))),
    }
}

fn parse_select_items(tokens: &mut Vec<Token>) -> Result<Vec<SelectItem>> {
    let mut items = Vec::new();
    loop {
        let name = expect_ident(tokens)?;
        // Stop words that end the select list are not valid items.
        let lowered = name.to_ascii_lowercase();
        let item = if tokens.first() == Some(&Token::Symbol('(')) {
            tokens.remove(0);
            let func = lowered;
            let arg = match tokens.first() {
                Some(Token::Star) => {
                    tokens.remove(0);
                    None
                }
                Some(Token::Ident(_)) => Some(expect_ident(tokens)?),
                other => {
                    return Err(DgfError::Query(format!(
                        "expected column or * in {func}(), found {other:?}"
                    )))
                }
            };
            if tokens.first() != Some(&Token::Symbol(')')) {
                return Err(DgfError::Query(format!("missing ')' after {func}(...)")));
            }
            tokens.remove(0);
            let agg = match (func.as_str(), arg) {
                ("count", None) => AggFunc::Count,
                ("count", Some(_)) => AggFunc::Count, // count(col) ~ count(*) here
                ("sum", Some(c)) => AggFunc::Sum(c),
                ("min", Some(c)) => AggFunc::Min(c),
                ("max", Some(c)) => AggFunc::Max(c),
                ("avg", Some(c)) => AggFunc::Avg(c),
                (f, _) => {
                    return Err(DgfError::Query(format!(
                        "unknown aggregate function {f:?} (UDFs are registered programmatically)"
                    )))
                }
            };
            SelectItem::Agg(agg)
        } else {
            SelectItem::Column(name)
        };
        items.push(item);
        if tokens.first() == Some(&Token::Symbol(',')) {
            tokens.remove(0);
            continue;
        }
        break;
    }
    Ok(items)
}

fn parse_literal(tok: Token, ty: ValueType) -> Result<Value> {
    match tok {
        Token::Number(s) => Value::parse(&s, ty),
        Token::Quoted(s) => match ty {
            ValueType::Date => Ok(Value::Date(parse_date(&s)?)),
            ValueType::Str => Ok(Value::Str(s)),
            other => Value::parse(&s, other),
        },
        other => Err(DgfError::Query(format!("expected a literal, found {other:?}"))),
    }
}

fn parse_conditions(tokens: &mut Vec<Token>, schema: &Schema) -> Result<Predicate> {
    let mut pred = Predicate::all();
    loop {
        let col = expect_ident(tokens)?;
        let ty = schema.type_of(&col)?;
        let op = match tokens.first() {
            Some(Token::Op(_)) => {
                let Token::Op(op) = tokens.remove(0) else {
                    unreachable!()
                };
                op
            }
            other => {
                return Err(DgfError::Query(format!(
                    "expected comparison operator after {col:?}, found {other:?}"
                )))
            }
        };
        if tokens.is_empty() {
            return Err(DgfError::Query(format!("missing literal after {col} {op}")));
        }
        let lit = parse_literal(tokens.remove(0), ty)?;
        let range = match op.as_str() {
            "=" => ColumnRange::eq(lit),
            ">" => ColumnRange {
                low: Bound::Excluded(lit),
                high: Bound::Unbounded,
            },
            ">=" => ColumnRange {
                low: Bound::Included(lit),
                high: Bound::Unbounded,
            },
            "<" => ColumnRange {
                low: Bound::Unbounded,
                high: Bound::Excluded(lit),
            },
            "<=" => ColumnRange {
                low: Bound::Unbounded,
                high: Bound::Included(lit),
            },
            other => {
                return Err(DgfError::Query(format!("unsupported operator {other:?}")))
            }
        };
        pred = pred.and(col, range);
        if peek_keyword(tokens, "AND") {
            tokens.remove(0);
            continue;
        }
        break;
    }
    Ok(pred)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("user_id", ValueType::Int),
            ("region_id", ValueType::Int),
            ("ts", ValueType::Date),
            ("power_consumed", ValueType::Float),
            ("status", ValueType::Str),
        ])
    }

    #[test]
    fn parses_the_papers_listing4() {
        let q = parse_query(
            "SELECT sum(power_consumed) FROM_IS_IMPLIED",
            &schema(),
        );
        // "FROM" is not part of the grammar; trailing junk must error.
        assert!(q.is_err());
        let q = parse_query(
            "SELECT sum(power_consumed) \
             WHERE region_id > 1 AND region_id < 9 \
             AND user_id > 100 AND user_id < 1000 \
             AND ts > '2013-01-01' AND ts < '2013-02-01'",
            &schema(),
        )
        .unwrap();
        let Query::Aggregate { aggs, predicate } = q else {
            panic!("expected aggregate");
        };
        assert_eq!(aggs, vec![AggFunc::Sum("power_consumed".into())]);
        assert_eq!(predicate.arity(), 3);
        let ts = predicate.range_of("ts").unwrap();
        assert!(ts.contains(&Value::Date(parse_date("2013-01-15").unwrap())));
        assert!(!ts.contains(&Value::Date(parse_date("2013-01-01").unwrap())));
    }

    #[test]
    fn parses_group_by() {
        let q = parse_query(
            "select ts, sum(power_consumed) where user_id >= 5 group by ts",
            &schema(),
        )
        .unwrap();
        let Query::GroupBy { key, aggs, .. } = q else {
            panic!("expected group by");
        };
        assert_eq!(key, "ts");
        assert_eq!(aggs, vec![AggFunc::Sum("power_consumed".into())]);
    }

    #[test]
    fn parses_projection_select() {
        let q = parse_query(
            "SELECT user_id, power_consumed WHERE status = 'OK'",
            &schema(),
        )
        .unwrap();
        let Query::Select { project, predicate } = q else {
            panic!("expected select");
        };
        assert_eq!(project, vec!["user_id".to_owned(), "power_consumed".to_owned()]);
        assert!(predicate
            .range_of("status")
            .unwrap()
            .contains(&Value::Str("OK".into())));
    }

    #[test]
    fn count_star_and_multiple_aggs() {
        let q = parse_query("SELECT count(*), min(power_consumed), max(power_consumed)", &schema())
            .unwrap();
        let Query::Aggregate { aggs, predicate } = q else {
            panic!()
        };
        assert_eq!(aggs.len(), 3);
        assert!(predicate.is_trivial());
    }

    #[test]
    fn operators_map_to_bounds() {
        let p = parse_predicate("user_id >= 10 AND user_id <= 20", &schema()).unwrap();
        let r = p.range_of("user_id").unwrap();
        assert!(r.contains(&Value::Int(10)));
        assert!(r.contains(&Value::Int(20)));
        assert!(!r.contains(&Value::Int(21)));
        let p = parse_predicate("power_consumed > 1.5", &schema()).unwrap();
        let r = p.range_of("power_consumed").unwrap();
        assert!(!r.contains(&Value::Float(1.5)));
        assert!(r.contains(&Value::Float(1.6)));
    }

    #[test]
    fn empty_predicate_is_trivial() {
        assert!(parse_predicate("", &schema()).unwrap().is_trivial());
    }

    #[test]
    fn agg_list_parser() {
        let aggs = parse_aggs("sum(power_consumed), count(*)", &schema()).unwrap();
        assert_eq!(
            aggs,
            vec![AggFunc::Sum("power_consumed".into()), AggFunc::Count]
        );
        assert!(parse_aggs("power_consumed", &schema()).is_err());
        assert!(parse_aggs("median(power_consumed)", &schema()).is_err());
    }

    #[test]
    fn errors_are_informative() {
        assert!(parse_query("WHERE x = 1", &schema()).is_err()); // no SELECT
        assert!(parse_query("SELECT sum(nope)", &schema()).is_err()); // unknown column
        assert!(parse_query("SELECT sum(power_consumed WHERE", &schema()).is_err()); // missing )
        assert!(parse_predicate("user_id ~ 3", &schema()).is_err()); // bad char
        assert!(parse_predicate("user_id >", &schema()).is_err()); // missing literal
        assert!(parse_predicate("ts = '2013-13-99'", &schema()).is_err()); // bad date
        assert!(parse_query("SELECT user_id, sum(power_consumed)", &schema()).is_err()); // mixed without group by
        assert!(parse_query("SELECT user_id GROUP BY user_id", &schema()).is_err()); // group by without agg
    }

    #[test]
    fn keywords_are_case_insensitive_and_dates_quoted() {
        let q = parse_query(
            "sElEcT count(*) wHeRe ts = '2012-12-30' aNd region_id = 11",
            &schema(),
        )
        .unwrap();
        // This is the paper's Listing 7.
        let Query::Aggregate { predicate, .. } = q else {
            panic!()
        };
        assert_eq!(predicate.arity(), 2);
    }

    #[test]
    fn scientific_notation_floats() {
        let p = parse_predicate("power_consumed < 1.5e2", &schema()).unwrap();
        assert!(p
            .range_of("power_consumed")
            .unwrap()
            .contains(&Value::Float(100.0)));
    }
}
