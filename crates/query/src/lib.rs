//! # dgf-query
//!
//! Query semantics shared by every engine in the DGFIndex reproduction:
//!
//! * [`predicate`] — conjunctive per-column range predicates (the paper's
//!   MDRQ `WHERE` clauses);
//! * [`agg`] — additive aggregate functions with mergeable, serializable
//!   states (the payload of DGFIndex's pre-computed GFU headers);
//! * [`spec`] — the four query shapes of the paper's workload and their
//!   results;
//! * [`exec`] — the [`RowSink`] evaluator all engines feed rows into, so
//!   scan, Hive-index, DGFIndex and HadoopDB execution can only differ in
//!   *which rows they read*, never in what they compute.

#![warn(missing_docs)]

pub mod agg;
pub mod engine;
pub mod exec;
pub mod parse;
pub mod predicate;
pub mod spec;

pub use agg::{AdditiveUdf, AggFunc, AggSet, AggState, SumProductUdf};
pub use engine::{Engine, EngineRun, RunStats};
pub use exec::RowSink;
pub use parse::{parse_aggs, parse_predicate, parse_query};
pub use predicate::{require_range, BoundPredicate, ColumnRange, Predicate};
pub use spec::{Query, QueryResult};

#[cfg(test)]
mod proptests {
    use super::*;
    use dgf_common::{Row, Schema, Value, ValueType};
    use proptest::prelude::*;

    fn schema() -> Schema {
        Schema::from_pairs(&[("k", ValueType::Int), ("v", ValueType::Float)])
    }

    fn arb_rows() -> impl Strategy<Value = Vec<Row>> {
        prop::collection::vec(
            (0i64..20, -100.0f64..100.0).prop_map(|(k, v)| {
                vec![Value::Int(k), Value::Float((v * 100.0).round() / 100.0)]
            }),
            0..60,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Aggregation over any split of the row stream, merged, equals
        /// the sequential fold — the additivity property DGFIndex relies
        /// on for its pre-computed headers.
        #[test]
        fn sink_merge_is_additive(rows in arb_rows(), cut_frac in 0.0f64..1.0) {
            let s = schema();
            let q = Query::Aggregate {
                aggs: vec![
                    AggFunc::Count,
                    AggFunc::Sum("v".into()),
                    AggFunc::Min("v".into()),
                    AggFunc::Max("v".into()),
                    AggFunc::Avg("v".into()),
                ],
                predicate: Predicate::all(),
            };
            let mut seq = RowSink::new(&q, &s, None).unwrap();
            for r in &rows {
                seq.push(r).unwrap();
            }
            let cut = ((rows.len() as f64) * cut_frac) as usize;
            let mut a = RowSink::new(&q, &s, None).unwrap();
            let mut b = RowSink::new(&q, &s, None).unwrap();
            for r in &rows[..cut] {
                a.push(r).unwrap();
            }
            for r in &rows[cut..] {
                b.push(r).unwrap();
            }
            a.merge(b).unwrap();
            prop_assert!(a.finish().approx_eq(&seq.finish(), 1e-9));
        }

        /// Header round trip: fold rows, encode the states, decode, merge
        /// into an empty sink — same answer as direct folding.
        #[test]
        fn header_round_trip_preserves_aggregates(rows in arb_rows()) {
            let s = schema();
            let aggs = vec![AggFunc::Count, AggFunc::Sum("v".into())];
            let q = Query::Aggregate { aggs: aggs.clone(), predicate: Predicate::all() };
            let set = AggSet::bind(&aggs, &s).unwrap();
            let mut states = set.new_states();
            for r in &rows {
                set.update(&mut states, r, &s).unwrap();
            }
            let header = AggSet::encode_states(&states);

            let mut sink = RowSink::new(&q, &s, None).unwrap();
            let decoded = sink.agg_set().unwrap().decode_states(&header).unwrap();
            sink.merge_agg_states(&decoded).unwrap();

            let mut direct = RowSink::new(&q, &s, None).unwrap();
            for r in &rows {
                direct.push(r).unwrap();
            }
            prop_assert!(sink.finish().approx_eq(&direct.finish(), 1e-9));
        }

        /// Predicate evaluation matches the mathematical interval.
        #[test]
        fn range_matches_interval(lo in -50i64..50, width in 0i64..40, x in -60i64..60) {
            let hi = lo + width;
            let r = ColumnRange::half_open(Value::Int(lo), Value::Int(hi));
            prop_assert_eq!(r.contains(&Value::Int(x)), x >= lo && x < hi);
        }

        /// Intersection of two intervals contains exactly the values both
        /// contain.
        #[test]
        fn intersect_is_conjunction(
            a_lo in -20i64..20, a_w in 0i64..20,
            b_lo in -20i64..20, b_w in 0i64..20,
            x in -25i64..45,
        ) {
            let a = ColumnRange::half_open(Value::Int(a_lo), Value::Int(a_lo + a_w));
            let b = ColumnRange::half_open(Value::Int(b_lo), Value::Int(b_lo + b_w));
            let i = a.intersect(&b);
            let v = Value::Int(x);
            prop_assert_eq!(i.contains(&v), a.contains(&v) && b.contains(&v));
        }
    }
}
