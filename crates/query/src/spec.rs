//! Query specifications and results.
//!
//! The paper's workload is four query shapes over one fact table
//! (Listings 2, 4, 5, 6 and 7): multidimensional-range **aggregation**,
//! **GROUP BY** aggregation, **JOIN** against a small archive table, and
//! plain **selection**. Every engine in this workspace (scan, Hive indexes,
//! DGFIndex, HadoopDB) consumes the same [`Query`] type and produces the
//! same [`QueryResult`], which is what lets the test suite assert that all
//! engines agree with a full-scan ground truth.

use std::fmt;

use dgf_common::{Row, Value};

use crate::agg::AggFunc;
use crate::predicate::Predicate;

/// A query against a fact table.
#[derive(Debug, Clone)]
pub enum Query {
    /// `SELECT agg1, agg2, … FROM t WHERE <ranges>` (paper Listing 4).
    Aggregate {
        /// Aggregates to compute.
        aggs: Vec<AggFunc>,
        /// Conjunctive range predicate.
        predicate: Predicate,
    },
    /// `SELECT key, aggs… FROM t WHERE <ranges> GROUP BY key`
    /// (paper Listing 5).
    GroupBy {
        /// Grouping column.
        key: String,
        /// Aggregates per group.
        aggs: Vec<AggFunc>,
        /// Conjunctive range predicate.
        predicate: Predicate,
    },
    /// `SELECT right.proj…, left.proj… FROM t JOIN r ON t.k = r.k WHERE …`
    /// (paper Listing 6: meterdata ⋈ userInfo).
    Join {
        /// Join column on the fact table.
        left_key: String,
        /// Join column on the (small) dimension table.
        right_key: String,
        /// Columns projected from the fact table.
        left_project: Vec<String>,
        /// Columns projected from the dimension table.
        right_project: Vec<String>,
        /// Predicate on the fact table.
        predicate: Predicate,
    },
    /// `SELECT proj… FROM t WHERE <ranges>`.
    Select {
        /// Projected columns (empty = all).
        project: Vec<String>,
        /// Conjunctive range predicate.
        predicate: Predicate,
    },
}

impl Query {
    /// The predicate of any query shape.
    pub fn predicate(&self) -> &Predicate {
        match self {
            Query::Aggregate { predicate, .. }
            | Query::GroupBy { predicate, .. }
            | Query::Join { predicate, .. }
            | Query::Select { predicate, .. } => predicate,
        }
    }

    /// Whether the pre-computed GFU headers can answer the inner region
    /// (true only for plain aggregation — paper Algorithm 3 line 5).
    pub fn is_aggregation(&self) -> bool {
        matches!(self, Query::Aggregate { .. })
    }
}

/// The result of running a [`Query`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// One value per aggregate.
    Scalars(Vec<Value>),
    /// `(group key, aggregate values)` sorted by key.
    Groups(Vec<(Value, Vec<Value>)>),
    /// Projected rows (order unspecified).
    Rows(Vec<Row>),
}

impl QueryResult {
    /// Unwrap scalars.
    pub fn into_scalars(self) -> Vec<Value> {
        match self {
            QueryResult::Scalars(v) => v,
            other => panic!("expected scalar result, got {other:?}"),
        }
    }

    /// Unwrap groups.
    pub fn into_groups(self) -> Vec<(Value, Vec<Value>)> {
        match self {
            QueryResult::Groups(g) => g,
            other => panic!("expected grouped result, got {other:?}"),
        }
    }

    /// Unwrap rows.
    pub fn into_rows(self) -> Vec<Row> {
        match self {
            QueryResult::Rows(r) => r,
            other => panic!("expected row result, got {other:?}"),
        }
    }

    /// Canonicalize for comparison across engines: sorts rows/groups.
    pub fn normalized(mut self) -> QueryResult {
        match &mut self {
            QueryResult::Rows(rows) => {
                rows.sort_by(|a, b| a.iter().cmp(b.iter()));
            }
            QueryResult::Groups(groups) => {
                groups.sort_by(|a, b| a.0.cmp(&b.0));
            }
            QueryResult::Scalars(_) => {}
        }
        self
    }

    /// Approximate float-tolerant equality (parallel engines sum floats in
    /// nondeterministic order).
    pub fn approx_eq(&self, other: &QueryResult, eps: f64) -> bool {
        fn val_eq(a: &Value, b: &Value, eps: f64) -> bool {
            match (a, b) {
                (Value::Float(x), Value::Float(y)) => {
                    let scale = x.abs().max(y.abs()).max(1.0);
                    (x - y).abs() <= eps * scale
                }
                _ => a == b,
            }
        }
        match (self, other) {
            (QueryResult::Scalars(a), QueryResult::Scalars(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| val_eq(x, y, eps))
            }
            (QueryResult::Groups(a), QueryResult::Groups(b)) => {
                a.len() == b.len()
                    && a.iter().zip(b).all(|((ka, va), (kb, vb))| {
                        ka == kb
                            && va.len() == vb.len()
                            && va.iter().zip(vb).all(|(x, y)| val_eq(x, y, eps))
                    })
            }
            (QueryResult::Rows(a), QueryResult::Rows(b)) => {
                a.len() == b.len()
                    && a.iter().zip(b).all(|(ra, rb)| {
                        ra.len() == rb.len()
                            && ra.iter().zip(rb).all(|(x, y)| val_eq(x, y, eps))
                    })
            }
            _ => false,
        }
    }
}

impl fmt::Display for QueryResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryResult::Scalars(v) => {
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{x}")?;
                }
                Ok(())
            }
            QueryResult::Groups(g) => write!(f, "{} groups", g.len()),
            QueryResult::Rows(r) => write!(f, "{} rows", r.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::ColumnRange;

    #[test]
    fn predicate_accessor_covers_all_shapes() {
        let p = Predicate::all().and("a", ColumnRange::eq(Value::Int(1)));
        let qs = vec![
            Query::Aggregate {
                aggs: vec![AggFunc::Count],
                predicate: p.clone(),
            },
            Query::GroupBy {
                key: "a".into(),
                aggs: vec![AggFunc::Count],
                predicate: p.clone(),
            },
            Query::Join {
                left_key: "a".into(),
                right_key: "a".into(),
                left_project: vec![],
                right_project: vec![],
                predicate: p.clone(),
            },
            Query::Select {
                project: vec![],
                predicate: p.clone(),
            },
        ];
        for q in &qs {
            assert_eq!(q.predicate(), &p);
        }
        assert!(qs[0].is_aggregation());
        assert!(!qs[1].is_aggregation());
    }

    #[test]
    fn normalized_sorts() {
        let r = QueryResult::Rows(vec![vec![Value::Int(2)], vec![Value::Int(1)]]).normalized();
        assert_eq!(
            r,
            QueryResult::Rows(vec![vec![Value::Int(1)], vec![Value::Int(2)]])
        );
        let g = QueryResult::Groups(vec![
            (Value::Int(2), vec![]),
            (Value::Int(1), vec![]),
        ])
        .normalized();
        assert_eq!(g.clone().into_groups()[0].0, Value::Int(1));
    }

    #[test]
    fn approx_eq_tolerates_float_noise() {
        let a = QueryResult::Scalars(vec![Value::Float(100.0)]);
        let b = QueryResult::Scalars(vec![Value::Float(100.0 + 1e-9)]);
        assert!(a.approx_eq(&b, 1e-6));
        let c = QueryResult::Scalars(vec![Value::Float(101.0)]);
        assert!(!a.approx_eq(&c, 1e-6));
        // Mixed kinds never compare equal.
        assert!(!a.approx_eq(&QueryResult::Rows(vec![]), 1e-6));
    }
}
