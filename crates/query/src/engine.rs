//! The engine abstraction and its run report.
//!
//! Every query path in the reproduction — full scan, the three Hive
//! indexes, DGFIndex, HadoopDB — implements [`Engine`]. The [`RunStats`]
//! report splits a run into the two phases the paper's figures stack:
//! "read index and other" vs. "read data and process", and carries the
//! records-read counts behind Tables 3, 4 and 6.

use std::time::Duration;

use crate::spec::{Query, QueryResult};
use dgf_common::obs::{names, MetricsRegistry, QueryProfile};
use dgf_common::stats::ScanSnapshot;
use dgf_common::Result;

/// Phase timings and I/O accounting for one query run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Time spent consulting the index (scanning an index table, kv-store
    /// lookups, split selection) plus planning overhead.
    pub index_time: Duration,
    /// Time spent reading base data and computing the answer.
    pub data_time: Duration,
    /// Records of *index* structures read (e.g. Compact Index table rows).
    pub index_records_read: u64,
    /// Records of base data read after index filtering — the paper's
    /// "records number" metric.
    pub data_records_read: u64,
    /// Base-data bytes read.
    pub data_bytes_read: u64,
    /// Input splits of the base table in total.
    pub splits_total: u64,
    /// Splits actually scheduled after filtering.
    pub splits_read: u64,
    /// Index-structure cache hits while planning (DGFIndex: GFU header
    /// cache probes answered from memory). Zero for engines without a
    /// planning cache.
    pub index_cache_hits: u64,
    /// Index-structure cache misses while planning.
    pub index_cache_misses: u64,
    /// Transient storage faults absorbed by retry loops during this run
    /// (key-value and file-system combined). Zero on a healthy cluster;
    /// the chaos suite asserts it is positive exactly when faults were
    /// scheduled, proving the run rode them out rather than dodging them.
    pub retries_absorbed: u64,
    /// Structured stage tree for this run, populated when the engine ran
    /// under an enabled [`Profiler`](dgf_common::obs::Profiler) (e.g.
    /// `dgf profile` or `DGF_TRACE=…`). Empty — and costing nothing —
    /// otherwise.
    pub profile: QueryProfile,
    /// Columnar-scan accounting for this run: batches decoded, rows
    /// selected, kernel/decode busy time and prefetch waits (DESIGN.md
    /// §12). All-zero for engines or formats on the row-at-a-time path,
    /// whose row count lands in `scan.rowwise_rows` instead.
    pub scan: ScanSnapshot,
}

impl RunStats {
    /// Total wall time.
    pub fn total_time(&self) -> Duration {
        self.index_time + self.data_time
    }

    /// Fold another run's counters into this one. The serving frontend
    /// accumulates every completed query's stats into one report this
    /// way; times add (total busy time across queries, not wall time)
    /// and the profile/scan snapshot of `other` is summed field-wise
    /// where additive.
    pub fn accumulate(&mut self, other: &RunStats) {
        self.index_time += other.index_time;
        self.data_time += other.data_time;
        self.index_records_read += other.index_records_read;
        self.data_records_read += other.data_records_read;
        self.data_bytes_read += other.data_bytes_read;
        self.splits_total += other.splits_total;
        self.splits_read += other.splits_read;
        self.index_cache_hits += other.index_cache_hits;
        self.index_cache_misses += other.index_cache_misses;
        self.retries_absorbed += other.retries_absorbed;
    }

    /// Project this run's aggregate counters into a [`MetricsRegistry`]
    /// under the stable names, so engine totals reconcile with the
    /// kv/hdfs-level counters collected elsewhere.
    pub fn record_into(&self, reg: &MetricsRegistry) {
        reg.add(names::HDFS_BYTES_READ, self.data_bytes_read);
        reg.add(names::HDFS_RECORDS_READ, self.data_records_read);
        reg.add(names::CACHE_HEADER_HITS, self.index_cache_hits);
        reg.add(names::CACHE_HEADER_MISSES, self.index_cache_misses);
        reg.add(names::PLAN_SPLITS_TOTAL, self.splits_total);
        reg.add(names::PLAN_SPLITS_READ, self.splits_read);
        self.scan.record_into(reg);
    }
}

impl std::fmt::Display for RunStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "index {:.3}s + data {:.3}s; {} index rec, {} data rec, {}/{} splits",
            self.index_time.as_secs_f64(),
            self.data_time.as_secs_f64(),
            self.index_records_read,
            self.data_records_read,
            self.splits_read,
            self.splits_total,
        )
    }
}

/// A finished run: the answer plus its cost report.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// The query answer.
    pub result: QueryResult,
    /// Cost accounting.
    pub stats: RunStats,
}

/// A query-execution strategy over one fact table.
pub trait Engine {
    /// Human-readable engine name (for bench tables).
    fn name(&self) -> String;

    /// Execute `query`.
    fn run(&self, query: &Query) -> Result<EngineRun>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_time_sums_phases() {
        let s = RunStats {
            index_time: Duration::from_millis(10),
            data_time: Duration::from_millis(25),
            ..RunStats::default()
        };
        assert_eq!(s.total_time(), Duration::from_millis(35));
        assert!(s.to_string().contains("splits"));
    }
}
