//! Shared query-evaluation machinery.
//!
//! Every engine in the workspace — full scan, Hive's Compact/Aggregate/
//! Bitmap indexes, DGFIndex, HadoopDB — differs only in *which rows it
//! feeds* to the evaluator. [`RowSink`] centralizes the semantics of the
//! four query shapes so engines cannot drift apart: a map task pushes its
//! matching rows into a sink, sinks from parallel tasks merge, and
//! `finish` produces the [`QueryResult`].

use std::collections::BTreeMap;

use dgf_common::batch::{ColumnBatch, Selection};
use dgf_common::{DgfError, Result, Row, Schema, Value};

use crate::agg::{AggSet, AggState};
use crate::predicate::BoundPredicate;
use crate::spec::{Query, QueryResult};

/// A mergeable accumulator for one query over one row stream.
pub struct RowSink {
    schema: Schema,
    kind: SinkKind,
}

enum SinkKind {
    Aggregate {
        set: AggSet,
        states: Vec<AggState>,
    },
    GroupBy {
        key_idx: usize,
        set: AggSet,
        groups: BTreeMap<Value, Vec<AggState>>,
    },
    Join {
        left_key_idx: usize,
        left_project: Vec<usize>,
        /// Build side: join key → projected right rows.
        build: BTreeMap<Value, Vec<Row>>,
        out: Vec<Row>,
    },
    Select {
        project: Vec<usize>,
        out: Vec<Row>,
    },
}

impl RowSink {
    /// Create a sink for `query` over rows of `schema`.
    ///
    /// Join queries need the dimension table (`right`): its schema and
    /// rows. The build side is materialized in every sink, mirroring
    /// Hive's map-side broadcast join of a small archive table.
    pub fn new(
        query: &Query,
        schema: &Schema,
        right: Option<(&Schema, &[Row])>,
    ) -> Result<RowSink> {
        let kind = match query {
            Query::Aggregate { aggs, .. } => {
                let set = AggSet::bind(aggs, schema)?;
                let states = set.new_states();
                SinkKind::Aggregate { set, states }
            }
            Query::GroupBy { key, aggs, .. } => SinkKind::GroupBy {
                key_idx: schema.index_of(key)?,
                set: AggSet::bind(aggs, schema)?,
                groups: BTreeMap::new(),
            },
            Query::Join {
                left_key,
                right_key,
                left_project,
                right_project,
                ..
            } => {
                let (right_schema, right_rows) = right.ok_or_else(|| {
                    DgfError::Query("join query requires the dimension table".into())
                })?;
                let right_key_idx = right_schema.index_of(right_key)?;
                let right_proj: Vec<usize> = right_project
                    .iter()
                    .map(|c| right_schema.index_of(c))
                    .collect::<Result<_>>()?;
                let mut build: BTreeMap<Value, Vec<Row>> = BTreeMap::new();
                for r in right_rows {
                    let k = r[right_key_idx].clone();
                    if k.is_null() {
                        continue; // NULL keys never join
                    }
                    let projected: Row = right_proj.iter().map(|i| r[*i].clone()).collect();
                    build.entry(k).or_default().push(projected);
                }
                SinkKind::Join {
                    left_key_idx: schema.index_of(left_key)?,
                    left_project: left_project
                        .iter()
                        .map(|c| schema.index_of(c))
                        .collect::<Result<_>>()?,
                    build,
                    out: Vec::new(),
                }
            }
            Query::Select { project, .. } => SinkKind::Select {
                project: if project.is_empty() {
                    (0..schema.len()).collect()
                } else {
                    project
                        .iter()
                        .map(|c| schema.index_of(c))
                        .collect::<Result<_>>()?
                },
                out: Vec::new(),
            },
        };
        Ok(RowSink {
            schema: schema.clone(),
            kind,
        })
    }

    /// Feed one row that already passed the predicate.
    pub fn push(&mut self, row: &Row) -> Result<()> {
        match &mut self.kind {
            SinkKind::Aggregate { set, states } => set.update(states, row, &self.schema),
            SinkKind::GroupBy {
                key_idx,
                set,
                groups,
            } => {
                let key = row[*key_idx].clone();
                let states = groups.entry(key).or_insert_with(|| set.new_states());
                set.update(states, row, &self.schema)
            }
            SinkKind::Join {
                left_key_idx,
                left_project,
                build,
                out,
                ..
            } => {
                let k = &row[*left_key_idx];
                if let Some(matches) = build.get(k) {
                    for m in matches {
                        let mut joined = Vec::with_capacity(m.len() + left_project.len());
                        joined.extend(m.iter().cloned());
                        joined.extend(left_project.iter().map(|i| row[*i].clone()));
                        out.push(joined);
                    }
                }
                Ok(())
            }
            SinkKind::Select { project, out } => {
                out.push(project.iter().map(|i| row[*i].clone()).collect());
                Ok(())
            }
        }
    }

    /// Feed every selected row of a batch — the vectorized counterpart of
    /// calling [`Self::push`] once per selected row.
    ///
    /// Aggregation queries run entirely on slice kernels
    /// ([`AggSet::update_batch`]); the other shapes need per-row structures
    /// (group keys, join probes, projected output rows) and fold the
    /// selection through one reused scratch row, which still skips the
    /// per-record boxing of unselected rows. Results are bit-identical to
    /// the row path in all shapes.
    pub fn push_batch(&mut self, batch: &ColumnBatch, sel: &Selection) -> Result<()> {
        match &mut self.kind {
            SinkKind::Aggregate { set, states } => {
                set.update_batch(states, batch, sel, &self.schema)
            }
            SinkKind::GroupBy {
                key_idx,
                set,
                groups,
            } => {
                let mut scratch = Row::new();
                for i in sel.iter() {
                    batch.read_row_into(i, &mut scratch);
                    let key = scratch[*key_idx].clone();
                    let states = groups.entry(key).or_insert_with(|| set.new_states());
                    set.update(states, &scratch, &self.schema)?;
                }
                Ok(())
            }
            SinkKind::Join {
                left_key_idx,
                left_project,
                build,
                out,
            } => {
                for i in sel.iter() {
                    let k = batch.value(i, *left_key_idx);
                    if let Some(matches) = build.get(&k) {
                        for m in matches {
                            let mut joined = Vec::with_capacity(m.len() + left_project.len());
                            joined.extend(m.iter().cloned());
                            joined.extend(left_project.iter().map(|c| batch.value(i, *c)));
                            out.push(joined);
                        }
                    }
                }
                Ok(())
            }
            SinkKind::Select { project, out } => {
                for i in sel.iter() {
                    out.push(project.iter().map(|c| batch.value(i, *c)).collect());
                }
                Ok(())
            }
        }
    }

    /// Filter-and-push convenience.
    pub fn push_if(&mut self, row: &Row, pred: &BoundPredicate) -> Result<bool> {
        if pred.matches(row) {
            self.push(row)?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Merge a sink produced by a parallel task over the same query.
    pub fn merge(&mut self, other: RowSink) -> Result<()> {
        match (&mut self.kind, other.kind) {
            (
                SinkKind::Aggregate { set, states },
                SinkKind::Aggregate { states: o, .. },
            ) => set.merge(states, &o),
            (
                SinkKind::GroupBy { set, groups, .. },
                SinkKind::GroupBy { groups: og, .. },
            ) => {
                for (k, ostates) in og {
                    match groups.get_mut(&k) {
                        Some(st) => set.merge(st, &ostates)?,
                        None => {
                            groups.insert(k, ostates);
                        }
                    }
                }
                Ok(())
            }
            (SinkKind::Join { out, .. }, SinkKind::Join { out: o, .. }) => {
                out.extend(o);
                Ok(())
            }
            (SinkKind::Select { out, .. }, SinkKind::Select { out: o, .. }) => {
                out.extend(o);
                Ok(())
            }
            _ => Err(DgfError::Query("merging sinks of different queries".into())),
        }
    }

    /// Merge a pre-aggregated header (DGFIndex inner region) into an
    /// aggregate sink.
    pub fn merge_agg_states(&mut self, header: &[AggState]) -> Result<()> {
        match &mut self.kind {
            SinkKind::Aggregate { set, states } => set.merge(states, header),
            _ => Err(DgfError::Query(
                "pre-aggregated headers only apply to aggregation queries".into(),
            )),
        }
    }

    /// The aggregate set, for decoding headers against this query.
    pub fn agg_set(&self) -> Option<&AggSet> {
        match &self.kind {
            SinkKind::Aggregate { set, .. } | SinkKind::GroupBy { set, .. } => Some(set),
            _ => None,
        }
    }

    /// Produce the final result.
    pub fn finish(self) -> QueryResult {
        match self.kind {
            SinkKind::Aggregate { set, states } => QueryResult::Scalars(set.finalize(&states)),
            SinkKind::GroupBy { set, groups, .. } => QueryResult::Groups(
                groups
                    .into_iter()
                    .map(|(k, st)| (k, set.finalize(&st)))
                    .collect(),
            ),
            SinkKind::Join { out, .. } | SinkKind::Select { out, .. } => QueryResult::Rows(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggFunc;
    use crate::predicate::{ColumnRange, Predicate};
    use dgf_common::ValueType;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("user_id", ValueType::Int),
            ("region_id", ValueType::Int),
            ("power", ValueType::Float),
        ])
    }

    fn rows() -> Vec<Row> {
        (0..10)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 3),
                    Value::Float(i as f64),
                ]
            })
            .collect()
    }

    #[test]
    fn aggregate_sink() {
        let q = Query::Aggregate {
            aggs: vec![AggFunc::Sum("power".into()), AggFunc::Count],
            predicate: Predicate::all(),
        };
        let s = schema();
        let mut sink = RowSink::new(&q, &s, None).unwrap();
        for r in rows() {
            sink.push(&r).unwrap();
        }
        assert_eq!(
            sink.finish(),
            QueryResult::Scalars(vec![Value::Float(45.0), Value::Int(10)])
        );
    }

    #[test]
    fn group_by_sink_sorted_by_key() {
        let q = Query::GroupBy {
            key: "region_id".into(),
            aggs: vec![AggFunc::Count],
            predicate: Predicate::all(),
        };
        let s = schema();
        let mut sink = RowSink::new(&q, &s, None).unwrap();
        for r in rows() {
            sink.push(&r).unwrap();
        }
        let groups = sink.finish().into_groups();
        assert_eq!(
            groups,
            vec![
                (Value::Int(0), vec![Value::Int(4)]),
                (Value::Int(1), vec![Value::Int(3)]),
                (Value::Int(2), vec![Value::Int(3)]),
            ]
        );
    }

    #[test]
    fn join_sink_projects_right_then_left() {
        let right_schema = Schema::from_pairs(&[
            ("user_id", ValueType::Int),
            ("name", ValueType::Str),
        ]);
        let right_rows: Vec<Row> = vec![
            vec![Value::Int(1), Value::Str("alice".into())],
            vec![Value::Int(2), Value::Str("bob".into())],
            vec![Value::Int(2), Value::Str("bob2".into())], // duplicate key
        ];
        let q = Query::Join {
            left_key: "user_id".into(),
            right_key: "user_id".into(),
            left_project: vec!["power".into()],
            right_project: vec!["name".into()],
            predicate: Predicate::all(),
        };
        let s = schema();
        let mut sink = RowSink::new(&q, &s, Some((&right_schema, &right_rows))).unwrap();
        for r in rows() {
            sink.push(&r).unwrap();
        }
        let mut out = sink.finish().into_rows();
        out.sort_by(|a, b| a.iter().cmp(b.iter()));
        assert_eq!(
            out,
            vec![
                vec![Value::Str("alice".into()), Value::Float(1.0)],
                vec![Value::Str("bob".into()), Value::Float(2.0)],
                vec![Value::Str("bob2".into()), Value::Float(2.0)],
            ]
        );
    }

    #[test]
    fn select_sink_with_default_projection() {
        let q = Query::Select {
            project: vec![],
            predicate: Predicate::all(),
        };
        let s = schema();
        let mut sink = RowSink::new(&q, &s, None).unwrap();
        sink.push(&rows()[0]).unwrap();
        assert_eq!(sink.finish().into_rows()[0].len(), 3);
    }

    #[test]
    fn parallel_merge_equals_sequential() {
        let q = Query::GroupBy {
            key: "region_id".into(),
            aggs: vec![AggFunc::Sum("power".into()), AggFunc::Max("power".into())],
            predicate: Predicate::all(),
        };
        let s = schema();
        let rs = rows();
        let mut seq = RowSink::new(&q, &s, None).unwrap();
        for r in &rs {
            seq.push(r).unwrap();
        }
        let mut a = RowSink::new(&q, &s, None).unwrap();
        let mut b = RowSink::new(&q, &s, None).unwrap();
        for r in &rs[..4] {
            a.push(r).unwrap();
        }
        for r in &rs[4..] {
            b.push(r).unwrap();
        }
        a.merge(b).unwrap();
        assert_eq!(a.finish(), seq.finish());
    }

    #[test]
    fn push_if_filters() {
        let pred = Predicate::all()
            .and("user_id", ColumnRange::half_open(Value::Int(3), Value::Int(6)));
        let s = schema();
        let bound = pred.bind(&s).unwrap();
        let q = Query::Aggregate {
            aggs: vec![AggFunc::Count],
            predicate: pred,
        };
        let mut sink = RowSink::new(&q, &s, None).unwrap();
        let mut matched = 0;
        for r in rows() {
            if sink.push_if(&r, &bound).unwrap() {
                matched += 1;
            }
        }
        assert_eq!(matched, 3);
        assert_eq!(sink.finish().into_scalars()[0], Value::Int(3));
    }

    #[test]
    fn merging_mismatched_sinks_fails() {
        let s = schema();
        let a = Query::Aggregate {
            aggs: vec![AggFunc::Count],
            predicate: Predicate::all(),
        };
        let b = Query::Select {
            project: vec![],
            predicate: Predicate::all(),
        };
        let mut sa = RowSink::new(&a, &s, None).unwrap();
        let sb = RowSink::new(&b, &s, None).unwrap();
        assert!(sa.merge(sb).is_err());
    }

    #[test]
    fn join_without_right_table_fails() {
        let q = Query::Join {
            left_key: "user_id".into(),
            right_key: "user_id".into(),
            left_project: vec![],
            right_project: vec![],
            predicate: Predicate::all(),
        };
        assert!(RowSink::new(&q, &schema(), None).is_err());
    }
}
