//! # dgf-common
//!
//! Shared foundation for the DGFIndex reproduction: dynamic values and
//! schemas ([`value`], [`schema`]), error types ([`error`]), binary and
//! order-preserving codecs ([`codec`]), I/O counters ([`stats`]),
//! deterministic fault injection and retry policies ([`fault`]), the
//! observability layer — span-based tracing and the unified metrics
//! registry ([`obs`]) — and a temp-dir utility ([`tempdir`]).
//!
//! Everything downstream (`dgf-storage`, `dgf-format`, `dgf-query`,
//! `dgf-core`, …) builds on these types; nothing here knows about grids,
//! indexes, or MapReduce.
//!
//! The observability layer in one breath — spans time stages, counters
//! attach to the stage that incurred them, and the profile renders as a
//! tree (see [`obs`] for the full model):
//!
//! ```
//! use dgf_common::{MetricsRegistry, Profiler};
//!
//! let profiler = Profiler::enabled();
//! let span = profiler.span("query");
//! let child = span.child("query.scan");
//! child.add("hdfs.bytes_read", 4096);
//! child.finish();
//! span.finish();
//!
//! let profile = profiler.take_profile();
//! assert_eq!(profile.metric_total("hdfs.bytes_read"), 4096);
//! assert!(profile.check_nesting().is_empty());
//!
//! let registry = MetricsRegistry::new();
//! registry.add("hdfs.bytes_read", 4096);
//! assert_eq!(registry.get("hdfs.bytes_read"), 4096);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod codec;
pub mod error;
pub mod fault;
pub mod obs;
pub mod schema;
pub mod stats;
pub mod tempdir;
pub mod value;

pub use batch::{Column, ColumnBatch, ColumnData, NullMask, Selection};
pub use error::{DgfError, Result};
pub use fault::{FaultConfig, FaultPlan, RetryPolicy, TransientFault};
pub use obs::{MetricsRegistry, ProfileNode, Profiler, QueryProfile, SpanGuard, TraceFilter};
pub use schema::{format_row, parse_row, Field, Row, Schema, SchemaRef, FIELD_DELIM};
pub use stats::{
    Counter, IoSnapshot, IoStats, IoStatsRef, ScanSnapshot, ScanStats, ScanStatsRef, Stopwatch,
};
pub use tempdir::TempDir;
pub use value::{format_date, parse_date, Value, ValueType};

#[cfg(test)]
mod proptests {
    use crate::codec::{self, Decoder};
    use crate::value::{format_date, parse_date, Value};
    use proptest::prelude::*;

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<i64>().prop_map(Value::Int),
            // Finite floats only: NaN is rejected by the parser on purpose.
            prop::num::f64::NORMAL.prop_map(Value::Float),
            "[a-zA-Z0-9 _.,-]{0,24}".prop_map(Value::Str),
            (-200_000i64..200_000).prop_map(Value::Date),
        ]
    }

    proptest! {
        #[test]
        fn value_codec_round_trips(vals in prop::collection::vec(arb_value(), 0..16)) {
            let mut buf = Vec::new();
            for v in &vals {
                codec::put_value(&mut buf, v);
            }
            let mut d = Decoder::new(&buf);
            for v in &vals {
                prop_assert_eq!(&codec::get_value(&mut d).unwrap(), v);
            }
            prop_assert_eq!(d.remaining(), 0);
        }

        #[test]
        fn key_i64_order_preserving(a in any::<i64>(), b in any::<i64>()) {
            let mut ka = Vec::new();
            let mut kb = Vec::new();
            codec::encode_key_i64(&mut ka, a);
            codec::encode_key_i64(&mut kb, b);
            prop_assert_eq!(a.cmp(&b), ka.cmp(&kb));
        }

        #[test]
        fn date_round_trips(d in -200_000i64..200_000) {
            prop_assert_eq!(parse_date(&format_date(d)).unwrap(), d);
        }

        #[test]
        fn row_text_round_trips(
            i in any::<i64>(),
            f in prop::num::f64::NORMAL,
            // Non-empty: an empty text field deliberately parses back as Null.
            s in "[a-zA-Z0-9 ]{1,16}",
            d in -100_000i64..100_000,
        ) {
            use crate::schema::{format_row, parse_row, Schema};
            use crate::value::ValueType;
            let schema = Schema::from_pairs(&[
                ("a", ValueType::Int),
                ("b", ValueType::Float),
                ("c", ValueType::Str),
                ("d", ValueType::Date),
            ]);
            let row = vec![Value::Int(i), Value::Float(f), Value::Str(s), Value::Date(d)];
            let parsed = parse_row(&format_row(&row), &schema).unwrap();
            prop_assert_eq!(&parsed[0], &row[0]);
            prop_assert_eq!(&parsed[2], &row[2]);
            prop_assert_eq!(&parsed[3], &row[3]);
            // Floats round-trip through shortest-display representation.
            let (Value::Float(x), Value::Float(y)) = (&parsed[1], &row[1]) else {
                return Err(TestCaseError::Fail("expected floats".into()));
            };
            prop_assert_eq!(x, y);
        }
    }
}
