//! Error types shared across the DGFIndex workspace.

use std::fmt;
use std::io;

/// The unified error type for all DGFIndex crates.
#[derive(Debug)]
pub enum DgfError {
    /// An underlying I/O failure (file system, simulated HDFS, key-value store log).
    Io(io::Error),
    /// On-disk or in-flight data failed to decode (bad magic, truncated frame, checksum).
    Corrupt(String),
    /// A schema violation: unknown column, arity mismatch, type mismatch.
    Schema(String),
    /// A malformed or unsupported query (e.g. non-additive aggregate in a header).
    Query(String),
    /// An index-level failure (bad splitting policy, missing metadata, rebuild required).
    Index(String),
    /// A key-value store failure.
    KvStore(String),
    /// A MapReduce task panicked or the job was misconfigured.
    Job(String),
    /// A feature deliberately out of scope for this reproduction.
    Unsupported(String),
    /// A transient failure (injected or environmental) that a
    /// [`RetryPolicy`](crate::fault::RetryPolicy) may absorb.
    Transient(String),
    /// Admission control rejected a streaming write: the ingest buffers
    /// are full. Not retried blindly by a
    /// [`RetryPolicy`](crate::fault::RetryPolicy); the caller should
    /// flush (or wait for the background flusher) and resubmit.
    Backpressure(String),
}

impl DgfError {
    /// Whether this error is transient and worth retrying. See
    /// [`fault::is_transient`](crate::fault::is_transient).
    pub fn is_transient(&self) -> bool {
        crate::fault::is_transient(self)
    }
}

impl fmt::Display for DgfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DgfError::Io(e) => write!(f, "io error: {e}"),
            DgfError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            DgfError::Schema(m) => write!(f, "schema error: {m}"),
            DgfError::Query(m) => write!(f, "query error: {m}"),
            DgfError::Index(m) => write!(f, "index error: {m}"),
            DgfError::KvStore(m) => write!(f, "kv store error: {m}"),
            DgfError::Job(m) => write!(f, "job error: {m}"),
            DgfError::Unsupported(m) => write!(f, "unsupported: {m}"),
            DgfError::Transient(m) => write!(f, "transient error: {m}"),
            DgfError::Backpressure(m) => write!(f, "ingest backpressure: {m}"),
        }
    }
}

impl std::error::Error for DgfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DgfError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DgfError {
    fn from(e: io::Error) -> Self {
        DgfError::Io(e)
    }
}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, DgfError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = DgfError::Corrupt("bad magic".into());
        assert_eq!(e.to_string(), "corrupt data: bad magic");
        let e = DgfError::Schema("no such column".into());
        assert!(e.to_string().contains("schema"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        let e: DgfError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, DgfError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&DgfError::Query("q".into())).is_none());
    }
}
