//! Table schemas and rows, plus the delimited-text row codec used by the
//! TextFile format (Hive's default `'|'`-style delimited storage).

use std::fmt;
use std::sync::Arc;

use crate::error::{DgfError, Result};
use crate::value::{Value, ValueType};

/// The field delimiter used by the text row codec. Hive defaults to `\x01`;
/// we use `|` so files stay human-inspectable, matching TPC-H table dumps.
pub const FIELD_DELIM: char = '|';

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name (case sensitive).
    pub name: String,
    /// Column type.
    pub vtype: ValueType,
}

impl Field {
    /// Construct a field.
    pub fn new(name: impl Into<String>, vtype: ValueType) -> Self {
        Field {
            name: name.into(),
            vtype,
        }
    }
}

/// An ordered list of fields describing a table's rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

/// A cheaply clonable shared schema handle.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Build a schema from fields. Field names must be unique.
    pub fn new(fields: Vec<Field>) -> Result<Schema> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(DgfError::Schema(format!("duplicate column {:?}", f.name)));
            }
        }
        Ok(Schema { fields })
    }

    /// Parse `"name:type,name:type"` (types: `int`, `float`, `string`,
    /// `date`) — the schema syntax used by the CLI and catalog files.
    pub fn parse(text: &str) -> Result<Schema> {
        let mut fields = Vec::new();
        for part in text.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (name, ty) = part.split_once(':').ok_or_else(|| {
                DgfError::Schema(format!("expected name:type, found {part:?}"))
            })?;
            let vtype = match ty.trim().to_ascii_lowercase().as_str() {
                "int" | "bigint" | "integer" => ValueType::Int,
                "float" | "double" => ValueType::Float,
                "string" | "str" | "text" => ValueType::Str,
                "date" => ValueType::Date,
                other => {
                    return Err(DgfError::Schema(format!("unknown type {other:?}")))
                }
            };
            fields.push(Field::new(name.trim(), vtype));
        }
        Schema::new(fields)
    }

    /// Render in the [`parse`](Self::parse) syntax.
    pub fn to_parse_string(&self) -> String {
        self.fields
            .iter()
            .map(|f| format!("{}:{}", f.name, f.vtype))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, ValueType)]) -> Schema {
        Schema::new(
            pairs
                .iter()
                .map(|(n, t)| Field::new(*n, *t))
                .collect::<Vec<_>>(),
        )
        .expect("static schema literals must have unique names")
    }

    /// The fields, in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| DgfError::Schema(format!("no such column {name:?}")))
    }

    /// The field at `idx`.
    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// The type of the named column.
    pub fn type_of(&self, name: &str) -> Result<ValueType> {
        Ok(self.fields[self.index_of(name)?].vtype)
    }

    /// A new schema containing only the named columns, in the given order.
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let mut fields = Vec::with_capacity(names.len());
        for n in names {
            fields.push(self.fields[self.index_of(n)?].clone());
        }
        Schema::new(fields)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for fld in &self.fields {
            if !first {
                f.write_str(", ")?;
            }
            write!(f, "{} {}", fld.name, fld.vtype)?;
            first = false;
        }
        Ok(())
    }
}

/// A row of values, positionally aligned with a [`Schema`].
pub type Row = Vec<Value>;

/// Format a row as a delimited text line (no trailing newline).
pub fn format_row(row: &Row) -> String {
    let mut out = String::with_capacity(row.len() * 8);
    for (i, v) in row.iter().enumerate() {
        if i > 0 {
            out.push(FIELD_DELIM);
        }
        // Strings containing the delimiter would corrupt the line; the
        // generators never produce them, but fail loudly rather than corrupt.
        debug_assert!(
            !matches!(v, Value::Str(s) if s.contains(FIELD_DELIM)),
            "string value contains the field delimiter"
        );
        match v {
            Value::Null => {}
            other => {
                use std::fmt::Write;
                let _ = write!(out, "{other}");
            }
        }
    }
    out
}

/// Parse a delimited text line into a row following `schema`.
pub fn parse_row(line: &str, schema: &Schema) -> Result<Row> {
    let mut row = Vec::with_capacity(schema.len());
    let mut fields = line.split(FIELD_DELIM);
    for f in schema.fields() {
        let text = fields.next().ok_or_else(|| {
            DgfError::Schema(format!(
                "row has fewer than {} fields: {line:?}",
                schema.len()
            ))
        })?;
        row.push(Value::parse(text, f.vtype)?);
    }
    if fields.next().is_some() {
        return Err(DgfError::Schema(format!(
            "row has more than {} fields: {line:?}",
            schema.len()
        )));
    }
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meter_schema() -> Schema {
        Schema::from_pairs(&[
            ("user_id", ValueType::Int),
            ("region_id", ValueType::Int),
            ("ts", ValueType::Date),
            ("power", ValueType::Float),
            ("note", ValueType::Str),
        ])
    }

    #[test]
    fn schema_lookup() {
        let s = meter_schema();
        assert_eq!(s.len(), 5);
        assert_eq!(s.index_of("ts").unwrap(), 2);
        assert!(s.index_of("missing").is_err());
        assert_eq!(s.type_of("power").unwrap(), ValueType::Float);
    }

    #[test]
    fn duplicate_columns_rejected() {
        let r = Schema::new(vec![
            Field::new("a", ValueType::Int),
            Field::new("a", ValueType::Int),
        ]);
        assert!(r.is_err());
    }

    #[test]
    fn projection_orders_and_errors() {
        let s = meter_schema();
        let p = s.project(&["power", "user_id"]).unwrap();
        assert_eq!(p.field(0).name, "power");
        assert_eq!(p.field(1).name, "user_id");
        assert!(s.project(&["nope"]).is_err());
    }

    #[test]
    fn row_text_round_trip() {
        let s = meter_schema();
        let row: Row = vec![
            Value::Int(42),
            Value::Int(7),
            Value::Date(15706),
            Value::Float(12.34),
            Value::Str("ok".into()),
        ];
        let line = format_row(&row);
        assert_eq!(line, "42|7|2013-01-01|12.34|ok");
        assert_eq!(parse_row(&line, &s).unwrap(), row);
    }

    #[test]
    fn null_fields_round_trip() {
        let s = meter_schema();
        let row: Row = vec![
            Value::Int(1),
            Value::Null,
            Value::Date(0),
            Value::Null,
            Value::Null,
        ];
        let line = format_row(&row);
        assert_eq!(line, "1||1970-01-01||");
        assert_eq!(parse_row(&line, &s).unwrap(), row);
    }

    #[test]
    fn schema_parse_round_trip() {
        let s = Schema::parse("user_id:int, ts:date,power:float,note:string").unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.type_of("ts").unwrap(), ValueType::Date);
        assert_eq!(s.type_of("note").unwrap(), ValueType::Str);
        let rendered = s.to_parse_string();
        assert_eq!(Schema::parse(&rendered).unwrap(), s);
        assert!(Schema::parse("missing_type").is_err());
        assert!(Schema::parse("x:blob").is_err());
        assert!(Schema::parse("a:int,a:int").is_err()); // duplicates
    }

    #[test]
    fn arity_mismatch_rejected() {
        let s = meter_schema();
        assert!(parse_row("1|2", &s).is_err());
        assert!(parse_row("1|2|1970-01-01|0.5|x|extra", &s).is_err());
    }
}
