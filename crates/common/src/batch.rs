//! Columnar batches — one decoded row group as typed per-column vectors.
//!
//! The row-at-a-time read path materializes a boxed [`Value`] per cell and a
//! [`Row`] per record, which makes the post-pruning scan CPU-bound on enum
//! dispatch and allocation. A [`ColumnBatch`] instead holds each column of a
//! row group as one primitive vector (`Vec<i64>`, `Vec<f64>`, …) plus a null
//! bitmap, so predicate and aggregate kernels can run as tight loops over
//! slices (DESIGN.md §12). Columns excluded by a projection are kept as
//! [`ColumnData::Skipped`] placeholders so row indexes stay schema-aligned.
//!
//! Batches are produced by the RCFile reader (`dgf-format`) and consumed by
//! the kernels in `dgf-query`; this module lives in `dgf-common` because it
//! is the one crate both depend on.

use crate::codec::{Decoder, TAG_DATE, TAG_FLOAT, TAG_INT, TAG_NULL, TAG_STR};
use crate::{DgfError, Result, Row, Value};

/// Typed storage for one column of a batch.
///
/// `Int`/`Float`/`Date` columns store raw primitives (null slots hold a
/// placeholder and are flagged in the column's [`NullMask`]); columns whose
/// cells mix value types fall back to [`ColumnData::Values`]. Unprojected
/// columns are [`ColumnData::Skipped`]: they occupy a slot so column indexes
/// match the schema, but hold no data.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 64-bit integers.
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// Dates as day numbers (same representation as [`Value::Date`]).
    Date(Vec<i64>),
    /// Strings.
    Str(Vec<String>),
    /// Mixed-type fallback: boxed values, one per row.
    Values(Vec<Value>),
    /// Column not materialized (excluded by the projection).
    Skipped,
}

/// A per-row null bitmap (one bit per row, 64 rows per word).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NullMask {
    words: Vec<u64>,
    any: bool,
}

impl NullMask {
    /// An all-valid mask covering `len` rows.
    pub fn new(len: usize) -> Self {
        NullMask {
            words: vec![0; len.div_ceil(64)],
            any: false,
        }
    }

    /// Mark row `i` null.
    pub fn set_null(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
        self.any = true;
    }

    /// Whether row `i` is null.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.any && self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Whether any row is null (fast-path guard for kernels).
    #[inline]
    pub fn any_nulls(&self) -> bool {
        self.any
    }
}

/// One column of a [`ColumnBatch`]: typed data plus its null bitmap.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// The cell values.
    pub data: ColumnData,
    /// Which rows are null.
    pub nulls: NullMask,
}

impl Column {
    /// A skipped (unprojected) column placeholder.
    pub fn skipped() -> Self {
        Column {
            data: ColumnData::Skipped,
            nulls: NullMask::default(),
        }
    }

    /// The cell at row `i` as an owned [`Value`] (allocates for strings;
    /// `Null` for null rows and skipped columns).
    pub fn value_at(&self, i: usize) -> Value {
        if self.nulls.is_null(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Date(v) => Value::Date(v[i]),
            ColumnData::Str(v) => Value::Str(v[i].clone()),
            ColumnData::Values(v) => v[i].clone(),
            ColumnData::Skipped => Value::Null,
        }
    }
}

/// One decoded row group: all (projected) columns of `len` rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnBatch {
    len: usize,
    group_offset: u64,
    columns: Vec<Column>,
}

impl ColumnBatch {
    /// Assemble a batch from decoded columns.
    ///
    /// Every non-skipped column must hold exactly `len` rows.
    pub fn new(columns: Vec<Column>, len: usize, group_offset: u64) -> Self {
        #[cfg(debug_assertions)]
        for c in &columns {
            match &c.data {
                ColumnData::Int(v) | ColumnData::Date(v) => debug_assert_eq!(v.len(), len),
                ColumnData::Float(v) => debug_assert_eq!(v.len(), len),
                ColumnData::Str(v) => debug_assert_eq!(v.len(), len),
                ColumnData::Values(v) => debug_assert_eq!(v.len(), len),
                ColumnData::Skipped => {}
            }
        }
        ColumnBatch {
            len,
            group_offset,
            columns,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns (equals the schema width, including skipped slots).
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// File offset of the row group this batch was decoded from.
    pub fn group_offset(&self) -> u64 {
        self.group_offset
    }

    /// The column at schema index `c`.
    pub fn column(&self, c: usize) -> &Column {
        &self.columns[c]
    }

    /// The cell at (`row`, `col`) as an owned [`Value`].
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].value_at(row)
    }

    /// Materialize row `idx` into `out`, reusing its allocation.
    ///
    /// Skipped columns yield `Null`, so `out` always ends up schema-width.
    pub fn read_row_into(&self, idx: usize, out: &mut Row) {
        out.clear();
        out.extend(self.columns.iter().map(|c| c.value_at(idx)));
    }

    /// Gather the given rows (in order) into a new, compacted batch.
    ///
    /// Used to apply a row filter at the batch level: the surviving batch
    /// has no holes, so kernels never re-check the filter.
    pub fn take(&self, rows: &[u32]) -> ColumnBatch {
        let columns = self
            .columns
            .iter()
            .map(|c| {
                let mut nulls = NullMask::new(rows.len());
                for (j, &i) in rows.iter().enumerate() {
                    if c.nulls.is_null(i as usize) {
                        nulls.set_null(j);
                    }
                }
                let data = match &c.data {
                    ColumnData::Int(v) => {
                        ColumnData::Int(rows.iter().map(|&i| v[i as usize]).collect())
                    }
                    ColumnData::Float(v) => {
                        ColumnData::Float(rows.iter().map(|&i| v[i as usize]).collect())
                    }
                    ColumnData::Date(v) => {
                        ColumnData::Date(rows.iter().map(|&i| v[i as usize]).collect())
                    }
                    ColumnData::Str(v) => {
                        ColumnData::Str(rows.iter().map(|&i| v[i as usize].clone()).collect())
                    }
                    ColumnData::Values(v) => {
                        ColumnData::Values(rows.iter().map(|&i| v[i as usize].clone()).collect())
                    }
                    ColumnData::Skipped => ColumnData::Skipped,
                };
                Column { data, nulls }
            })
            .collect();
        ColumnBatch::new(columns, rows.len(), self.group_offset)
    }
}

/// The rows of a batch chosen by a predicate kernel.
///
/// `All` avoids materializing an index vector for the common full-match
/// case; `Rows` lists surviving row indexes in ascending order, so folding
/// a selection visits rows in exactly the order the row-at-a-time path
/// would — the property that keeps batch aggregation bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub enum Selection {
    /// Every row of a batch of the given length survives.
    All(usize),
    /// Exactly these row indexes survive (ascending).
    Rows(Vec<u32>),
}

impl Selection {
    /// Number of selected rows.
    pub fn len(&self) -> usize {
        match self {
            Selection::All(n) => *n,
            Selection::Rows(r) => r.len(),
        }
    }

    /// Whether nothing is selected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate selected row indexes in ascending order.
    pub fn iter(&self) -> SelectionIter<'_> {
        match self {
            Selection::All(n) => SelectionIter::All(0..*n),
            Selection::Rows(r) => SelectionIter::Rows(r.iter()),
        }
    }
}

/// Iterator over the row indexes of a [`Selection`].
pub enum SelectionIter<'a> {
    /// Counting through a full batch.
    All(std::ops::Range<usize>),
    /// Walking an explicit index list.
    Rows(std::slice::Iter<'a, u32>),
}

impl Iterator for SelectionIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            SelectionIter::All(r) => r.next(),
            SelectionIter::Rows(it) => it.next().map(|&i| i as usize),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            SelectionIter::All(r) => r.size_hint(),
            SelectionIter::Rows(it) => it.size_hint(),
        }
    }
}

/// Decode one column's tagged value stream (`codec::put_value` repeated
/// `n_rows` times) into typed storage.
///
/// The decoder commits to the first non-null tag it sees; if a later cell
/// carries a different tag the column is promoted to the boxed
/// [`ColumnData::Values`] fallback, so mixed-type columns decode exactly as
/// the row path would. An all-null column decodes as `Int` placeholders
/// with every row flagged null.
pub fn decode_column(bytes: &[u8], n_rows: usize) -> Result<Column> {
    let mut dec = Decoder::new(bytes);
    let mut nulls = NullMask::new(n_rows);
    // Rows seen before the first non-null cell fixes the column type.
    let mut pending = 0usize;
    let mut data: Option<ColumnData> = None;
    for i in 0..n_rows {
        let tag = dec.u8()?;
        if tag == TAG_NULL {
            nulls.set_null(i);
            match &mut data {
                None => pending += 1,
                Some(ColumnData::Int(v) | ColumnData::Date(v)) => v.push(0),
                Some(ColumnData::Float(v)) => v.push(0.0),
                Some(ColumnData::Str(v)) => v.push(String::new()),
                Some(ColumnData::Values(v)) => v.push(Value::Null),
                Some(ColumnData::Skipped) => unreachable!(),
            }
            continue;
        }
        let matches_tag = match (&data, tag) {
            (None, _) => false,
            (Some(ColumnData::Int(_)), TAG_INT)
            | (Some(ColumnData::Float(_)), TAG_FLOAT)
            | (Some(ColumnData::Date(_)), TAG_DATE)
            | (Some(ColumnData::Str(_)), TAG_STR)
            | (Some(ColumnData::Values(_)), _) => true,
            _ => false,
        };
        if !matches_tag {
            if let Some(current) = data.take() {
                // Type changed mid-column: promote what we have to values.
                data = Some(ColumnData::Values(promote(current, &nulls)));
            } else {
                let mut fresh = typed_vec(tag, n_rows)?;
                pad_placeholders(&mut fresh, pending);
                pending = 0;
                data = Some(fresh);
            }
        }
        match data.as_mut().expect("column storage chosen") {
            ColumnData::Int(v) | ColumnData::Date(v) => v.push(dec.i64()?),
            ColumnData::Float(v) => v.push(dec.f64()?),
            ColumnData::Str(v) => v.push(dec.str()?.to_owned()),
            ColumnData::Values(v) => v.push(decode_tagged(tag, &mut dec)?),
            ColumnData::Skipped => unreachable!(),
        }
    }
    let data = data.unwrap_or_else(|| ColumnData::Int(vec![0; pending]));
    Ok(Column { data, nulls })
}

/// Fresh typed storage for a column whose first non-null cell has `tag`.
fn typed_vec(tag: u8, capacity: usize) -> Result<ColumnData> {
    Ok(match tag {
        TAG_INT => ColumnData::Int(Vec::with_capacity(capacity)),
        TAG_FLOAT => ColumnData::Float(Vec::with_capacity(capacity)),
        TAG_DATE => ColumnData::Date(Vec::with_capacity(capacity)),
        TAG_STR => ColumnData::Str(Vec::with_capacity(capacity)),
        other => return Err(DgfError::Corrupt(format!("unknown value tag {other}"))),
    })
}

/// Backfill placeholder slots for nulls that preceded the first typed cell.
fn pad_placeholders(data: &mut ColumnData, pending: usize) {
    match data {
        ColumnData::Int(v) | ColumnData::Date(v) => v.resize(pending, 0),
        ColumnData::Float(v) => v.resize(pending, 0.0),
        ColumnData::Str(v) => v.resize(pending, String::new()),
        ColumnData::Values(v) => v.resize(pending, Value::Null),
        ColumnData::Skipped => {}
    }
}

/// Re-box typed storage as values when a column turns out to be mixed-type.
fn promote(data: ColumnData, nulls: &NullMask) -> Vec<Value> {
    let boxed = |i: usize, v: Value| if nulls.is_null(i) { Value::Null } else { v };
    match data {
        ColumnData::Int(v) => v
            .into_iter()
            .enumerate()
            .map(|(i, x)| boxed(i, Value::Int(x)))
            .collect(),
        ColumnData::Date(v) => v
            .into_iter()
            .enumerate()
            .map(|(i, x)| boxed(i, Value::Date(x)))
            .collect(),
        ColumnData::Float(v) => v
            .into_iter()
            .enumerate()
            .map(|(i, x)| boxed(i, Value::Float(x)))
            .collect(),
        ColumnData::Str(v) => v
            .into_iter()
            .enumerate()
            .map(|(i, x)| boxed(i, Value::Str(x)))
            .collect(),
        ColumnData::Values(v) => v,
        ColumnData::Skipped => Vec::new(),
    }
}

/// Decode one tagged value whose tag byte has already been consumed.
fn decode_tagged(tag: u8, dec: &mut Decoder<'_>) -> Result<Value> {
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_INT => Value::Int(dec.i64()?),
        TAG_FLOAT => Value::Float(dec.f64()?),
        TAG_STR => Value::Str(dec.str()?.to_owned()),
        TAG_DATE => Value::Date(dec.i64()?),
        other => return Err(DgfError::Corrupt(format!("unknown value tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec;

    fn encode(vals: &[Value]) -> Vec<u8> {
        let mut buf = Vec::new();
        for v in vals {
            codec::put_value(&mut buf, v);
        }
        buf
    }

    #[test]
    fn typed_decode_round_trips_with_nulls() {
        let vals = vec![
            Value::Null,
            Value::Int(7),
            Value::Null,
            Value::Int(-3),
            Value::Int(0),
        ];
        let col = decode_column(&encode(&vals), vals.len()).unwrap();
        assert!(matches!(col.data, ColumnData::Int(_)));
        assert!(col.nulls.any_nulls());
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(&col.value_at(i), v);
        }
    }

    #[test]
    fn mixed_type_column_promotes_to_values() {
        let vals = vec![
            Value::Int(1),
            Value::Str("x".into()),
            Value::Null,
            Value::Float(2.5),
        ];
        let col = decode_column(&encode(&vals), vals.len()).unwrap();
        assert!(matches!(col.data, ColumnData::Values(_)));
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(&col.value_at(i), v);
        }
    }

    #[test]
    fn all_null_column_decodes() {
        let vals = vec![Value::Null; 4];
        let col = decode_column(&encode(&vals), 4).unwrap();
        for i in 0..4 {
            assert_eq!(col.value_at(i), Value::Null);
        }
    }

    #[test]
    fn take_compacts_rows_and_nulls() {
        let vals = vec![
            Value::Float(1.0),
            Value::Null,
            Value::Float(3.0),
            Value::Float(4.0),
        ];
        let col = decode_column(&encode(&vals), 4).unwrap();
        let batch = ColumnBatch::new(vec![col], 4, 0);
        let kept = batch.take(&[1, 3]);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept.value(0, 0), Value::Null);
        assert_eq!(kept.value(1, 0), Value::Float(4.0));
    }

    #[test]
    fn selection_iterates_in_row_order() {
        let all: Vec<usize> = Selection::All(3).iter().collect();
        assert_eq!(all, vec![0, 1, 2]);
        let some: Vec<usize> = Selection::Rows(vec![1, 4]).iter().collect();
        assert_eq!(some, vec![1, 4]);
        assert!(Selection::Rows(vec![]).is_empty());
    }

    #[test]
    fn read_row_into_reuses_allocation() {
        let vals = vec![Value::Int(5), Value::Int(6)];
        let col = decode_column(&encode(&vals), 2).unwrap();
        let batch = ColumnBatch::new(vec![col, Column::skipped()], 2, 9);
        assert_eq!(batch.group_offset(), 9);
        let mut row = Row::new();
        batch.read_row_into(1, &mut row);
        assert_eq!(row, vec![Value::Int(6), Value::Null]);
        batch.read_row_into(0, &mut row);
        assert_eq!(row, vec![Value::Int(5), Value::Null]);
    }
}
