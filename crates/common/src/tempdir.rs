//! A minimal RAII temporary directory, so tests and benches need no external
//! `tempfile` dependency.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A uniquely named directory under the system temp dir, removed on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

impl TempDir {
    /// Create `"$TMPDIR/dgf-<prefix>-<pid>-<seq>"`.
    pub fn new(prefix: &str) -> std::io::Result<TempDir> {
        let seq = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "dgf-{prefix}-{}-{seq}",
            std::process::id()
        ));
        std::fs::create_dir_all(&path)?;
        Ok(TempDir { path })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Keep the directory on drop (for debugging), returning its path.
    pub fn into_path(self) -> PathBuf {
        let p = self.path.clone();
        std::mem::forget(self);
        p
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        // Best-effort cleanup; failure to remove a temp dir must not panic a
        // test that is already unwinding.
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes() {
        let p;
        {
            let t = TempDir::new("unit").unwrap();
            p = t.path().to_path_buf();
            assert!(p.is_dir());
            std::fs::write(p.join("f"), b"x").unwrap();
        }
        assert!(!p.exists());
    }

    #[test]
    fn unique_names() {
        let a = TempDir::new("u").unwrap();
        let b = TempDir::new("u").unwrap();
        assert_ne!(a.path(), b.path());
    }

    #[test]
    fn into_path_keeps_dir() {
        let t = TempDir::new("keep").unwrap();
        let p = t.into_path();
        assert!(p.is_dir());
        std::fs::remove_dir_all(&p).unwrap();
    }
}
