//! Query-lifecycle observability: tracing spans, a unified metrics
//! registry, and structured per-query profiles.
//!
//! The paper's evaluation attributes query latency to its stages — index
//! lookup in the KV store, split pruning, Slice scanning, aggregation from
//! pre-computed GFU headers — and counts exactly how much data each
//! strategy reads. This module provides the plumbing for that attribution:
//!
//! * [`Profiler`] / [`SpanGuard`] — a lightweight span tree with monotonic
//!   wall-clock timing, parent links, and per-span counter attachment.
//!   When the profiler is disabled (the default) every operation is a
//!   no-op on an `Option` that is `None`, so instrumented code pays
//!   nothing.
//! * [`MetricsRegistry`] — named [`Counter`]s under stable hierarchical
//!   names (`kv.gets`, `hdfs.bytes_read`, `cache.header.hits`, …; see
//!   [`names`]) so the ad-hoc stats blocks (`KvStats`, `IoStats`,
//!   `RunStats`, `JobCounters`) reconcile in one place.
//! * [`QueryProfile`] / [`ProfileNode`] — the frozen result of a profiled
//!   run: a stage tree with wall time, metrics, and children, renderable
//!   as a flame-style text tree or exportable as JSON for `BENCH_*.json`.
//! * [`TraceFilter`] — `DGF_TRACE=plan,kv`-style category filtering parsed
//!   from the environment by [`Profiler::from_env`].
//!
//! # Example
//!
//! ```
//! use dgf_common::obs::Profiler;
//!
//! let profiler = Profiler::enabled();
//! {
//!     let query = profiler.span("query");
//!     {
//!         let plan = query.child("query.plan");
//!         plan.add("kv.gets", 7);
//!     } // plan finishes on drop
//! }
//! let profile = profiler.take_profile();
//! assert_eq!(profile.metric_total("kv.gets"), 7);
//! assert!(profile.find("query.plan").is_some());
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::stats::Counter;

/// Stable hierarchical metric names used across the workspace.
///
/// Spans and the [`MetricsRegistry`] both use these constants so that a
/// profile, a registry dump, and the legacy stats structs all speak the
/// same vocabulary.
pub mod names {
    /// KV point lookups (`KvStats::gets`).
    pub const KV_GETS: &str = "kv.gets";
    /// KV writes (`KvStats::puts`).
    pub const KV_PUTS: &str = "kv.puts";
    /// KV range scans (`KvStats::scans`).
    pub const KV_SCANS: &str = "kv.scans";
    /// Batched KV lookups (`KvStats::multi_gets`).
    pub const KV_MULTI_GETS: &str = "kv.multi_gets";
    /// Keys requested across batched lookups (`KvStats::multi_get_keys`).
    pub const KV_MULTI_GET_KEYS: &str = "kv.multi_get_keys";
    /// Value bytes returned by the KV store (`KvStats::bytes_read`).
    pub const KV_BYTES_READ: &str = "kv.bytes_read";
    /// Value bytes written to the KV store (`KvStats::bytes_written`).
    pub const KV_BYTES_WRITTEN: &str = "kv.bytes_written";
    /// Transient KV faults absorbed by retry loops
    /// (`KvStats::retries_absorbed`).
    pub const KV_RETRIES_ABSORBED: &str = "kv.retries_absorbed";
    /// Log compactions run by the store, manual or opportunistic
    /// (`KvStats::compactions`).
    pub const KV_COMPACTIONS: &str = "kv.compactions";

    /// Bytes read from simulated HDFS data files (`IoStats::bytes_read`).
    pub const HDFS_BYTES_READ: &str = "hdfs.bytes_read";
    /// Bytes written to data files (`IoStats::bytes_written`).
    pub const HDFS_BYTES_WRITTEN: &str = "hdfs.bytes_written";
    /// Records decoded by record readers (`IoStats::records_read`).
    pub const HDFS_RECORDS_READ: &str = "hdfs.records_read";
    /// Records appended by writers (`IoStats::records_written`).
    pub const HDFS_RECORDS_WRITTEN: &str = "hdfs.records_written";
    /// Seeks issued by skipping readers (`IoStats::seeks`).
    pub const HDFS_SEEKS: &str = "hdfs.seeks";
    /// Transient storage faults absorbed by retries (`IoStats::retries`).
    pub const HDFS_RETRIES: &str = "hdfs.retries";

    /// GFU header cache hits (`CacheStats::hits`).
    pub const CACHE_HEADER_HITS: &str = "cache.header.hits";
    /// GFU header cache misses (`CacheStats::misses`).
    pub const CACHE_HEADER_MISSES: &str = "cache.header.misses";

    /// Map input records (`JobReport::map_inputs`).
    pub const MR_MAP_INPUTS: &str = "mr.map_inputs";
    /// Map output records (`JobReport::map_outputs`).
    pub const MR_MAP_OUTPUTS: &str = "mr.map_outputs";
    /// Key/value pairs shuffled (`JobReport::shuffled_pairs`).
    pub const MR_SHUFFLED_PAIRS: &str = "mr.shuffled_pairs";
    /// Reduce groups (`JobReport::reduce_groups`).
    pub const MR_REDUCE_GROUPS: &str = "mr.reduce_groups";
    /// Map phase wall time in microseconds (`JobReport::map_time`).
    pub const MR_MAP_TIME_US: &str = "mr.map_time_us";
    /// Reduce phase wall time in microseconds (`JobReport::reduce_time`).
    pub const MR_REDUCE_TIME_US: &str = "mr.reduce_time_us";

    /// Inner GFUs answered from pre-computed headers (`DgfPlan`).
    pub const PLAN_INNER_GFUS: &str = "plan.inner_gfus";
    /// Boundary GFUs needing Slice reads (`DgfPlan`).
    pub const PLAN_BOUNDARY_GFUS: &str = "plan.boundary_gfus";
    /// Records pre-aggregated from inner GFU headers (`DgfPlan`).
    pub const PLAN_INNER_RECORDS: &str = "plan.inner_records";
    /// Splits in the table (`DgfPlan::splits_total`).
    pub const PLAN_SPLITS_TOTAL: &str = "plan.splits_total";
    /// Splits kept after pruning (`DgfPlan::splits_read`).
    pub const PLAN_SPLITS_READ: &str = "plan.splits_read";
    /// Buffered (unflushed) GFU cells merged into the plan
    /// (`DgfPlan::fresh_gfus`).
    pub const PLAN_FRESH_GFUS: &str = "plan.fresh_gfus";
    /// Buffered records those cells hold (`DgfPlan::fresh_records`).
    pub const PLAN_FRESH_RECORDS: &str = "plan.fresh_records";
    /// Pyramid nodes (level ≥ 1) merged in place of leaf headers
    /// (`DgfPlan::pyramid_nodes`).
    pub const PLAN_PYRAMID_NODES: &str = "plan.pyramid.nodes";
    /// Leaf cells those pyramid nodes summarized — header reads the
    /// decomposition avoided (`DgfPlan::pyramid_cells`).
    pub const PLAN_PYRAMID_CELLS: &str = "plan.pyramid.cells";

    /// Streaming ingest batches acknowledged (`IngestStats::batches`).
    pub const INGEST_BATCHES: &str = "ingest.batches";
    /// Streaming ingest rows acknowledged (`IngestStats::rows`).
    pub const INGEST_ROWS: &str = "ingest.rows";
    /// Bytes appended to the ingest write-ahead log
    /// (`IngestStats::wal_bytes`).
    pub const INGEST_WAL_BYTES: &str = "ingest.wal_bytes";
    /// Write-ahead-log sync (group-commit) round trips
    /// (`IngestStats::wal_syncs`).
    pub const INGEST_WAL_SYNCS: &str = "ingest.wal_syncs";
    /// Ingest batches rejected by admission control
    /// (`IngestStats::rejections`).
    pub const INGEST_REJECTIONS: &str = "ingest.rejections";
    /// Memtable flushes committed into Slices (`IngestStats::flushes`).
    pub const INGEST_FLUSHES: &str = "ingest.flushes";
    /// Rows drained by committed flushes (`IngestStats::flushed_rows`).
    pub const INGEST_FLUSHED_ROWS: &str = "ingest.flushed_rows";
    /// Flush attempts that failed (`IngestStats::flush_failures`).
    pub const INGEST_FLUSH_FAILURES: &str = "ingest.flush_failures";
    /// Unflushed batches restored by WAL replay on open
    /// (`IngestStats::replayed_batches`).
    pub const INGEST_REPLAYED_BATCHES: &str = "ingest.replayed_batches";
    /// Rows those replayed batches held (`IngestStats::replayed_rows`).
    pub const INGEST_REPLAYED_ROWS: &str = "ingest.replayed_rows";

    /// Row-group batches decoded by the columnar scan path
    /// (`ScanStats::batches`).
    pub const SCAN_BATCHES: &str = "scan.batches";
    /// Rows decoded into batches, post row-filter
    /// (`ScanStats::rows_decoded`).
    pub const SCAN_ROWS_DECODED: &str = "scan.rows_decoded";
    /// Rows surviving the predicate kernel (`ScanStats::rows_selected`).
    pub const SCAN_ROWS_SELECTED: &str = "scan.rows_selected";
    /// Microseconds spent decoding groups, summed across parallel map
    /// tasks (`ScanStats::decode_us`).
    pub const SCAN_DECODE_US: &str = "scan.decode_us";
    /// Microseconds spent in predicate/aggregate kernels, summed
    /// (`ScanStats::kernel_us`).
    pub const SCAN_KERNEL_US: &str = "scan.kernel_us";
    /// Times a scan blocked waiting on the group prefetcher
    /// (`ScanStats::prefetch_waits`).
    pub const SCAN_PREFETCH_WAITS: &str = "scan.prefetch_waits";
    /// Microseconds scans spent blocked on the prefetcher
    /// (`ScanStats::prefetch_wait_us`).
    pub const SCAN_PREFETCH_WAIT_US: &str = "scan.prefetch_wait_us";
    /// Rows pushed through the row-at-a-time fallback path
    /// (`ScanStats::rowwise_rows`).
    pub const SCAN_ROWWISE_ROWS: &str = "scan.rowwise_rows";
    /// Sidecars loaded and verified for pruning (`ScanStats::sidecar_hits`).
    pub const SCAN_SIDECAR_HITS: &str = "scan.sidecar.hits";
    /// Slice files with no sidecar (`ScanStats::sidecar_misses`).
    pub const SCAN_SIDECAR_MISSES: &str = "scan.sidecar.misses";
    /// Sidecars rejected as corrupt or stale (`ScanStats::sidecar_corrupt`).
    pub const SCAN_SIDECAR_CORRUPT: &str = "scan.sidecar.corrupt";
    /// Sidecar file bytes read by the planner (`ScanStats::sidecar_bytes`).
    pub const SCAN_SIDECAR_BYTES: &str = "scan.sidecar.bytes";
    /// Row groups pruned by sidecar indexes
    /// (`ScanStats::sidecar_groups_pruned`).
    pub const SCAN_SIDECAR_GROUPS_PRUNED: &str = "scan.sidecar.groups_pruned";
    /// Slice bytes skipped by sidecar pruning
    /// (`ScanStats::sidecar_bytes_skipped`).
    pub const SCAN_SIDECAR_BYTES_SKIPPED: &str = "scan.sidecar.bytes_skipped";

    /// Pages read by the hadoopdb chunk reader (`ChunkStats::pages_read`).
    pub const HADOOPDB_PAGES_READ: &str = "hadoopdb.pages_read";
    /// Rows read by the hadoopdb chunk reader (`ChunkStats::rows_read`).
    pub const HADOOPDB_ROWS_READ: &str = "hadoopdb.rows_read";
    /// Bytes read by the hadoopdb chunk reader (`ChunkStats::bytes_read`).
    pub const HADOOPDB_BYTES_READ: &str = "hadoopdb.bytes_read";

    /// Queries admitted by the serving frontend (`ServeStats::admitted`).
    pub const SERVE_ADMITTED: &str = "serve.admitted";
    /// Queries rejected with backpressure (`ServeStats::rejected`).
    pub const SERVE_REJECTED: &str = "serve.rejected";
    /// Queries that ran to completion (`ServeStats::completed`).
    pub const SERVE_COMPLETED: &str = "serve.completed";
    /// Queries that errored after admission (`ServeStats::failed`).
    pub const SERVE_FAILED: &str = "serve.failed";
    /// Microseconds admitted queries waited for a scheduler slot.
    pub const SERVE_QUEUE_WAIT_US: &str = "serve.queue_wait_us";
    /// Cross-shard fan-outs issued by the shard router
    /// (`FanoutStats::cross_shard_multi_gets + cross_shard_scans`).
    pub const SERVE_SCATTERS: &str = "serve.scatters";
    /// Per-shard sub-operations those fan-outs issued
    /// (`FanoutStats::shard_subops`).
    pub const SERVE_SHARD_SUBOPS: &str = "serve.shard_subops";
    /// Shared header-fetch batches flushed to the store
    /// (`BatchStats::flushes`).
    pub const SERVE_BATCH_FLUSHES: &str = "serve.batch_flushes";
    /// Point reads that joined another query's in-flight batch
    /// (`BatchStats::joins`).
    pub const SERVE_BATCH_JOINS: &str = "serve.batch_joins";
}

/// Category filter parsed from a `DGF_TRACE`-style string.
///
/// A span's *category* is the part of its name before the first `.`
/// (`"plan.fetch"` → `"plan"`). A filter of `"plan,kv"` records only
/// spans in those categories; filtered-out spans are *transparent* —
/// their children re-attach to the nearest recorded ancestor and their
/// metrics are dropped. The strings `""`, `"*"`, `"all"` and `"1"`
/// record everything.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum TraceFilter {
    /// Record every span.
    #[default]
    All,
    /// Record only spans whose category is in the list.
    Only(Vec<String>),
}

impl TraceFilter {
    /// Parse a comma-separated category list (`"plan,kv"`).
    pub fn parse(spec: &str) -> TraceFilter {
        let spec = spec.trim();
        if spec.is_empty() || spec == "*" || spec == "all" || spec == "1" {
            return TraceFilter::All;
        }
        TraceFilter::Only(
            spec.split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect(),
        )
    }

    /// Does this filter record a span with the given name?
    pub fn accepts(&self, span_name: &str) -> bool {
        match self {
            TraceFilter::All => true,
            TraceFilter::Only(cats) => {
                let cat = span_name.split('.').next().unwrap_or(span_name);
                cats.iter().any(|c| c == cat)
            }
        }
    }
}

#[derive(Debug)]
struct SpanNode {
    name: String,
    parent: Option<usize>,
    start: Instant,
    wall: Option<Duration>,
    metrics: BTreeMap<String, u64>,
}

#[derive(Debug)]
struct ProfilerInner {
    filter: TraceFilter,
    spans: Mutex<Vec<SpanNode>>,
}

/// Handle for collecting a span tree during a query or build.
///
/// Cloning a `Profiler` shares the underlying arena; [`Profiler::fork`]
/// creates an independent arena with the same filter (used so plan
/// assembly can own its subtree and embed it in the [`DgfPlan`]'s
/// profile while the engine assembles the enclosing query profile).
///
/// The disabled profiler ([`Profiler::disabled`], also `Default`) holds
/// no allocation at all: every span or metric operation is a branch on
/// `Option::None`.
///
/// [`DgfPlan`]: https://docs.rs/dgf-core
#[derive(Debug, Clone, Default)]
pub struct Profiler(Option<Arc<ProfilerInner>>);

impl Profiler {
    /// A no-op profiler: spans are never recorded, nothing allocates.
    pub fn disabled() -> Profiler {
        Profiler(None)
    }

    /// A profiler recording every span.
    pub fn enabled() -> Profiler {
        Profiler::with_filter(TraceFilter::All)
    }

    /// A profiler recording spans matching `filter`.
    pub fn with_filter(filter: TraceFilter) -> Profiler {
        Profiler(Some(Arc::new(ProfilerInner {
            filter,
            spans: Mutex::new(Vec::new()),
        })))
    }

    /// Build from the `DGF_TRACE` environment variable.
    ///
    /// Unset or empty → disabled (zero-cost). `DGF_TRACE=1`/`all`/`*` →
    /// record everything. `DGF_TRACE=plan,kv` → record only those
    /// categories.
    pub fn from_env() -> Profiler {
        match std::env::var("DGF_TRACE") {
            Ok(spec) if !spec.trim().is_empty() => {
                Profiler::with_filter(TraceFilter::parse(&spec))
            }
            _ => Profiler::disabled(),
        }
    }

    /// Is collection active?
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// An independent profiler with the same filter but a fresh arena.
    ///
    /// Disabled profilers fork to disabled profilers.
    pub fn fork(&self) -> Profiler {
        match &self.0 {
            Some(inner) => Profiler::with_filter(inner.filter.clone()),
            None => Profiler::disabled(),
        }
    }

    /// Open a root span. Returns a guard that finishes the span when
    /// dropped (or via [`SpanGuard::finish`]).
    pub fn span(&self, name: &str) -> SpanGuard {
        self.start_span(name, None)
    }

    fn start_span(&self, name: &str, parent: Option<usize>) -> SpanGuard {
        let Some(inner) = &self.0 else {
            return SpanGuard {
                profiler: Profiler::disabled(),
                own: None,
                attach: None,
            };
        };
        if !inner.filter.accepts(name) {
            // Transparent: this guard records nothing itself, but its
            // children re-attach to the nearest recorded ancestor.
            return SpanGuard {
                profiler: self.clone(),
                own: None,
                attach: parent,
            };
        }
        let mut spans = inner.spans.lock().unwrap();
        let id = spans.len();
        spans.push(SpanNode {
            name: name.to_string(),
            parent,
            start: Instant::now(),
            wall: None,
            metrics: BTreeMap::new(),
        });
        SpanGuard {
            profiler: self.clone(),
            own: Some(id),
            attach: Some(id),
        }
    }

    /// Freeze the collected spans into a [`QueryProfile`], draining the
    /// arena. Unfinished spans are closed as of now. Returns an empty
    /// profile when disabled.
    pub fn take_profile(&self) -> QueryProfile {
        let Some(inner) = &self.0 else {
            return QueryProfile::default();
        };
        let mut spans = inner.spans.lock().unwrap();
        let drained: Vec<SpanNode> = spans.drain(..).collect();
        drop(spans);
        let now = Instant::now();
        // Convert arena to nodes; arena order guarantees parents precede
        // children, so build children lists by index.
        let mut nodes: Vec<ProfileNode> = drained
            .iter()
            .map(|s| ProfileNode {
                name: s.name.clone(),
                wall: s.wall.unwrap_or_else(|| now.saturating_duration_since(s.start)),
                metrics: s.metrics.clone(),
                children: Vec::new(),
            })
            .collect();
        // Attach children to parents from the back so each node's own
        // children are complete before it is moved into its parent.
        let mut roots = Vec::new();
        for idx in (0..drained.len()).rev() {
            let node = std::mem::take(&mut nodes[idx]);
            match drained[idx].parent {
                Some(p) => nodes[p].children.insert(0, node),
                None => roots.insert(0, node),
            }
        }
        QueryProfile { roots }
    }
}

/// RAII guard for an open span. Records wall time on drop; metrics are
/// attached with [`SpanGuard::add`]; child spans with
/// [`SpanGuard::child`].
#[derive(Debug)]
pub struct SpanGuard {
    profiler: Profiler,
    /// Arena index of the span this guard opened (None when disabled or
    /// filtered out — such a guard never closes anything).
    own: Option<usize>,
    /// Arena index that child spans attach to (for a transparent guard
    /// this is the nearest recorded ancestor).
    attach: Option<usize>,
}

impl SpanGuard {
    /// Open a child span of this one.
    pub fn child(&self, name: &str) -> SpanGuard {
        self.profiler.start_span(name, self.attach)
    }

    /// Add `n` to the named metric on this span.
    pub fn add(&self, metric: &str, n: u64) {
        let (Some(inner), Some(id)) = (&self.profiler.0, self.own) else {
            return;
        };
        let mut spans = inner.spans.lock().unwrap();
        // The arena may have been drained by `take_profile` while this
        // guard was still open; treat the span as gone.
        let Some(span) = spans.get_mut(id) else {
            return;
        };
        *span.metrics.entry(metric.to_string()).or_insert(0) += n;
    }

    /// Is this guard actually recording?
    pub fn is_recording(&self) -> bool {
        self.own.is_some() && self.profiler.0.is_some()
    }

    /// Close the span now (idempotent; also happens on drop).
    pub fn finish(mut self) {
        self.close();
    }

    fn close(&mut self) {
        let (Some(inner), Some(id)) = (&self.profiler.0, self.own.take()) else {
            return;
        };
        let mut spans = inner.spans.lock().unwrap();
        let Some(span) = spans.get_mut(id) else {
            return;
        };
        if span.wall.is_none() {
            span.wall = Some(span.start.elapsed());
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.close();
    }
}

/// One stage in a [`QueryProfile`]: a named span with wall time,
/// attached metrics, and child stages.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileNode {
    /// Span name (`"query.plan.fetch"`).
    pub name: String,
    /// Wall-clock duration of the span.
    pub wall: Duration,
    /// Metrics attached to this span (not including children).
    pub metrics: BTreeMap<String, u64>,
    /// Child stages in start order.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// Sum of `metric` over this node and all descendants.
    pub fn metric_total(&self, metric: &str) -> u64 {
        self.metrics.get(metric).copied().unwrap_or(0)
            + self
                .children
                .iter()
                .map(|c| c.metric_total(metric))
                .sum::<u64>()
    }

    /// First node (pre-order) whose name equals `name`.
    pub fn find(&self, name: &str) -> Option<&ProfileNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    fn check_nesting_in(&self, errors: &mut Vec<String>) {
        let child_sum: Duration = self.children.iter().map(|c| c.wall).sum();
        // Allow a small tolerance for clock granularity on coarse timers.
        let tolerance = Duration::from_micros(500);
        if child_sum > self.wall + tolerance {
            errors.push(format!(
                "span `{}`: children sum to {:?} > own wall {:?}",
                self.name, child_sum, self.wall
            ));
        }
        for c in &self.children {
            c.check_nesting_in(errors);
        }
    }

    fn render_into(&self, out: &mut String, depth: usize, total: Duration) {
        let indent = "  ".repeat(depth);
        let pct = if total.as_nanos() > 0 {
            100.0 * self.wall.as_secs_f64() / total.as_secs_f64()
        } else {
            0.0
        };
        let bar_len = (pct / 5.0).round() as usize; // 20 chars == 100%
        let bar: String = "#".repeat(bar_len.min(20));
        let _ = writeln!(
            out,
            "{indent}{:<width$} {:>9.3} ms {:>5.1}% |{bar:<20}|",
            self.name,
            self.wall.as_secs_f64() * 1e3,
            pct,
            width = 36usize.saturating_sub(depth * 2),
        );
        if !self.metrics.is_empty() {
            let mut parts = Vec::new();
            for (k, v) in &self.metrics {
                parts.push(format!("{k}={v}"));
            }
            let _ = writeln!(out, "{indent}  · {}", parts.join(" "));
        }
        for c in &self.children {
            c.render_into(out, depth + 1, total);
        }
    }

    fn json_into(&self, out: &mut String) {
        out.push('{');
        let _ = write!(out, "\"name\":\"{}\",", json_escape(&self.name));
        let _ = write!(out, "\"wall_us\":{},", self.wall.as_micros());
        out.push_str("\"metrics\":{");
        let mut first = true;
        for (k, v) in &self.metrics {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{}", json_escape(k), v);
        }
        out.push_str("},\"children\":[");
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            c.json_into(out);
        }
        out.push_str("]}");
    }
}

/// A frozen span tree for one query (or build), carried on `DgfPlan`
/// and `RunStats`, rendered by `dgf profile`, and exported as JSON by
/// the bench harness.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryProfile {
    /// Root stages (usually exactly one, e.g. `"query"`).
    pub roots: Vec<ProfileNode>,
}

impl QueryProfile {
    /// Is there anything in this profile?
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Sum of `metric` over every node in the tree.
    pub fn metric_total(&self, metric: &str) -> u64 {
        self.roots.iter().map(|r| r.metric_total(metric)).sum()
    }

    /// First node (pre-order) whose name equals `name`.
    pub fn find(&self, name: &str) -> Option<&ProfileNode> {
        self.roots.iter().find_map(|r| r.find(name))
    }

    /// Verify that every span's children sum to no more than the span's
    /// own wall time (within clock tolerance). Returns the violations.
    pub fn check_nesting(&self) -> Vec<String> {
        let mut errors = Vec::new();
        for r in &self.roots {
            r.check_nesting_in(&mut errors);
        }
        errors
    }

    /// Flame-style text rendering: one line per span with wall time,
    /// percent of root, a proportional bar, and attached metrics.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let total: Duration = self.roots.iter().map(|r| r.wall).sum();
        for r in &self.roots {
            r.render_into(&mut out, 0, total);
        }
        out
    }

    /// JSON export (hand-rolled; no serde in this workspace):
    /// `[{"name":..,"wall_us":..,"metrics":{..},"children":[..]}]`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push('[');
        for (i, r) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            r.json_into(&mut out);
        }
        out.push(']');
        out
    }

    /// Graft another profile's roots under the named node (e.g. embed a
    /// plan-time subtree under the engine's `"query"` span). No-op when
    /// `sub` is empty; appends to roots when `under` is not found.
    pub fn graft(&mut self, under: &str, sub: QueryProfile) {
        if sub.is_empty() {
            return;
        }
        fn find_mut<'a>(nodes: &'a mut [ProfileNode], name: &str) -> Option<&'a mut ProfileNode> {
            for n in nodes.iter_mut() {
                if n.name == name {
                    return Some(n);
                }
                if let Some(hit) = find_mut(&mut n.children, name) {
                    return Some(hit);
                }
            }
            None
        }
        match find_mut(&mut self.roots, under) {
            Some(node) => node.children.extend(sub.roots),
            None => self.roots.extend(sub.roots),
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Named counters under the stable hierarchical scheme of [`names`].
///
/// The registry is the reconciliation point: the legacy stats blocks
/// (`KvStatsSnapshot`, `IoSnapshot`, `RunStats`, `JobReport`,
/// `CacheStats`) each know how to project themselves into it, so a
/// single dump shows a query's totals under one naming scheme.
///
/// ```
/// use dgf_common::obs::{names, MetricsRegistry};
///
/// let reg = MetricsRegistry::new();
/// reg.add(names::KV_GETS, 3);
/// reg.add(names::KV_GETS, 2);
/// assert_eq!(reg.get(names::KV_GETS), 5);
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter registered under `name`, creating it at zero.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut counters = self.counters.lock().unwrap();
        Arc::clone(
            counters
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Add `n` to the counter under `name`.
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Current value of `name` (zero if never registered).
    pub fn get(&self, name: &str) -> u64 {
        let counters = self.counters.lock().unwrap();
        counters.get(name).map(|c| c.get()).unwrap_or(0)
    }

    /// Point-in-time copy of every counter, sorted by name.
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        let counters = self.counters.lock().unwrap();
        counters.iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    /// Two-column text table of every counter.
    pub fn render(&self) -> String {
        let snap = self.snapshot();
        let width = snap.keys().map(|k| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (k, v) in &snap {
            let _ = writeln!(out, "{k:<width$}  {v}");
        }
        out
    }
}

/// Project an [`crate::stats::IoSnapshot`] into a registry under the
/// `hdfs.*` names.
pub fn record_io_snapshot(reg: &MetricsRegistry, snap: &crate::stats::IoSnapshot) {
    reg.add(names::HDFS_BYTES_READ, snap.bytes_read);
    reg.add(names::HDFS_BYTES_WRITTEN, snap.bytes_written);
    reg.add(names::HDFS_RECORDS_READ, snap.records_read);
    reg.add(names::HDFS_RECORDS_WRITTEN, snap.records_written);
    reg.add(names::HDFS_SEEKS, snap.seeks);
    reg.add(names::HDFS_RETRIES, snap.retries);
}

/// Attach an [`crate::stats::IoSnapshot`] (usually a delta) to a span
/// under the `hdfs.*` names. Zero-valued counters are skipped to keep
/// profiles readable.
pub fn span_add_io_snapshot(span: &SpanGuard, snap: &crate::stats::IoSnapshot) {
    for (name, v) in [
        (names::HDFS_BYTES_READ, snap.bytes_read),
        (names::HDFS_BYTES_WRITTEN, snap.bytes_written),
        (names::HDFS_RECORDS_READ, snap.records_read),
        (names::HDFS_RECORDS_WRITTEN, snap.records_written),
        (names::HDFS_SEEKS, snap.seeks),
        (names::HDFS_RETRIES, snap.retries),
    ] {
        if v > 0 {
            span.add(name, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread::sleep;

    #[test]
    fn disabled_profiler_is_inert() {
        let p = Profiler::disabled();
        assert!(!p.is_enabled());
        let root = p.span("query");
        assert!(!root.is_recording());
        let child = root.child("query.plan");
        child.add("kv.gets", 5);
        drop(child);
        drop(root);
        let profile = p.take_profile();
        assert!(profile.is_empty());
        assert_eq!(profile.metric_total("kv.gets"), 0);
    }

    #[test]
    fn span_tree_structure_and_metrics() {
        let p = Profiler::enabled();
        {
            let root = p.span("query");
            {
                let plan = root.child("query.plan");
                plan.add("kv.gets", 3);
                plan.add("kv.gets", 2);
                let fetch = plan.child("query.plan.fetch");
                fetch.add("kv.scans", 1);
            }
            let scan = root.child("query.scan");
            scan.add("hdfs.bytes_read", 100);
        }
        let profile = p.take_profile();
        assert_eq!(profile.roots.len(), 1);
        let root = &profile.roots[0];
        assert_eq!(root.name, "query");
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].name, "query.plan");
        assert_eq!(root.children[0].metrics["kv.gets"], 5);
        assert_eq!(root.children[0].children[0].name, "query.plan.fetch");
        assert_eq!(profile.metric_total("kv.gets"), 5);
        assert_eq!(profile.metric_total("kv.scans"), 1);
        assert_eq!(profile.metric_total("hdfs.bytes_read"), 100);
        assert!(profile.find("query.scan").is_some());
        assert!(profile.find("nope").is_none());
        // Arena drained: second take is empty.
        assert!(p.take_profile().is_empty());
    }

    #[test]
    fn nesting_invariant_holds() {
        let p = Profiler::enabled();
        {
            let root = p.span("query");
            {
                let _a = root.child("query.a");
                sleep(Duration::from_millis(2));
            }
            {
                let _b = root.child("query.b");
                sleep(Duration::from_millis(2));
            }
        }
        let profile = p.take_profile();
        assert!(profile.check_nesting().is_empty(), "{:?}", profile.check_nesting());
        let root = &profile.roots[0];
        let child_sum: Duration = root.children.iter().map(|c| c.wall).sum();
        assert!(root.wall + Duration::from_micros(500) >= child_sum);
    }

    #[test]
    fn check_nesting_flags_violations() {
        let bad = QueryProfile {
            roots: vec![ProfileNode {
                name: "root".into(),
                wall: Duration::from_millis(1),
                metrics: BTreeMap::new(),
                children: vec![ProfileNode {
                    name: "child".into(),
                    wall: Duration::from_millis(5),
                    metrics: BTreeMap::new(),
                    children: Vec::new(),
                }],
            }],
        };
        assert_eq!(bad.check_nesting().len(), 1);
    }

    #[test]
    fn filter_parsing_and_semantics() {
        assert_eq!(TraceFilter::parse(""), TraceFilter::All);
        assert_eq!(TraceFilter::parse("*"), TraceFilter::All);
        assert_eq!(TraceFilter::parse("all"), TraceFilter::All);
        assert_eq!(TraceFilter::parse("1"), TraceFilter::All);
        let f = TraceFilter::parse("plan, kv");
        assert!(f.accepts("plan"));
        assert!(f.accepts("plan.fetch"));
        assert!(f.accepts("kv.gets"));
        assert!(!f.accepts("query"));
        assert!(!f.accepts("query.scan"));
    }

    #[test]
    fn filtered_spans_are_transparent() {
        let p = Profiler::with_filter(TraceFilter::parse("query,plan"));
        {
            let root = p.span("query");
            // "scan" is filtered out; its child in an accepted category
            // must re-attach to `root`.
            let scan = root.child("scan.slice");
            scan.add("hdfs.bytes_read", 9); // dropped: span not recorded
            let inner = scan.child("plan.fetch");
            inner.add("kv.gets", 4);
        }
        let profile = p.take_profile();
        let root = &profile.roots[0];
        assert_eq!(root.children.len(), 1);
        assert_eq!(root.children[0].name, "plan.fetch");
        assert_eq!(profile.metric_total("hdfs.bytes_read"), 0);
        assert_eq!(profile.metric_total("kv.gets"), 4);
    }

    #[test]
    fn fork_is_independent() {
        let p = Profiler::enabled();
        let f = p.fork();
        {
            let _a = p.span("a");
            let _b = f.span("b");
        }
        assert_eq!(p.take_profile().roots[0].name, "a");
        assert_eq!(f.take_profile().roots[0].name, "b");
        assert!(!Profiler::disabled().fork().is_enabled());
    }

    #[test]
    fn graft_embeds_subtree() {
        let p = Profiler::enabled();
        {
            let root = p.span("query");
            let _plan = root.child("query.plan");
        }
        let mut profile = p.take_profile();
        let sub = Profiler::enabled();
        {
            let s = sub.span("plan.fetch");
            s.add("kv.gets", 2);
        }
        profile.graft("query.plan", sub.take_profile());
        let plan = profile.find("query.plan").unwrap();
        assert_eq!(plan.children[0].name, "plan.fetch");
        assert_eq!(profile.metric_total("kv.gets"), 2);
    }

    #[test]
    fn render_and_json() {
        let p = Profiler::enabled();
        {
            let root = p.span("query");
            root.add("kv.gets", 1);
            let _c = root.child("query.plan");
        }
        let profile = p.take_profile();
        let text = profile.render();
        assert!(text.contains("query"));
        assert!(text.contains("query.plan"));
        assert!(text.contains("kv.gets=1"));
        let json = profile.to_json();
        assert!(json.starts_with('['));
        assert!(json.contains("\"name\":\"query\""));
        assert!(json.contains("\"wall_us\":"));
        assert!(json.contains("\"children\":[{\"name\":\"query.plan\""));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn registry_counters_and_render() {
        let reg = MetricsRegistry::new();
        reg.add(names::KV_GETS, 3);
        reg.counter(names::KV_GETS).add(4);
        reg.add(names::CACHE_HEADER_HITS, 1);
        assert_eq!(reg.get(names::KV_GETS), 7);
        assert_eq!(reg.get("never.seen"), 0);
        let snap = reg.snapshot();
        assert_eq!(snap["kv.gets"], 7);
        assert_eq!(snap["cache.header.hits"], 1);
        let table = reg.render();
        assert!(table.contains("kv.gets"));
        assert!(table.contains('7'));
    }

    #[test]
    fn io_snapshot_projection() {
        use crate::stats::IoStats;
        let io = IoStats::default();
        io.bytes_read.add(42);
        io.seeks.add(3);
        let reg = MetricsRegistry::new();
        record_io_snapshot(&reg, &io.snapshot());
        assert_eq!(reg.get(names::HDFS_BYTES_READ), 42);
        assert_eq!(reg.get(names::HDFS_SEEKS), 3);
        assert_eq!(reg.get(names::HDFS_RETRIES), 0);

        let p = Profiler::enabled();
        {
            let s = p.span("scan");
            span_add_io_snapshot(&s, &io.snapshot());
        }
        let profile = p.take_profile();
        assert_eq!(profile.metric_total(names::HDFS_BYTES_READ), 42);
        // Zero-valued counters are not attached.
        assert!(!profile.roots[0].metrics.contains_key(names::HDFS_RETRIES));
    }

    #[test]
    fn unfinished_spans_are_closed_at_take() {
        let p = Profiler::enabled();
        let root = p.span("query");
        sleep(Duration::from_millis(1));
        // Take while `root` is still open.
        let profile = p.take_profile();
        assert_eq!(profile.roots.len(), 1);
        assert!(profile.roots[0].wall >= Duration::from_millis(1));
        drop(root); // must not panic on drained arena
    }
}
