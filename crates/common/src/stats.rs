//! Lightweight atomic counters and timing helpers.
//!
//! The paper's Tables 3, 4 and 6 report *records read after index filtering*;
//! those numbers come out of these counters rather than timings, so they are
//! exact and deterministic.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shareable monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zeroed counter.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero, returning the previous value.
    pub fn reset(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

/// I/O accounting shared by the storage layer, formats, and engines.
///
/// One `IoStats` is typically owned by a `SimHdfs` instance and handed to
/// every reader it opens, so a whole query's I/O is visible in one place.
#[derive(Debug, Default)]
pub struct IoStats {
    /// Bytes read from data files.
    pub bytes_read: Counter,
    /// Bytes written to data files.
    pub bytes_written: Counter,
    /// Records decoded by record readers (the paper's "records read").
    pub records_read: Counter,
    /// Records appended by writers.
    pub records_written: Counter,
    /// Seek operations issued by skipping readers.
    pub seeks: Counter,
    /// Transient faults absorbed by retry loops in the storage layer.
    pub retries: Counter,
}

/// Shared handle to [`IoStats`].
pub type IoStatsRef = Arc<IoStats>;

impl IoStats {
    /// A fresh zeroed stats block behind an `Arc`.
    pub fn new_ref() -> IoStatsRef {
        Arc::new(IoStats::default())
    }

    /// Reset every counter (between benchmark runs).
    pub fn reset(&self) {
        self.bytes_read.reset();
        self.bytes_written.reset();
        self.records_read.reset();
        self.records_written.reset();
        self.seeks.reset();
        self.retries.reset();
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            bytes_read: self.bytes_read.get(),
            bytes_written: self.bytes_written.get(),
            records_read: self.records_read.get(),
            records_written: self.records_written.get(),
            seeks: self.seeks.get(),
            retries: self.retries.get(),
        }
    }
}

/// A copyable snapshot of [`IoStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Bytes read from data files.
    pub bytes_read: u64,
    /// Bytes written to data files.
    pub bytes_written: u64,
    /// Records decoded by record readers.
    pub records_read: u64,
    /// Records appended by writers.
    pub records_written: u64,
    /// Seek operations issued by skipping readers.
    pub seeks: u64,
    /// Transient faults absorbed by retry loops in the storage layer.
    pub retries: u64,
}

impl IoSnapshot {
    /// Counter deltas `self - earlier` (saturating).
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            records_read: self.records_read.saturating_sub(earlier.records_read),
            records_written: self.records_written.saturating_sub(earlier.records_written),
            seeks: self.seeks.saturating_sub(earlier.seeks),
            retries: self.retries.saturating_sub(earlier.retries),
        }
    }
}

impl fmt::Display for IoSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "read {} B / {} rec, wrote {} B / {} rec, {} seeks",
            self.bytes_read, self.records_read, self.bytes_written, self.records_written, self.seeks
        )
    }
}

/// Columnar scan accounting shared by the batch read path (DESIGN.md §12).
///
/// One `ScanStats` is owned by a `HiveContext` and charged from every map
/// task of every scan, the same snapshot/delta pattern as [`IoStats`]: the
/// batch decoder counts groups and rows, the kernels count selected rows,
/// and the prefetcher counts how often the consumer blocked waiting for
/// I/O. Busy times are recorded in microseconds because map tasks run in
/// parallel — their summed busy time is meaningful, their wall time is not.
#[derive(Debug, Default)]
pub struct ScanStats {
    /// Row-group batches decoded.
    pub batches: Counter,
    /// Rows decoded into batches (post row-filter).
    pub rows_decoded: Counter,
    /// Rows surviving the predicate kernel.
    pub rows_selected: Counter,
    /// Microseconds spent decoding groups into batches (summed across tasks).
    pub decode_us: Counter,
    /// Microseconds spent in predicate + aggregate kernels (summed).
    pub kernel_us: Counter,
    /// Times a consumer blocked on the prefetch channel.
    pub prefetch_waits: Counter,
    /// Microseconds consumers spent blocked on prefetched groups.
    pub prefetch_wait_us: Counter,
    /// Rows pushed through the row-at-a-time fallback path.
    pub rowwise_rows: Counter,
    /// Sidecars loaded and verified for pruning (DESIGN.md §15).
    pub sidecar_hits: Counter,
    /// Slice files whose sidecar was absent (pruning degraded).
    pub sidecar_misses: Counter,
    /// Sidecars rejected as corrupt or stale (pruning degraded).
    pub sidecar_corrupt: Counter,
    /// Sidecar file bytes read by the planner.
    pub sidecar_bytes: Counter,
    /// Row groups pruned outright by zone maps / hierarchical bitmaps.
    pub sidecar_groups_pruned: Counter,
    /// Slice data bytes those pruned groups would have read — the
    /// bytes-skipped ledger the sidecar bench asserts against.
    pub sidecar_bytes_skipped: Counter,
}

/// Shared handle to [`ScanStats`].
pub type ScanStatsRef = Arc<ScanStats>;

impl ScanStats {
    /// A fresh zeroed stats block behind an `Arc`.
    pub fn new_ref() -> ScanStatsRef {
        Arc::new(ScanStats::default())
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> ScanSnapshot {
        ScanSnapshot {
            batches: self.batches.get(),
            rows_decoded: self.rows_decoded.get(),
            rows_selected: self.rows_selected.get(),
            decode_us: self.decode_us.get(),
            kernel_us: self.kernel_us.get(),
            prefetch_waits: self.prefetch_waits.get(),
            prefetch_wait_us: self.prefetch_wait_us.get(),
            rowwise_rows: self.rowwise_rows.get(),
            sidecar_hits: self.sidecar_hits.get(),
            sidecar_misses: self.sidecar_misses.get(),
            sidecar_corrupt: self.sidecar_corrupt.get(),
            sidecar_bytes: self.sidecar_bytes.get(),
            sidecar_groups_pruned: self.sidecar_groups_pruned.get(),
            sidecar_bytes_skipped: self.sidecar_bytes_skipped.get(),
        }
    }
}

/// A copyable snapshot of [`ScanStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanSnapshot {
    /// Row-group batches decoded.
    pub batches: u64,
    /// Rows decoded into batches (post row-filter).
    pub rows_decoded: u64,
    /// Rows surviving the predicate kernel.
    pub rows_selected: u64,
    /// Microseconds spent decoding groups into batches.
    pub decode_us: u64,
    /// Microseconds spent in predicate + aggregate kernels.
    pub kernel_us: u64,
    /// Times a consumer blocked on the prefetch channel.
    pub prefetch_waits: u64,
    /// Microseconds consumers spent blocked on prefetched groups.
    pub prefetch_wait_us: u64,
    /// Rows pushed through the row-at-a-time fallback path.
    pub rowwise_rows: u64,
    /// Sidecars loaded and verified for pruning.
    pub sidecar_hits: u64,
    /// Slice files whose sidecar was absent.
    pub sidecar_misses: u64,
    /// Sidecars rejected as corrupt or stale.
    pub sidecar_corrupt: u64,
    /// Sidecar file bytes read by the planner.
    pub sidecar_bytes: u64,
    /// Row groups pruned outright.
    pub sidecar_groups_pruned: u64,
    /// Slice data bytes the pruned groups would have read.
    pub sidecar_bytes_skipped: u64,
}

impl ScanSnapshot {
    /// Counter deltas `self - earlier` (saturating).
    pub fn since(&self, earlier: &ScanSnapshot) -> ScanSnapshot {
        ScanSnapshot {
            batches: self.batches.saturating_sub(earlier.batches),
            rows_decoded: self.rows_decoded.saturating_sub(earlier.rows_decoded),
            rows_selected: self.rows_selected.saturating_sub(earlier.rows_selected),
            decode_us: self.decode_us.saturating_sub(earlier.decode_us),
            kernel_us: self.kernel_us.saturating_sub(earlier.kernel_us),
            prefetch_waits: self.prefetch_waits.saturating_sub(earlier.prefetch_waits),
            prefetch_wait_us: self.prefetch_wait_us.saturating_sub(earlier.prefetch_wait_us),
            rowwise_rows: self.rowwise_rows.saturating_sub(earlier.rowwise_rows),
            sidecar_hits: self.sidecar_hits.saturating_sub(earlier.sidecar_hits),
            sidecar_misses: self.sidecar_misses.saturating_sub(earlier.sidecar_misses),
            sidecar_corrupt: self.sidecar_corrupt.saturating_sub(earlier.sidecar_corrupt),
            sidecar_bytes: self.sidecar_bytes.saturating_sub(earlier.sidecar_bytes),
            sidecar_groups_pruned: self
                .sidecar_groups_pruned
                .saturating_sub(earlier.sidecar_groups_pruned),
            sidecar_bytes_skipped: self
                .sidecar_bytes_skipped
                .saturating_sub(earlier.sidecar_bytes_skipped),
        }
    }

    /// Record into a [`crate::MetricsRegistry`] under the `scan.*` names.
    pub fn record_into(&self, reg: &crate::obs::MetricsRegistry) {
        use crate::obs::names;
        reg.add(names::SCAN_BATCHES, self.batches);
        reg.add(names::SCAN_ROWS_DECODED, self.rows_decoded);
        reg.add(names::SCAN_ROWS_SELECTED, self.rows_selected);
        reg.add(names::SCAN_DECODE_US, self.decode_us);
        reg.add(names::SCAN_KERNEL_US, self.kernel_us);
        reg.add(names::SCAN_PREFETCH_WAITS, self.prefetch_waits);
        reg.add(names::SCAN_PREFETCH_WAIT_US, self.prefetch_wait_us);
        reg.add(names::SCAN_ROWWISE_ROWS, self.rowwise_rows);
        reg.add(names::SCAN_SIDECAR_HITS, self.sidecar_hits);
        reg.add(names::SCAN_SIDECAR_MISSES, self.sidecar_misses);
        reg.add(names::SCAN_SIDECAR_CORRUPT, self.sidecar_corrupt);
        reg.add(names::SCAN_SIDECAR_BYTES, self.sidecar_bytes);
        reg.add(names::SCAN_SIDECAR_GROUPS_PRUNED, self.sidecar_groups_pruned);
        reg.add(names::SCAN_SIDECAR_BYTES_SKIPPED, self.sidecar_bytes_skipped);
    }
}

/// Wall-clock stopwatch for benchmark phases.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time in fractional seconds.
    pub fn secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Stopwatch::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.reset(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_is_thread_safe() {
        let c = Arc::new(Counter::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn snapshot_deltas() {
        let s = IoStats::default();
        s.bytes_read.add(10);
        let a = s.snapshot();
        s.bytes_read.add(7);
        s.records_read.add(2);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.bytes_read, 7);
        assert_eq!(d.records_read, 2);
        assert_eq!(d.bytes_written, 0);
    }

    #[test]
    fn stopwatch_moves_forward() {
        let w = Stopwatch::start();
        assert!(w.secs() >= 0.0);
    }
}
