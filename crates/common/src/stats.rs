//! Lightweight atomic counters and timing helpers.
//!
//! The paper's Tables 3, 4 and 6 report *records read after index filtering*;
//! those numbers come out of these counters rather than timings, so they are
//! exact and deterministic.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shareable monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zeroed counter.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero, returning the previous value.
    pub fn reset(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

/// I/O accounting shared by the storage layer, formats, and engines.
///
/// One `IoStats` is typically owned by a `SimHdfs` instance and handed to
/// every reader it opens, so a whole query's I/O is visible in one place.
#[derive(Debug, Default)]
pub struct IoStats {
    /// Bytes read from data files.
    pub bytes_read: Counter,
    /// Bytes written to data files.
    pub bytes_written: Counter,
    /// Records decoded by record readers (the paper's "records read").
    pub records_read: Counter,
    /// Records appended by writers.
    pub records_written: Counter,
    /// Seek operations issued by skipping readers.
    pub seeks: Counter,
    /// Transient faults absorbed by retry loops in the storage layer.
    pub retries: Counter,
}

/// Shared handle to [`IoStats`].
pub type IoStatsRef = Arc<IoStats>;

impl IoStats {
    /// A fresh zeroed stats block behind an `Arc`.
    pub fn new_ref() -> IoStatsRef {
        Arc::new(IoStats::default())
    }

    /// Reset every counter (between benchmark runs).
    pub fn reset(&self) {
        self.bytes_read.reset();
        self.bytes_written.reset();
        self.records_read.reset();
        self.records_written.reset();
        self.seeks.reset();
        self.retries.reset();
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            bytes_read: self.bytes_read.get(),
            bytes_written: self.bytes_written.get(),
            records_read: self.records_read.get(),
            records_written: self.records_written.get(),
            seeks: self.seeks.get(),
            retries: self.retries.get(),
        }
    }
}

/// A copyable snapshot of [`IoStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Bytes read from data files.
    pub bytes_read: u64,
    /// Bytes written to data files.
    pub bytes_written: u64,
    /// Records decoded by record readers.
    pub records_read: u64,
    /// Records appended by writers.
    pub records_written: u64,
    /// Seek operations issued by skipping readers.
    pub seeks: u64,
    /// Transient faults absorbed by retry loops in the storage layer.
    pub retries: u64,
}

impl IoSnapshot {
    /// Counter deltas `self - earlier` (saturating).
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            records_read: self.records_read.saturating_sub(earlier.records_read),
            records_written: self.records_written.saturating_sub(earlier.records_written),
            seeks: self.seeks.saturating_sub(earlier.seeks),
            retries: self.retries.saturating_sub(earlier.retries),
        }
    }
}

impl fmt::Display for IoSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "read {} B / {} rec, wrote {} B / {} rec, {} seeks",
            self.bytes_read, self.records_read, self.bytes_written, self.records_written, self.seeks
        )
    }
}

/// Wall-clock stopwatch for benchmark phases.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time in fractional seconds.
    pub fn secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Stopwatch::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.reset(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_is_thread_safe() {
        let c = Arc::new(Counter::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn snapshot_deltas() {
        let s = IoStats::default();
        s.bytes_read.add(10);
        let a = s.snapshot();
        s.bytes_read.add(7);
        s.records_read.add(2);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.bytes_read, 7);
        assert_eq!(d.records_read, 2);
        assert_eq!(d.bytes_written, 0);
    }

    #[test]
    fn stopwatch_moves_forward() {
        let w = Stopwatch::start();
        assert!(w.secs() >= 0.0);
    }
}
