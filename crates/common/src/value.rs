//! The dynamic value type used by rows, predicates, and aggregate states.
//!
//! Meter data and TPC-H rows are heterogeneous, so the engine works over a
//! small dynamic [`Value`] enum. Dates are carried as days since the Unix
//! epoch (`Date(i64)`), matching the paper's treatment of the collection
//! timestamp as an indexable dimension with a day-granularity interval.

use std::cmp::Ordering;
use std::fmt;

use crate::error::{DgfError, Result};

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Str,
    /// Days since the Unix epoch.
    Date,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Int => "int",
            ValueType::Float => "float",
            ValueType::Str => "string",
            ValueType::Date => "date",
        };
        f.write_str(s)
    }
}

/// A dynamically typed cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent value (empty text field).
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float. NaN is rejected at parse time so `Value` forms a
    /// total order.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Days since the Unix epoch.
    Date(i64),
}

impl Value {
    /// The type of this value, or `None` for `Null`.
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ValueType::Int),
            Value::Float(_) => Some(ValueType::Float),
            Value::Str(_) => Some(ValueType::Str),
            Value::Date(_) => Some(ValueType::Date),
        }
    }

    /// Interpret the value as a number for grid standardization and
    /// arithmetic aggregates. Dates map to their day number.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::Int(v) => Ok(*v as f64),
            Value::Float(v) => Ok(*v),
            Value::Date(v) => Ok(*v as f64),
            other => Err(DgfError::Query(format!("value {other} is not numeric"))),
        }
    }

    /// Interpret the value as an integer (dates map to day numbers).
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            Value::Date(v) => Ok(*v),
            other => Err(DgfError::Query(format!("value {other} is not an integer"))),
        }
    }

    /// Borrow the value as a string slice.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(DgfError::Query(format!("value {other} is not a string"))),
        }
    }

    /// True when the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Parse a text field into a value of type `ty`. Empty text parses to
    /// `Null` (Hive semantics for missing fields).
    pub fn parse(text: &str, ty: ValueType) -> Result<Value> {
        if text.is_empty() {
            return Ok(Value::Null);
        }
        match ty {
            ValueType::Int => text
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|e| DgfError::Schema(format!("bad int {text:?}: {e}"))),
            ValueType::Float => {
                let v: f64 = text
                    .parse()
                    .map_err(|e| DgfError::Schema(format!("bad float {text:?}: {e}")))?;
                if v.is_nan() {
                    return Err(DgfError::Schema("NaN is not a valid float value".into()));
                }
                Ok(Value::Float(v))
            }
            ValueType::Str => Ok(Value::Str(text.to_owned())),
            ValueType::Date => parse_date(text).map(Value::Date),
        }
    }

    /// Compare two values of the same type. `Null` sorts before everything.
    /// Cross-type numeric comparison (int vs float vs date) compares as f64.
    pub fn cmp_value(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Null, _) => Ordering::Less,
            (_, Value::Null) => Ordering::Greater,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Date(a), Value::Date(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) => {
                let (Ok(x), Ok(y)) = (a.as_f64(), b.as_f64()) else {
                    // Mixed string/number: order by type tag for determinism.
                    return type_rank(a).cmp(&type_rank(b));
                };
                // NaN is rejected at construction, so partial_cmp is total here.
                x.partial_cmp(&y).unwrap_or(Ordering::Equal)
            }
        }
    }
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Int(_) => 1,
        Value::Float(_) => 1,
        Value::Date(_) => 1,
        Value::Str(_) => 2,
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => Ok(()),
            Value::Int(v) => write!(f, "{v}"),
            // `{:?}` prints the shortest decimal that round-trips through
            // `parse::<f64>()`, which Display does not guarantee for
            // subnormal-range magnitudes.
            Value::Float(v) => write!(f, "{v:?}"),
            Value::Str(s) => f.write_str(s),
            Value::Date(d) => f.write_str(&format_date(*d)),
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_value(other)
    }
}

const DAYS_PER_400Y: i64 = 146_097;
const DAYS_PER_100Y: i64 = 36_524;
const DAYS_PER_4Y: i64 = 1_461;

fn is_leap(y: i64) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

fn days_in_month(y: i64, m: i64) -> i64 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(y) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Parse `YYYY-MM-DD` into days since 1970-01-01 (proleptic Gregorian).
pub fn parse_date(text: &str) -> Result<i64> {
    let bad = || DgfError::Schema(format!("bad date {text:?}, expected YYYY-MM-DD"));
    let mut parts = text.splitn(3, '-');
    let y: i64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let m: i64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let d: i64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    if !(1..=12).contains(&m) || d < 1 || d > days_in_month(y, m) {
        return Err(bad());
    }
    // Days from year 1 to `y` (exclusive), then month/day offsets.
    let prev = y - 1;
    let mut days = prev * 365 + prev / 4 - prev / 100 + prev / 400;
    for mm in 1..m {
        days += days_in_month(y, mm);
    }
    days += d - 1;
    // 1970-01-01 is day 719162 from year 1.
    Ok(days - 719_162)
}

/// Format days since 1970-01-01 as `YYYY-MM-DD`.
pub fn format_date(epoch_days: i64) -> String {
    let mut days = epoch_days + 719_162; // days since year 1, day 0 = 0001-01-01
    let mut year = 1i64;
    let n400 = days.div_euclid(DAYS_PER_400Y);
    year += 400 * n400;
    days -= n400 * DAYS_PER_400Y;
    let mut n100 = days / DAYS_PER_100Y;
    if n100 == 4 {
        n100 = 3; // last day of a 400-year cycle
    }
    year += 100 * n100;
    days -= n100 * DAYS_PER_100Y;
    let n4 = days / DAYS_PER_4Y;
    year += 4 * n4;
    days -= n4 * DAYS_PER_4Y;
    let mut n1 = days / 365;
    if n1 == 4 {
        n1 = 3; // last day of a 4-year cycle
    }
    year += n1;
    days -= n1 * 365;
    let mut month = 1i64;
    while days >= days_in_month(year, month) {
        days -= days_in_month(year, month);
        month += 1;
    }
    format!("{year:04}-{month:02}-{:02}", days + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_typed_values() {
        assert_eq!(Value::parse("42", ValueType::Int).unwrap(), Value::Int(42));
        assert_eq!(
            Value::parse("-3.5", ValueType::Float).unwrap(),
            Value::Float(-3.5)
        );
        assert_eq!(
            Value::parse("abc", ValueType::Str).unwrap(),
            Value::Str("abc".into())
        );
        assert_eq!(Value::parse("", ValueType::Int).unwrap(), Value::Null);
        assert!(Value::parse("x", ValueType::Int).is_err());
        assert!(Value::parse("NaN", ValueType::Float).is_err());
    }

    #[test]
    fn date_round_trips_known_values() {
        assert_eq!(parse_date("1970-01-01").unwrap(), 0);
        assert_eq!(parse_date("1970-01-02").unwrap(), 1);
        assert_eq!(parse_date("1969-12-31").unwrap(), -1);
        assert_eq!(parse_date("2013-01-01").unwrap(), 15706);
        assert_eq!(format_date(15706), "2013-01-01");
        assert_eq!(format_date(0), "1970-01-01");
        // Leap handling.
        assert_eq!(
            parse_date("2000-03-01").unwrap() - parse_date("2000-02-28").unwrap(),
            2
        );
        assert_eq!(
            parse_date("1900-03-01").unwrap() - parse_date("1900-02-28").unwrap(),
            1
        );
    }

    #[test]
    fn date_rejects_malformed() {
        assert!(parse_date("2013-13-01").is_err());
        assert!(parse_date("2013-02-30").is_err());
        assert!(parse_date("20130201").is_err());
    }

    #[test]
    fn ordering_is_sane() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Float(1.5) < Value::Int(2));
        assert!(Value::Int(2) > Value::Float(1.5));
        assert!(Value::Str("a".into()) < Value::Str("b".into()));
        assert!(Value::Date(10) < Value::Date(11));
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(Value::Int(-7).to_string(), "-7");
        assert_eq!(Value::Date(15706).to_string(), "2013-01-01");
        assert_eq!(Value::Null.to_string(), "");
    }

    #[test]
    fn numeric_accessors() {
        assert_eq!(Value::Int(3).as_f64().unwrap(), 3.0);
        assert_eq!(Value::Date(5).as_i64().unwrap(), 5);
        assert!(Value::Str("x".into()).as_f64().is_err());
        assert_eq!(Value::Str("x".into()).as_str().unwrap(), "x");
    }
}
