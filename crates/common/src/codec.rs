//! Binary codecs.
//!
//! Two codecs live here:
//!
//! * A length-prefixed little-endian **frame codec** (`BufWriter`/`BufReader`
//!   helpers) used for row-group files, key-value store logs, and persisted
//!   index metadata.
//! * An **order-preserving key codec** used for grid-file unit keys so the
//!   key-value store can range-scan cells in coordinate order (`encode_key_i64`
//!   encodes sign-flipped big-endian).

use std::io::{Read, Write};

use crate::error::{DgfError, Result};
use crate::value::Value;

// ---------------------------------------------------------------------------
// Frame codec: little-endian primitives with explicit lengths.
// ---------------------------------------------------------------------------

/// Append a `u32` little-endian.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` little-endian.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an `i64` little-endian.
pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` little-endian.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed byte string.
pub fn put_bytes(buf: &mut Vec<u8>, v: &[u8]) {
    put_u32(buf, v.len() as u32);
    buf.extend_from_slice(v);
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, v: &str) {
    put_bytes(buf, v.as_bytes());
}

/// A cursor over an encoded frame, returning typed reads with bounds checks.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(DgfError::Corrupt(format!(
                "frame truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a single byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `i64`.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f64`.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str> {
        std::str::from_utf8(self.bytes()?)
            .map_err(|e| DgfError::Corrupt(format!("invalid utf-8 in frame: {e}")))
    }
}

// ---------------------------------------------------------------------------
// Value codec: rows inside binary row groups and aggregate headers.
// ---------------------------------------------------------------------------

pub(crate) const TAG_NULL: u8 = 0;
pub(crate) const TAG_INT: u8 = 1;
pub(crate) const TAG_FLOAT: u8 = 2;
pub(crate) const TAG_STR: u8 = 3;
pub(crate) const TAG_DATE: u8 = 4;

/// Append a tagged [`Value`].
pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(TAG_NULL),
        Value::Int(x) => {
            buf.push(TAG_INT);
            put_i64(buf, *x);
        }
        Value::Float(x) => {
            buf.push(TAG_FLOAT);
            put_f64(buf, *x);
        }
        Value::Str(s) => {
            buf.push(TAG_STR);
            put_str(buf, s);
        }
        Value::Date(x) => {
            buf.push(TAG_DATE);
            put_i64(buf, *x);
        }
    }
}

/// Read a tagged [`Value`].
pub fn get_value(dec: &mut Decoder<'_>) -> Result<Value> {
    let tag = dec.take(1)?[0];
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_INT => Value::Int(dec.i64()?),
        TAG_FLOAT => Value::Float(dec.f64()?),
        TAG_STR => Value::Str(dec.str()?.to_owned()),
        TAG_DATE => Value::Date(dec.i64()?),
        other => return Err(DgfError::Corrupt(format!("unknown value tag {other}"))),
    })
}

// ---------------------------------------------------------------------------
// Order-preserving key codec.
// ---------------------------------------------------------------------------

/// Encode an `i64` so that byte-wise lexicographic order equals numeric
/// order: flip the sign bit, write big-endian.
pub fn encode_key_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&((v as u64) ^ (1u64 << 63)).to_be_bytes());
}

/// Decode one key-encoded `i64` from the front of `buf`, returning the rest.
pub fn decode_key_i64(buf: &[u8]) -> Result<(i64, &[u8])> {
    if buf.len() < 8 {
        return Err(DgfError::Corrupt("key truncated".into()));
    }
    let raw = u64::from_be_bytes(buf[..8].try_into().unwrap());
    Ok(((raw ^ (1u64 << 63)) as i64, &buf[8..]))
}

// ---------------------------------------------------------------------------
// Checksums and stream helpers.
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit hash, used as a log-record checksum and as the default
/// shuffle partitioner hash. Deterministic across runs (unlike `RandomState`),
/// which keeps MapReduce output placement reproducible.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Write a length-prefixed frame to a stream.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Read a length-prefixed frame; `Ok(None)` at clean EOF.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let n = u32::from_le_bytes(len) as usize;
    let mut payload = vec![0u8; n];
    r.read_exact(&mut payload)
        .map_err(|_| DgfError::Corrupt("frame body truncated".into()))?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_primitives_round_trip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        put_u64(&mut buf, u64::MAX);
        put_i64(&mut buf, -9);
        put_f64(&mut buf, 2.5);
        put_str(&mut buf, "hello");
        let mut d = Decoder::new(&buf);
        assert_eq!(d.u32().unwrap(), 7);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.i64().unwrap(), -9);
        assert_eq!(d.f64().unwrap(), 2.5);
        assert_eq!(d.str().unwrap(), "hello");
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn truncation_is_detected() {
        let mut buf = Vec::new();
        put_str(&mut buf, "hello");
        let mut d = Decoder::new(&buf[..6]);
        assert!(d.str().is_err());
    }

    #[test]
    fn value_round_trip() {
        let vals = vec![
            Value::Null,
            Value::Int(-1),
            Value::Float(3.25),
            Value::Str("x|y".into()),
            Value::Date(15706),
        ];
        let mut buf = Vec::new();
        for v in &vals {
            put_value(&mut buf, v);
        }
        let mut d = Decoder::new(&buf);
        for v in &vals {
            assert_eq!(&get_value(&mut d).unwrap(), v);
        }
    }

    #[test]
    fn key_i64_preserves_order() {
        let samples = [i64::MIN, -100, -1, 0, 1, 99, i64::MAX];
        let mut encoded: Vec<Vec<u8>> = Vec::new();
        for v in samples {
            let mut b = Vec::new();
            encode_key_i64(&mut b, v);
            encoded.push(b);
        }
        for w in encoded.windows(2) {
            assert!(w[0] < w[1]);
        }
        for (i, v) in samples.iter().enumerate() {
            let (got, rest) = decode_key_i64(&encoded[i]).unwrap();
            assert_eq!(got, *v);
            assert!(rest.is_empty());
        }
    }

    #[test]
    fn frames_stream_round_trip() {
        let mut out = Vec::new();
        write_frame(&mut out, b"one").unwrap();
        write_frame(&mut out, b"").unwrap();
        write_frame(&mut out, b"three").unwrap();
        let mut r = &out[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"one");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"three");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
