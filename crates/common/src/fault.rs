//! Deterministic fault injection and retry policies.
//!
//! The paper leans on Hadoop and HBase for fault tolerance: index
//! construction "is just a MapReduce job" and GFU headers live in a
//! durable key-value store, so transient RPC failures and task crashes
//! are expected, survivable events. This module is the substrate that
//! lets the reproduction *prove* the same property: a [`FaultPlan`] is a
//! seeded, fully deterministic schedule of injected faults that chaos
//! wrappers (`ChaosKv` in `dgf-kvstore`, the chaos mode of `SimHdfs` in
//! `dgf-storage`) and the index's commit protocol consult at every
//! decision point, and a [`RetryPolicy`] is the bounded
//! exponential-backoff loop the engine threads through every key-value
//! and storage round trip.
//!
//! Determinism is the whole point: the same seed produces the same fault
//! schedule, so every chaos-test failure replays exactly, and crash
//! points can be enumerated (`crash at site i for i in 0..N`) to sweep
//! the entire commit protocol.

use std::fmt;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use crate::error::{DgfError, Result};

/// A tiny, deterministic xorshift64* generator. Not statistically fancy,
/// but plenty for scheduling faults, and — unlike `rand` generators —
/// trivially embeddable behind a mutex with `Copy` state.
#[derive(Debug, Clone, Copy)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeded construction; a zero seed is remapped (xorshift's only
    /// fixed point is 0).
    pub fn new(seed: u64) -> XorShift64 {
        XorShift64 {
            state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed },
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `0` when `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Marker payload carried inside an injected transient [`io::Error`], so
/// transience survives the trip through `DgfError::Io` and can be
/// recognized by [`DgfError::is_transient`].
#[derive(Debug)]
pub struct TransientFault(pub String);

impl fmt::Display for TransientFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transient fault (injected): {}", self.0)
    }
}

impl std::error::Error for TransientFault {}

/// Whether an error is a transient fault worth retrying. Crash faults and
/// real corruption are deliberately *not* transient.
pub fn is_transient(err: &DgfError) -> bool {
    match err {
        DgfError::Transient(_) => true,
        DgfError::Io(e) => io_error_is_transient(e),
        _ => false,
    }
}

/// [`is_transient`] for a raw [`io::Error`] (used by the storage layer,
/// whose `Read`/`Write` impls never see a `DgfError`).
pub fn io_error_is_transient(e: &io::Error) -> bool {
    e.get_ref().is_some_and(|inner| inner.is::<TransientFault>())
}

/// Configuration of a [`FaultPlan`]: which faults fire, and how often.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// RNG seed; the entire schedule is a pure function of it.
    pub seed: u64,
    /// Probability that any single operation fails with a transient
    /// error (independently drawn per operation).
    pub p_transient: f64,
    /// Probability that an operation is delayed by a latency spike.
    pub p_latency_spike: f64,
    /// Duration of an injected latency spike.
    pub latency_spike: Duration,
    /// Crash (sticky, non-retryable) after this many write operations.
    pub crash_after_writes: Option<u64>,
    /// Crash at the Nth [`FaultPlan::crash_point`] invocation (0-based
    /// global ordinal across every instrumented site).
    pub crash_at_point: Option<u64>,
    /// Probability that a [`FaultPlan::sync_point`] pauses the calling
    /// thread (drawn from a dedicated RNG stream so enabling scheduling
    /// noise never perturbs the fault schedule above).
    pub p_yield: f64,
    /// Upper bound on a single `sync_point` pause; a drawn pause is
    /// uniform in `[0, max_pause]`. `ZERO` degrades pauses to bare
    /// `yield_now` calls.
    pub max_pause: Duration,
}

impl FaultConfig {
    /// A schedule that injects nothing (useful for recording crash-point
    /// ordinals without perturbing a run).
    pub fn quiet(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            p_transient: 0.0,
            p_latency_spike: 0.0,
            latency_spike: Duration::ZERO,
            crash_after_writes: None,
            crash_at_point: None,
            p_yield: 0.0,
            max_pause: Duration::ZERO,
        }
    }

    /// A scheduling-noise-only plan for interleaving tests: every
    /// [`FaultPlan::sync_point`] yields or pauses with probability `p`,
    /// pausing up to `max_pause`, with no faults injected. The schedule
    /// of pauses is a pure function of `seed`.
    pub fn interleave(seed: u64, p: f64, max_pause: Duration) -> FaultConfig {
        FaultConfig {
            p_yield: p,
            max_pause,
            ..FaultConfig::quiet(seed)
        }
    }

    /// Transient faults only, at probability `p` per operation.
    pub fn transient(seed: u64, p: f64) -> FaultConfig {
        FaultConfig {
            p_transient: p,
            ..FaultConfig::quiet(seed)
        }
    }

    /// Crash at crash-point ordinal `i` (nothing else injected).
    pub fn crash_at(seed: u64, i: u64) -> FaultConfig {
        FaultConfig {
            crash_at_point: Some(i),
            ..FaultConfig::quiet(seed)
        }
    }

    /// Crash after the `n`th write (nothing else injected).
    pub fn crash_after_writes(seed: u64, n: u64) -> FaultConfig {
        FaultConfig {
            crash_after_writes: Some(n),
            ..FaultConfig::quiet(seed)
        }
    }
}

#[derive(Debug)]
struct FaultState {
    rng: XorShift64,
    /// Independent stream for `sync_point` draws: consuming scheduling
    /// randomness must not shift the fault schedule, or seeded chaos
    /// tests would stop replaying when sync points are added to a path.
    yield_rng: XorShift64,
    writes_seen: u64,
    points_seen: u64,
    crashed: bool,
}

/// A deterministic, shareable fault schedule.
///
/// One plan is typically wired into every layer of a test world (the
/// chaos key-value wrapper, the simulated HDFS, and the index's commit
/// protocol) so crash-point ordinals form a single global sequence and a
/// test can sweep `crash at point i` across the whole stack.
///
/// A crash is **sticky**: once triggered, every subsequent consultation
/// of the plan fails, modeling a dead process. Recovery tests then build
/// fresh, fault-free handles over the surviving on-disk state.
///
/// # Example
///
/// ```
/// use dgf_common::{FaultConfig, FaultPlan};
///
/// // Same seed → same schedule: a failure replays exactly.
/// let mk = || FaultPlan::new(FaultConfig::transient(7, 0.5));
/// let (a, b) = (mk(), mk());
/// for op in 0..32 {
///     assert_eq!(a.before_read("get").is_err(), b.before_read("get").is_err());
/// }
/// assert_eq!(a.faults_injected(), b.faults_injected());
/// ```
#[derive(Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
    state: Mutex<FaultState>,
    injected: AtomicU64,
}

impl FaultPlan {
    /// A plan following `cfg`.
    pub fn new(cfg: FaultConfig) -> FaultPlan {
        FaultPlan {
            state: Mutex::new(FaultState {
                rng: XorShift64::new(cfg.seed),
                yield_rng: XorShift64::new(cfg.seed ^ 0xA5A5_5A5A_C3C3_3C3C),
                writes_seen: 0,
                points_seen: 0,
                crashed: false,
            }),
            cfg,
            injected: AtomicU64::new(0),
        }
    }

    /// The configuration this plan follows.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Transient faults injected so far (latency spikes not counted).
    pub fn faults_injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Whether a crash has been triggered.
    pub fn crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// Crash points consulted so far (for recording runs that enumerate
    /// the crash-site space before a sweep).
    pub fn points_hit(&self) -> u64 {
        self.state.lock().points_seen
    }

    /// Consult the plan before a read-like operation `what`. May inject a
    /// transient error or a latency spike; fails permanently after a
    /// crash.
    pub fn before_read(&self, what: &str) -> Result<()> {
        self.before_op(what, false)
    }

    /// Consult the plan before a write-like operation `what`. Same as
    /// [`before_read`](Self::before_read), plus the write counter that
    /// drives `crash_after_writes`.
    pub fn before_write(&self, what: &str) -> Result<()> {
        self.before_op(what, true)
    }

    fn before_op(&self, what: &str, is_write: bool) -> Result<()> {
        let spike = {
            let mut st = self.state.lock();
            if st.crashed {
                return Err(crash_error(what));
            }
            if is_write {
                st.writes_seen += 1;
                if Some(st.writes_seen) == self.cfg.crash_after_writes {
                    st.crashed = true;
                    return Err(crash_error(what));
                }
            }
            if self.cfg.p_transient > 0.0 && st.rng.next_f64() < self.cfg.p_transient {
                drop(st);
                self.injected.fetch_add(1, Ordering::Relaxed);
                return Err(DgfError::Transient(format!("injected fault in {what}")));
            }
            self.cfg.p_latency_spike > 0.0 && st.rng.next_f64() < self.cfg.p_latency_spike
        };
        if spike {
            std::thread::sleep(self.cfg.latency_spike);
        }
        Ok(())
    }

    /// [`before_read`](Self::before_read) flavored for `io::Error` paths
    /// (the storage layer's `Read`/`Write` impls).
    pub fn before_read_io(&self, what: &str) -> io::Result<()> {
        self.before_read(what).map_err(to_io)
    }

    /// [`before_write`](Self::before_write) flavored for `io::Error` paths.
    pub fn before_write_io(&self, what: &str) -> io::Result<()> {
        self.before_write(what).map_err(to_io)
    }

    /// Consult a named crash site. Every invocation advances a global
    /// ordinal; when the ordinal matches `crash_at_point` the plan
    /// crashes (sticky). Recording runs (no `crash_at_point`) use the
    /// final ordinal count to enumerate the sweep space.
    pub fn crash_point(&self, site: &str) -> Result<()> {
        let mut st = self.state.lock();
        if st.crashed {
            return Err(crash_error(site));
        }
        let ordinal = st.points_seen;
        st.points_seen += 1;
        if Some(ordinal) == self.cfg.crash_at_point {
            st.crashed = true;
            return Err(DgfError::Io(io::Error::other(format!(
                "injected crash at point {ordinal} ({site})"
            ))));
        }
        Ok(())
    }

    /// A deterministic pseudo-random draw below `n` from the plan's RNG
    /// stream (used e.g. to pick torn-write truncation offsets).
    pub fn draw_below(&self, n: u64) -> u64 {
        self.state.lock().rng.next_below(n)
    }

    /// Consult a named scheduling point (`site` is for diagnostics only).
    /// With probability [`FaultConfig::p_yield`] the calling thread is
    /// paused — a bounded sleep drawn below [`FaultConfig::max_pause`],
    /// or a bare `yield_now` when that bound is zero — widening the race
    /// windows between instrumented sites so seeded interleaving tests
    /// explore different cross-thread schedules per seed.
    ///
    /// Never fails and never injects faults: sites are sprinkled through
    /// committed hot paths, and the draws come from a dedicated RNG
    /// stream so fault schedules replay unchanged. A no-op after a crash
    /// or when `p_yield` is zero.
    pub fn sync_point(&self, _site: &str) {
        if self.cfg.p_yield <= 0.0 {
            return;
        }
        let pause = {
            let mut st = self.state.lock();
            if st.crashed || st.yield_rng.next_f64() >= self.cfg.p_yield {
                return;
            }
            let max = self.cfg.max_pause.as_micros() as u64;
            Duration::from_micros(st.yield_rng.next_below(max.saturating_add(1)))
        };
        if pause.is_zero() {
            std::thread::yield_now();
        } else {
            std::thread::sleep(pause);
        }
    }
}

fn crash_error(what: &str) -> DgfError {
    DgfError::Io(io::Error::other(format!(
        "store is down (injected crash); op {what} rejected"
    )))
}

fn to_io(e: DgfError) -> io::Error {
    match e {
        DgfError::Transient(m) => io::Error::other(TransientFault(m)),
        DgfError::Io(e) => e,
        other => io::Error::other(other.to_string()),
    }
}

/// Bounded retry with capped exponential backoff.
///
/// Deterministic by construction: no jitter, and tests use zero
/// backoff so absorbed-retry counts are exact.
///
/// # Example
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use dgf_common::{DgfError, RetryPolicy};
///
/// let absorbed = AtomicU64::new(0);
/// let mut failures_left = 3;
/// let v = RetryPolicy::fast(8).run(&absorbed, || {
///     if failures_left > 0 {
///         failures_left -= 1;
///         return Err(DgfError::Transient("rpc timeout".into()));
///     }
///     Ok(42)
/// })?;
/// assert_eq!(v, 42);
/// assert_eq!(absorbed.load(Ordering::Relaxed), 3);
/// # Ok::<(), DgfError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff.
    pub max_backoff: Duration,
}

impl RetryPolicy {
    /// No retries at all: the first error propagates.
    pub const NONE: RetryPolicy = RetryPolicy {
        max_attempts: 1,
        base_backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
    };

    /// The production-ish default: 5 attempts, 1 ms base doubling to a
    /// 50 ms cap (HBase client defaults scaled down for a simulation).
    pub fn standard() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
        }
    }

    /// A test policy: generous attempts, zero backoff, fully
    /// deterministic wall-clock-free behavior.
    pub fn fast(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// Backoff before retry number `retry` (1-based): `base * 2^(retry-1)`
    /// capped at `max_backoff`.
    pub fn backoff(&self, retry: u32) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let factor = 1u32 << (retry.saturating_sub(1)).min(16);
        (self.base_backoff * factor).min(self.max_backoff)
    }

    /// Run `f`, retrying transient errors up to the attempt budget. Every
    /// absorbed (retried) fault increments `absorbed`; the terminal error
    /// — non-transient, or transient with the budget exhausted —
    /// propagates untouched.
    pub fn run<T>(
        &self,
        absorbed: &AtomicU64,
        mut f: impl FnMut() -> Result<T>,
    ) -> Result<T> {
        let mut attempt = 1u32;
        loop {
            match f() {
                Ok(v) => return Ok(v),
                Err(e) if is_transient(&e) && attempt < self.max_attempts => {
                    absorbed.fetch_add(1, Ordering::Relaxed);
                    let pause = self.backoff(attempt);
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic_and_nonzero() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            assert_ne!(x, 0);
        }
        let mut z = XorShift64::new(0);
        assert_ne!(z.next_u64(), 0);
        let f = XorShift64::new(7).next_f64();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let mk = || FaultPlan::new(FaultConfig::transient(99, 0.5));
        let (a, b) = (mk(), mk());
        for i in 0..200 {
            let what = format!("op{i}");
            assert_eq!(
                a.before_read(&what).is_err(),
                b.before_read(&what).is_err(),
                "schedules diverged at op {i}"
            );
        }
        assert_eq!(a.faults_injected(), b.faults_injected());
        assert!(a.faults_injected() > 0);
    }

    #[test]
    fn quiet_plan_injects_nothing() {
        let plan = FaultPlan::new(FaultConfig::quiet(1));
        for _ in 0..100 {
            plan.before_read("r").unwrap();
            plan.before_write("w").unwrap();
        }
        assert_eq!(plan.faults_injected(), 0);
        assert!(!plan.crashed());
    }

    #[test]
    fn crash_after_writes_is_sticky_and_ignores_reads() {
        let plan = FaultPlan::new(FaultConfig::crash_after_writes(1, 3));
        plan.before_read("r").unwrap();
        plan.before_write("w1").unwrap();
        plan.before_write("w2").unwrap();
        assert!(plan.before_write("w3").is_err());
        assert!(plan.crashed());
        // Sticky: reads now fail too, and nothing is transient.
        let e = plan.before_read("r").unwrap_err();
        assert!(!is_transient(&e));
    }

    #[test]
    fn crash_point_ordinals_enumerate() {
        let record = FaultPlan::new(FaultConfig::quiet(1));
        for s in ["a", "b", "c"] {
            record.crash_point(s).unwrap();
        }
        assert_eq!(record.points_hit(), 3);

        let plan = FaultPlan::new(FaultConfig::crash_at(1, 1));
        plan.crash_point("a").unwrap();
        assert!(plan.crash_point("b").is_err());
        assert!(plan.crash_point("c").is_err(), "crash is sticky");
        assert!(plan.crashed());
    }

    #[test]
    fn sync_points_do_not_perturb_the_fault_schedule() {
        // Two plans, same seed; one also draws scheduling pauses at every
        // op. The transient-fault schedules must stay identical.
        let plain = FaultPlan::new(FaultConfig::transient(13, 0.4));
        let noisy = FaultPlan::new(FaultConfig {
            p_yield: 1.0,
            ..FaultConfig::transient(13, 0.4)
        });
        for i in 0..200 {
            noisy.sync_point("site");
            let what = format!("op{i}");
            assert_eq!(
                plain.before_read(&what).is_err(),
                noisy.before_read(&what).is_err(),
                "sync-point draws shifted the fault schedule at op {i}"
            );
        }
        assert_eq!(plain.faults_injected(), noisy.faults_injected());
    }

    #[test]
    fn sync_point_never_fails_and_is_inert_when_disabled() {
        let off = FaultPlan::new(FaultConfig::quiet(5));
        let on = FaultPlan::new(FaultConfig::interleave(5, 1.0, Duration::ZERO));
        for _ in 0..50 {
            off.sync_point("a");
            on.sync_point("a");
        }
        assert_eq!(off.faults_injected(), 0);
        assert_eq!(on.faults_injected(), 0);
        assert!(!on.crashed());
        // Sticky crash silences sync points instead of erroring.
        let crashed = FaultPlan::new(FaultConfig {
            p_yield: 1.0,
            ..FaultConfig::crash_after_writes(5, 1)
        });
        assert!(crashed.before_write("w").is_err());
        crashed.sync_point("after-crash");
    }

    #[test]
    fn transient_classification_survives_io_wrapping() {
        let e = DgfError::Transient("kv.get".into());
        assert!(is_transient(&e));
        let io_e = io::Error::other(TransientFault("hdfs.read".into()));
        assert!(io_error_is_transient(&io_e));
        assert!(is_transient(&DgfError::Io(io_e)));
        assert!(!is_transient(&DgfError::Io(io::Error::other("plain"))));
        assert!(!is_transient(&DgfError::KvStore("x".into())));
    }

    #[test]
    fn retry_absorbs_transients_and_counts() {
        let absorbed = AtomicU64::new(0);
        let mut left = 3;
        let got = RetryPolicy::fast(5)
            .run(&absorbed, || {
                if left > 0 {
                    left -= 1;
                    Err(DgfError::Transient("flaky".into()))
                } else {
                    Ok(7)
                }
            })
            .unwrap();
        assert_eq!(got, 7);
        assert_eq!(absorbed.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn retry_budget_exhaustion_propagates_the_error() {
        let absorbed = AtomicU64::new(0);
        let res: Result<()> = RetryPolicy::fast(3)
            .run(&absorbed, || Err(DgfError::Transient("always".into())));
        assert!(matches!(res, Err(DgfError::Transient(_))));
        assert_eq!(absorbed.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn retry_does_not_touch_non_transient_errors() {
        let absorbed = AtomicU64::new(0);
        let res: Result<()> = RetryPolicy::fast(5)
            .run(&absorbed, || Err(DgfError::Corrupt("bad".into())));
        assert!(matches!(res, Err(DgfError::Corrupt(_))));
        assert_eq!(absorbed.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(10),
        };
        assert_eq!(p.backoff(1), Duration::from_millis(2));
        assert_eq!(p.backoff(2), Duration::from_millis(4));
        assert_eq!(p.backoff(3), Duration::from_millis(8));
        assert_eq!(p.backoff(4), Duration::from_millis(10)); // capped
        assert_eq!(p.backoff(9), Duration::from_millis(10));
        assert_eq!(RetryPolicy::fast(4).backoff(3), Duration::ZERO);
    }
}
