//! Smart-meter data generation.
//!
//! Mirrors the paper's real-world dataset (§5.2): a 17-field record
//! (Figure 1: userId, power consumed, collection date, positive active
//! total electricity under several rates, reverse active totals, and
//! other metrics), `regionId` with 11 distinct values, 30 days of
//! collection, and — crucially for the Compact Index comparison — records
//! arriving **time-ordered**, "which is obey the rules of meter data".

use dgf_common::{Row, Schema, SchemaRef, Value, ValueType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Shape of a generated meter dataset.
#[derive(Debug, Clone)]
pub struct MeterConfig {
    /// Distinct user ids (paper: 14 million; scale down).
    pub users: u64,
    /// Distinct regions (paper: 11).
    pub regions: u64,
    /// Collection days (paper: 30).
    pub days: u64,
    /// Readings per user per day (paper: up to 96; default 1 keeps the
    /// day the finest time granularity, like the paper's time dimension).
    pub readings_per_day: u32,
    /// Epoch day of the first collection day (2012-12-01 in the paper's
    /// Listing 7 era).
    pub start_day: i64,
    /// RNG seed (generation is fully deterministic).
    pub seed: u64,
}

impl Default for MeterConfig {
    fn default() -> Self {
        MeterConfig {
            users: 1000,
            regions: 11,
            days: 30,
            readings_per_day: 1,
            start_day: 15675, // 2012-12-01
            seed: 42,
        }
    }
}

impl MeterConfig {
    /// Total rows this config generates.
    pub fn row_count(&self) -> u64 {
        self.users * self.days * self.readings_per_day as u64
    }

    /// Region of a user (fixed mapping, as in reality).
    pub fn region_of(&self, user: u64) -> i64 {
        (user % self.regions) as i64
    }

    /// Last collection day (inclusive).
    pub fn end_day(&self) -> i64 {
        self.start_day + self.days as i64 - 1
    }
}

/// The 17-field meter schema (paper Figure 1).
pub fn meter_schema() -> SchemaRef {
    Arc::new(Schema::from_pairs(&[
        ("user_id", ValueType::Int),
        ("region_id", ValueType::Int),
        ("ts", ValueType::Date),
        ("power_consumed", ValueType::Float),
        ("pate_rate1", ValueType::Float),
        ("pate_rate2", ValueType::Float),
        ("pate_rate3", ValueType::Float),
        ("pate_rate4", ValueType::Float),
        ("rate_total", ValueType::Float),
        ("reverse_active1", ValueType::Float),
        ("reverse_active2", ValueType::Float),
        ("reverse_active3", ValueType::Float),
        ("reverse_active4", ValueType::Float),
        ("voltage", ValueType::Float),
        ("current", ValueType::Float),
        ("meter_status", ValueType::Str),
        ("quality_flag", ValueType::Int),
    ]))
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

/// One reading for `user` on epoch day `ts`, drawing from `rng` in the
/// canonical order (shared by the batch and streaming generators so both
/// produce byte-identical rows for a given config).
fn meter_row(cfg: &MeterConfig, rng: &mut StdRng, user: u64, ts: i64) -> Row {
    let power = round2(rng.random_range(0.5..35.0));
    let r1 = round2(power * rng.random_range(0.2..0.5));
    let r2 = round2(power * rng.random_range(0.1..0.3));
    let r3 = round2(power * rng.random_range(0.05..0.2));
    let r4 = round2((power - r1 - r2 - r3).max(0.0));
    vec![
        Value::Int(user as i64),
        Value::Int(cfg.region_of(user)),
        Value::Date(ts),
        Value::Float(power),
        Value::Float(r1),
        Value::Float(r2),
        Value::Float(r3),
        Value::Float(r4),
        Value::Float(round2(r1 + r2 + r3 + r4)),
        Value::Float(round2(rng.random_range(0.0..1.0))),
        Value::Float(round2(rng.random_range(0.0..1.0))),
        Value::Float(round2(rng.random_range(0.0..0.5))),
        Value::Float(round2(rng.random_range(0.0..0.5))),
        Value::Float(round2(rng.random_range(218.0..242.0))),
        Value::Float(round2(rng.random_range(0.1..40.0))),
        Value::Str(if rng.random_range(0..1000) == 0 {
            "E1".to_owned()
        } else {
            "OK".to_owned()
        }),
        Value::Int(rng.random_range(0..3)),
    ]
}

/// Generate the meter table, time-ordered (day-major, then user).
pub fn generate_meter_data(cfg: &MeterConfig) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut rows = Vec::with_capacity(cfg.row_count() as usize);
    for day in 0..cfg.days as i64 {
        let ts = cfg.start_day + day;
        for _reading in 0..cfg.readings_per_day {
            for user in 0..cfg.users {
                rows.push(meter_row(cfg, &mut rng, user, ts));
            }
        }
    }
    rows
}

/// Streaming variant of [`generate_meter_data`]: yields the same rows in
/// the same collection-time order, but in bounded batches of at most
/// `batch_rows`, the shape a meter head-end hands an ingestion pipeline.
/// Concatenating every batch reproduces `generate_meter_data(cfg)` exactly
/// (same seed, same draw order).
pub fn stream_meter_data(cfg: &MeterConfig, batch_rows: usize) -> MeterStream {
    MeterStream {
        cfg: cfg.clone(),
        rng: StdRng::seed_from_u64(cfg.seed),
        batch_rows: batch_rows.max(1),
        day: 0,
        reading: 0,
        user: 0,
    }
}

/// Iterator over bounded, arrival-ordered meter batches. See
/// [`stream_meter_data`].
#[derive(Debug)]
pub struct MeterStream {
    cfg: MeterConfig,
    rng: StdRng,
    batch_rows: usize,
    day: u64,
    reading: u32,
    user: u64,
}

impl MeterStream {
    /// Rows not yet yielded.
    pub fn remaining(&self) -> u64 {
        let done = (self.day * self.cfg.readings_per_day as u64 + self.reading as u64)
            * self.cfg.users
            + self.user;
        self.cfg.row_count().saturating_sub(done)
    }
}

impl Iterator for MeterStream {
    type Item = Vec<Row>;

    fn next(&mut self) -> Option<Vec<Row>> {
        // `remaining` (not a bare day check) also ends degenerate configs
        // with zero users or zero readings per day.
        if self.remaining() == 0 {
            return None;
        }
        let mut batch = Vec::with_capacity(self.batch_rows.min(self.remaining() as usize));
        while batch.len() < self.batch_rows && self.remaining() > 0 {
            let ts = self.cfg.start_day + self.day as i64;
            batch.push(meter_row(&self.cfg, &mut self.rng, self.user, ts));
            // Advance the (day, reading, user) odometer.
            self.user += 1;
            if self.user == self.cfg.users {
                self.user = 0;
                self.reading += 1;
                if self.reading == self.cfg.readings_per_day {
                    self.reading = 0;
                    self.day += 1;
                }
            }
        }
        Some(batch)
    }
}

/// Schema of the archive `user_info` table joined in Listing 6.
pub fn user_info_schema() -> SchemaRef {
    Arc::new(Schema::from_pairs(&[
        ("user_id", ValueType::Int),
        ("user_name", ValueType::Str),
        ("region_id", ValueType::Int),
        ("address", ValueType::Str),
    ]))
}

/// Generate the archive user table (one row per user).
pub fn generate_user_info(cfg: &MeterConfig) -> Vec<Row> {
    (0..cfg.users)
        .map(|u| {
            vec![
                Value::Int(u as i64),
                Value::Str(format!("user-{u:08}")),
                Value::Int(cfg.region_of(u)),
                Value::Str(format!("{} Grid Road, District {}", u % 997, cfg.region_of(u))),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_sized() {
        let cfg = MeterConfig {
            users: 50,
            days: 5,
            ..MeterConfig::default()
        };
        let a = generate_meter_data(&cfg);
        let b = generate_meter_data(&cfg);
        assert_eq!(a.len(), 250);
        assert_eq!(a, b);
        assert_eq!(a[0].len(), meter_schema().len());
    }

    #[test]
    fn rows_are_time_ordered() {
        let cfg = MeterConfig {
            users: 20,
            days: 4,
            ..MeterConfig::default()
        };
        let rows = generate_meter_data(&cfg);
        let days: Vec<i64> = rows.iter().map(|r| r[2].as_i64().unwrap()).collect();
        let mut sorted = days.clone();
        sorted.sort_unstable();
        assert_eq!(days, sorted, "meter data must arrive time-ordered");
        assert_eq!(days[0], cfg.start_day);
        assert_eq!(*days.last().unwrap(), cfg.end_day());
    }

    #[test]
    fn regions_have_the_configured_cardinality() {
        let cfg = MeterConfig {
            users: 200,
            days: 1,
            ..MeterConfig::default()
        };
        let rows = generate_meter_data(&cfg);
        let mut regions: Vec<i64> = rows.iter().map(|r| r[1].as_i64().unwrap()).collect();
        regions.sort_unstable();
        regions.dedup();
        assert_eq!(regions.len() as u64, cfg.regions);
    }

    #[test]
    fn user_info_joins_cleanly() {
        let cfg = MeterConfig {
            users: 30,
            days: 1,
            ..MeterConfig::default()
        };
        let users = generate_user_info(&cfg);
        assert_eq!(users.len(), 30);
        assert_eq!(users[7][0], Value::Int(7));
        assert_eq!(users[7][2], Value::Int(cfg.region_of(7)));
        assert_eq!(users[0].len(), user_info_schema().len());
    }

    #[test]
    fn streaming_batches_reproduce_batch_generation() {
        let cfg = MeterConfig {
            users: 37,
            days: 3,
            readings_per_day: 2,
            ..MeterConfig::default()
        };
        let oracle = generate_meter_data(&cfg);
        // A batch size that doesn't divide the row count exercises the
        // odometer mid-day and the short final batch.
        let batches: Vec<Vec<Row>> = stream_meter_data(&cfg, 50).collect();
        assert!(batches.iter().rev().skip(1).all(|b| b.len() == 50));
        assert!(batches.last().unwrap().len() <= 50);
        let streamed: Vec<Row> = batches.into_iter().flatten().collect();
        assert_eq!(streamed, oracle);
    }

    #[test]
    fn streaming_tracks_remaining_and_handles_degenerate_configs() {
        let cfg = MeterConfig {
            users: 10,
            days: 2,
            ..MeterConfig::default()
        };
        let mut s = stream_meter_data(&cfg, 7);
        assert_eq!(s.remaining(), 20);
        let first = s.next().unwrap();
        assert_eq!(first.len(), 7);
        assert_eq!(s.remaining(), 13);
        assert_eq!(s.by_ref().map(|b| b.len() as u64).sum::<u64>(), 13);
        assert!(s.next().is_none());

        let empty = MeterConfig {
            users: 0,
            ..MeterConfig::default()
        };
        assert!(stream_meter_data(&empty, 8).next().is_none());
    }

    #[test]
    fn readings_multiply_rows() {
        let cfg = MeterConfig {
            users: 10,
            days: 2,
            readings_per_day: 4,
            ..MeterConfig::default()
        };
        assert_eq!(generate_meter_data(&cfg).len(), 80);
    }
}
