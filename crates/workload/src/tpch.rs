//! TPC-H `lineitem` generation and query Q6 (paper §5.4).
//!
//! The paper uses TPC-H as the "general case": unlike meter data, the
//! indexed dimensions (`l_discount`, `l_quantity`, `l_shipdate`) are
//! **evenly scattered** through the data files, which defeats the Compact
//! Index's split-granular filtering entirely (Table 6: Compact reads the
//! whole table) while DGFIndex, which reorganizes the data, keeps working.

use dgf_common::{parse_date, Row, Schema, SchemaRef, Value, ValueType};
use dgf_query::{AggFunc, ColumnRange, Predicate, Query, SumProductUdf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Shape of a generated lineitem dataset.
#[derive(Debug, Clone)]
pub struct TpchConfig {
    /// Rows to generate (SF1 ≈ 6 M; the paper runs ≈ 4.1 B).
    pub rows: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            rows: 100_000,
            seed: 7,
        }
    }
}

/// First shippable day (1992-01-02).
pub fn ship_min_day() -> i64 {
    parse_date("1992-01-02").expect("static date")
}

/// Last shippable day (1998-12-01).
pub fn ship_max_day() -> i64 {
    parse_date("1998-12-01").expect("static date")
}

/// The 16-column lineitem schema.
pub fn lineitem_schema() -> SchemaRef {
    Arc::new(Schema::from_pairs(&[
        ("l_orderkey", ValueType::Int),
        ("l_partkey", ValueType::Int),
        ("l_suppkey", ValueType::Int),
        ("l_linenumber", ValueType::Int),
        ("l_quantity", ValueType::Float),
        ("l_extendedprice", ValueType::Float),
        ("l_discount", ValueType::Float),
        ("l_tax", ValueType::Float),
        ("l_returnflag", ValueType::Str),
        ("l_linestatus", ValueType::Str),
        ("l_shipdate", ValueType::Date),
        ("l_commitdate", ValueType::Date),
        ("l_receiptdate", ValueType::Date),
        ("l_shipinstruct", ValueType::Str),
        ("l_shipmode", ValueType::Str),
        ("l_comment", ValueType::Str),
    ]))
}

const INSTRUCTS: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];
const MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

/// Generate lineitem rows. Dimension values are uniform over their TPC-H
/// domains and *not* correlated with row position — the even scatter the
/// paper's §5.4 analysis hinges on.
pub fn generate_lineitem(cfg: &TpchConfig) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let (ship_lo, ship_hi) = (ship_min_day(), ship_max_day());
    (0..cfg.rows)
        .map(|i| {
            let quantity = rng.random_range(1..=50) as f64;
            let price = round2(rng.random_range(900.0..105_000.0) / 100.0) * quantity;
            let discount = rng.random_range(0..=10) as f64 / 100.0;
            let ship = rng.random_range(ship_lo..=ship_hi);
            let rf = match rng.random_range(0..3) {
                0 => "R",
                1 => "A",
                _ => "N",
            };
            vec![
                Value::Int((i / 4 + 1) as i64),
                Value::Int(rng.random_range(1..200_000)),
                Value::Int(rng.random_range(1..10_000)),
                Value::Int((i % 4 + 1) as i64),
                Value::Float(quantity),
                Value::Float(round2(price)),
                Value::Float(discount),
                Value::Float(rng.random_range(0..=8) as f64 / 100.0),
                Value::Str(rf.to_owned()),
                Value::Str(if rng.random_bool(0.5) { "O" } else { "F" }.to_owned()),
                Value::Date(ship),
                Value::Date(ship + rng.random_range(-30..60)),
                Value::Date(ship + rng.random_range(1..30)),
                Value::Str(INSTRUCTS[rng.random_range(0..INSTRUCTS.len())].to_owned()),
                Value::Str(MODES[rng.random_range(0..MODES.len())].to_owned()),
                Value::Str(format!("comment-{i:012}")),
            ]
        })
        .collect()
}

/// The revenue aggregate of Q6: `sum(l_extendedprice * l_discount)` — an
/// additive UDF, exactly the paper's pre-compute example.
pub fn q6_revenue_agg() -> AggFunc {
    AggFunc::Udf(Arc::new(SumProductUdf {
        a: "l_extendedprice".into(),
        b: "l_discount".into(),
    }))
}

/// TPC-H Q6 with its standard substitution parameters:
/// shipdate in `[year-01-01, year+1-01-01)`, discount in
/// `[d - 0.01, d + 0.01]`, quantity `< max_quantity`.
pub fn q6(year: i64, discount: f64, max_quantity: f64) -> Query {
    let y0 = parse_date(&format!("{year}-01-01")).expect("valid year");
    let y1 = parse_date(&format!("{}-01-01", year + 1)).expect("valid year");
    Query::Aggregate {
        aggs: vec![q6_revenue_agg()],
        predicate: Predicate::all()
            .and(
                "l_shipdate",
                ColumnRange::half_open(Value::Date(y0), Value::Date(y1)),
            )
            .and(
                "l_discount",
                ColumnRange {
                    low: std::ops::Bound::Included(Value::Float(round2(discount - 0.01))),
                    high: std::ops::Bound::Included(Value::Float(round2(discount + 0.01))),
                },
            )
            .and(
                "l_quantity",
                ColumnRange {
                    low: std::ops::Bound::Unbounded,
                    high: std::ops::Bound::Excluded(Value::Float(max_quantity)),
                },
            ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = TpchConfig {
            rows: 500,
            seed: 1,
        };
        assert_eq!(generate_lineitem(&cfg), generate_lineitem(&cfg));
        assert_eq!(generate_lineitem(&cfg).len(), 500);
    }

    #[test]
    fn domains_match_tpch() {
        let cfg = TpchConfig {
            rows: 2000,
            seed: 2,
        };
        let rows = generate_lineitem(&cfg);
        let schema = lineitem_schema();
        assert_eq!(rows[0].len(), schema.len());
        for r in &rows {
            let q = r[4].as_f64().unwrap();
            assert!((1.0..=50.0).contains(&q));
            let d = r[6].as_f64().unwrap();
            assert!((0.0..=0.10).contains(&d));
            let ship = r[10].as_i64().unwrap();
            assert!((ship_min_day()..=ship_max_day()).contains(&ship));
        }
    }

    #[test]
    fn values_are_scattered_not_clustered() {
        // Unlike meter data, sorting position must not predict the
        // dimension values: compare discount histograms of the first and
        // last quartile.
        let cfg = TpchConfig {
            rows: 8000,
            seed: 3,
        };
        let rows = generate_lineitem(&cfg);
        let quarter = rows.len() / 4;
        let hist = |slice: &[Row]| {
            let mut h = [0u32; 11];
            for r in slice {
                h[(r[6].as_f64().unwrap() * 100.0).round() as usize] += 1;
            }
            h
        };
        let first = hist(&rows[..quarter]);
        let last = hist(&rows[rows.len() - quarter..]);
        for d in 0..11 {
            let (a, b) = (first[d] as f64, last[d] as f64);
            assert!(
                (a - b).abs() / (a + b).max(1.0) < 0.35,
                "discount {d} skewed: {a} vs {b}"
            );
        }
    }

    #[test]
    fn q6_query_shape() {
        let q = q6(1994, 0.06, 24.0);
        let p = q.predicate();
        assert!(p.range_of("l_shipdate").is_some());
        assert!(p.range_of("l_discount").is_some());
        assert!(p.range_of("l_quantity").is_some());
        let d = p.range_of("l_discount").unwrap();
        assert!(d.contains(&Value::Float(0.05)));
        assert!(d.contains(&Value::Float(0.07)));
        assert!(!d.contains(&Value::Float(0.08)));
        let qty = p.range_of("l_quantity").unwrap();
        assert!(qty.contains(&Value::Float(1.0)));
        assert!(!qty.contains(&Value::Float(24.0)));
    }
}
