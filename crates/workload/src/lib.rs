//! # dgf-workload
//!
//! Workload generation for the DGFIndex evaluation:
//!
//! * [`meter`] — the smart-grid dataset of §5.2–§5.3 (17-field records,
//!   11 regions, 30 time-ordered days) plus the archive `user_info`
//!   table;
//! * [`tpch`] — a TPC-H `lineitem` generator with evenly scattered
//!   dimension values and query Q6 (§5.4);
//! * [`queries`] — the paper's query Listings 4–7 at point / 5 % / 12 %
//!   selectivity.
//!
//! Everything is seeded and deterministic, so benchmark runs are
//! reproducible record for record.

#![warn(missing_docs)]

pub mod meter;
pub mod queries;
pub mod tpch;

pub use meter::{
    generate_meter_data, generate_user_info, meter_schema, stream_meter_data, user_info_schema,
    MeterConfig, MeterStream,
};
pub use queries::{
    aggregation_query, group_by_query, join_query, meter_ranges, partial_query, MeterRanges,
    Selectivity,
};
pub use tpch::{generate_lineitem, lineitem_schema, q6, q6_revenue_agg, TpchConfig};
