//! Selectivity-controlled query builders for the meter workload.
//!
//! The paper evaluates every engine at three selectivities: **point**,
//! **5 %**, and **12 %** (§5.2: "In each kind of query, we change the
//! selectivity"). The queries constrain `userId`, `regionId`, and `time`
//! (Listings 4–6); the partial query (Listing 7) drops the `userId`
//! condition.

use dgf_common::Value;
use dgf_query::{AggFunc, ColumnRange, Predicate, Query};

use crate::meter::MeterConfig;

/// A query selectivity target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Selectivity {
    /// One (user, region, day) point — the paper's "point query".
    Point,
    /// A fraction of the table, e.g. `0.05` or `0.12`.
    Frac(f64),
}

impl Selectivity {
    /// The paper's three settings.
    pub fn paper_settings() -> [Selectivity; 3] {
        [
            Selectivity::Point,
            Selectivity::Frac(0.05),
            Selectivity::Frac(0.12),
        ]
    }

    /// Label used in bench tables.
    pub fn label(&self) -> String {
        match self {
            Selectivity::Point => "point".to_owned(),
            Selectivity::Frac(f) => format!("{:.0}%", f * 100.0),
        }
    }
}

/// The `(userId, time)` ranges hitting a target selectivity.
///
/// Regions are left unconstrained-in-range (the paper's `regionId>r1 and
/// regionId<r2` spans most regions); selectivity is split between the
/// time window (≈ √sel of the days) and the user range (the rest), so
/// both dimensions materially constrain the query, as in the paper.
pub fn meter_ranges(cfg: &MeterConfig, sel: Selectivity) -> MeterRanges {
    match sel {
        Selectivity::Point => MeterRanges {
            user_lo: cfg.users as i64 / 2,
            user_hi: cfg.users as i64 / 2 + 1,
            day_lo: cfg.start_day + cfg.days as i64 / 2,
            day_hi: cfg.start_day + cfg.days as i64 / 2 + 1,
            point: true,
        },
        Selectivity::Frac(f) => {
            let f = f.clamp(0.0, 1.0);
            let day_frac = f.sqrt();
            let days = ((cfg.days as f64 * day_frac).ceil() as i64).clamp(1, cfg.days as i64);
            let user_frac = (f / (days as f64 / cfg.days as f64)).min(1.0);
            let users = ((cfg.users as f64 * user_frac).round() as i64).clamp(1, cfg.users as i64);
            // Center both windows so they are representative.
            let user_lo = (cfg.users as i64 - users) / 2;
            let day_lo = cfg.start_day + (cfg.days as i64 - days) / 2;
            MeterRanges {
                user_lo,
                user_hi: user_lo + users,
                day_lo,
                day_hi: day_lo + days,
                point: false,
            }
        }
    }
}

/// Concrete ranges for one selectivity setting.
#[derive(Debug, Clone, Copy)]
pub struct MeterRanges {
    /// Inclusive lower user id.
    pub user_lo: i64,
    /// Exclusive upper user id.
    pub user_hi: i64,
    /// Inclusive first day.
    pub day_lo: i64,
    /// Exclusive last day.
    pub day_hi: i64,
    /// Whether this is the point setting.
    pub point: bool,
}

impl MeterRanges {
    /// The MDRQ predicate over (userId, regionId, time).
    pub fn predicate(&self, cfg: &MeterConfig) -> Predicate {
        Predicate::all()
            .and(
                "user_id",
                ColumnRange::half_open(Value::Int(self.user_lo), Value::Int(self.user_hi)),
            )
            .and(
                "region_id",
                // The paper's regionId>r1 AND regionId<r2: nearly all regions.
                ColumnRange::half_open(Value::Int(0), Value::Int(cfg.regions as i64)),
            )
            .and(
                "ts",
                ColumnRange::half_open(Value::Date(self.day_lo), Value::Date(self.day_hi)),
            )
    }

    /// Exact fraction of rows selected (uniform users × days).
    pub fn exact_selectivity(&self, cfg: &MeterConfig) -> f64 {
        let users = (self.user_hi - self.user_lo).max(0) as f64 / cfg.users as f64;
        let days = (self.day_hi - self.day_lo).max(0) as f64 / cfg.days as f64;
        users * days
    }
}

/// Listing 4: `SELECT sum(powerConsumed) … WHERE region ∧ user ∧ time`.
pub fn aggregation_query(cfg: &MeterConfig, sel: Selectivity) -> Query {
    Query::Aggregate {
        aggs: vec![AggFunc::Sum("power_consumed".into())],
        predicate: meter_ranges(cfg, sel).predicate(cfg),
    }
}

/// Listing 5: `SELECT time, sum(powerConsumed) … GROUP BY time`.
pub fn group_by_query(cfg: &MeterConfig, sel: Selectivity) -> Query {
    Query::GroupBy {
        key: "ts".into(),
        aggs: vec![AggFunc::Sum("power_consumed".into())],
        predicate: meter_ranges(cfg, sel).predicate(cfg),
    }
}

/// Listing 6: `SELECT t2.userName, t1.powerConsumed FROM meterdata JOIN
/// userInfo …`.
pub fn join_query(cfg: &MeterConfig, sel: Selectivity) -> Query {
    Query::Join {
        left_key: "user_id".into(),
        right_key: "user_id".into(),
        left_project: vec!["power_consumed".into()],
        right_project: vec!["user_name".into()],
        predicate: meter_ranges(cfg, sel).predicate(cfg),
    }
}

/// Listing 7: the partially-specified query — `regionId = r AND time = d`
/// with no userId condition.
pub fn partial_query(cfg: &MeterConfig) -> Query {
    Query::Aggregate {
        aggs: vec![AggFunc::Sum("power_consumed".into())],
        predicate: Predicate::all()
            .and("region_id", ColumnRange::eq(Value::Int(cfg.regions as i64 - 1)))
            .and(
                "ts",
                ColumnRange::eq(Value::Date(cfg.start_day + cfg.days as i64 - 1)),
            ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meter::{generate_meter_data, meter_schema};

    fn cfg() -> MeterConfig {
        MeterConfig {
            users: 400,
            days: 30,
            ..MeterConfig::default()
        }
    }

    #[test]
    fn fractional_selectivity_is_close_to_target() {
        let cfg = cfg();
        for target in [0.05, 0.12, 0.3] {
            let r = meter_ranges(&cfg, Selectivity::Frac(target));
            let got = r.exact_selectivity(&cfg);
            assert!(
                (got - target).abs() / target < 0.25,
                "target {target}, got {got}"
            );
        }
    }

    #[test]
    fn measured_selectivity_matches_computed() {
        let cfg = cfg();
        let rows = generate_meter_data(&cfg);
        let schema = meter_schema();
        let r = meter_ranges(&cfg, Selectivity::Frac(0.12));
        let bound = r.predicate(&cfg).bind(&schema).unwrap();
        let hits = rows.iter().filter(|row| bound.matches(row)).count() as f64;
        let measured = hits / rows.len() as f64;
        assert!(
            (measured - r.exact_selectivity(&cfg)).abs() < 1e-9,
            "measured {measured}"
        );
    }

    #[test]
    fn point_query_selects_one_row_per_reading() {
        let cfg = cfg();
        let rows = generate_meter_data(&cfg);
        let schema = meter_schema();
        let r = meter_ranges(&cfg, Selectivity::Point);
        assert!(r.point);
        let bound = r.predicate(&cfg).bind(&schema).unwrap();
        assert_eq!(rows.iter().filter(|row| bound.matches(row)).count(), 1);
    }

    #[test]
    fn query_builders_produce_expected_shapes() {
        let cfg = cfg();
        assert!(aggregation_query(&cfg, Selectivity::Point).is_aggregation());
        assert!(matches!(
            group_by_query(&cfg, Selectivity::Frac(0.05)),
            Query::GroupBy { .. }
        ));
        assert!(matches!(
            join_query(&cfg, Selectivity::Frac(0.05)),
            Query::Join { .. }
        ));
        let partial = partial_query(&cfg);
        assert!(partial.predicate().range_of("user_id").is_none());
        assert!(partial.predicate().range_of("ts").is_some());
    }

    #[test]
    fn labels() {
        assert_eq!(Selectivity::Point.label(), "point");
        assert_eq!(Selectivity::Frac(0.05).label(), "5%");
        assert_eq!(Selectivity::paper_settings().len(), 3);
    }
}
