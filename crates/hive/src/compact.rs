//! Hive's Compact Index (paper §2.2, HIVE-417).
//!
//! The index is itself a Hive table with one row per **combination of
//! indexed dimension values per data file**, carrying the file name and
//! the array of block offsets where that combination occurs (Table 1 /
//! Listing 1). Query processing scans the whole index table first, then
//! keeps only the base-table splits containing a recorded offset.
//!
//! Its two structural weaknesses, which the evaluation exposes, fall out
//! of this design with no extra modeling:
//!
//! 1. With high-cardinality dimensions the index table approaches the
//!    base table in size (the paper's 821 GB 3-D index), and the mandatory
//!    index-table scan dominates.
//! 2. Filtering is split-granular: if every split contains a matching
//!    offset (values scattered evenly, as in TPC-H), nothing is filtered
//!    and performance is *worse* than a plain scan.

use std::collections::HashMap;
use std::sync::Arc;

use dgf_common::{DgfError, Result, Stopwatch, Value};
use dgf_format::{FileFormat, RcReader, TextReader, TextWriter};
use dgf_query::{Engine, EngineRun, Predicate, Query, RunStats};
use dgf_storage::FileSplit;

use crate::context::{HiveContext, TableDesc, TableRef};
use crate::index_common::{
    compact_index_schema, dims_key, dims_schema, format_offsets, parse_dims_key, parse_offsets,
    BuildReport,
};
use crate::scan::{execute, ScanInput};

/// A built Compact Index over one base table.
pub struct CompactIndex {
    ctx: Arc<HiveContext>,
    base: TableRef,
    dims: Vec<String>,
    index_table: TableRef,
}

impl CompactIndex {
    /// Build a Compact Index on `dims` of `base` via a MapReduce job
    /// equivalent to the paper's Listing 1 (`GROUP BY dims,
    /// INPUT_FILE_NAME` + `collect_set(BLOCK_OFFSET_INSIDE_FILE)`).
    pub fn build(
        ctx: Arc<HiveContext>,
        base: TableRef,
        dims: Vec<String>,
        index_name: &str,
    ) -> Result<(CompactIndex, BuildReport)> {
        let watch = Stopwatch::start();
        let dims_s = Arc::new(dims_schema(&base.schema, &dims)?);
        let index_schema = Arc::new(compact_index_schema(&base.schema, &dims)?);
        let index_table =
            ctx.create_table(index_name, index_schema, FileFormat::Text)?;

        let dim_idx: Vec<usize> = dims
            .iter()
            .map(|d| base.schema.index_of(d))
            .collect::<Result<_>>()?;

        let splits = ctx.table_splits(&base);
        let num_reducers = ctx.engine.threads().min(splits.len()).max(1);
        let ctx2 = Arc::clone(&ctx);
        let base2 = Arc::clone(&base);
        let index_loc = index_table.location.clone();

        let job = ctx.engine.map_reduce(
            splits,
            num_reducers,
            // Map: emit (dims ++ filename) -> offset.
            &|_, split: FileSplit, e| {
                match base2.format {
                    FileFormat::Text => {
                        let mut r =
                            TextReader::open(&ctx2.hdfs, base2.schema.clone(), &split)?;
                        while let Some((off, row)) = r.next_with_offset()? {
                            let dvals: Vec<Value> =
                                dim_idx.iter().map(|i| row[*i].clone()).collect();
                            e.emit(dims_key(&dvals, &split.path), off);
                        }
                    }
                    FileFormat::RcFile => {
                        let mut r = RcReader::open(&ctx2.hdfs, base2.schema.clone(), &split)?
                            .with_projection(dim_idx.clone());
                        while let Some((off, row)) = r.next_with_offset()? {
                            let dvals: Vec<Value> =
                                dim_idx.iter().map(|i| row[*i].clone()).collect();
                            e.emit(dims_key(&dvals, &split.path), off);
                        }
                    }
                }
                Ok(())
            },
            // Combine: collect_set semantics — duplicates collapse early.
            Some(&|_, mut offs: Vec<u64>| {
                offs.sort_unstable();
                offs.dedup();
                Ok(offs)
            }),
            // Reduce: write one index file per reducer.
            &|tid, groups| {
                let path = format!("{index_loc}/part-{tid:05}");
                let mut w = TextWriter::create(&ctx2.hdfs, &path)?;
                let mut entries = 0u64;
                for (key, mut offs) in groups {
                    offs.sort_unstable();
                    offs.dedup();
                    let (_, _) = parse_dims_key(&key, &dims_s)?; // validate
                    let (dims_part, file) = key
                        .split_once(crate::index_common::KEY_SEP)
                        .expect("validated above");
                    w.write_line(&format!(
                        "{dims_part}|{file}|{}",
                        format_offsets(&offs)
                    ))?;
                    entries += 1;
                }
                w.close()?;
                Ok(entries)
            },
        )?;

        let report = BuildReport {
            build_time: watch.elapsed(),
            index_size_bytes: ctx.table_size_bytes(&index_table),
            index_entries: job.outputs.iter().sum(),
        };
        Ok((
            CompactIndex {
                ctx,
                base,
                dims,
                index_table,
            },
            report,
        ))
    }

    /// The indexed dimensions.
    pub fn dims(&self) -> &[String] {
        &self.dims
    }

    /// The index table (a regular Hive table).
    pub fn index_table(&self) -> &TableRef {
        &self.index_table
    }

    /// Resolve a predicate to the base-table splits that must be read:
    /// scan the index table, keep matching entries, keep splits containing
    /// a recorded offset.
    pub fn plan(&self, predicate: &Predicate) -> Result<CompactPlan> {
        let watch = Stopwatch::start();
        let before = self.ctx.hdfs.stats().snapshot();

        // Only conditions on indexed dimensions filter index entries; the
        // rest of the predicate is applied when reading base data.
        let idx_pred = {
            let keep: Vec<&str> = self.dims.iter().map(|s| s.as_str()).collect();
            predicate.project_columns(&keep)
        };
        let bound = idx_pred.bind(&self.index_table.schema)?;
        let file_col = self.dims.len();
        let off_col = self.dims.len() + 1;

        // Hive writes matching (file, offsets) pairs to a temporary file
        // from a scan over the index table; this is that scan.
        let ctx = &self.ctx;
        let index_table = &self.index_table;
        let job = ctx.engine.map_only(
            ctx.table_splits(index_table),
            &|_, split: FileSplit| {
                let mut r = TextReader::open(&ctx.hdfs, index_table.schema.clone(), &split)?;
                let mut hits: Vec<(String, Vec<u64>)> = Vec::new();
                while let Some(row) = {
                    use dgf_format::RecordReader;
                    r.next_row()?
                } {
                    if bound.matches(&row) {
                        let file = row[file_col].as_str()?.to_owned();
                        let offs = parse_offsets(&row[off_col])?;
                        hits.push((file, offs));
                    }
                }
                Ok(hits)
            },
        )?;

        let mut per_file: HashMap<String, Vec<u64>> = HashMap::new();
        let mut matched_entries = 0u64;
        for hits in job.outputs {
            for (file, offs) in hits {
                matched_entries += 1;
                per_file.entry(file).or_default().extend(offs);
            }
        }

        // getSplits: keep base splits containing any recorded offset.
        let all_splits = self.ctx.table_splits(&self.base);
        let splits_total = all_splits.len() as u64;
        let mut chosen = Vec::new();
        for split in all_splits {
            if let Some(offs) = per_file.get(&split.path) {
                if offs.iter().any(|o| *o >= split.start && *o < split.end()) {
                    chosen.push(split);
                }
            }
        }

        let delta = self.ctx.hdfs.stats().snapshot().since(&before);
        Ok(CompactPlan {
            chosen,
            splits_total,
            matched_entries,
            index_records_read: delta.records_read,
            index_time: watch.elapsed(),
        })
    }
}

/// Result of Compact Index planning.
#[derive(Debug, Clone)]
pub struct CompactPlan {
    /// Base-table splits that must be scanned.
    pub chosen: Vec<FileSplit>,
    /// All base-table splits.
    pub splits_total: u64,
    /// Index entries matching the predicate.
    pub matched_entries: u64,
    /// Index-table rows scanned.
    pub index_records_read: u64,
    /// Time spent in index scan + split selection.
    pub index_time: std::time::Duration,
}

/// The Compact Index query engine.
pub struct CompactEngine {
    index: Arc<CompactIndex>,
    right: Option<TableRef>,
}

impl CompactEngine {
    /// An engine over a built index.
    pub fn new(index: Arc<CompactIndex>) -> Self {
        CompactEngine { index, right: None }
    }

    /// Attach the dimension table used by join queries.
    pub fn with_right(mut self, right: TableRef) -> Self {
        self.right = Some(right);
        self
    }
}

impl Engine for CompactEngine {
    fn name(&self) -> String {
        format!("Compact-{}D", self.index.dims.len())
    }

    fn run(&self, query: &Query) -> Result<EngineRun> {
        let plan = self.index.plan(query.predicate())?;
        let ctx = &self.index.ctx;
        let before = ctx.hdfs.stats().snapshot();
        let watch = Stopwatch::start();
        let splits_read = plan.chosen.len() as u64;
        let inputs = plan.chosen.into_iter().map(ScanInput::FullSplit).collect();
        let result = execute(
            ctx,
            &self.index.base,
            query,
            self.right.as_deref(),
            inputs,
        )?;
        let delta = ctx.hdfs.stats().snapshot().since(&before);
        Ok(EngineRun {
            result,
            stats: RunStats {
                index_time: plan.index_time,
                data_time: watch.elapsed(),
                index_records_read: plan.index_records_read,
                data_records_read: delta.records_read,
                data_bytes_read: delta.bytes_read,
                splits_total: plan.splits_total,
                splits_read,
                ..RunStats::default()
            },
        })
    }
}

/// Error type helper: building an index on a missing column fails early.
pub fn validate_dims(base: &TableDesc, dims: &[String]) -> Result<()> {
    if dims.is_empty() {
        return Err(DgfError::Index("an index needs at least one dimension".into()));
    }
    for d in dims {
        base.schema.index_of(d)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_common::{Row, Schema, TempDir, ValueType};
    use dgf_mapreduce::MrEngine;
    use dgf_query::{AggFunc, ColumnRange, QueryResult};
    use dgf_storage::{HdfsConfig, SimHdfs};

    /// Time-sorted data (like the paper's meter data): region and day have
    /// few distinct values, and equal days are contiguous.
    fn setup(format: FileFormat) -> (TempDir, Arc<HiveContext>, TableRef) {
        let t = TempDir::new("compact").unwrap();
        let h = SimHdfs::new(
            t.path(),
            HdfsConfig {
                block_size: 2048,
                replication: 1,
            },
        )
        .unwrap();
        let ctx = HiveContext::new(h, MrEngine::new(4));
        let schema = Arc::new(Schema::from_pairs(&[
            ("user_id", ValueType::Int),
            ("region_id", ValueType::Int),
            ("day", ValueType::Int),
            ("power", ValueType::Float),
        ]));
        let tab = ctx.create_table("meter", schema, format).unwrap();
        let mut rows: Vec<Row> = Vec::new();
        for day in 0..10i64 {
            for user in 0..100i64 {
                rows.push(vec![
                    Value::Int(user),
                    Value::Int(user % 5),
                    Value::Int(day),
                    Value::Float((user + day) as f64),
                ]);
            }
        }
        ctx.load_rows(&tab, &rows, 4).unwrap();
        (t, ctx, tab)
    }

    fn day_query(d0: i64, d1: i64) -> Query {
        Query::Aggregate {
            aggs: vec![AggFunc::Count, AggFunc::Sum("power".into())],
            predicate: Predicate::all()
                .and("day", ColumnRange::half_open(Value::Int(d0), Value::Int(d1))),
        }
    }

    #[test]
    fn build_reports_sane_numbers() {
        let (_t, ctx, tab) = setup(FileFormat::Text);
        let (_idx, report) = CompactIndex::build(
            Arc::clone(&ctx),
            tab,
            vec!["region_id".into(), "day".into()],
            "idx_rd",
        )
        .unwrap();
        // 5 regions x 10 days scattered over 4 files: at most 200 combos,
        // at least 50.
        assert!(report.index_entries >= 50 && report.index_entries <= 200);
        assert!(report.index_size_bytes > 0);
    }

    #[test]
    fn query_matches_scan_and_filters_splits() {
        let (_t, ctx, tab) = setup(FileFormat::Text);
        let q = day_query(2, 4);
        let scan = crate::scan::ScanEngine::new(Arc::clone(&ctx), Arc::clone(&tab))
            .run(&q)
            .unwrap();
        let (idx, _) = CompactIndex::build(
            Arc::clone(&ctx),
            tab,
            vec!["region_id".into(), "day".into()],
            "idx_rd",
        )
        .unwrap();
        let run = CompactEngine::new(Arc::new(idx)).run(&q).unwrap();
        assert!(run.result.approx_eq(&scan.result, 1e-9));
        // Time-sorted data: the 2-day range lives in a strict subset of
        // splits.
        assert!(run.stats.splits_read < run.stats.splits_total);
        assert!(run.stats.data_records_read < scan.stats.data_records_read);
        assert!(run.stats.index_records_read > 0);
    }

    #[test]
    fn scattered_dimension_filters_nothing() {
        // user_id % 5 == region: every split has every region, so a region
        // query keeps all splits — the paper's TPC-H failure mode.
        let (_t, ctx, tab) = setup(FileFormat::Text);
        let (idx, _) = CompactIndex::build(
            Arc::clone(&ctx),
            Arc::clone(&tab),
            vec!["region_id".into()],
            "idx_r",
        )
        .unwrap();
        let q = Query::Aggregate {
            aggs: vec![AggFunc::Count],
            predicate: Predicate::all().and("region_id", ColumnRange::eq(Value::Int(3))),
        };
        let run = CompactEngine::new(Arc::new(idx)).run(&q).unwrap();
        assert_eq!(run.result.into_scalars()[0], Value::Int(200));
        assert_eq!(run.stats.splits_read, run.stats.splits_total);
    }

    #[test]
    fn rcfile_base_table_uses_group_offsets() {
        let (_t, ctx, tab) = setup(FileFormat::RcFile);
        let q = day_query(0, 3);
        let scan = crate::scan::ScanEngine::new(Arc::clone(&ctx), Arc::clone(&tab))
            .run(&q)
            .unwrap();
        let (idx, report) = CompactIndex::build(
            Arc::clone(&ctx),
            tab,
            vec!["region_id".into(), "day".into()],
            "idx_rd",
        )
        .unwrap();
        // Group offsets dedupe: entries bounded by combos x groups.
        assert!(report.index_entries > 0);
        let run = CompactEngine::new(Arc::new(idx)).run(&q).unwrap();
        assert!(run.result.approx_eq(&scan.result, 1e-9));
    }

    #[test]
    fn predicate_on_unindexed_column_is_still_exact() {
        let (_t, ctx, tab) = setup(FileFormat::Text);
        let (idx, _) = CompactIndex::build(
            Arc::clone(&ctx),
            Arc::clone(&tab),
            vec!["day".into()],
            "idx_d",
        )
        .unwrap();
        // day is indexed, user_id is not: index filters splits by day, the
        // full predicate still applies to rows.
        let q = Query::Aggregate {
            aggs: vec![AggFunc::Count],
            predicate: Predicate::all()
                .and("day", ColumnRange::eq(Value::Int(5)))
                .and("user_id", ColumnRange::half_open(Value::Int(0), Value::Int(10))),
        };
        let run = CompactEngine::new(Arc::new(idx)).run(&q).unwrap();
        assert_eq!(run.result.into_scalars()[0], Value::Int(10));
    }

    #[test]
    fn empty_result_when_nothing_matches() {
        let (_t, ctx, tab) = setup(FileFormat::Text);
        let (idx, _) = CompactIndex::build(
            Arc::clone(&ctx),
            Arc::clone(&tab),
            vec!["day".into()],
            "idx_d",
        )
        .unwrap();
        let run = CompactEngine::new(Arc::new(idx)).run(&day_query(50, 60)).unwrap();
        assert_eq!(run.stats.splits_read, 0);
        assert_eq!(run.stats.data_records_read, 0);
        match run.result {
            QueryResult::Scalars(v) => assert_eq!(v[0], Value::Int(0)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn validate_dims_errors() {
        let (_t, ctx, tab) = setup(FileFormat::Text);
        assert!(validate_dims(&tab, &[]).is_err());
        assert!(validate_dims(&tab, &["nope".into()]).is_err());
        assert!(validate_dims(&tab, &["day".into()]).is_ok());
        drop(ctx);
    }
}
