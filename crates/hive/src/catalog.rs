//! Catalog persistence: save/restore the metastore across processes.
//!
//! Hive keeps its metastore in an external RDBMS; this miniature keeps a
//! plain-text catalog file at `/warehouse/_catalog` in the simulated
//! cluster. Together with [`SimHdfs::reopen`](dgf_storage::SimHdfs) it
//! makes a warehouse directory fully restartable — the basis of the
//! `dgf` command-line tool.
//!
//! Format (one record per line, `\x1F`-separated fields):
//!
//! ```text
//! table <name> <schema> <format> <location> <rows_per_group>
//! index <name> <base_table> <agg list text>
//! ```

use std::io::{BufRead, BufReader};
use std::sync::Arc;

use dgf_common::{DgfError, Result, Schema};
use dgf_format::{FileFormat, TextWriter};
use dgf_mapreduce::MrEngine;
use dgf_storage::HdfsRef;

use crate::context::{HiveContext, TableDesc};

/// Catalog file location inside the warehouse namespace.
pub const CATALOG_PATH: &str = "/warehouse/_catalog";

const SEP: char = '\u{1F}';

/// A persisted DGFIndex registration (enough to reattach with
/// `DgfIndex::open`: the policy itself lives in the index's KV store).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexEntry {
    /// Index name (`<name>_data` is the reorganized table).
    pub name: String,
    /// The base table name.
    pub base_table: String,
    /// The pre-computed aggregate list in `parse_aggs` syntax.
    pub aggs_text: String,
}

impl HiveContext {
    /// Write the current table set (and the given index registrations)
    /// to the catalog file, replacing any previous catalog.
    pub fn save_catalog(&self, indexes: &[IndexEntry]) -> Result<()> {
        self.hdfs.delete_file(CATALOG_PATH)?;
        let mut w = TextWriter::create(&self.hdfs, CATALOG_PATH)?;
        let mut tables: Vec<TableDesc> = self.tables_snapshot();
        tables.sort_by(|a, b| a.name.cmp(&b.name));
        for t in tables {
            let format = match t.format {
                FileFormat::Text => "text",
                FileFormat::RcFile => "rcfile",
            };
            w.write_line(&format!(
                "table{SEP}{}{SEP}{}{SEP}{format}{SEP}{}{SEP}{}",
                t.name,
                t.schema.to_parse_string(),
                t.location,
                t.rows_per_group
            ))?;
        }
        for idx in indexes {
            w.write_line(&format!(
                "index{SEP}{}{SEP}{}{SEP}{}",
                idx.name, idx.base_table, idx.aggs_text
            ))?;
        }
        w.close()?;
        Ok(())
    }

    /// Restore a context (and index registrations) from the catalog file
    /// of a reopened cluster.
    pub fn load_catalog(
        hdfs: HdfsRef,
        engine: MrEngine,
    ) -> Result<(Arc<HiveContext>, Vec<IndexEntry>)> {
        let ctx = HiveContext::new(hdfs, engine);
        let mut indexes = Vec::new();
        if !ctx.hdfs.file_exists(CATALOG_PATH) {
            return Ok((ctx, indexes));
        }
        let reader = BufReader::new(ctx.hdfs.open_reader(CATALOG_PATH)?);
        for line in reader.lines() {
            let line = line?;
            if line.is_empty() {
                continue;
            }
            let parts: Vec<&str> = line.split(SEP).collect();
            match parts.first().copied() {
                Some("table") => {
                    if parts.len() != 6 {
                        return Err(DgfError::Corrupt(format!("bad catalog line {line:?}")));
                    }
                    let schema = Arc::new(Schema::parse(parts[2])?);
                    let format = match parts[3] {
                        "text" => FileFormat::Text,
                        "rcfile" => FileFormat::RcFile,
                        other => {
                            return Err(DgfError::Corrupt(format!(
                                "unknown table format {other:?}"
                            )))
                        }
                    };
                    let rows_per_group: usize = parts[5]
                        .parse()
                        .map_err(|_| DgfError::Corrupt("bad rows_per_group".into()))?;
                    ctx.register_restored_table(TableDesc {
                        name: parts[1].to_owned(),
                        schema,
                        format,
                        location: parts[4].to_owned(),
                        rows_per_group,
                    })?;
                }
                Some("index") => {
                    if parts.len() != 4 {
                        return Err(DgfError::Corrupt(format!("bad catalog line {line:?}")));
                    }
                    indexes.push(IndexEntry {
                        name: parts[1].to_owned(),
                        base_table: parts[2].to_owned(),
                        aggs_text: parts[3].to_owned(),
                    });
                }
                other => {
                    return Err(DgfError::Corrupt(format!(
                        "unknown catalog record kind {other:?}"
                    )))
                }
            }
        }
        Ok((ctx, indexes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_common::{TempDir, Value, ValueType};
    use dgf_storage::{HdfsConfig, SimHdfs};

    #[test]
    fn catalog_round_trips_tables_and_indexes() {
        let t = TempDir::new("catalog").unwrap();
        let cfg = HdfsConfig {
            block_size: 4096,
            replication: 1,
        };
        {
            let hdfs = SimHdfs::new(t.path(), cfg.clone()).unwrap();
            let ctx = HiveContext::new(hdfs, MrEngine::new(2));
            let schema = Arc::new(Schema::from_pairs(&[
                ("user_id", ValueType::Int),
                ("power", ValueType::Float),
            ]));
            let tab = ctx
                .create_table("meter", schema, FileFormat::Text)
                .unwrap();
            ctx.load_rows(
                &tab,
                &[vec![Value::Int(1), Value::Float(2.0)]],
                1,
            )
            .unwrap();
            ctx.save_catalog(&[IndexEntry {
                name: "dgf_meter".into(),
                base_table: "meter".into(),
                aggs_text: "sum(power), count(*)".into(),
            }])
            .unwrap();
        }
        // Restart.
        let hdfs = SimHdfs::reopen(t.path(), cfg).unwrap();
        let (ctx, indexes) = HiveContext::load_catalog(hdfs, MrEngine::new(2)).unwrap();
        let tab = ctx.table("meter").unwrap();
        assert_eq!(tab.schema.len(), 2);
        assert_eq!(tab.format, FileFormat::Text);
        let rows = ctx.read_all(&tab).unwrap();
        assert_eq!(rows, vec![vec![Value::Int(1), Value::Float(2.0)]]);
        assert_eq!(indexes.len(), 1);
        assert_eq!(indexes[0].base_table, "meter");
    }

    #[test]
    fn missing_catalog_is_empty() {
        let t = TempDir::new("catalog2").unwrap();
        let hdfs = SimHdfs::open(t.path()).unwrap();
        let (ctx, indexes) = HiveContext::load_catalog(hdfs, MrEngine::new(2)).unwrap();
        assert!(indexes.is_empty());
        assert!(ctx.table("anything").is_err());
    }

    #[test]
    fn saving_twice_replaces() {
        let t = TempDir::new("catalog3").unwrap();
        let hdfs = SimHdfs::open(t.path()).unwrap();
        let ctx = HiveContext::new(hdfs, MrEngine::new(2));
        let schema = Arc::new(Schema::from_pairs(&[("a", ValueType::Int)]));
        ctx.create_table("t1", schema, FileFormat::Text).unwrap();
        ctx.save_catalog(&[]).unwrap();
        ctx.save_catalog(&[]).unwrap(); // overwrite must not fail
    }
}
