//! Hive's Aggregate Index (paper §2.2, HIVE-1694).
//!
//! An Aggregate Index is a Compact Index whose rows carry pre-computed
//! aggregations (upstream Hive supports only `count`). Using "index as
//! data", an eligible `GROUP BY` query is rewritten into a scan of the
//! much smaller index table. The restrictions are faithful to the paper:
//! every column referenced in SELECT/WHERE/GROUP BY must be an indexed
//! dimension and the aggregates must be derivable from the pre-computed
//! list — "in practice, there are very few use cases that can meet its
//! restrictions" (§6).

use std::sync::Arc;

use dgf_common::{DgfError, Result, Stopwatch, Value, ValueType};
use dgf_format::{FileFormat, RcReader, TextReader, TextWriter};
use dgf_query::{AggFunc, Engine, EngineRun, Query, QueryResult, RowSink, RunStats};
use dgf_storage::FileSplit;

use crate::context::{HiveContext, TableRef};
use crate::index_common::{dims_key, dims_schema, format_offsets, BuildReport, KEY_SEP};

/// A built Aggregate Index (Compact Index + per-entry `count(*)`).
pub struct AggregateIndex {
    ctx: Arc<HiveContext>,
    dims: Vec<String>,
    index_table: TableRef,
}

impl AggregateIndex {
    /// Build the index: one row per (dims, file) with offsets and count.
    pub fn build(
        ctx: Arc<HiveContext>,
        base: TableRef,
        dims: Vec<String>,
        index_name: &str,
    ) -> Result<(AggregateIndex, BuildReport)> {
        crate::compact::validate_dims(&base, &dims)?;
        let watch = Stopwatch::start();
        let mut fields: Vec<(String, ValueType)> = Vec::new();
        for d in &dims {
            fields.push((d.clone(), base.schema.type_of(d)?));
        }
        fields.push(("_bucketname".into(), ValueType::Str));
        fields.push(("_offsets".into(), ValueType::Str));
        fields.push(("_count_of_all".into(), ValueType::Int));
        let pairs: Vec<(&str, ValueType)> =
            fields.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        let index_schema = Arc::new(dgf_common::Schema::from_pairs(&pairs));
        let index_table = ctx.create_table(index_name, index_schema, FileFormat::Text)?;

        let dim_idx: Vec<usize> = dims
            .iter()
            .map(|d| base.schema.index_of(d))
            .collect::<Result<_>>()?;
        let dims_s = Arc::new(dims_schema(&base.schema, &dims)?);
        let splits = ctx.table_splits(&base);
        let num_reducers = ctx.engine.threads().min(splits.len()).max(1);
        let ctx2 = Arc::clone(&ctx);
        let base2 = Arc::clone(&base);
        let index_loc = index_table.location.clone();

        let job = ctx.engine.map_reduce(
            splits,
            num_reducers,
            // Map: emit (dims ++ file) -> (offset, 1 row).
            &|_, split: FileSplit, e| {
                match base2.format {
                    FileFormat::Text => {
                        let mut r = TextReader::open(&ctx2.hdfs, base2.schema.clone(), &split)?;
                        while let Some((off, row)) = r.next_with_offset()? {
                            let dvals: Vec<Value> =
                                dim_idx.iter().map(|i| row[*i].clone()).collect();
                            e.emit(dims_key(&dvals, &split.path), (off, 1u64));
                        }
                    }
                    FileFormat::RcFile => {
                        let mut r = RcReader::open(&ctx2.hdfs, base2.schema.clone(), &split)?
                            .with_projection(dim_idx.clone());
                        while let Some((off, row)) = r.next_with_offset()? {
                            let dvals: Vec<Value> =
                                dim_idx.iter().map(|i| row[*i].clone()).collect();
                            e.emit(dims_key(&dvals, &split.path), (off, 1u64));
                        }
                    }
                }
                Ok(())
            },
            None,
            // Reduce: collect_set(offsets) + count(*) per entry.
            &|tid, groups| {
                let path = format!("{index_loc}/part-{tid:05}");
                let mut w = TextWriter::create(&ctx2.hdfs, &path)?;
                let mut entries = 0u64;
                for (key, pairs) in groups {
                    let count: u64 = pairs.iter().map(|(_, c)| *c).sum();
                    let mut offs: Vec<u64> = pairs.into_iter().map(|(o, _)| o).collect();
                    offs.sort_unstable();
                    offs.dedup();
                    let (dims_part, file) = key
                        .split_once(KEY_SEP)
                        .ok_or_else(|| DgfError::Corrupt("bad index key".into()))?;
                    // Validate the dims decode before persisting.
                    dgf_common::parse_row(dims_part, &dims_s)?;
                    w.write_line(&format!(
                        "{dims_part}|{file}|{}|{count}",
                        format_offsets(&offs)
                    ))?;
                    entries += 1;
                }
                w.close()?;
                Ok(entries)
            },
        )?;

        let report = BuildReport {
            build_time: watch.elapsed(),
            index_size_bytes: ctx.table_size_bytes(&index_table),
            index_entries: job.outputs.iter().sum(),
        };
        Ok((
            AggregateIndex {
                ctx,
                dims,
                index_table,
            },
            report,
        ))
    }

    /// Whether the rewrite applies: all referenced columns are indexed
    /// dimensions and all aggregates are `count(*)`.
    pub fn eligible(&self, query: &Query) -> bool {
        let cols_ok = |pred: &dgf_query::Predicate| {
            pred.columns().all(|c| self.dims.iter().any(|d| d == c))
        };
        match query {
            Query::Aggregate { aggs, predicate } => {
                aggs.iter().all(|a| matches!(a, AggFunc::Count)) && cols_ok(predicate)
            }
            Query::GroupBy {
                key,
                aggs,
                predicate,
            } => {
                self.dims.iter().any(|d| d == key)
                    && aggs.iter().all(|a| matches!(a, AggFunc::Count))
                    && cols_ok(predicate)
            }
            _ => false,
        }
    }

    /// The index table.
    pub fn index_table(&self) -> &TableRef {
        &self.index_table
    }
}

/// Engine that answers eligible queries from the index table alone.
pub struct AggregateIndexEngine {
    index: Arc<AggregateIndex>,
}

impl AggregateIndexEngine {
    /// An engine over a built index.
    pub fn new(index: Arc<AggregateIndex>) -> Self {
        AggregateIndexEngine { index }
    }
}

impl Engine for AggregateIndexEngine {
    fn name(&self) -> String {
        "AggregateIndex".to_owned()
    }

    /// Rewrite the query onto the index table: `count(*)` becomes
    /// `sum(_count_of_all)`, grouping/filtering happen on the dimension
    /// columns the index table carries verbatim.
    fn run(&self, query: &Query) -> Result<EngineRun> {
        if !self.index.eligible(query) {
            return Err(DgfError::Query(
                "query does not meet the Aggregate Index restrictions".into(),
            ));
        }
        let watch = Stopwatch::start();
        let ctx = &self.index.ctx;
        let table = &self.index.index_table;
        let before = ctx.hdfs.stats().snapshot();

        let rewritten = match query {
            Query::Aggregate { aggs, predicate } => Query::Aggregate {
                aggs: aggs
                    .iter()
                    .map(|_| AggFunc::Sum("_count_of_all".into()))
                    .collect(),
                predicate: predicate.clone(),
            },
            Query::GroupBy {
                key,
                aggs,
                predicate,
            } => Query::GroupBy {
                key: key.clone(),
                aggs: aggs
                    .iter()
                    .map(|_| AggFunc::Sum("_count_of_all".into()))
                    .collect(),
                predicate: predicate.clone(),
            },
            _ => unreachable!("eligibility checked"),
        };

        let bound = rewritten.predicate().bind(&table.schema)?;
        let mut sink = RowSink::new(&rewritten, &table.schema, None)?;
        for split in ctx.table_splits(table) {
            let mut r = TextReader::open(&ctx.hdfs, table.schema.clone(), &split)?;
            use dgf_format::RecordReader;
            while let Some(row) = r.next_row()? {
                sink.push_if(&row, &bound)?;
            }
        }
        // sum() yields Float; counts are integers — cast back.
        let result = match sink.finish() {
            QueryResult::Scalars(vals) => QueryResult::Scalars(
                vals.into_iter().map(float_count_to_int).collect(),
            ),
            QueryResult::Groups(groups) => QueryResult::Groups(
                groups
                    .into_iter()
                    .map(|(k, vals)| (k, vals.into_iter().map(float_count_to_int).collect()))
                    .collect(),
            ),
            other => other,
        };
        let delta = ctx.hdfs.stats().snapshot().since(&before);
        Ok(EngineRun {
            result,
            stats: RunStats {
                index_time: watch.elapsed(),
                index_records_read: delta.records_read,
                ..RunStats::default()
            },
        })
    }
}

fn float_count_to_int(v: Value) -> Value {
    match v {
        Value::Float(f) => Value::Int(f as i64),
        Value::Null => Value::Int(0),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::ScanEngine;
    use dgf_common::{Row, Schema, TempDir};
    use dgf_mapreduce::MrEngine;
    use dgf_query::{ColumnRange, Predicate};
    use dgf_storage::{HdfsConfig, SimHdfs};

    fn setup() -> (TempDir, Arc<HiveContext>, TableRef) {
        let t = TempDir::new("aggidx").unwrap();
        let h = SimHdfs::new(
            t.path(),
            HdfsConfig {
                block_size: 2048,
                replication: 1,
            },
        )
        .unwrap();
        let ctx = HiveContext::new(h, MrEngine::new(4));
        let schema = Arc::new(Schema::from_pairs(&[
            ("user_id", ValueType::Int),
            ("region_id", ValueType::Int),
            ("day", ValueType::Int),
            ("power", ValueType::Float),
        ]));
        let tab = ctx.create_table("meter", schema, FileFormat::Text).unwrap();
        let rows: Vec<Row> = (0..600)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 4),
                    Value::Int(i / 100),
                    Value::Float(i as f64),
                ]
            })
            .collect();
        ctx.load_rows(&tab, &rows, 3).unwrap();
        (t, ctx, tab)
    }

    fn build(ctx: &Arc<HiveContext>, tab: &TableRef) -> Arc<AggregateIndex> {
        let (idx, report) = AggregateIndex::build(
            Arc::clone(ctx),
            Arc::clone(tab),
            vec!["region_id".into(), "day".into()],
            "agg_idx",
        )
        .unwrap();
        assert!(report.index_entries > 0);
        Arc::new(idx)
    }

    #[test]
    fn group_by_count_rewrite_matches_scan() {
        let (_t, ctx, tab) = setup();
        let q = Query::GroupBy {
            key: "region_id".into(),
            aggs: vec![AggFunc::Count],
            predicate: Predicate::all()
                .and("day", ColumnRange::half_open(Value::Int(1), Value::Int(4))),
        };
        let scan = ScanEngine::new(Arc::clone(&ctx), Arc::clone(&tab))
            .run(&q)
            .unwrap();
        let idx = build(&ctx, &tab);
        let run = AggregateIndexEngine::new(idx).run(&q).unwrap();
        assert_eq!(
            run.result.normalized(),
            scan.result.normalized()
        );
        // The whole point: no base data read at all.
        assert_eq!(run.stats.data_records_read, 0);
    }

    #[test]
    fn scalar_count_rewrite_matches_scan() {
        let (_t, ctx, tab) = setup();
        let q = Query::Aggregate {
            aggs: vec![AggFunc::Count],
            predicate: Predicate::all().and("region_id", ColumnRange::eq(Value::Int(2))),
        };
        let scan = ScanEngine::new(Arc::clone(&ctx), Arc::clone(&tab))
            .run(&q)
            .unwrap();
        let idx = build(&ctx, &tab);
        let run = AggregateIndexEngine::new(idx).run(&q).unwrap();
        assert_eq!(run.result, scan.result);
    }

    #[test]
    fn restrictions_are_enforced() {
        let (_t, ctx, tab) = setup();
        let idx = build(&ctx, &tab);
        // sum(power) is not pre-computed.
        let q = Query::Aggregate {
            aggs: vec![AggFunc::Sum("power".into())],
            predicate: Predicate::all(),
        };
        assert!(!idx.eligible(&q));
        assert!(AggregateIndexEngine::new(Arc::clone(&idx)).run(&q).is_err());
        // Predicate on a non-indexed column.
        let q = Query::GroupBy {
            key: "region_id".into(),
            aggs: vec![AggFunc::Count],
            predicate: Predicate::all()
                .and("user_id", ColumnRange::eq(Value::Int(1))),
        };
        assert!(!idx.eligible(&q));
        // Group key not indexed.
        let q = Query::GroupBy {
            key: "user_id".into(),
            aggs: vec![AggFunc::Count],
            predicate: Predicate::all(),
        };
        assert!(!idx.eligible(&q));
    }

    #[test]
    fn empty_match_counts_zero() {
        let (_t, ctx, tab) = setup();
        let idx = build(&ctx, &tab);
        let q = Query::Aggregate {
            aggs: vec![AggFunc::Count],
            predicate: Predicate::all().and("region_id", ColumnRange::eq(Value::Int(99))),
        };
        let run = AggregateIndexEngine::new(idx).run(&q).unwrap();
        assert_eq!(run.result.into_scalars()[0], Value::Int(0));
    }
}
