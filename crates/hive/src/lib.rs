//! # dgf-hive
//!
//! A miniature Hive: metastore + MapReduce scan execution + the three
//! index types the paper compares DGFIndex against, plus Hive-style
//! partitioning.
//!
//! * [`HiveContext`] — metastore, table loading, split enumeration.
//! * [`ScanEngine`] — the "ScanTable-based" full-scan baseline.
//! * [`CompactIndex`] — index table of (dims, file, offsets); split-granular
//!   filtering (paper §2.2, HIVE-417).
//! * [`AggregateIndex`] — Compact + pre-computed `count(*)`, answering
//!   eligible GROUP BY queries from the index table alone (HIVE-1694).
//! * [`BitmapIndex`] — Compact + per-row-group bitmaps on RCFile tables
//!   (HIVE-1803).
//! * [`PartitionedTable`] — one directory per partition value, with pruning
//!   and NameNode-pressure accounting.
//!
//! Every engine implements [`dgf_query::Engine`] and therefore returns the
//! same `QueryResult` type — tests assert all of them agree with the scan
//! ground truth, so the benchmark comparisons measure cost, never
//! correctness drift.

#![warn(missing_docs)]

pub mod aggidx;
pub mod bitmapidx;
pub mod catalog;
pub mod compact;
pub mod context;
pub mod index_common;
pub mod partition;
pub mod scan;

pub use aggidx::{AggregateIndex, AggregateIndexEngine};
pub use bitmapidx::{BitmapEngine, BitmapIndex};
pub use compact::{CompactEngine, CompactIndex, CompactPlan};
pub use context::{HiveContext, ScanOptions, ServeOptions, TableDesc, TableRef};
pub use catalog::{IndexEntry, CATALOG_PATH};
pub use index_common::BuildReport;
pub use partition::{PartitionEngine, PartitionedTable};
pub use scan::{
    attach_scan_to_span, execute, execute_sink, open_input, ScanEngine, ScanInput,
};
