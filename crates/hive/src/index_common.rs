//! Pieces shared by the three Hive index implementations.

use std::time::Duration;

use dgf_common::{format_row, parse_row, DgfError, Result, Row, Schema, Value, ValueType};

/// Report from building an index.
#[derive(Debug, Clone, Default)]
pub struct BuildReport {
    /// Wall time of the construction job.
    pub build_time: Duration,
    /// Bytes occupied by the index structure (table files or kv store).
    pub index_size_bytes: u64,
    /// Number of index entries (index table rows / GFU pairs).
    pub index_entries: u64,
}

/// Separator between the dimension-values part and the file path inside a
/// shuffle key (chosen to never appear in `format_row` output).
pub const KEY_SEP: char = '\u{1F}';

/// Build the shuffle key for an index entry: formatted dimension values
/// plus the originating file path.
pub fn dims_key(dim_values: &Row, path: &str) -> String {
    let mut k = format_row(dim_values);
    k.push(KEY_SEP);
    k.push_str(path);
    k
}

/// Split a shuffle key back into `(dimension row, path)`.
pub fn parse_dims_key(key: &str, dims_schema: &Schema) -> Result<(Row, String)> {
    let (dims_part, path) = key
        .split_once(KEY_SEP)
        .ok_or_else(|| DgfError::Corrupt(format!("malformed index key {key:?}")))?;
    Ok((parse_row(dims_part, dims_schema)?, path.to_owned()))
}

/// Schema of the dimension-values prefix of an index table.
pub fn dims_schema(base: &Schema, dims: &[String]) -> Result<Schema> {
    let names: Vec<&str> = dims.iter().map(|s| s.as_str()).collect();
    base.project(&names)
}

/// Schema of a Compact Index table: dims + `_bucketname` + `_offsets`
/// (paper Table 1).
pub fn compact_index_schema(base: &Schema, dims: &[String]) -> Result<Schema> {
    let mut fields: Vec<(String, ValueType)> = Vec::with_capacity(dims.len() + 2);
    for d in dims {
        fields.push((d.clone(), base.type_of(d)?));
    }
    fields.push(("_bucketname".to_owned(), ValueType::Str));
    fields.push(("_offsets".to_owned(), ValueType::Str));
    let pairs: Vec<(&str, ValueType)> = fields.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    Ok(Schema::from_pairs(&pairs))
}

/// Render an offsets array as the `_offsets` column text.
pub fn format_offsets(offsets: &[u64]) -> String {
    let mut s = String::with_capacity(offsets.len() * 8);
    for (i, o) in offsets.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&o.to_string());
    }
    s
}

/// Parse the `_offsets` column text.
pub fn parse_offsets(v: &Value) -> Result<Vec<u64>> {
    let s = v.as_str()?;
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|p| {
            p.parse::<u64>()
                .map_err(|e| DgfError::Corrupt(format!("bad offset {p:?}: {e}")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Schema {
        Schema::from_pairs(&[
            ("a", ValueType::Int),
            ("b", ValueType::Float),
            ("c", ValueType::Str),
        ])
    }

    #[test]
    fn key_round_trip() {
        let ds = dims_schema(&base(), &["a".into(), "b".into()]).unwrap();
        let dims: Row = vec![Value::Int(4), Value::Float(1.5)];
        let k = dims_key(&dims, "/warehouse/t/part-0");
        let (got, path) = parse_dims_key(&k, &ds).unwrap();
        assert_eq!(got, dims);
        assert_eq!(path, "/warehouse/t/part-0");
    }

    #[test]
    fn compact_schema_shape() {
        let s = compact_index_schema(&base(), &["b".into(), "a".into()]).unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.field(0).name, "b");
        assert_eq!(s.field(2).name, "_bucketname");
        assert_eq!(s.field(3).vtype, ValueType::Str);
        assert!(compact_index_schema(&base(), &["zzz".into()]).is_err());
    }

    #[test]
    fn offsets_round_trip() {
        let offs = vec![0u64, 9, 1234567];
        let text = format_offsets(&offs);
        assert_eq!(text, "0,9,1234567");
        assert_eq!(parse_offsets(&Value::Str(text)).unwrap(), offs);
        assert!(parse_offsets(&Value::Str("1,x".into())).is_err());
        assert!(parse_offsets(&Value::Str(String::new())).unwrap().is_empty());
    }
}
