//! Hive's Bitmap Index (paper §2.2, HIVE-1803).
//!
//! A Compact Index variant for RCFile tables: each entry stores a row-group
//! offset plus a **bitmap of matching rows inside the group**, so after
//! split filtering the reader can also skip non-matching rows within each
//! chosen group. The paper notes it "only improves the query performance
//! on RCFile format data" — on TextFile every line is its own block, so
//! the bitmap degenerates; this implementation accordingly requires an
//! RCFile base table.

use std::collections::HashMap;
use std::sync::Arc;

use dgf_common::{DgfError, Result, Stopwatch, Value, ValueType};
use dgf_format::{Bitmap, FileFormat, RcReader, TextReader, TextWriter};
use dgf_query::{Engine, EngineRun, Predicate, Query, RunStats};
use dgf_storage::FileSplit;

use crate::context::{HiveContext, TableRef};
use crate::index_common::{dims_key, dims_schema, BuildReport, KEY_SEP};
use crate::scan::{execute, ScanInput};

/// A built Bitmap Index over an RCFile table.
pub struct BitmapIndex {
    ctx: Arc<HiveContext>,
    base: TableRef,
    dims: Vec<String>,
    index_table: TableRef,
}

fn bitmap_to_hex(b: &Bitmap) -> String {
    let bytes = b.to_bytes();
    let mut s = String::with_capacity(bytes.len() * 2);
    for byte in bytes {
        use std::fmt::Write;
        let _ = write!(s, "{byte:02x}");
    }
    s
}

fn bitmap_from_hex(s: &str) -> Result<Bitmap> {
    if !s.len().is_multiple_of(2) {
        return Err(DgfError::Corrupt("odd-length bitmap hex".into()));
    }
    let mut bytes = Vec::with_capacity(s.len() / 2);
    for i in (0..s.len()).step_by(2) {
        let b = u8::from_str_radix(&s[i..i + 2], 16)
            .map_err(|e| DgfError::Corrupt(format!("bad bitmap hex: {e}")))?;
        bytes.push(b);
    }
    Ok(Bitmap::from_bytes(&bytes))
}

impl BitmapIndex {
    /// Build the index: one entry per (dims, file, group) with the bitmap
    /// of rows in that group carrying those dimension values.
    pub fn build(
        ctx: Arc<HiveContext>,
        base: TableRef,
        dims: Vec<String>,
        index_name: &str,
    ) -> Result<(BitmapIndex, BuildReport)> {
        crate::compact::validate_dims(&base, &dims)?;
        if base.format != FileFormat::RcFile {
            return Err(DgfError::Index(
                "Bitmap Index requires an RCFile base table".into(),
            ));
        }
        let watch = Stopwatch::start();
        let mut fields: Vec<(String, ValueType)> = Vec::new();
        for d in &dims {
            fields.push((d.clone(), base.schema.type_of(d)?));
        }
        fields.push(("_bucketname".into(), ValueType::Str));
        fields.push(("_offset".into(), ValueType::Int));
        fields.push(("_bitmaps".into(), ValueType::Str));
        let pairs: Vec<(&str, ValueType)> =
            fields.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        let index_schema = Arc::new(dgf_common::Schema::from_pairs(&pairs));
        let index_table = ctx.create_table(index_name, index_schema, FileFormat::Text)?;

        let dim_idx: Vec<usize> = dims
            .iter()
            .map(|d| base.schema.index_of(d))
            .collect::<Result<_>>()?;
        let dims_s = Arc::new(dims_schema(&base.schema, &dims)?);
        let splits = ctx.table_splits(&base);
        let num_reducers = ctx.engine.threads().min(splits.len()).max(1);
        let ctx2 = Arc::clone(&ctx);
        let base2 = Arc::clone(&base);
        let index_loc = index_table.location.clone();

        // Key: dims ++ file ++ group offset. Value: row index in the group.
        let job = ctx.engine.map_reduce(
            splits,
            num_reducers,
            &|_, split: FileSplit, e| {
                let mut r = RcReader::open(&ctx2.hdfs, base2.schema.clone(), &split)?
                    .with_projection(dim_idx.clone());
                let mut cur_group = u64::MAX;
                let mut row_in_group = 0usize;
                while let Some((off, row)) = r.next_with_offset()? {
                    if off != cur_group {
                        cur_group = off;
                        row_in_group = 0;
                    }
                    let dvals: Vec<Value> = dim_idx.iter().map(|i| row[*i].clone()).collect();
                    let key = format!("{}{KEY_SEP}{off}", dims_key(&dvals, &split.path));
                    e.emit(key, row_in_group as u64);
                    row_in_group += 1;
                }
                Ok(())
            },
            None,
            &|tid, groups| {
                let path = format!("{index_loc}/part-{tid:05}");
                let mut w = TextWriter::create(&ctx2.hdfs, &path)?;
                let mut entries = 0u64;
                for (key, row_ids) in groups {
                    let mut parts = key.rsplitn(2, KEY_SEP);
                    let offset: u64 = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| DgfError::Corrupt("bad bitmap key".into()))?;
                    let rest = parts
                        .next()
                        .ok_or_else(|| DgfError::Corrupt("bad bitmap key".into()))?;
                    let (dims_part, file) = rest
                        .split_once(KEY_SEP)
                        .ok_or_else(|| DgfError::Corrupt("bad bitmap key".into()))?;
                    dgf_common::parse_row(dims_part, &dims_s)?;
                    let bitmap: Bitmap = row_ids.iter().map(|r| *r as usize).collect();
                    w.write_line(&format!(
                        "{dims_part}|{file}|{offset}|{}",
                        bitmap_to_hex(&bitmap)
                    ))?;
                    entries += 1;
                }
                w.close()?;
                Ok(entries)
            },
        )?;

        let report = BuildReport {
            build_time: watch.elapsed(),
            index_size_bytes: ctx.table_size_bytes(&index_table),
            index_entries: job.outputs.iter().sum(),
        };
        Ok((
            BitmapIndex {
                ctx,
                base,
                dims,
                index_table,
            },
            report,
        ))
    }

    /// The index table.
    pub fn index_table(&self) -> &TableRef {
        &self.index_table
    }

    /// Plan: scan the index table, union bitmaps per (file, group), choose
    /// splits containing a matching group.
    pub fn plan(&self, predicate: &Predicate) -> Result<BitmapPlan> {
        let watch = Stopwatch::start();
        let before = self.ctx.hdfs.stats().snapshot();
        let keep: Vec<&str> = self.dims.iter().map(|s| s.as_str()).collect();
        let idx_pred = predicate.project_columns(&keep);
        let bound = idx_pred.bind(&self.index_table.schema)?;
        let file_col = self.dims.len();
        let off_col = self.dims.len() + 1;
        let bm_col = self.dims.len() + 2;

        let mut per_file: HashMap<String, HashMap<u64, Bitmap>> = HashMap::new();
        for split in self.ctx.table_splits(&self.index_table) {
            let mut r = TextReader::open(&self.ctx.hdfs, self.index_table.schema.clone(), &split)?;
            use dgf_format::RecordReader;
            while let Some(row) = r.next_row()? {
                if !bound.matches(&row) {
                    continue;
                }
                let file = row[file_col].as_str()?.to_owned();
                let off = row[off_col].as_i64()? as u64;
                let bm = bitmap_from_hex(row[bm_col].as_str()?)?;
                per_file
                    .entry(file)
                    .or_default()
                    .entry(off)
                    .or_default()
                    .union_with(&bm);
            }
        }

        let all_splits = self.ctx.table_splits(&self.base);
        let splits_total = all_splits.len() as u64;
        let mut inputs = Vec::new();
        for split in all_splits {
            let Some(groups) = per_file.get(&split.path) else {
                continue;
            };
            let mine: HashMap<u64, Bitmap> = groups
                .iter()
                .filter(|(o, _)| **o >= split.start && **o < split.end())
                .map(|(o, b)| (*o, b.clone()))
                .collect();
            if !mine.is_empty() {
                inputs.push(ScanInput::RcFiltered {
                    split,
                    row_filter: mine,
                });
            }
        }
        let delta = self.ctx.hdfs.stats().snapshot().since(&before);
        Ok(BitmapPlan {
            inputs,
            splits_total,
            index_records_read: delta.records_read,
            index_time: watch.elapsed(),
        })
    }
}

/// Result of Bitmap Index planning.
pub struct BitmapPlan {
    /// Filtered scan inputs (split + per-group bitmaps).
    pub inputs: Vec<ScanInput>,
    /// All base-table splits.
    pub splits_total: u64,
    /// Index-table rows scanned.
    pub index_records_read: u64,
    /// Planning time.
    pub index_time: std::time::Duration,
}

/// The Bitmap Index query engine.
pub struct BitmapEngine {
    index: Arc<BitmapIndex>,
    right: Option<TableRef>,
}

impl BitmapEngine {
    /// An engine over a built index.
    pub fn new(index: Arc<BitmapIndex>) -> Self {
        BitmapEngine { index, right: None }
    }

    /// Attach the dimension table used by join queries.
    pub fn with_right(mut self, right: TableRef) -> Self {
        self.right = Some(right);
        self
    }
}

impl Engine for BitmapEngine {
    fn name(&self) -> String {
        format!("Bitmap-{}D", self.index.dims.len())
    }

    fn run(&self, query: &Query) -> Result<EngineRun> {
        let plan = self.index.plan(query.predicate())?;
        let ctx = &self.index.ctx;
        let before = ctx.hdfs.stats().snapshot();
        let watch = Stopwatch::start();
        let splits_read = plan.inputs.len() as u64;
        let result = execute(
            ctx,
            &self.index.base,
            query,
            self.right.as_deref(),
            plan.inputs,
        )?;
        let delta = ctx.hdfs.stats().snapshot().since(&before);
        Ok(EngineRun {
            result,
            stats: RunStats {
                index_time: plan.index_time,
                data_time: watch.elapsed(),
                index_records_read: plan.index_records_read,
                data_records_read: delta.records_read,
                data_bytes_read: delta.bytes_read,
                splits_total: plan.splits_total,
                splits_read,
                ..RunStats::default()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::ScanEngine;
    use dgf_common::{Row, Schema, TempDir};
    use dgf_mapreduce::MrEngine;
    use dgf_query::{AggFunc, ColumnRange};
    use dgf_storage::{HdfsConfig, SimHdfs};

    fn setup() -> (TempDir, Arc<HiveContext>, TableRef) {
        let t = TempDir::new("bmidx").unwrap();
        let h = SimHdfs::new(
            t.path(),
            HdfsConfig {
                block_size: 4096,
                replication: 1,
            },
        )
        .unwrap();
        let ctx = HiveContext::new(h, MrEngine::new(4));
        let schema = Arc::new(Schema::from_pairs(&[
            ("user_id", ValueType::Int),
            ("region_id", ValueType::Int),
            ("power", ValueType::Float),
        ]));
        let mut tab = (*ctx
            .create_table("meter", schema, FileFormat::RcFile)
            .unwrap())
        .clone();
        tab.rows_per_group = 32; // small groups so bitmaps matter
        let tab = Arc::new(tab);
        let rows: Vec<Row> = (0..400)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 8),
                    Value::Float(i as f64),
                ]
            })
            .collect();
        ctx.load_rows(&tab, &rows, 2).unwrap();
        (t, ctx, tab)
    }

    #[test]
    fn hex_round_trip() {
        let b: Bitmap = [0usize, 5, 63, 64, 130].into_iter().collect();
        let r = bitmap_from_hex(&bitmap_to_hex(&b)).unwrap();
        assert_eq!(b, r);
        assert!(bitmap_from_hex("zz").is_err());
        assert!(bitmap_from_hex("abc").is_err());
    }

    #[test]
    fn bitmap_query_matches_scan_and_reads_fewer_records() {
        let (_t, ctx, tab) = setup();
        let q = Query::Aggregate {
            aggs: vec![AggFunc::Count, AggFunc::Sum("power".into())],
            predicate: Predicate::all().and("region_id", ColumnRange::eq(Value::Int(3))),
        };
        let scan = ScanEngine::new(Arc::clone(&ctx), Arc::clone(&tab))
            .run(&q)
            .unwrap();
        let (idx, report) = BitmapIndex::build(
            Arc::clone(&ctx),
            Arc::clone(&tab),
            vec!["region_id".into()],
            "bm_idx",
        )
        .unwrap();
        assert!(report.index_entries > 0);
        let run = BitmapEngine::new(Arc::new(idx)).run(&q).unwrap();
        assert!(run.result.approx_eq(&scan.result, 1e-9));
        // The bitmap filters inside groups: exactly the matching rows.
        assert_eq!(run.stats.data_records_read, 50);
        assert!(run.stats.data_records_read < scan.stats.data_records_read);
    }

    #[test]
    fn requires_rcfile() {
        let (_t, ctx, _tab) = setup();
        let schema = Arc::new(Schema::from_pairs(&[("a", ValueType::Int)]));
        let text = ctx.create_table("txt", schema, FileFormat::Text).unwrap();
        assert!(BitmapIndex::build(
            Arc::clone(&ctx),
            text,
            vec!["a".into()],
            "bm_txt"
        )
        .is_err());
    }

    #[test]
    fn range_predicate_unions_bitmaps() {
        let (_t, ctx, tab) = setup();
        let q = Query::Aggregate {
            aggs: vec![AggFunc::Count],
            predicate: Predicate::all().and(
                "region_id",
                ColumnRange::half_open(Value::Int(2), Value::Int(5)),
            ),
        };
        let (idx, _) = BitmapIndex::build(
            Arc::clone(&ctx),
            Arc::clone(&tab),
            vec!["region_id".into()],
            "bm_idx",
        )
        .unwrap();
        let run = BitmapEngine::new(Arc::new(idx)).run(&q).unwrap();
        assert_eq!(run.result.into_scalars()[0], Value::Int(150));
        assert_eq!(run.stats.data_records_read, 150);
    }

    #[test]
    fn no_match_reads_nothing() {
        let (_t, ctx, tab) = setup();
        let (idx, _) = BitmapIndex::build(
            Arc::clone(&ctx),
            Arc::clone(&tab),
            vec!["region_id".into()],
            "bm_idx",
        )
        .unwrap();
        let q = Query::Aggregate {
            aggs: vec![AggFunc::Count],
            predicate: Predicate::all().and("region_id", ColumnRange::eq(Value::Int(42))),
        };
        let run = BitmapEngine::new(Arc::new(idx)).run(&q).unwrap();
        assert_eq!(run.result.into_scalars()[0], Value::Int(0));
        assert_eq!(run.stats.data_records_read, 0);
        assert_eq!(run.stats.splits_read, 0);
    }
}
