//! The MapReduce scan executor shared by every Hive-side query path.
//!
//! An index's entire contribution is the list of [`ScanInput`]s it
//! produces: the full-table scan feeds every split, the Compact Index
//! feeds a subset of splits, the Bitmap Index feeds splits plus row
//! filters, and DGFIndex feeds byte ranges (Slices). Execution itself is
//! identical: one map task per input, predicate filter, [`RowSink`]
//! accumulation, final merge.

use std::collections::HashMap;
use std::sync::Arc;

use dgf_common::obs::{names, SpanGuard};
use dgf_common::stats::ScanSnapshot;
use dgf_common::{Result, Row};
use dgf_format::{Bitmap, ByteRange, FileFormat, RcReader, RecordReader, SkippingTextReader, TextReader};
use dgf_query::{AggFunc, Engine, EngineRun, Query, QueryResult, RowSink, RunStats};
use dgf_storage::FileSplit;

use crate::context::{HiveContext, TableDesc, TableRef};

/// One unit of work for a scan map task.
#[derive(Debug, Clone, PartialEq)]
pub enum ScanInput {
    /// Read a whole split (scan baseline; Compact Index granularity).
    FullSplit(FileSplit),
    /// Read only these byte ranges of a text file (DGFIndex Slices,
    /// already clipped to this task's split).
    TextRanges {
        /// The file.
        path: String,
        /// Coalesced, sorted ranges.
        ranges: Vec<ByteRange>,
    },
    /// Read a split of an RCFile with per-group row bitmaps (Bitmap
    /// Index). Groups absent from the map are skipped.
    RcFiltered {
        /// The split.
        split: FileSplit,
        /// Group offset → rows to keep.
        row_filter: HashMap<u64, Bitmap>,
    },
    /// Read only the row groups starting inside these byte ranges of an
    /// RCFile (DGFIndex Slices over RCFile-format reorganized data).
    RcRanges {
        /// The file.
        path: String,
        /// Coalesced, sorted group-aligned ranges.
        ranges: Vec<ByteRange>,
    },
    /// [`RcRanges`](Self::RcRanges) further narrowed by a per-slice
    /// sidecar index (DESIGN.md §15): within the Slice byte ranges, only
    /// the row groups present in `row_filter` are read, and each is
    /// compacted to the rows its bitmap admits.
    RcPruned {
        /// The file.
        path: String,
        /// Coalesced, sorted group-aligned ranges (the unpruned Slices).
        ranges: Vec<ByteRange>,
        /// Group offset → rows that may match. Groups inside `ranges`
        /// but absent here were pruned by zone maps or bitmaps.
        row_filter: HashMap<u64, Bitmap>,
    },
}

/// Open the record reader for one input.
pub fn open_input(
    ctx: &HiveContext,
    table: &TableDesc,
    input: &ScanInput,
) -> Result<Box<dyn RecordReader>> {
    match input {
        ScanInput::FullSplit(split) => match table.format {
            FileFormat::Text => Ok(Box::new(TextReader::open(
                &ctx.hdfs,
                table.schema.clone(),
                split,
            )?)),
            FileFormat::RcFile => Ok(Box::new(RcReader::open(
                &ctx.hdfs,
                table.schema.clone(),
                split,
            )?)),
        },
        ScanInput::TextRanges { path, ranges } => Ok(Box::new(SkippingTextReader::open(
            &ctx.hdfs,
            table.schema.clone(),
            path,
            ranges.clone(),
        )?)),
        ScanInput::RcFiltered { split, row_filter } => Ok(Box::new(
            RcReader::open(&ctx.hdfs, table.schema.clone(), split)?
                .with_row_filter(row_filter.clone()),
        )),
        ScanInput::RcRanges { path, ranges } => {
            let len = ctx.hdfs.file_len(path)?;
            let whole = FileSplit::new(path.clone(), 0, len);
            Ok(Box::new(
                RcReader::open(&ctx.hdfs, table.schema.clone(), &whole)?
                    .with_group_ranges(ranges),
            ))
        }
        ScanInput::RcPruned {
            path,
            ranges,
            row_filter,
        } => {
            let len = ctx.hdfs.file_len(path)?;
            let whole = FileSplit::new(path.clone(), 0, len);
            Ok(Box::new(
                RcReader::open(&ctx.hdfs, table.schema.clone(), &whole)?
                    .with_group_ranges(ranges)
                    .with_row_filter(row_filter.clone()),
            ))
        }
    }
}

/// Run `query` over the given inputs. The dimension table for joins is
/// read up front and broadcast to every map task (Hive map join).
pub fn execute(
    ctx: &HiveContext,
    table: &TableDesc,
    query: &Query,
    right: Option<&TableDesc>,
    inputs: Vec<ScanInput>,
) -> Result<QueryResult> {
    Ok(execute_sink(ctx, table, query, right, inputs)?.finish())
}

/// Like [`execute`], but returns the merged [`RowSink`] before
/// finalization — DGFIndex merges its pre-computed inner-region headers
/// into the sink between scanning the boundary region and finishing.
pub fn execute_sink(
    ctx: &HiveContext,
    table: &TableDesc,
    query: &Query,
    right: Option<&TableDesc>,
    inputs: Vec<ScanInput>,
) -> Result<RowSink> {
    let right_rows: Option<(Arc<dgf_common::Schema>, Arc<Vec<Row>>)> = match (query, right) {
        (Query::Join { .. }, Some(r)) => {
            Some((Arc::new((*r.schema).clone()), Arc::new(ctx.read_all(r)?)))
        }
        (Query::Join { .. }, None) => {
            return Err(dgf_common::DgfError::Query(
                "join query needs a dimension table".into(),
            ))
        }
        _ => None,
    };
    let bound = query.predicate().bind(&table.schema)?;
    let options = ctx.scan_options();
    let columnar = options.columnar && table.format == FileFormat::RcFile;
    let projection = if columnar {
        columnar_projection(query, table)?
    } else {
        None
    };

    let job = ctx.engine.map_only_with(
        inputs,
        &Row::new,
        &|_, input: ScanInput, scratch: &mut Row| {
            let mut sink = RowSink::new(
                query,
                &table.schema,
                right_rows.as_ref().map(|(s, r)| (&**s, r.as_slice())),
            )?;
            if columnar {
                if let Some(mut reader) =
                    open_rc_batched(ctx, table, &input, projection.as_deref(), options.prefetch)?
                {
                    while let Some(batch) = reader.next_batch()? {
                        let kernel = std::time::Instant::now();
                        let sel = bound.select(&batch);
                        ctx.scan_stats.rows_selected.add(sel.len() as u64);
                        sink.push_batch(&batch, &sel)?;
                        ctx.scan_stats
                            .kernel_us
                            .add(kernel.elapsed().as_micros() as u64);
                    }
                    return Ok(sink);
                }
            }
            // Row-at-a-time fallback (text formats, or columnar disabled):
            // the reader refills the per-worker scratch row in place, so the
            // hot loop allocates nothing per record.
            let mut reader = open_input(ctx, table, &input)?;
            let mut rows = 0u64;
            while reader.next_row_into(scratch)? {
                rows += 1;
                sink.push_if(scratch, &bound)?;
            }
            ctx.scan_stats.rowwise_rows.add(rows);
            Ok(sink)
        },
    )?;

    let mut sinks = job.outputs.into_iter();
    let mut total = match sinks.next() {
        Some(s) => s,
        None => RowSink::new(
            query,
            &table.schema,
            right_rows.as_ref().map(|(s, r)| (&**s, r.as_slice())),
        )?,
    };
    for s in sinks {
        total.merge(s)?;
    }
    Ok(total)
}

/// The column indexes a columnar scan must decode for `query`: predicate
/// columns plus whatever the sink reads. `None` means decode everything
/// (unconstrained SELECT, or a UDF aggregate that may read any column).
fn columnar_projection(query: &Query, table: &TableDesc) -> Result<Option<Vec<usize>>> {
    let mut cols: Vec<usize> = Vec::new();
    for c in query.predicate().columns() {
        cols.push(table.schema.index_of(c)?);
    }
    let mut add_aggs = |aggs: &[AggFunc]| -> Result<bool> {
        for a in aggs {
            match a {
                AggFunc::Count => {}
                AggFunc::Sum(c) | AggFunc::Min(c) | AggFunc::Max(c) | AggFunc::Avg(c) => {
                    cols.push(table.schema.index_of(c)?);
                }
                // A UDF reads whole rows; decode every column.
                AggFunc::Udf(_) => return Ok(false),
            }
        }
        Ok(true)
    };
    match query {
        Query::Aggregate { aggs, .. } => {
            if !add_aggs(aggs)? {
                return Ok(None);
            }
        }
        Query::GroupBy { key, aggs, .. } => {
            if !add_aggs(aggs)? {
                return Ok(None);
            }
            cols.push(table.schema.index_of(key)?);
        }
        Query::Join {
            left_key,
            left_project,
            ..
        } => {
            cols.push(table.schema.index_of(left_key)?);
            for c in left_project {
                cols.push(table.schema.index_of(c)?);
            }
        }
        Query::Select { project, .. } => {
            if project.is_empty() {
                return Ok(None);
            }
            for c in project {
                cols.push(table.schema.index_of(c)?);
            }
        }
    }
    cols.sort_unstable();
    cols.dedup();
    Ok(Some(cols))
}

/// Open `input` as a batched [`RcReader`], or `None` when the input is not
/// RCFile-backed and must go through the row-at-a-time path.
fn open_rc_batched(
    ctx: &HiveContext,
    table: &TableDesc,
    input: &ScanInput,
    projection: Option<&[usize]>,
    prefetch: bool,
) -> Result<Option<RcReader>> {
    let reader = match input {
        ScanInput::FullSplit(split) => match table.format {
            FileFormat::RcFile => RcReader::open(&ctx.hdfs, table.schema.clone(), split)?,
            FileFormat::Text => return Ok(None),
        },
        ScanInput::TextRanges { .. } => return Ok(None),
        ScanInput::RcFiltered { split, row_filter } => {
            RcReader::open(&ctx.hdfs, table.schema.clone(), split)?
                .with_row_filter(row_filter.clone())
        }
        ScanInput::RcRanges { path, ranges } => {
            let len = ctx.hdfs.file_len(path)?;
            let whole = FileSplit::new(path.clone(), 0, len);
            RcReader::open(&ctx.hdfs, table.schema.clone(), &whole)?.with_group_ranges(ranges)
        }
        ScanInput::RcPruned {
            path,
            ranges,
            row_filter,
        } => {
            let len = ctx.hdfs.file_len(path)?;
            let whole = FileSplit::new(path.clone(), 0, len);
            RcReader::open(&ctx.hdfs, table.schema.clone(), &whole)?
                .with_group_ranges(ranges)
                .with_row_filter(row_filter.clone())
        }
    };
    let mut reader = reader.with_scan_stats(ctx.scan_stats.clone());
    if prefetch {
        reader = reader.with_prefetch();
    }
    if let Some(p) = projection {
        reader = reader.with_projection(p.to_vec());
    }
    Ok(Some(reader))
}

/// Attach a columnar-scan delta to a profile span as `scan.decode` /
/// `scan.kernel` / `scan.prefetch_wait` children plus metrics, so
/// `dgf profile` reconciles kernel work against batch counts. Engines call
/// this on their `query.scan` span with the delta of
/// [`HiveContext::scan_stats`] across the run.
pub fn attach_scan_to_span(span: &SpanGuard, delta: &ScanSnapshot) {
    if delta.rowwise_rows > 0 {
        span.add(names::SCAN_ROWWISE_ROWS, delta.rowwise_rows);
    }
    if delta.batches == 0 {
        return;
    }
    let decode = span.child("scan.decode");
    decode.add(names::SCAN_BATCHES, delta.batches);
    decode.add(names::SCAN_ROWS_DECODED, delta.rows_decoded);
    decode.add(names::SCAN_DECODE_US, delta.decode_us);
    decode.finish();
    let kernel = span.child("scan.kernel");
    kernel.add(names::SCAN_ROWS_SELECTED, delta.rows_selected);
    kernel.add(names::SCAN_KERNEL_US, delta.kernel_us);
    kernel.finish();
    if delta.prefetch_waits > 0 {
        let wait = span.child("scan.prefetch_wait");
        wait.add(names::SCAN_PREFETCH_WAITS, delta.prefetch_waits);
        wait.add(names::SCAN_PREFETCH_WAIT_US, delta.prefetch_wait_us);
        wait.finish();
    }
}

/// The full-table-scan baseline (the paper's "ScanTable-based" style).
pub struct ScanEngine {
    ctx: Arc<HiveContext>,
    table: TableRef,
    right: Option<TableRef>,
    profiler: dgf_common::obs::Profiler,
}

impl ScanEngine {
    /// A scan engine over `table`. Honours `DGF_TRACE` for profiling;
    /// see [`with_profiler`](Self::with_profiler).
    pub fn new(ctx: Arc<HiveContext>, table: TableRef) -> Self {
        ScanEngine {
            ctx,
            table,
            right: None,
            profiler: dgf_common::obs::Profiler::from_env(),
        }
    }

    /// Attach the dimension table used by join queries.
    pub fn with_right(mut self, right: TableRef) -> Self {
        self.right = Some(right);
        self
    }

    /// Collect a [`dgf_common::obs::QueryProfile`] per run with this
    /// profiler (forked per query), instead of the `DGF_TRACE` default.
    pub fn with_profiler(mut self, profiler: dgf_common::obs::Profiler) -> Self {
        self.profiler = profiler;
        self
    }
}

impl Engine for ScanEngine {
    fn name(&self) -> String {
        "ScanTable".to_owned()
    }

    fn run(&self, query: &Query) -> Result<EngineRun> {
        let stats_block = self.ctx.hdfs.stats();
        let before = stats_block.snapshot();
        let scan_before = self.ctx.scan_stats.snapshot();
        let prof = self.profiler.fork();
        let root = prof.span("query");
        let watch = dgf_common::Stopwatch::start();
        let splits = self.ctx.table_splits(&self.table);
        let n_splits = splits.len() as u64;
        let inputs = splits.into_iter().map(ScanInput::FullSplit).collect();
        let scan_span = root.child("query.scan");
        let result = execute(
            &self.ctx,
            &self.table,
            query,
            self.right.as_deref(),
            inputs,
        )?;
        let scan_delta = self.ctx.scan_stats.snapshot().since(&scan_before);
        self.ctx.hdfs.attach_io_to_span(&scan_span, &before);
        attach_scan_to_span(&scan_span, &scan_delta);
        scan_span.finish();
        root.finish();
        let delta = stats_block.snapshot().since(&before);
        Ok(EngineRun {
            result,
            stats: RunStats {
                data_time: watch.elapsed(),
                data_records_read: delta.records_read,
                data_bytes_read: delta.bytes_read,
                splits_total: n_splits,
                splits_read: n_splits,
                profile: prof.take_profile(),
                scan: scan_delta,
                ..RunStats::default()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_common::{Schema, TempDir, Value, ValueType};
    use dgf_mapreduce::MrEngine;
    use dgf_query::{AggFunc, ColumnRange, Predicate};
    use dgf_storage::{HdfsConfig, SimHdfs};

    fn setup(format: FileFormat) -> (TempDir, Arc<HiveContext>, TableRef) {
        let t = TempDir::new("scan").unwrap();
        let h = SimHdfs::new(
            t.path(),
            HdfsConfig {
                block_size: 512,
                replication: 1,
            },
        )
        .unwrap();
        let ctx = HiveContext::new(h, MrEngine::new(4));
        let schema = Arc::new(Schema::from_pairs(&[
            ("user_id", ValueType::Int),
            ("region_id", ValueType::Int),
            ("power", ValueType::Float),
        ]));
        let tab = ctx.create_table("meter", schema, format).unwrap();
        let rows: Vec<Row> = (0..500)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 7),
                    Value::Float((i % 100) as f64),
                ]
            })
            .collect();
        ctx.load_rows(&tab, &rows, 3).unwrap();
        (t, ctx, tab)
    }

    fn sum_query() -> Query {
        Query::Aggregate {
            aggs: vec![AggFunc::Sum("power".into()), AggFunc::Count],
            predicate: Predicate::all().and(
                "user_id",
                ColumnRange::half_open(Value::Int(100), Value::Int(200)),
            ),
        }
    }

    #[test]
    fn scan_engine_text_aggregate() {
        let (_t, ctx, tab) = setup(FileFormat::Text);
        let run = ScanEngine::new(ctx.clone(), tab).run(&sum_query()).unwrap();
        let vals = run.result.into_scalars();
        // sum of (i % 100) for i in 100..200 = 0+1+..+99 = 4950
        assert_eq!(vals[0], Value::Float(4950.0));
        assert_eq!(vals[1], Value::Int(100));
        assert_eq!(run.stats.data_records_read, 500); // full scan reads all
        assert_eq!(run.stats.splits_read, run.stats.splits_total);
        assert!(run.stats.splits_total > 1);
    }

    #[test]
    fn scan_engine_rcfile_matches_text() {
        let (_t1, ctx1, tab1) = setup(FileFormat::Text);
        let (_t2, ctx2, tab2) = setup(FileFormat::RcFile);
        let a = ScanEngine::new(ctx1, tab1).run(&sum_query()).unwrap();
        let b = ScanEngine::new(ctx2, tab2).run(&sum_query()).unwrap();
        assert!(a.result.approx_eq(&b.result, 1e-9));
    }

    #[test]
    fn group_by_over_scan() {
        let (_t, ctx, tab) = setup(FileFormat::Text);
        let q = Query::GroupBy {
            key: "region_id".into(),
            aggs: vec![AggFunc::Count],
            predicate: Predicate::all(),
        };
        let run = ScanEngine::new(ctx, tab).run(&q).unwrap();
        let groups = run.result.into_groups();
        assert_eq!(groups.len(), 7);
        let total: i64 = groups.iter().map(|(_, v)| v[0].as_i64().unwrap()).sum();
        assert_eq!(total, 500);
    }

    #[test]
    fn join_over_scan() {
        let (_t, ctx, tab) = setup(FileFormat::Text);
        let user_schema = Arc::new(Schema::from_pairs(&[
            ("user_id", ValueType::Int),
            ("name", ValueType::Str),
        ]));
        let users = ctx
            .create_table("users", user_schema, FileFormat::Text)
            .unwrap();
        let user_rows: Vec<Row> = (0..500)
            .map(|i| vec![Value::Int(i), Value::Str(format!("u{i}"))])
            .collect();
        ctx.load_rows(&users, &user_rows, 1).unwrap();
        let q = Query::Join {
            left_key: "user_id".into(),
            right_key: "user_id".into(),
            left_project: vec!["power".into()],
            right_project: vec!["name".into()],
            predicate: Predicate::all().and(
                "user_id",
                ColumnRange::half_open(Value::Int(10), Value::Int(13)),
            ),
        };
        let run = ScanEngine::new(ctx, tab).with_right(users).run(&q).unwrap();
        let rows = run.result.normalized().into_rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][0], Value::Str("u10".into()));
    }

    #[test]
    fn join_without_right_errors() {
        let (_t, ctx, tab) = setup(FileFormat::Text);
        let q = Query::Join {
            left_key: "user_id".into(),
            right_key: "user_id".into(),
            left_project: vec![],
            right_project: vec![],
            predicate: Predicate::all(),
        };
        assert!(ScanEngine::new(ctx, tab).run(&q).is_err());
    }
}
