//! Hive-style partitioning (paper §2.2 and §6).
//!
//! A partitioned table keeps one HDFS **directory per partition value**
//! (`/warehouse/t/day=17532/...`). Partition pruning is a coarse-grained
//! index: a query constraining the partition column scans only matching
//! directories. The cost is NameNode pressure — every directory is a
//! namespace object — which is why the paper rules out multidimensional
//! partitioning (three 100-value dimensions ⇒ a million directories) and
//! why DGFIndex exists.

use std::collections::BTreeMap;
use std::sync::Arc;

use dgf_common::{DgfError, Result, Row, Stopwatch, Value};
use dgf_format::FileFormat;
use dgf_query::{Engine, EngineRun, Query, RunStats};
use dgf_storage::FileSplit;

use crate::context::{HiveContext, TableDesc, TableRef};
use crate::scan::{execute, ScanInput};

/// A table partitioned on one column.
pub struct PartitionedTable {
    ctx: Arc<HiveContext>,
    /// Logical descriptor (schema/format); `location` is the table root.
    pub desc: TableRef,
    /// The partition column.
    pub partition_col: String,
    /// Partition value → directory.
    partitions: BTreeMap<Value, String>,
}

impl PartitionedTable {
    /// Create and load a table partitioned on `partition_col`. Rows are
    /// routed to `<root>/<col>=<value>/part-00000`.
    pub fn create(
        ctx: Arc<HiveContext>,
        name: &str,
        schema: dgf_common::SchemaRef,
        format: FileFormat,
        partition_col: &str,
        rows: &[Row],
        files_per_partition: usize,
    ) -> Result<PartitionedTable> {
        let col = schema.index_of(partition_col)?;
        let desc = ctx.create_table(name, schema, format)?;
        let mut buckets: BTreeMap<Value, Vec<Row>> = BTreeMap::new();
        for r in rows {
            if r[col].is_null() {
                return Err(DgfError::Schema(
                    "NULL partition values are not supported".into(),
                ));
            }
            buckets.entry(r[col].clone()).or_default().push(r.clone());
        }
        let mut partitions = BTreeMap::new();
        for (value, part_rows) in buckets {
            let dir = format!("{}/{partition_col}={value}", desc.location);
            ctx.hdfs.mkdirs(&dir)?;
            let part_desc = TableDesc {
                location: dir.clone(),
                ..(*desc).clone()
            };
            ctx.load_rows(&part_desc, &part_rows, files_per_partition)?;
            partitions.insert(value, dir);
        }
        Ok(PartitionedTable {
            ctx,
            desc,
            partition_col: partition_col.to_owned(),
            partitions,
        })
    }

    /// Number of partitions (directories).
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Splits of the partitions surviving pruning by `query`'s predicate.
    pub fn pruned_splits(&self, query: &Query) -> (Vec<FileSplit>, u64) {
        let range = query.predicate().range_of(&self.partition_col);
        let mut splits = Vec::new();
        let mut total = 0u64;
        for (value, dir) in &self.partitions {
            let part_splits = self.ctx.hdfs.splits_for_dir(dir);
            total += part_splits.len() as u64;
            let keep = match range {
                Some(r) => r.contains(value),
                None => true,
            };
            if keep {
                splits.extend(part_splits);
            }
        }
        (splits, total)
    }
}

/// Query engine over a partitioned table: prune, then scan survivors.
pub struct PartitionEngine {
    table: Arc<PartitionedTable>,
    right: Option<TableRef>,
}

impl PartitionEngine {
    /// An engine over a partitioned table.
    pub fn new(table: Arc<PartitionedTable>) -> Self {
        PartitionEngine { table, right: None }
    }

    /// Attach the dimension table used by join queries.
    pub fn with_right(mut self, right: TableRef) -> Self {
        self.right = Some(right);
        self
    }
}

impl Engine for PartitionEngine {
    fn name(&self) -> String {
        format!("Partition({})", self.table.partition_col)
    }

    fn run(&self, query: &Query) -> Result<EngineRun> {
        let prune_watch = Stopwatch::start();
        let (splits, splits_total) = self.table.pruned_splits(query);
        let index_time = prune_watch.elapsed();

        let ctx = &self.table.ctx;
        let before = ctx.hdfs.stats().snapshot();
        let watch = Stopwatch::start();
        let splits_read = splits.len() as u64;
        let inputs = splits.into_iter().map(ScanInput::FullSplit).collect();
        let result = execute(
            ctx,
            &self.table.desc,
            query,
            self.right.as_deref(),
            inputs,
        )?;
        let delta = ctx.hdfs.stats().snapshot().since(&before);
        Ok(EngineRun {
            result,
            stats: RunStats {
                index_time,
                data_time: watch.elapsed(),
                data_records_read: delta.records_read,
                data_bytes_read: delta.bytes_read,
                splits_total,
                splits_read,
                ..RunStats::default()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::ScanEngine;
    use dgf_common::{Schema, TempDir, ValueType};
    use dgf_mapreduce::MrEngine;
    use dgf_query::{AggFunc, ColumnRange, Predicate};
    use dgf_storage::{HdfsConfig, SimHdfs};

    fn setup() -> (TempDir, Arc<HiveContext>, Vec<Row>) {
        let t = TempDir::new("part").unwrap();
        let h = SimHdfs::new(
            t.path(),
            HdfsConfig {
                block_size: 1024,
                replication: 1,
            },
        )
        .unwrap();
        let ctx = HiveContext::new(h, MrEngine::new(4));
        let rows: Vec<Row> = (0..300)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 6), // partition column: 6 days
                    Value::Float(i as f64),
                ]
            })
            .collect();
        (t, ctx, rows)
    }

    fn schema() -> dgf_common::SchemaRef {
        Arc::new(Schema::from_pairs(&[
            ("user_id", ValueType::Int),
            ("day", ValueType::Int),
            ("power", ValueType::Float),
        ]))
    }

    #[test]
    fn pruning_reads_only_matching_partitions() {
        let (_t, ctx, rows) = setup();
        let pt = PartitionedTable::create(
            Arc::clone(&ctx),
            "meter",
            schema(),
            FileFormat::Text,
            "day",
            &rows,
            1,
        )
        .unwrap();
        assert_eq!(pt.partition_count(), 6);
        let q = Query::Aggregate {
            aggs: vec![AggFunc::Count],
            predicate: Predicate::all()
                .and("day", ColumnRange::half_open(Value::Int(1), Value::Int(3))),
        };
        let run = PartitionEngine::new(Arc::new(pt)).run(&q).unwrap();
        assert_eq!(run.result.into_scalars()[0], Value::Int(100));
        assert_eq!(run.stats.data_records_read, 100); // only 2 of 6 partitions
        assert!(run.stats.splits_read < run.stats.splits_total);
    }

    #[test]
    fn unconstrained_query_scans_everything_and_matches_flat_table() {
        let (_t, ctx, rows) = setup();
        let flat = ctx
            .create_table("flat", schema(), FileFormat::Text)
            .unwrap();
        ctx.load_rows(&flat, &rows, 3).unwrap();
        let pt = PartitionedTable::create(
            Arc::clone(&ctx),
            "meter",
            schema(),
            FileFormat::Text,
            "day",
            &rows,
            1,
        )
        .unwrap();
        let q = Query::GroupBy {
            key: "day".into(),
            aggs: vec![AggFunc::Sum("power".into())],
            predicate: Predicate::all(),
        };
        let a = PartitionEngine::new(Arc::new(pt)).run(&q).unwrap();
        let b = ScanEngine::new(Arc::clone(&ctx), flat).run(&q).unwrap();
        assert!(a
            .result
            .normalized()
            .approx_eq(&b.result.normalized(), 1e-9));
    }

    #[test]
    fn namenode_pressure_grows_with_partitions() {
        let (_t, ctx, rows) = setup();
        let before = ctx.hdfs.namenode_memory_bytes();
        PartitionedTable::create(
            Arc::clone(&ctx),
            "meter",
            schema(),
            FileFormat::Text,
            "user_id", // 300 distinct values = 300 directories
            &rows,
            1,
        )
        .unwrap();
        let after = ctx.hdfs.namenode_memory_bytes();
        let (dirs, files, _) = ctx.hdfs.namenode_objects();
        assert!(dirs > 300);
        assert!(files >= 300);
        // At 150 B per object this is the paper's §2.2 arithmetic.
        assert!(after - before >= 600 * dgf_storage::BYTES_PER_OBJECT);
    }

    #[test]
    fn null_partition_value_rejected() {
        let (_t, ctx, mut rows) = setup();
        rows[0][1] = Value::Null;
        assert!(PartitionedTable::create(
            Arc::clone(&ctx),
            "meter",
            schema(),
            FileFormat::Text,
            "day",
            &rows,
            1,
        )
        .is_err());
    }
}
