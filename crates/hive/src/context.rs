//! The warehouse context: a metastore over a simulated cluster.
//!
//! `HiveContext` plays the role of Hive's metastore + driver: it knows the
//! tables (schema, storage format, HDFS location), owns the MapReduce
//! engine, and offers bulk load helpers. Tables live under
//! `/warehouse/<name>/part-NNNNN`.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use dgf_common::stats::{ScanStats, ScanStatsRef};
use dgf_common::{DgfError, Result, Row, SchemaRef};
use dgf_format::{collect_rows, FileFormat, RcReader, RcWriter, TextReader, TextWriter};
use dgf_mapreduce::MrEngine;
use dgf_storage::{FileSplit, HdfsRef};

/// Execution knobs for the scan path (DESIGN.md §12).
///
/// All default to on; tests and benchmarks flip them to compare the
/// vectorized path against the row-at-a-time oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanOptions {
    /// Drive RCFile scans through decoded [`dgf_common::ColumnBatch`]es
    /// and slice kernels instead of row-at-a-time iteration.
    pub columnar: bool,
    /// Fetch row groups through a background double-buffer thread so
    /// decoding group *N* overlaps reading group *N+1*.
    pub prefetch: bool,
    /// Consult per-slice sidecar indexes (zone maps + hierarchical
    /// bitmaps, DESIGN.md §15) to skip row groups inside boundary
    /// slices. Missing or corrupt sidecars silently degrade to the
    /// unpruned scan.
    pub sidecar: bool,
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions {
            columnar: true,
            prefetch: true,
            sidecar: true,
        }
    }
}

/// Knobs for the concurrent serving frontend (DESIGN.md §13).
///
/// Declared beside [`ScanOptions`] because it is the same kind of
/// engine-facing tuning surface; the serving tier itself lives in
/// `dgf-serve` and consumes this struct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOptions {
    /// Queries the scheduler lets run concurrently; further admitted
    /// queries wait for a slot.
    pub workers: usize,
    /// Admission-control budget: total estimated bytes of in-flight
    /// query state before new arrivals are rejected with backpressure
    /// (the ingest byte-reservation pattern applied to reads).
    pub max_inflight_bytes: u64,
    /// Estimated cost one query reserves against the budget.
    pub query_cost_bytes: u64,
    /// How long a leader read waits to let concurrent queries join its
    /// shared header-fetch batch, in microseconds. `0` disables
    /// batching (every read goes straight through).
    pub batch_window_us: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 4,
            max_inflight_bytes: 64 << 20,
            query_cost_bytes: 1 << 20,
            batch_window_us: 0,
        }
    }
}

/// Descriptor of one table.
#[derive(Debug, Clone)]
pub struct TableDesc {
    /// Table name.
    pub name: String,
    /// Row schema.
    pub schema: SchemaRef,
    /// Storage format.
    pub format: FileFormat,
    /// HDFS directory holding the table's files.
    pub location: String,
    /// Rows per row group (RCFile only).
    pub rows_per_group: usize,
}

/// Shared table handle.
pub type TableRef = Arc<TableDesc>;

/// The warehouse: metastore + cluster + MR engine.
pub struct HiveContext {
    /// The simulated cluster.
    pub hdfs: HdfsRef,
    /// The MapReduce engine queries and index builds run on.
    pub engine: MrEngine,
    /// Lifetime-global columnar scan accounting. Engines snapshot before
    /// a run and diff after, exactly like [`SimHdfs::stats`] I/O counters.
    ///
    /// [`SimHdfs::stats`]: dgf_storage::SimHdfs::stats
    pub scan_stats: ScanStatsRef,
    scan_options: RwLock<ScanOptions>,
    tables: RwLock<HashMap<String, TableRef>>,
}

impl HiveContext {
    /// Create a context over `hdfs`.
    pub fn new(hdfs: HdfsRef, engine: MrEngine) -> Arc<HiveContext> {
        Arc::new(HiveContext {
            hdfs,
            engine,
            scan_stats: ScanStats::new_ref(),
            scan_options: RwLock::new(ScanOptions::default()),
            tables: RwLock::new(HashMap::new()),
        })
    }

    /// The current scan execution knobs.
    pub fn scan_options(&self) -> ScanOptions {
        *self.scan_options.read()
    }

    /// Replace the scan execution knobs (affects subsequent queries).
    pub fn set_scan_options(&self, options: ScanOptions) {
        *self.scan_options.write() = options;
    }

    /// Register a new table at `/warehouse/<name>`.
    pub fn create_table(
        &self,
        name: &str,
        schema: SchemaRef,
        format: FileFormat,
    ) -> Result<TableRef> {
        self.create_table_at(name, schema, format, &format!("/warehouse/{name}"))
    }

    /// Register a new table at an explicit location.
    pub fn create_table_at(
        &self,
        name: &str,
        schema: SchemaRef,
        format: FileFormat,
        location: &str,
    ) -> Result<TableRef> {
        self.create_table_grouped(
            name,
            schema,
            format,
            location,
            dgf_format::DEFAULT_ROWS_PER_GROUP,
        )
    }

    /// Register a new table at an explicit location with an explicit
    /// RCFile row-group size (Text tables carry but ignore it). Derived
    /// tables — an index's reorganized data table — pass their parent's
    /// group size through here so rewritten slices keep the granularity
    /// the operator tuned, instead of silently reverting to the default.
    pub fn create_table_grouped(
        &self,
        name: &str,
        schema: SchemaRef,
        format: FileFormat,
        location: &str,
        rows_per_group: usize,
    ) -> Result<TableRef> {
        let mut tables = self.tables.write();
        if tables.contains_key(name) {
            return Err(DgfError::Schema(format!("table {name:?} already exists")));
        }
        self.hdfs.mkdirs(location)?;
        let desc = Arc::new(TableDesc {
            name: name.to_owned(),
            schema,
            format,
            location: location.to_owned(),
            rows_per_group,
        });
        tables.insert(name.to_owned(), Arc::clone(&desc));
        Ok(desc)
    }

    /// A snapshot of every registered table descriptor.
    pub fn tables_snapshot(&self) -> Vec<TableDesc> {
        self.tables.read().values().map(|t| (**t).clone()).collect()
    }

    /// Register a table restored from a persisted catalog (its files
    /// already exist; nothing is created).
    pub fn register_restored_table(&self, desc: TableDesc) -> Result<TableRef> {
        let mut tables = self.tables.write();
        if tables.contains_key(&desc.name) {
            return Err(DgfError::Schema(format!(
                "table {:?} already exists",
                desc.name
            )));
        }
        let desc = Arc::new(desc);
        tables.insert(desc.name.clone(), Arc::clone(&desc));
        Ok(desc)
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<TableRef> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| DgfError::Schema(format!("no such table {name:?}")))
    }

    /// Drop a table and delete its files.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        if let Some(t) = self.tables.write().remove(name) {
            self.hdfs.delete_tree(&t.location)?;
        }
        Ok(())
    }

    /// Bulk-load rows into `table`, spread over `num_files` sequential
    /// files (row order is preserved — meter data arrives time-ordered and
    /// the paper's real-world dataset is physically sorted by time).
    pub fn load_rows(&self, table: &TableDesc, rows: &[Row], num_files: usize) -> Result<()> {
        let num_files = num_files.max(1);
        let per_file = rows.len().div_ceil(num_files).max(1);
        for (i, chunk) in rows.chunks(per_file).enumerate() {
            let path = format!("{}/part-{i:05}", table.location);
            self.write_file(table, &path, chunk)?;
        }
        Ok(())
    }

    /// Append one new file of rows to a table (incremental load).
    pub fn append_file(&self, table: &TableDesc, file_name: &str, rows: &[Row]) -> Result<String> {
        let path = format!("{}/{file_name}", table.location);
        self.write_file(table, &path, rows)?;
        Ok(path)
    }

    fn write_file(&self, table: &TableDesc, path: &str, rows: &[Row]) -> Result<()> {
        match table.format {
            FileFormat::Text => {
                let mut w = TextWriter::create(&self.hdfs, path)?;
                for r in rows {
                    w.write_row(r)?;
                }
                w.close()?;
            }
            FileFormat::RcFile => {
                let mut w = RcWriter::create(
                    &self.hdfs,
                    path,
                    table.schema.clone(),
                    table.rows_per_group,
                )?;
                for r in rows {
                    w.write_row(r)?;
                }
                w.close()?;
            }
        }
        Ok(())
    }

    /// Input splits for a whole table.
    pub fn table_splits(&self, table: &TableDesc) -> Vec<FileSplit> {
        self.hdfs.splits_for_dir(&table.location)
    }

    /// Total bytes stored by the table.
    pub fn table_size_bytes(&self, table: &TableDesc) -> u64 {
        self.hdfs.dir_size(&table.location)
    }

    /// Read every row of a table (small tables: dimension/index tables).
    pub fn read_all(&self, table: &TableDesc) -> Result<Vec<Row>> {
        let mut out = Vec::new();
        for split in self.table_splits(table) {
            match table.format {
                FileFormat::Text => {
                    let r = TextReader::open(&self.hdfs, table.schema.clone(), &split)?;
                    out.extend(collect_rows(r)?);
                }
                FileFormat::RcFile => {
                    let r = RcReader::open(&self.hdfs, table.schema.clone(), &split)?;
                    out.extend(collect_rows(r)?);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_common::{Schema, TempDir, Value, ValueType};
    use dgf_storage::{HdfsConfig, SimHdfs};

    fn ctx() -> (TempDir, Arc<HiveContext>) {
        let t = TempDir::new("hivectx").unwrap();
        let h = SimHdfs::new(
            t.path(),
            HdfsConfig {
                block_size: 256,
                replication: 1,
            },
        )
        .unwrap();
        (t, HiveContext::new(h, MrEngine::new(2)))
    }

    fn schema() -> SchemaRef {
        Arc::new(Schema::from_pairs(&[
            ("id", ValueType::Int),
            ("v", ValueType::Float),
        ]))
    }

    fn rows(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| vec![Value::Int(i), Value::Float(i as f64)])
            .collect()
    }

    #[test]
    fn create_load_read_text() {
        let (_t, ctx) = ctx();
        let tab = ctx.create_table("t", schema(), FileFormat::Text).unwrap();
        ctx.load_rows(&tab, &rows(100), 4).unwrap();
        assert_eq!(ctx.hdfs.list_files("/warehouse/t").len(), 4);
        let got = ctx.read_all(&tab).unwrap();
        assert_eq!(got.len(), 100);
        assert_eq!(got, rows(100)); // order preserved across sequential files
        assert!(ctx.table_size_bytes(&tab) > 0);
    }

    #[test]
    fn create_load_read_rcfile() {
        let (_t, ctx) = ctx();
        let tab = ctx.create_table("t", schema(), FileFormat::RcFile).unwrap();
        ctx.load_rows(&tab, &rows(50), 2).unwrap();
        let got = ctx.read_all(&tab).unwrap();
        assert_eq!(got.len(), 50);
    }

    #[test]
    fn duplicate_table_rejected() {
        let (_t, ctx) = ctx();
        ctx.create_table("t", schema(), FileFormat::Text).unwrap();
        assert!(ctx.create_table("t", schema(), FileFormat::Text).is_err());
        assert!(ctx.table("t").is_ok());
        assert!(ctx.table("missing").is_err());
    }

    #[test]
    fn append_file_extends_table() {
        let (_t, ctx) = ctx();
        let tab = ctx.create_table("t", schema(), FileFormat::Text).unwrap();
        ctx.load_rows(&tab, &rows(10), 1).unwrap();
        ctx.append_file(&tab, "delta-0", &rows(5)).unwrap();
        assert_eq!(ctx.read_all(&tab).unwrap().len(), 15);
    }

    #[test]
    fn drop_table_removes_files() {
        let (_t, ctx) = ctx();
        let tab = ctx.create_table("t", schema(), FileFormat::Text).unwrap();
        ctx.load_rows(&tab, &rows(10), 1).unwrap();
        ctx.drop_table("t").unwrap();
        assert!(ctx.table("t").is_err());
        assert!(ctx.hdfs.list_files("/warehouse/t").is_empty());
    }

    #[test]
    fn empty_load_creates_single_empty_file() {
        let (_t, ctx) = ctx();
        let tab = ctx.create_table("t", schema(), FileFormat::Text).unwrap();
        ctx.load_rows(&tab, &[], 3).unwrap();
        assert!(ctx.read_all(&tab).unwrap().is_empty());
    }
}
