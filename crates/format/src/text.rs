//! The TextFile format: newline-delimited rows of `|`-separated fields.
//!
//! This is Hive's plain-text storage and the only format DGFIndex supports
//! in the paper ("for now, our DGFIndex only supports TextFile table").
//! Offsets are byte offsets of line starts — the
//! `BLOCK_OFFSET_INSIDE_FILE` a Compact Index records for text tables.
//!
//! Split semantics follow Hadoop's `TextInputFormat`: a reader assigned
//! `[start, end)` skips the partial line at `start` (unless `start` falls on
//! a line boundary) and keeps reading any line that *starts* before `end`,
//! even if it finishes past `end`. The same rule is applied per-range by the
//! slice-skipping reader, which is what lets a Slice straddle two splits and
//! be processed by two different mappers (paper §4.3).

use std::io::{BufReader, Read, Seek, SeekFrom, Write};

use dgf_common::stats::IoStatsRef;
use dgf_common::{format_row, parse_row, Result, Row, SchemaRef};
use dgf_storage::{FileSplit, HdfsRef, HdfsWriter};

use crate::reader::{ByteRange, RecordReader};

/// Writes rows as delimited text lines, tracking the offset of the next row.
#[derive(Debug)]
pub struct TextWriter {
    inner: HdfsWriter,
    stats: IoStatsRef,
}

impl TextWriter {
    /// Create a new text file at `path`.
    pub fn create(hdfs: &HdfsRef, path: &str) -> Result<TextWriter> {
        let stats = hdfs.stats().clone();
        Ok(TextWriter {
            inner: hdfs.create(path)?,
            stats,
        })
    }

    /// Byte offset where the next row will start.
    pub fn offset(&self) -> u64 {
        self.inner.position()
    }

    /// Append one row; returns the offset at which it was written.
    pub fn write_row(&mut self, row: &Row) -> Result<u64> {
        let at = self.offset();
        let mut line = format_row(row);
        line.push('\n');
        self.inner.write_all(line.as_bytes())?;
        self.stats.records_written.inc();
        Ok(at)
    }

    /// Append a pre-formatted line (no trailing newline expected).
    pub fn write_line(&mut self, line: &str) -> Result<u64> {
        let at = self.offset();
        self.inner.write_all(line.as_bytes())?;
        self.inner.write_all(b"\n")?;
        self.stats.records_written.inc();
        Ok(at)
    }

    /// Flush and register the file; returns its final length.
    pub fn close(self) -> Result<u64> {
        self.inner.close()
    }
}

/// Streaming line source over one byte range with Hadoop boundary rules.
struct RangeLines {
    reader: BufReader<dgf_storage::HdfsReader>,
    /// Offset of the next unread byte.
    pos: u64,
    /// Lines starting at or past this offset belong to the next reader.
    end: u64,
    buf: String,
}

impl RangeLines {
    fn open(hdfs: &HdfsRef, path: &str, range: ByteRange) -> Result<RangeLines> {
        let file_len = hdfs.file_len(path)?;
        let mut raw = hdfs.open_reader(path)?;
        let mut start = range.start.min(file_len);
        if start > 0 {
            // Look one byte back: if it is not a newline, the line started
            // in the previous range and is that reader's responsibility.
            raw.seek(SeekFrom::Start(start - 1))?;
            let mut b = [0u8; 1];
            raw.read_exact(&mut b)?;
            let mut reader = BufReader::new(raw);
            if b[0] != b'\n' {
                let mut skipped = String::new();
                let n = read_line(&mut reader, &mut skipped)?;
                start += n;
            }
            return Ok(RangeLines {
                reader,
                pos: start,
                end: range.end.min(file_len),
                buf: String::new(),
            });
        }
        Ok(RangeLines {
            reader: BufReader::new(raw),
            pos: 0,
            end: range.end.min(file_len),
            buf: String::new(),
        })
    }

    /// Next `(line_start_offset, line_without_newline)`.
    fn next_line(&mut self) -> Result<Option<(u64, &str)>> {
        if self.pos >= self.end {
            return Ok(None);
        }
        self.buf.clear();
        let n = read_line(&mut self.reader, &mut self.buf)?;
        if n == 0 {
            return Ok(None);
        }
        let at = self.pos;
        self.pos += n;
        let line = self.buf.trim_end_matches('\n');
        Ok(Some((at, line)))
    }
}

fn read_line<R: std::io::BufRead>(r: &mut R, buf: &mut String) -> Result<u64> {
    let n = r.read_line(buf)?;
    Ok(n as u64)
}

/// Reads one input split of a text file.
pub struct TextReader {
    lines: RangeLines,
    schema: SchemaRef,
    stats: IoStatsRef,
}

impl TextReader {
    /// Open a reader over `split`.
    pub fn open(hdfs: &HdfsRef, schema: SchemaRef, split: &FileSplit) -> Result<TextReader> {
        Ok(TextReader {
            lines: RangeLines::open(
                hdfs,
                &split.path,
                ByteRange::new(split.start, split.end()),
            )?,
            schema,
            stats: hdfs.stats().clone(),
        })
    }

    /// Next `(line_offset, row)` — index construction needs the offsets.
    pub fn next_with_offset(&mut self) -> Result<Option<(u64, Row)>> {
        match self.lines.next_line()? {
            Some((at, line)) => {
                let row = parse_row(line, &self.schema)?;
                self.stats.records_read.inc();
                Ok(Some((at, row)))
            }
            None => Ok(None),
        }
    }
}

impl RecordReader for TextReader {
    fn next_row(&mut self) -> Result<Option<Row>> {
        Ok(self.next_with_offset()?.map(|(_, r)| r))
    }
}

/// Reads only the given byte ranges of a text file — the DGFIndex stage-3
/// "skip the margin between adjacent Slices" reader (paper Figure 7).
pub struct SkippingTextReader {
    hdfs: HdfsRef,
    path: String,
    schema: SchemaRef,
    ranges: std::vec::IntoIter<ByteRange>,
    current: Option<RangeLines>,
    stats: IoStatsRef,
}

impl SkippingTextReader {
    /// Open a reader over `ranges` of `path`. Ranges must be coalesced
    /// (sorted, non-overlapping) — see
    /// [`coalesce_ranges`](crate::reader::coalesce_ranges).
    pub fn open(
        hdfs: &HdfsRef,
        schema: SchemaRef,
        path: &str,
        ranges: Vec<ByteRange>,
    ) -> Result<SkippingTextReader> {
        Ok(SkippingTextReader {
            hdfs: hdfs.clone(),
            path: path.to_owned(),
            schema,
            ranges: ranges.into_iter(),
            current: None,
            stats: hdfs.stats().clone(),
        })
    }
}

impl RecordReader for SkippingTextReader {
    fn next_row(&mut self) -> Result<Option<Row>> {
        loop {
            if self.current.is_none() {
                match self.ranges.next() {
                    Some(r) => {
                        self.current = Some(RangeLines::open(&self.hdfs, &self.path, r)?);
                    }
                    None => return Ok(None),
                }
            }
            match self.current.as_mut().unwrap().next_line()? {
                Some((_, line)) => {
                    let row = parse_row(line, &self.schema)?;
                    self.stats.records_read.inc();
                    return Ok(Some(row));
                }
                None => self.current = None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::collect_rows;
    use dgf_common::{Schema, TempDir, Value, ValueType};
    use dgf_storage::{HdfsConfig, SimHdfs};
    use std::sync::Arc;

    fn schema() -> SchemaRef {
        Arc::new(Schema::from_pairs(&[
            ("id", ValueType::Int),
            ("v", ValueType::Float),
        ]))
    }

    fn cluster(block: u64) -> (TempDir, HdfsRef) {
        let t = TempDir::new("text").unwrap();
        let h = SimHdfs::new(
            t.path(),
            HdfsConfig {
                block_size: block,
                replication: 1,
            },
        )
        .unwrap();
        (t, h)
    }

    fn write_rows(hdfs: &HdfsRef, path: &str, n: i64) -> Vec<u64> {
        let mut w = TextWriter::create(hdfs, path).unwrap();
        let mut offsets = Vec::new();
        for i in 0..n {
            offsets.push(w.write_row(&vec![Value::Int(i), Value::Float(i as f64 / 2.0)]).unwrap());
        }
        w.close().unwrap();
        offsets
    }

    #[test]
    fn whole_file_round_trip() {
        let (_t, h) = cluster(1 << 20);
        write_rows(&h, "/t/f", 10);
        let split = FileSplit::new("/t/f", 0, h.file_len("/t/f").unwrap());
        let rows = collect_rows(TextReader::open(&h, schema(), &split).unwrap()).unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[3][0], Value::Int(3));
        assert_eq!(h.stats().records_read.get(), 10);
    }

    #[test]
    fn splits_partition_lines_exactly_once() {
        // Tiny blocks so lines straddle split boundaries.
        let (_t, h) = cluster(17);
        write_rows(&h, "/t/f", 50);
        let splits = h.splits_for_dir("/t");
        assert!(splits.len() > 3, "want several splits, got {}", splits.len());
        let mut ids = Vec::new();
        for s in &splits {
            for row in collect_rows(TextReader::open(&h, schema(), s).unwrap()).unwrap() {
                ids.push(row[0].as_i64().unwrap());
            }
        }
        ids.sort_unstable();
        assert_eq!(ids, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn offsets_match_written_positions() {
        let (_t, h) = cluster(1 << 20);
        let offsets = write_rows(&h, "/t/f", 5);
        let split = FileSplit::new("/t/f", 0, h.file_len("/t/f").unwrap());
        let mut r = TextReader::open(&h, schema(), &split).unwrap();
        let mut got = Vec::new();
        while let Some((at, _)) = r.next_with_offset().unwrap() {
            got.push(at);
        }
        assert_eq!(got, offsets);
    }

    #[test]
    fn skipping_reader_reads_only_requested_ranges() {
        let (_t, h) = cluster(1 << 20);
        let offsets = write_rows(&h, "/t/f", 20);
        let len = h.file_len("/t/f").unwrap();
        // Rows 3..5 and 10..12 (ranges end at the next row's offset).
        let ranges = vec![
            ByteRange::new(offsets[3], offsets[5]),
            ByteRange::new(offsets[10], offsets[12]),
        ];
        let r = SkippingTextReader::open(&h, schema(), "/t/f", ranges).unwrap();
        let rows = collect_rows(r).unwrap();
        let ids: Vec<i64> = rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert_eq!(ids, vec![3, 4, 10, 11]);
        // A full range to file end also works.
        let r = SkippingTextReader::open(
            &h,
            schema(),
            "/t/f",
            vec![ByteRange::new(offsets[18], len)],
        )
        .unwrap();
        assert_eq!(collect_rows(r).unwrap().len(), 2);
    }

    #[test]
    fn range_with_unaligned_start_skips_partial_record() {
        let (_t, h) = cluster(1 << 20);
        let offsets = write_rows(&h, "/t/f", 10);
        // Start mid-record 2: the partial record is skipped, record 3 is first.
        let ranges = vec![ByteRange::new(offsets[2] + 1, offsets[5])];
        let r = SkippingTextReader::open(&h, schema(), "/t/f", ranges).unwrap();
        let ids: Vec<i64> = collect_rows(r)
            .unwrap()
            .iter()
            .map(|r| r[0].as_i64().unwrap())
            .collect();
        assert_eq!(ids, vec![3, 4]);
    }

    #[test]
    fn slice_straddling_split_boundary_read_exactly_once() {
        // Mimic the paper's "a Slice may stretch across two splits": clip a
        // slice range at an arbitrary boundary and read both halves with
        // separate readers — every record appears exactly once.
        let (_t, h) = cluster(1 << 20);
        let offsets = write_rows(&h, "/t/f", 30);
        let len = h.file_len("/t/f").unwrap();
        let slice = ByteRange::new(offsets[5], offsets[25]);
        for boundary in [offsets[9] + 2, offsets[10], offsets[17] + 5, len / 2] {
            if boundary <= slice.start || boundary >= slice.end {
                continue;
            }
            let part_a = ByteRange::new(slice.start, boundary);
            let part_b = ByteRange::new(boundary, slice.end);
            let mut ids = Vec::new();
            for part in [part_a, part_b] {
                let r = SkippingTextReader::open(&h, schema(), "/t/f", vec![part]).unwrap();
                for row in collect_rows(r).unwrap() {
                    ids.push(row[0].as_i64().unwrap());
                }
            }
            ids.sort_unstable();
            assert_eq!(ids, (5..25).collect::<Vec<_>>(), "boundary {boundary}");
        }
    }

    #[test]
    fn empty_split_yields_nothing() {
        let (_t, h) = cluster(1 << 20);
        write_rows(&h, "/t/f", 3);
        let split = FileSplit::new("/t/f", 0, 0);
        let rows = collect_rows(TextReader::open(&h, schema(), &split).unwrap()).unwrap();
        assert!(rows.is_empty());
    }
}
