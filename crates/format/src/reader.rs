//! Record reader abstractions shared by all file formats.

use dgf_common::{Result, Row};

/// A pull-based reader of rows from (part of) a file.
///
/// Implementations charge `IoStats::records_read` once per returned row —
/// this is the measurement behind the paper's Tables 3, 4 and 6.
pub trait RecordReader {
    /// The next record, or `None` when the reader's range is exhausted.
    fn next_row(&mut self) -> Result<Option<Row>>;

    /// Read the next record into `row`, reusing its allocation; returns
    /// `false` when the reader is exhausted (`row` is left unspecified).
    ///
    /// The default just forwards to [`Self::next_row`]; readers that decode
    /// into columnar batches override it to refill the scratch row in place,
    /// which keeps the row-at-a-time scan loop allocation-free per record.
    fn next_row_into(&mut self, row: &mut Row) -> Result<bool> {
        match self.next_row()? {
            Some(r) => {
                *row = r;
                Ok(true)
            }
            None => Ok(false),
        }
    }
}

/// A byte range of one file that a skipping reader should materialize.
///
/// Half-open `[start, end)`. The paper's Figure 6 uses inclusive
/// `[start, last_record_start]` slice bounds; this codebase uses half-open
/// byte ranges throughout, which compose with split clipping without
/// special cases (the conversion is done where slices are recorded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByteRange {
    /// First byte of the range.
    pub start: u64,
    /// One past the last byte.
    pub end: u64,
}

impl ByteRange {
    /// Construct a range; `start <= end` is required.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(start <= end, "byte range reversed: {start}..{end}");
        ByteRange { start, end }
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Intersection with another range, if non-empty.
    pub fn intersect(&self, other: &ByteRange) -> Option<ByteRange> {
        let s = self.start.max(other.start);
        let e = self.end.min(other.end);
        (s < e).then(|| ByteRange::new(s, e))
    }
}

/// Merge overlapping or adjacent ranges into a minimal sorted list.
///
/// The DGFIndex planner produces one range per query-related slice; adjacent
/// slices in the same file coalesce so the skipping reader issues fewer
/// seeks.
pub fn coalesce_ranges(mut ranges: Vec<ByteRange>) -> Vec<ByteRange> {
    ranges.retain(|r| !r.is_empty());
    ranges.sort_by_key(|r| (r.start, r.end));
    let mut out: Vec<ByteRange> = Vec::with_capacity(ranges.len());
    for r in ranges {
        match out.last_mut() {
            Some(last) if r.start <= last.end => last.end = last.end.max(r.end),
            _ => out.push(r),
        }
    }
    out
}

/// Drain a reader into a vector (tests and small examples).
pub fn collect_rows<R: RecordReader>(mut reader: R) -> Result<Vec<Row>> {
    let mut out = Vec::new();
    while let Some(row) = reader.next_row()? {
        out.push(row);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_ranges() {
        let a = ByteRange::new(0, 10);
        let b = ByteRange::new(5, 15);
        assert_eq!(a.intersect(&b), Some(ByteRange::new(5, 10)));
        assert_eq!(a.intersect(&ByteRange::new(10, 20)), None);
        assert_eq!(a.intersect(&ByteRange::new(2, 3)), Some(ByteRange::new(2, 3)));
    }

    #[test]
    fn coalesce_merges_overlaps_and_adjacency() {
        let got = coalesce_ranges(vec![
            ByteRange::new(10, 20),
            ByteRange::new(0, 5),
            ByteRange::new(5, 10),
            ByteRange::new(40, 50),
            ByteRange::new(45, 60),
            ByteRange::new(30, 30), // empty, dropped
        ]);
        assert_eq!(
            got,
            vec![ByteRange::new(0, 20), ByteRange::new(40, 60)]
        );
    }

    #[test]
    #[should_panic(expected = "reversed")]
    fn reversed_range_panics() {
        ByteRange::new(5, 1);
    }
}
