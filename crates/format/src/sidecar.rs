//! Per-slice sidecar index: zone maps + hierarchical bitmaps for
//! sub-slice skipping (DESIGN.md §15).
//!
//! A sidecar is a small checksummed file written next to each
//! RCFile-format slice file (`<slice>.scx`). It records, per row group,
//! a **zone map** for every column — min/max of the non-null values plus
//! a null count — and, for low-cardinality columns, a two-level
//! **hierarchical bitmap**: level 1 marks which groups contain each
//! distinct value at all, level 0 stores the exact row positions inside
//! each such group. Both levels use word-aligned run compression over
//! the plain [`Bitmap`].
//!
//! The planner uses sidecars to skip row groups of boundary slices that
//! provably hold no matching row (zone maps work for *any* column, not
//! just grid dimensions) and to hand residual per-group row bitmaps to
//! the scan. A sidecar is strictly an accelerator: when it is missing,
//! stale (recorded data length no longer matches the file) or fails its
//! checksum, readers fall back to the full group scan and the answer is
//! unchanged.

use std::collections::BTreeMap;

use dgf_common::codec::{self, Decoder};
use dgf_common::{DgfError, Result, Row, Value};

use crate::bitmap::Bitmap;

/// File-name suffix of sidecar files, appended to the slice file path.
pub const SIDECAR_SUFFIX: &str = ".scx";

/// Distinct values per column above which hierarchical bitmaps are
/// dropped for that column (zone maps are always kept). Matches the
/// paper-era bitmap-index sweet spot: region/status-style columns.
pub const DEFAULT_BITMAP_CARDINALITY_CAP: usize = 24;

const MAGIC: &[u8; 4] = b"DGSC";
const VERSION: u32 = 1;

/// The sidecar path of a slice data file.
pub fn sidecar_path(data_path: &str) -> String {
    format!("{data_path}{SIDECAR_SUFFIX}")
}

/// Whether `path` names a sidecar file (used to keep sidecars out of
/// data-file split enumeration).
pub fn is_sidecar_path(path: &str) -> bool {
    path.ends_with(SIDECAR_SUFFIX)
}

/// A word-aligned run-compressed bitmap (WAH-style): maximal runs of
/// all-zero or all-one 64-bit words collapse to a counted fill token,
/// everything else is stored as literal words.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompressedBitmap {
    tokens: Vec<u8>,
}

const TOKEN_ZERO_RUN: u8 = 0;
const TOKEN_ONE_RUN: u8 = 1;
const TOKEN_LITERALS: u8 = 2;

impl CompressedBitmap {
    /// Compress `bitmap`. Trailing all-zero words are dropped first, so
    /// logically equal bitmaps compress identically.
    pub fn compress(bitmap: &Bitmap) -> CompressedBitmap {
        let mut words: Vec<u64> = bitmap
            .to_bytes()
            .chunks(8)
            .map(|c| {
                let mut w = [0u8; 8];
                w[..c.len()].copy_from_slice(c);
                u64::from_le_bytes(w)
            })
            .collect();
        while words.last() == Some(&0) {
            words.pop();
        }
        let mut tokens = Vec::new();
        let mut i = 0;
        while i < words.len() {
            let w = words[i];
            if w == 0 || w == u64::MAX {
                let mut n = 1u32;
                while i + (n as usize) < words.len() && words[i + n as usize] == w {
                    n += 1;
                }
                tokens.push(if w == 0 { TOKEN_ZERO_RUN } else { TOKEN_ONE_RUN });
                codec::put_u32(&mut tokens, n);
                i += n as usize;
            } else {
                let start = i;
                while i < words.len() && words[i] != 0 && words[i] != u64::MAX {
                    i += 1;
                }
                tokens.push(TOKEN_LITERALS);
                codec::put_u32(&mut tokens, (i - start) as u32);
                for lw in &words[start..i] {
                    tokens.extend_from_slice(&lw.to_le_bytes());
                }
            }
        }
        CompressedBitmap { tokens }
    }

    /// Expand back into a plain [`Bitmap`].
    pub fn decompress(&self) -> Result<Bitmap> {
        let mut dec = Decoder::new(&self.tokens);
        let mut bytes: Vec<u8> = Vec::new();
        while dec.remaining() > 0 {
            let tag = dec.u8()?;
            let n = dec.u32()? as usize;
            match tag {
                TOKEN_ZERO_RUN => bytes.extend(std::iter::repeat_n(0u8, n * 8)),
                TOKEN_ONE_RUN => bytes.extend(std::iter::repeat_n(0xffu8, n * 8)),
                TOKEN_LITERALS => {
                    for _ in 0..n {
                        bytes.extend_from_slice(&dec.u64()?.to_le_bytes());
                    }
                }
                other => {
                    return Err(DgfError::Corrupt(format!(
                        "sidecar bitmap: unknown run token {other}"
                    )))
                }
            }
        }
        Ok(Bitmap::from_bytes(&bytes))
    }

    /// Compressed size in bytes.
    pub fn compressed_len(&self) -> usize {
        self.tokens.len()
    }

    fn encode_into(&self, buf: &mut Vec<u8>) {
        codec::put_bytes(buf, &self.tokens);
    }

    fn decode_from(dec: &mut Decoder<'_>) -> Result<CompressedBitmap> {
        Ok(CompressedBitmap {
            tokens: dec.bytes()?.to_vec(),
        })
    }
}

/// Zone map of one column over one row group.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnZone {
    /// Min and max of the group's non-null values; `None` when every
    /// value is null.
    pub min_max: Option<(Value, Value)>,
    /// Number of null values in the group.
    pub null_count: u64,
}

impl ColumnZone {
    fn empty() -> ColumnZone {
        ColumnZone {
            min_max: None,
            null_count: 0,
        }
    }

    fn observe(&mut self, v: &Value) {
        if v.is_null() {
            self.null_count += 1;
            return;
        }
        match &mut self.min_max {
            None => self.min_max = Some((v.clone(), v.clone())),
            Some((min, max)) => {
                if v < min {
                    *min = v.clone();
                }
                if v > max {
                    *max = v.clone();
                }
            }
        }
    }
}

/// Zone maps and shape of one row group.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupZones {
    /// Start offset of the group frame in the data file.
    pub offset: u64,
    /// Byte length of the group frame (length prefix + payload).
    pub bytes: u64,
    /// Rows in the group.
    pub rows: u32,
    /// One zone per column, in schema order.
    pub zones: Vec<ColumnZone>,
}

/// Hierarchical bitmap of one distinct value of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueBitmap {
    /// The value.
    pub value: Value,
    /// Level 1: ordinals (not offsets) of groups containing the value.
    pub groups: CompressedBitmap,
    /// Level 0: `(group ordinal, rows holding the value)`.
    pub rows: Vec<(u32, CompressedBitmap)>,
}

/// All hierarchical bitmaps of one low-cardinality column.
#[derive(Debug, Clone, PartialEq)]
pub struct BitmapColumn {
    /// Column index in the sidecar's `columns` list (schema order).
    pub column: u32,
    /// One entry per distinct non-null value, in value order.
    pub values: Vec<ValueBitmap>,
}

/// The decoded sidecar of one slice data file.
#[derive(Debug, Clone, PartialEq)]
pub struct SliceSidecar {
    /// Byte length of the data file the sidecar describes; a mismatch
    /// with the live file marks the sidecar stale.
    pub data_len: u64,
    /// Column names, in schema order.
    pub columns: Vec<String>,
    /// Per-group zone maps, in file order.
    pub groups: Vec<GroupZones>,
    /// Hierarchical bitmaps of the low-cardinality columns.
    pub bitmap_columns: Vec<BitmapColumn>,
}

impl SliceSidecar {
    /// Serialize with magic, version and an FNV-1a checksum trailer.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        codec::put_u32(&mut buf, VERSION);
        codec::put_u64(&mut buf, self.data_len);
        codec::put_u32(&mut buf, self.columns.len() as u32);
        for c in &self.columns {
            codec::put_str(&mut buf, c);
        }
        codec::put_u32(&mut buf, self.groups.len() as u32);
        for g in &self.groups {
            codec::put_u64(&mut buf, g.offset);
            codec::put_u64(&mut buf, g.bytes);
            codec::put_u32(&mut buf, g.rows);
            for z in &g.zones {
                match &z.min_max {
                    None => buf.push(0),
                    Some((min, max)) => {
                        buf.push(1);
                        codec::put_value(&mut buf, min);
                        codec::put_value(&mut buf, max);
                    }
                }
                codec::put_u64(&mut buf, z.null_count);
            }
        }
        codec::put_u32(&mut buf, self.bitmap_columns.len() as u32);
        for bc in &self.bitmap_columns {
            codec::put_u32(&mut buf, bc.column);
            codec::put_u32(&mut buf, bc.values.len() as u32);
            for vb in &bc.values {
                codec::put_value(&mut buf, &vb.value);
                vb.groups.encode_into(&mut buf);
                codec::put_u32(&mut buf, vb.rows.len() as u32);
                for (ordinal, rows) in &vb.rows {
                    codec::put_u32(&mut buf, *ordinal);
                    rows.encode_into(&mut buf);
                }
            }
        }
        let checksum = codec::fnv1a(&buf);
        codec::put_u64(&mut buf, checksum);
        buf
    }

    /// Decode and verify; any mismatch (magic, version, checksum,
    /// truncation) is [`DgfError::Corrupt`] so callers degrade to the
    /// unpruned scan.
    pub fn decode(bytes: &[u8]) -> Result<SliceSidecar> {
        if bytes.len() < MAGIC.len() + 12 || &bytes[..4] != MAGIC {
            return Err(DgfError::Corrupt("sidecar: bad magic".into()));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
        if codec::fnv1a(body) != stored {
            return Err(DgfError::Corrupt("sidecar: checksum mismatch".into()));
        }
        let mut dec = Decoder::new(&body[4..]);
        let version = dec.u32()?;
        if version != VERSION {
            return Err(DgfError::Corrupt(format!(
                "sidecar: unsupported version {version}"
            )));
        }
        let data_len = dec.u64()?;
        let n_cols = dec.u32()? as usize;
        let mut columns = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            columns.push(dec.str()?.to_owned());
        }
        let n_groups = dec.u32()? as usize;
        let mut groups = Vec::with_capacity(n_groups);
        for _ in 0..n_groups {
            let offset = dec.u64()?;
            let bytes = dec.u64()?;
            let rows = dec.u32()?;
            let mut zones = Vec::with_capacity(n_cols);
            for _ in 0..n_cols {
                let min_max = match dec.u8()? {
                    0 => None,
                    _ => Some((codec::get_value(&mut dec)?, codec::get_value(&mut dec)?)),
                };
                zones.push(ColumnZone {
                    min_max,
                    null_count: dec.u64()?,
                });
            }
            groups.push(GroupZones {
                offset,
                bytes,
                rows,
                zones,
            });
        }
        let n_bitmap_cols = dec.u32()? as usize;
        let mut bitmap_columns = Vec::with_capacity(n_bitmap_cols);
        for _ in 0..n_bitmap_cols {
            let column = dec.u32()?;
            let n_values = dec.u32()? as usize;
            let mut values = Vec::with_capacity(n_values);
            for _ in 0..n_values {
                let value = codec::get_value(&mut dec)?;
                let group_bits = CompressedBitmap::decode_from(&mut dec)?;
                let n_rows = dec.u32()? as usize;
                let mut rows = Vec::with_capacity(n_rows);
                for _ in 0..n_rows {
                    let ordinal = dec.u32()?;
                    rows.push((ordinal, CompressedBitmap::decode_from(&mut dec)?));
                }
                values.push(ValueBitmap {
                    value,
                    groups: group_bits,
                    rows,
                });
            }
            bitmap_columns.push(BitmapColumn { column, values });
        }
        Ok(SliceSidecar {
            data_len,
            columns,
            groups,
            bitmap_columns,
        })
    }

    /// Find the hierarchical bitmaps of a column, by sidecar ordinal.
    pub fn bitmap_column(&self, column: usize) -> Option<&BitmapColumn> {
        self.bitmap_columns
            .iter()
            .find(|bc| bc.column as usize == column)
    }
}

/// Streaming sidecar accumulator used at slice-write time.
///
/// Call [`observe`](Self::observe) for every row,
/// [`finish_group`](Self::finish_group) whenever the slice writer
/// flushes a row group (with the group's start offset and byte length),
/// and [`finish`](Self::finish) once the data file is closed.
#[derive(Debug)]
pub struct SidecarBuilder {
    columns: Vec<String>,
    cap: usize,
    groups: Vec<GroupZones>,
    cur_zones: Vec<ColumnZone>,
    cur_rows: u32,
    /// Per column: distinct value → rows of the *current* group.
    cur_values: Vec<BTreeMap<Value, Bitmap>>,
    /// Per column: distinct value → finished `(ordinal, rows)` bitmaps.
    file_values: Vec<BTreeMap<Value, Vec<(u32, Bitmap)>>>,
    /// Bitmap tracking still on (cardinality under the cap) per column.
    enabled: Vec<bool>,
}

impl SidecarBuilder {
    /// A builder over the given schema column names, with the default
    /// cardinality cap.
    pub fn new(columns: Vec<String>) -> SidecarBuilder {
        SidecarBuilder::with_cardinality_cap(columns, DEFAULT_BITMAP_CARDINALITY_CAP)
    }

    /// A builder with an explicit cardinality cap for bitmap columns.
    pub fn with_cardinality_cap(columns: Vec<String>, cap: usize) -> SidecarBuilder {
        let n = columns.len();
        SidecarBuilder {
            columns,
            cap,
            groups: Vec::new(),
            cur_zones: vec![ColumnZone::empty(); n],
            cur_rows: 0,
            cur_values: vec![BTreeMap::new(); n],
            file_values: vec![BTreeMap::new(); n],
            enabled: vec![true; n],
        }
    }

    /// Fold one row into the current group's zones and bitmaps.
    pub fn observe(&mut self, row: &Row) {
        let r = self.cur_rows as usize;
        for c in 0..self.cur_zones.len() {
            let Some(v) = row.get(c) else { continue };
            self.cur_zones[c].observe(v);
            if self.enabled[c] && !v.is_null() {
                self.cur_values[c].entry(v.clone()).or_default().set(r);
                // Distinct count is checked against the *union* of the
                // file map and this group's new keys at group close; the
                // in-group check just bounds memory while the group fills.
                if self.cur_values[c].len() > self.cap {
                    self.disable_column(c);
                }
            }
        }
        self.cur_rows += 1;
    }

    fn disable_column(&mut self, c: usize) {
        self.enabled[c] = false;
        self.cur_values[c].clear();
        self.file_values[c].clear();
    }

    /// Close the current group: the slice writer flushed a row group
    /// starting at `offset` spanning `bytes` bytes. No-op when no rows
    /// were observed since the last group.
    pub fn finish_group(&mut self, offset: u64, bytes: u64) {
        if self.cur_rows == 0 {
            return;
        }
        let ordinal = self.groups.len() as u32;
        self.groups.push(GroupZones {
            offset,
            bytes,
            rows: self.cur_rows,
            zones: std::mem::replace(
                &mut self.cur_zones,
                vec![ColumnZone::empty(); self.columns.len()],
            ),
        });
        for c in 0..self.columns.len() {
            if !self.enabled[c] {
                continue;
            }
            for (v, bits) in std::mem::take(&mut self.cur_values[c]) {
                self.file_values[c].entry(v).or_default().push((ordinal, bits));
            }
            if self.file_values[c].len() > self.cap {
                self.disable_column(c);
            }
        }
        self.cur_rows = 0;
    }

    /// Build the sidecar. `data_len` is the closed data file's length.
    pub fn finish(mut self, data_len: u64) -> SliceSidecar {
        let mut bitmap_columns = Vec::new();
        for c in 0..self.columns.len() {
            if !self.enabled[c] || self.file_values[c].is_empty() {
                continue;
            }
            let mut values = Vec::with_capacity(self.file_values[c].len());
            for (value, groups) in std::mem::take(&mut self.file_values[c]) {
                let level1: Bitmap = groups.iter().map(|(o, _)| *o as usize).collect();
                values.push(ValueBitmap {
                    value,
                    groups: CompressedBitmap::compress(&level1),
                    rows: groups
                        .into_iter()
                        .map(|(o, b)| (o, CompressedBitmap::compress(&b)))
                        .collect(),
                });
            }
            bitmap_columns.push(BitmapColumn {
                column: c as u32,
                values,
            });
        }
        SliceSidecar {
            data_len,
            columns: self.columns,
            groups: self.groups,
            bitmap_columns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bm(bits: &[usize]) -> Bitmap {
        bits.iter().copied().collect()
    }

    #[test]
    fn compressed_bitmap_round_trip() {
        for bits in [
            vec![],
            vec![0usize],
            vec![63, 64, 65],
            (0..640).collect::<Vec<_>>(),           // ten all-one words
            (0..640).step_by(3).collect::<Vec<_>>(), // literal words
            vec![5, 1000],                           // zero-run in the middle
        ] {
            let b = bm(&bits);
            let c = CompressedBitmap::compress(&b);
            assert_eq!(c.decompress().unwrap(), b, "bits {bits:?}");
        }
    }

    #[test]
    fn compression_collapses_runs() {
        let dense: Bitmap = (0..64 * 100).collect();
        let c = CompressedBitmap::compress(&dense);
        assert!(
            c.compressed_len() < 16,
            "100 all-one words should compress to one fill token, got {}",
            c.compressed_len()
        );
        let sparse = bm(&[64 * 99]);
        let c = CompressedBitmap::compress(&sparse);
        assert!(c.compressed_len() < 32);
    }

    fn sample_sidecar() -> SliceSidecar {
        let mut b = SidecarBuilder::with_cardinality_cap(
            vec!["id".into(), "region".into(), "power".into()],
            4,
        );
        for i in 0..10i64 {
            b.observe(&vec![
                Value::Int(i),
                Value::Int(i % 3),
                if i == 4 { Value::Null } else { Value::Float(i as f64) },
            ]);
            if i == 4 {
                b.finish_group(0, 100);
            }
        }
        b.finish_group(100, 120);
        b.finish(220)
    }

    #[test]
    fn builder_zones_and_bitmaps() {
        let sc = sample_sidecar();
        assert_eq!(sc.groups.len(), 2);
        assert_eq!(sc.groups[0].rows, 5);
        assert_eq!(sc.groups[1].offset, 100);
        assert_eq!(
            sc.groups[0].zones[0].min_max,
            Some((Value::Int(0), Value::Int(4)))
        );
        assert_eq!(sc.groups[0].zones[2].null_count, 1);
        assert_eq!(
            sc.groups[0].zones[2].min_max,
            Some((Value::Float(0.0), Value::Float(3.0)))
        );
        // `id` has 10 distinct values over cap 4 → dropped; `region` has 3.
        let region = sc.bitmap_column(1).expect("region bitmaps kept");
        assert!(sc.bitmap_column(0).is_none());
        assert_eq!(region.values.len(), 3);
        let v1 = region
            .values
            .iter()
            .find(|v| v.value == Value::Int(1))
            .unwrap();
        // Value 1 at rows 1,4 of group 0 and rows 2(=7),0(=5)... rows are
        // group-relative: group 1 holds ids 5..10, so region 1 at ids 7 → row 2.
        assert_eq!(v1.groups.decompress().unwrap(), bm(&[0, 1]));
        assert_eq!(v1.rows[0].1.decompress().unwrap(), bm(&[1, 4]));
        assert_eq!(v1.rows[1].1.decompress().unwrap(), bm(&[2]));
    }

    #[test]
    fn encode_decode_round_trip() {
        let sc = sample_sidecar();
        let bytes = sc.encode();
        let back = SliceSidecar::decode(&bytes).unwrap();
        assert_eq!(back, sc);
        assert_eq!(back.data_len, 220);
    }

    #[test]
    fn corruption_detected() {
        let sc = sample_sidecar();
        let mut bytes = sc.encode();
        // Flip one payload byte: checksum must catch it.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(SliceSidecar::decode(&bytes).is_err());
        // Truncation.
        let bytes = sc.encode();
        assert!(SliceSidecar::decode(&bytes[..bytes.len() - 3]).is_err());
        // Bad magic.
        let mut bytes = sc.encode();
        bytes[0] = b'X';
        assert!(SliceSidecar::decode(&bytes).is_err());
    }

    #[test]
    fn all_null_column_zone() {
        let mut b = SidecarBuilder::new(vec!["v".into()]);
        b.observe(&vec![Value::Null]);
        b.observe(&vec![Value::Null]);
        b.finish_group(0, 10);
        let sc = b.finish(10);
        assert_eq!(sc.groups[0].zones[0].min_max, None);
        assert_eq!(sc.groups[0].zones[0].null_count, 2);
        // Null is never bitmap-indexed.
        assert!(sc.bitmap_columns.is_empty());
    }

    #[test]
    fn sidecar_path_helpers() {
        assert_eq!(sidecar_path("/d/part-r-0"), "/d/part-r-0.scx");
        assert!(is_sidecar_path("/d/part-r-0.scx"));
        assert!(!is_sidecar_path("/d/part-r-0"));
    }
}
