//! A plain fixed-size bitmap, used by the Bitmap Index to mark matching
//! rows inside an RCFile row group (paper §2.2: "it stores the offset of
//! every row in the block as a bitmap").

/// A growable bitmap over row indexes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
}

impl Bitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        Bitmap::default()
    }

    /// A bitmap with capacity for `bits` pre-allocated.
    pub fn with_capacity(bits: usize) -> Self {
        Bitmap {
            words: Vec::with_capacity(bits.div_ceil(64)),
        }
    }

    /// Set bit `i`.
    pub fn set(&mut self, i: usize) {
        let w = i / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1 << (i % 64);
    }

    /// Whether bit `i` is set.
    pub fn get(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1 << (i % 64)) != 0)
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Bitwise OR with another bitmap.
    pub fn union_with(&mut self, other: &Bitmap) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Bitwise AND with another bitmap.
    pub fn intersect_with(&mut self, other: &Bitmap) {
        for (i, a) in self.words.iter_mut().enumerate() {
            *a &= other.words.get(i).copied().unwrap_or(0);
        }
    }

    /// Number of set bits strictly below index `i` (the classic
    /// succinct-structure `rank` operation). Pruned scans use it to map
    /// a row's position inside a compacted batch back to its original
    /// group-relative index without materializing an index vector.
    pub fn rank(&self, i: usize) -> usize {
        let w = i / 64;
        let full: usize = self
            .words
            .iter()
            .take(w)
            .map(|x| x.count_ones() as usize)
            .sum();
        let partial = match self.words.get(w) {
            Some(word) if !i.is_multiple_of(64) => {
                (word & ((1u64 << (i % 64)) - 1)).count_ones() as usize
            }
            _ => 0,
        };
        full + partial
    }

    /// Iterate over set bit indexes in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            let mut w = *w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + bit)
            })
        })
    }

    /// Serialize as `u64` little-endian words.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.words.len() * 8);
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Deserialize from [`to_bytes`](Self::to_bytes) output.
    pub fn from_bytes(bytes: &[u8]) -> Bitmap {
        let words = bytes
            .chunks(8)
            .map(|c| {
                let mut w = [0u8; 8];
                w[..c.len()].copy_from_slice(c);
                u64::from_le_bytes(w)
            })
            .collect();
        Bitmap { words }
    }
}

impl FromIterator<usize> for Bitmap {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut b = Bitmap::new();
        for i in iter {
            b.set(i);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_count() {
        let mut b = Bitmap::new();
        assert!(!b.get(0));
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(1000);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(1000));
        assert!(!b.get(1));
        assert_eq!(b.count(), 4);
        assert!(!b.is_empty());
    }

    #[test]
    fn iter_ascending() {
        let b: Bitmap = [5usize, 1, 64, 128, 65].into_iter().collect();
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![1, 5, 64, 65, 128]);
    }

    #[test]
    fn union_and_intersection() {
        let a: Bitmap = [1usize, 2, 100].into_iter().collect();
        let b: Bitmap = [2usize, 3].into_iter().collect();
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 100]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn bytes_round_trip() {
        let b: Bitmap = [0usize, 7, 200].into_iter().collect();
        let r = Bitmap::from_bytes(&b.to_bytes());
        assert_eq!(b, r);
    }

    #[test]
    fn rank_counts_bits_below() {
        let b: Bitmap = [0usize, 3, 63, 64, 130].into_iter().collect();
        assert_eq!(b.rank(0), 0);
        assert_eq!(b.rank(1), 1);
        assert_eq!(b.rank(3), 1);
        assert_eq!(b.rank(4), 2);
        assert_eq!(b.rank(63), 2);
        assert_eq!(b.rank(64), 3);
        assert_eq!(b.rank(65), 4);
        assert_eq!(b.rank(130), 4);
        assert_eq!(b.rank(131), 5);
        assert_eq!(b.rank(10_000), 5); // past the end: total count
        // rank agrees with iter() on every prefix.
        for i in 0..200 {
            assert_eq!(b.rank(i), b.iter().filter(|&x| x < i).count());
        }
    }

    #[test]
    fn empty_bitmap() {
        let b = Bitmap::new();
        assert!(b.is_empty());
        assert_eq!(b.count(), 0);
        assert_eq!(b.iter().count(), 0);
        assert!(b.to_bytes().is_empty());
    }
}
