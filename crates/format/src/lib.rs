//! # dgf-format
//!
//! Hive-style file formats over [`dgf_storage`]:
//!
//! * [`text`] — newline-delimited TextFile, Hadoop split semantics, and the
//!   slice-skipping reader that implements DGFIndex's third query stage.
//! * [`rcfile`] — a row-group columnar RCFile analogue with a footer
//!   directory, column projection, and per-group row-bitmap filtering for
//!   the Bitmap Index.
//! * [`bitmap`] — the row bitmap itself.
//! * [`sidecar`] — the per-slice sidecar index: zone maps plus
//!   hierarchical compressed bitmaps for sub-slice skipping.
//! * [`reader`] — the [`RecordReader`] trait, [`ByteRange`], and range
//!   coalescing.
//!
//! Offsets follow Hive's `BLOCK_OFFSET_INSIDE_FILE`: line start for text,
//! row-group start for RCFile (paper §2.2).

#![warn(missing_docs)]

pub mod bitmap;
pub mod rcfile;
pub mod reader;
pub mod sidecar;
pub mod text;

pub use bitmap::Bitmap;
pub use rcfile::{read_group_offsets, RcReader, RcWriter, DEFAULT_ROWS_PER_GROUP};
pub use reader::{coalesce_ranges, collect_rows, ByteRange, RecordReader};
pub use sidecar::{
    is_sidecar_path, sidecar_path, CompressedBitmap, SidecarBuilder, SliceSidecar,
};
pub use text::{SkippingTextReader, TextReader, TextWriter};

/// The on-disk layout of a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileFormat {
    /// Newline-delimited text (`|` field separator).
    Text,
    /// Row-group columnar binary.
    RcFile,
}

impl std::fmt::Display for FileFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FileFormat::Text => "TextFile",
            FileFormat::RcFile => "RCFile",
        })
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use dgf_common::{Schema, TempDir, Value, ValueType};
    use dgf_storage::{HdfsConfig, SimHdfs};
    use proptest::prelude::*;
    use std::sync::Arc;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Reading a text file through arbitrary split boundaries yields
        /// every row exactly once, in file order within each split.
        #[test]
        fn text_splits_are_a_partition(
            n_rows in 1i64..120,
            block in 8u64..200,
        ) {
            let t = TempDir::new("fmt-prop").unwrap();
            let h = SimHdfs::new(t.path(), HdfsConfig { block_size: block, replication: 1 }).unwrap();
            let schema = Arc::new(Schema::from_pairs(&[("id", ValueType::Int)]));
            let mut w = TextWriter::create(&h, "/t/f").unwrap();
            for i in 0..n_rows {
                w.write_row(&vec![Value::Int(i)]).unwrap();
            }
            w.close().unwrap();
            let mut ids = Vec::new();
            for s in h.splits_for_dir("/t") {
                let r = TextReader::open(&h, schema.clone(), &s).unwrap();
                for row in collect_rows(r).unwrap() {
                    ids.push(row[0].as_i64().unwrap());
                }
            }
            ids.sort_unstable();
            prop_assert_eq!(ids, (0..n_rows).collect::<Vec<_>>());
        }

        /// RCFile round-trips arbitrary rows through arbitrary group sizes
        /// and split boundaries.
        #[test]
        fn rcfile_round_trips(
            n_rows in 0i64..150,
            per_group in 1usize..40,
            block in 32u64..300,
        ) {
            let t = TempDir::new("fmt-prop").unwrap();
            let h = SimHdfs::new(t.path(), HdfsConfig { block_size: block, replication: 1 }).unwrap();
            let schema = Arc::new(Schema::from_pairs(&[
                ("id", ValueType::Int),
                ("f", ValueType::Float),
            ]));
            let mut w = RcWriter::create(&h, "/t/f", schema.clone(), per_group).unwrap();
            for i in 0..n_rows {
                w.write_row(&vec![Value::Int(i), Value::Float(i as f64)]).unwrap();
            }
            w.close().unwrap();
            let mut ids = Vec::new();
            for s in h.splits_for_dir("/t") {
                let r = RcReader::open(&h, schema.clone(), &s).unwrap();
                for row in collect_rows(r).unwrap() {
                    ids.push(row[0].as_i64().unwrap());
                }
            }
            ids.sort_unstable();
            prop_assert_eq!(ids, (0..n_rows).collect::<Vec<_>>());
        }

        /// The skipping reader over ranges covering rows [a, b) returns
        /// exactly those rows, regardless of where ranges are cut.
        #[test]
        fn skipping_reader_matches_requested_rows(
            n_rows in 10i64..80,
            a_frac in 0.0f64..1.0,
            b_frac in 0.0f64..1.0,
            cuts in prop::collection::vec(0.0f64..1.0, 0..4),
        ) {
            let t = TempDir::new("fmt-prop").unwrap();
            let h = SimHdfs::open(t.path()).unwrap();
            let schema = Arc::new(Schema::from_pairs(&[("id", ValueType::Int)]));
            let mut w = TextWriter::create(&h, "/t/f").unwrap();
            let mut offsets = Vec::new();
            for i in 0..n_rows {
                offsets.push(w.write_row(&vec![Value::Int(i)]).unwrap());
            }
            let file_len = w.offset();
            w.close().unwrap();
            offsets.push(file_len);

            let a = ((a_frac * n_rows as f64) as usize).min(n_rows as usize);
            let b = ((b_frac * n_rows as f64) as usize).min(n_rows as usize);
            let (a, b) = if a <= b { (a, b) } else { (b, a) };
            let full = ByteRange::new(offsets[a], offsets[b]);
            // Cut the range at arbitrary byte positions: the per-range
            // boundary rules must keep the union exact.
            let mut bounds: Vec<u64> = cuts
                .iter()
                .map(|f| full.start + (*f * full.len() as f64) as u64)
                .collect();
            bounds.push(full.start);
            bounds.push(full.end);
            bounds.sort_unstable();
            bounds.dedup();
            let mut ids = Vec::new();
            for w in bounds.windows(2) {
                let r = SkippingTextReader::open(
                    &h, schema.clone(), "/t/f",
                    vec![ByteRange::new(w[0], w[1])],
                ).unwrap();
                for row in collect_rows(r).unwrap() {
                    ids.push(row[0].as_i64().unwrap());
                }
            }
            ids.sort_unstable();
            prop_assert_eq!(ids, (a as i64..b as i64).collect::<Vec<_>>());
        }
    }
}
