//! A row-group columnar format modeled on Hive's RCFile.
//!
//! Rows are buffered into **row groups**; each group stores its columns
//! contiguously, so a reader can decode only projected columns. The file
//! ends with a footer directory of group offsets (where Hadoop's RCFile
//! uses inline sync markers, this uses an ORC-style footer — equivalent
//! for split assignment, simpler to seek).
//!
//! The Compact/Bitmap index "block offset" for an RCFile table is the
//! group's start offset; the Bitmap Index additionally stores a per-group
//! row bitmap, which [`RcReader::with_row_filter`] consumes to skip
//! non-matching rows inside a chosen group (paper §2.2).

use std::collections::HashMap;
use std::io::{Read, Seek, SeekFrom, Write};

use dgf_common::batch::{self, Column, ColumnBatch};
use dgf_common::codec::{self, Decoder};
use dgf_common::stats::{IoStatsRef, ScanStatsRef};
use dgf_common::{DgfError, Result, Row, SchemaRef};
use dgf_storage::{FileSplit, FramePrefetcher, HdfsRef, HdfsWriter};

use crate::bitmap::Bitmap;
use crate::reader::RecordReader;

const MAGIC_HEAD: &[u8; 4] = b"DRCF";
const MAGIC_TAIL: &[u8; 4] = b"DRCX";

/// Default rows per group. Hive's RCFile targets 4 MB groups; the default
/// here keeps groups small enough that scaled-down tables still have many.
pub const DEFAULT_ROWS_PER_GROUP: usize = 4096;

/// Writes rows into column-laid-out row groups.
pub struct RcWriter {
    inner: HdfsWriter,
    schema: SchemaRef,
    rows_per_group: usize,
    /// Column buffers for the group being built.
    columns: Vec<Vec<u8>>,
    rows_in_group: u32,
    group_offsets: Vec<u64>,
    stats: IoStatsRef,
}

impl RcWriter {
    /// Create an RCFile at `path`.
    pub fn create(
        hdfs: &HdfsRef,
        path: &str,
        schema: SchemaRef,
        rows_per_group: usize,
    ) -> Result<RcWriter> {
        let stats = hdfs.stats().clone();
        let mut inner = hdfs.create(path)?;
        inner.write_all(MAGIC_HEAD)?;
        Ok(RcWriter {
            inner,
            columns: vec![Vec::new(); schema.len()],
            schema,
            rows_per_group: rows_per_group.max(1),
            rows_in_group: 0,
            group_offsets: Vec::new(),
            stats,
        })
    }

    /// Offset of the row group the next row will be placed in.
    ///
    /// This is the "block offset" a Compact Index records for RCFile
    /// tables: all rows of a group share it.
    pub fn group_offset(&self) -> u64 {
        if self.rows_in_group == 0 {
            self.inner.position()
        } else {
            *self.group_offsets.last().expect("open group has an offset")
        }
    }

    /// Append a row; returns the offset of its row group.
    pub fn write_row(&mut self, row: &Row) -> Result<u64> {
        if row.len() != self.schema.len() {
            return Err(DgfError::Schema(format!(
                "row arity {} != schema arity {}",
                row.len(),
                self.schema.len()
            )));
        }
        if self.rows_in_group == 0 {
            self.group_offsets.push(self.inner.position());
        }
        for (col, v) in self.columns.iter_mut().zip(row) {
            codec::put_value(col, v);
        }
        self.rows_in_group += 1;
        self.stats.records_written.inc();
        let at = *self.group_offsets.last().expect("group open");
        if self.rows_in_group as usize >= self.rows_per_group {
            self.flush_group()?;
        }
        Ok(at)
    }

    /// Force the open row group to disk so the next row starts a new
    /// group at a fresh offset. DGFIndex's RCFile mode calls this at
    /// every GFU boundary so each Slice is a whole number of groups.
    pub fn finish_group(&mut self) -> Result<()> {
        self.flush_group()
    }

    fn flush_group(&mut self) -> Result<()> {
        if self.rows_in_group == 0 {
            return Ok(());
        }
        let mut payload = Vec::new();
        codec::put_u32(&mut payload, self.rows_in_group);
        codec::put_u32(&mut payload, self.columns.len() as u32);
        for col in &mut self.columns {
            codec::put_bytes(&mut payload, col);
            col.clear();
        }
        self.inner.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.inner.write_all(&payload)?;
        self.rows_in_group = 0;
        Ok(())
    }

    /// Flush the open group, write the footer, and close the file.
    pub fn close(mut self) -> Result<u64> {
        self.flush_group()?;
        let footer_start = self.inner.position();
        let mut footer = Vec::new();
        codec::put_u32(&mut footer, self.group_offsets.len() as u32);
        for off in &self.group_offsets {
            codec::put_u64(&mut footer, *off);
        }
        codec::put_u64(&mut footer, footer_start);
        footer.extend_from_slice(MAGIC_TAIL);
        self.inner.write_all(&footer)?;
        self.inner.close()
    }
}

/// Load the footer directory of group offsets.
pub fn read_group_offsets(hdfs: &HdfsRef, path: &str) -> Result<Vec<u64>> {
    let len = hdfs.file_len(path)?;
    if len < 16 {
        return Err(DgfError::Corrupt(format!("{path}: too short for an RCFile")));
    }
    let mut r = hdfs.open_reader(path)?;
    let mut tail = [0u8; 12];
    r.seek(SeekFrom::Start(len - 12))?;
    r.read_exact(&mut tail)?;
    if &tail[8..12] != MAGIC_TAIL {
        return Err(DgfError::Corrupt(format!("{path}: bad RCFile tail magic")));
    }
    let footer_start = u64::from_le_bytes(tail[..8].try_into().unwrap());
    if footer_start >= len {
        return Err(DgfError::Corrupt(format!("{path}: footer offset out of range")));
    }
    r.seek(SeekFrom::Start(footer_start))?;
    let mut footer = vec![0u8; (len - footer_start) as usize];
    r.read_exact(&mut footer)?;
    let mut dec = Decoder::new(&footer);
    let n = dec.u32()? as usize;
    let mut offsets = Vec::with_capacity(n);
    for _ in 0..n {
        offsets.push(dec.u64()?);
    }
    Ok(offsets)
}

/// A decoded batch held while its rows are handed out one at a time.
struct BatchCursor {
    batch: ColumnBatch,
    pos: usize,
}

/// Reads the row groups of one input split.
///
/// Each group is decoded **once** into a [`ColumnBatch`] — typed per-column
/// vectors plus null bitmaps — honoring [`Self::with_projection`] (skipped
/// columns are never decoded) and [`Self::with_row_filter`] (the batch is
/// compacted to surviving rows) at the batch level. Vectorized consumers
/// drain whole batches via [`Self::next_batch`]; the row-at-a-time
/// [`RecordReader`] interface remains and hands out rows from the same
/// decoded batches (DESIGN.md §12).
pub struct RcReader {
    hdfs: HdfsRef,
    path: String,
    schema: SchemaRef,
    group_offsets: std::vec::IntoIter<u64>,
    current: Option<BatchCursor>,
    /// Decode only these column indexes; others become `Value::Null`.
    projection: Option<Vec<usize>>,
    /// Per-group row bitmaps: only set rows are returned.
    row_filter: Option<HashMap<u64, Bitmap>>,
    stats: IoStatsRef,
    /// Columnar-scan accounting, when the caller wants it attributed.
    scan_stats: Option<ScanStatsRef>,
    /// Whether to fetch groups through a background prefetch thread.
    prefetch: bool,
    prefetcher: Option<FramePrefetcher>,
    /// Prefetch wait stats already charged to `scan_stats`.
    waits_charged: (u64, std::time::Duration),
}

impl RcReader {
    /// Open a reader over the groups whose start offset lies in `split`.
    pub fn open(hdfs: &HdfsRef, schema: SchemaRef, split: &FileSplit) -> Result<RcReader> {
        let all = read_group_offsets(hdfs, &split.path)?;
        let mine: Vec<u64> = all
            .into_iter()
            .filter(|o| *o >= split.start && *o < split.end())
            .collect();
        Ok(RcReader {
            hdfs: hdfs.clone(),
            path: split.path.clone(),
            schema,
            group_offsets: mine.into_iter(),
            current: None,
            projection: None,
            row_filter: None,
            stats: hdfs.stats().clone(),
            scan_stats: None,
            prefetch: false,
            prefetcher: None,
            waits_charged: (0, std::time::Duration::ZERO),
        })
    }

    /// Restrict decoding to the given column indexes.
    pub fn with_projection(mut self, cols: Vec<usize>) -> Self {
        self.projection = Some(cols);
        self
    }

    /// Keep only row groups whose start offset lies inside one of the
    /// given byte ranges (the RCFile analogue of the slice-skipping text
    /// reader: DGFIndex slices over RCFile data are group-aligned).
    pub fn with_group_ranges(mut self, ranges: &[crate::reader::ByteRange]) -> Self {
        let keep: Vec<u64> = self
            .group_offsets
            .clone()
            .filter(|o| ranges.iter().any(|r| *o >= r.start && *o < r.end))
            .collect();
        self.group_offsets = keep.into_iter();
        self
    }

    /// Only return rows whose bit is set in their group's bitmap; groups
    /// absent from the map are skipped entirely.
    pub fn with_row_filter(mut self, filter: HashMap<u64, Bitmap>) -> Self {
        self.row_filter = Some(filter);
        self
    }

    /// Fetch row groups through a background double-buffer prefetch thread
    /// (decode group *N* while group *N+1* is read from `SimHdfs`).
    pub fn with_prefetch(mut self) -> Self {
        self.prefetch = true;
        self
    }

    /// Attribute decode time, batch counts and prefetch waits to `stats`.
    pub fn with_scan_stats(mut self, stats: ScanStatsRef) -> Self {
        self.scan_stats = Some(stats);
        self
    }

    /// The offsets still to be fetched, with filtered-out groups pruned.
    fn pending_offsets(&mut self) -> Vec<u64> {
        let filter = self.row_filter.as_ref();
        (&mut self.group_offsets)
            .filter(|off| filter.is_none_or(|f| f.contains_key(off)))
            .collect()
    }

    /// The next group's payload bytes, via the prefetcher when enabled.
    /// A filtered-out group is never fetched from disk on either path.
    fn fetch_payload(&mut self) -> Result<Option<(u64, Vec<u8>)>> {
        if self.prefetch {
            if self.prefetcher.is_none() {
                let offsets = self.pending_offsets();
                self.prefetcher = Some(FramePrefetcher::spawn(&self.hdfs, &self.path, offsets)?);
            }
            let prefetcher = self.prefetcher.as_mut().expect("prefetcher spawned");
            let frame = prefetcher.next_frame()?;
            if let Some(scan) = &self.scan_stats {
                let (waits, wait_time) = prefetcher.wait_stats();
                scan.prefetch_waits.add(waits - self.waits_charged.0);
                scan.prefetch_wait_us
                    .add((wait_time - self.waits_charged.1).as_micros() as u64);
                self.waits_charged = (waits, wait_time);
            }
            return Ok(frame);
        }
        loop {
            let Some(offset) = self.group_offsets.next() else {
                return Ok(None);
            };
            if let Some(filter) = &self.row_filter {
                if !filter.contains_key(&offset) {
                    continue;
                }
            }
            let mut r = self.hdfs.open_reader(&self.path)?;
            r.seek(SeekFrom::Start(offset))?;
            let mut len_buf = [0u8; 4];
            r.read_exact(&mut len_buf)?;
            let n = u32::from_le_bytes(len_buf) as usize;
            let mut payload = vec![0u8; n];
            r.read_exact(&mut payload)?;
            return Ok(Some((offset, payload)));
        }
    }

    /// Decode one group payload into a batch, applying projection while
    /// decoding and the row filter by compaction afterwards.
    fn decode_group(&self, offset: u64, payload: &[u8]) -> Result<ColumnBatch> {
        let start = std::time::Instant::now();
        let mut dec = Decoder::new(payload);
        let n_rows = dec.u32()? as usize;
        let n_cols = dec.u32()? as usize;
        if n_cols != self.schema.len() {
            return Err(DgfError::Corrupt(format!(
                "{}: group has {n_cols} columns, schema has {}",
                self.path,
                self.schema.len()
            )));
        }
        let mut columns = Vec::with_capacity(n_cols);
        for c in 0..n_cols {
            let col_bytes = dec.bytes()?;
            let decode = match &self.projection {
                Some(p) => p.contains(&c),
                None => true,
            };
            if decode {
                columns.push(batch::decode_column(col_bytes, n_rows)?);
            } else {
                columns.push(Column::skipped());
            }
        }
        let mut batch = ColumnBatch::new(columns, n_rows, offset);
        if let Some(filter) = &self.row_filter {
            let keep: Vec<u32> = match filter.get(&offset) {
                Some(b) => (0..n_rows as u32).filter(|i| b.get(*i as usize)).collect(),
                None => Vec::new(),
            };
            // An all-ones bitmap (sidecar admitted the whole group) keeps
            // the decoded batch as-is rather than copying every column.
            if keep.len() < n_rows {
                batch = batch.take(&keep);
            }
        }
        if let Some(scan) = &self.scan_stats {
            scan.batches.inc();
            scan.rows_decoded.add(batch.len() as u64);
            scan.decode_us.add(start.elapsed().as_micros() as u64);
        }
        Ok(batch)
    }

    /// Fetch and decode the next group without charging `records_read`
    /// (the hand-out points charge, so row and batch consumers agree).
    fn fetch_batch(&mut self) -> Result<Option<ColumnBatch>> {
        match self.fetch_payload()? {
            Some((offset, payload)) => Ok(Some(self.decode_group(offset, &payload)?)),
            None => Ok(None),
        }
    }

    /// The next decoded row group as a [`ColumnBatch`], or `None` at the
    /// end of the split.
    ///
    /// A batch may be empty when the row filter rejected every row of its
    /// group. `IoStats::records_read` is charged `batch.len()` per returned
    /// batch — the same total a row-at-a-time drain would charge. Do not
    /// interleave with the [`RecordReader`] interface on the same reader.
    pub fn next_batch(&mut self) -> Result<Option<ColumnBatch>> {
        let batch = self.fetch_batch()?;
        if let Some(b) = &batch {
            self.stats.records_read.add(b.len() as u64);
        }
        Ok(batch)
    }

    /// Position the cursor on a batch with at least one unread row.
    fn refill(&mut self) -> Result<bool> {
        loop {
            if let Some(cur) = &self.current {
                if cur.pos < cur.batch.len() {
                    return Ok(true);
                }
            }
            match self.fetch_batch()? {
                Some(batch) => self.current = Some(BatchCursor { batch, pos: 0 }),
                None => return Ok(false),
            }
        }
    }

    /// Next `(group_offset, row)`.
    pub fn next_with_offset(&mut self) -> Result<Option<(u64, Row)>> {
        if !self.refill()? {
            return Ok(None);
        }
        let cur = self.current.as_mut().expect("cursor refilled");
        let mut row = Row::with_capacity(cur.batch.num_columns());
        cur.batch.read_row_into(cur.pos, &mut row);
        let offset = cur.batch.group_offset();
        cur.pos += 1;
        self.stats.records_read.inc();
        Ok(Some((offset, row)))
    }
}

impl RecordReader for RcReader {
    fn next_row(&mut self) -> Result<Option<Row>> {
        Ok(self.next_with_offset()?.map(|(_, r)| r))
    }

    fn next_row_into(&mut self, row: &mut Row) -> Result<bool> {
        if !self.refill()? {
            return Ok(false);
        }
        let cur = self.current.as_mut().expect("cursor refilled");
        cur.batch.read_row_into(cur.pos, row);
        cur.pos += 1;
        self.stats.records_read.inc();
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::collect_rows;
    use dgf_common::{Schema, TempDir, Value, ValueType};
    use dgf_storage::{HdfsConfig, SimHdfs};
    use std::sync::Arc;

    fn schema() -> SchemaRef {
        Arc::new(Schema::from_pairs(&[
            ("id", ValueType::Int),
            ("name", ValueType::Str),
            ("v", ValueType::Float),
        ]))
    }

    fn cluster() -> (TempDir, HdfsRef) {
        let t = TempDir::new("rc").unwrap();
        let h = SimHdfs::new(
            t.path(),
            HdfsConfig {
                block_size: 256,
                replication: 1,
            },
        )
        .unwrap();
        (t, h)
    }

    fn row(i: i64) -> Row {
        vec![
            Value::Int(i),
            Value::Str(format!("n{i}")),
            Value::Float(i as f64 * 0.5),
        ]
    }

    fn write(h: &HdfsRef, path: &str, n: i64, per_group: usize) -> Vec<u64> {
        let mut w = RcWriter::create(h, path, schema(), per_group).unwrap();
        let mut group_offsets = Vec::new();
        for i in 0..n {
            group_offsets.push(w.write_row(&row(i)).unwrap());
        }
        w.close().unwrap();
        group_offsets
    }

    #[test]
    fn whole_file_round_trip() {
        let (_t, h) = cluster();
        write(&h, "/t/f", 25, 10);
        let split = FileSplit::new("/t/f", 0, h.file_len("/t/f").unwrap());
        let rows = collect_rows(RcReader::open(&h, schema(), &split).unwrap()).unwrap();
        assert_eq!(rows.len(), 25);
        assert_eq!(rows[7], row(7));
        assert_eq!(h.stats().records_read.get(), 25);
    }

    #[test]
    fn groups_share_offsets() {
        let (_t, h) = cluster();
        let offs = write(&h, "/t/f", 25, 10);
        // Rows 0..10 share a group offset, 10..20 the next, 20..25 the last.
        assert_eq!(offs[0], offs[9]);
        assert_ne!(offs[9], offs[10]);
        assert_eq!(offs[10], offs[19]);
        assert_eq!(offs[20], offs[24]);
        let footer = read_group_offsets(&h, "/t/f").unwrap();
        assert_eq!(footer, vec![offs[0], offs[10], offs[20]]);
    }

    #[test]
    fn splits_partition_groups_exactly_once() {
        let (_t, h) = cluster();
        write(&h, "/t/f", 200, 7);
        let splits = h.splits_for_dir("/t");
        assert!(splits.len() > 2);
        let mut ids = Vec::new();
        for s in &splits {
            for r in collect_rows(RcReader::open(&h, schema(), s).unwrap()).unwrap() {
                ids.push(r[0].as_i64().unwrap());
            }
        }
        ids.sort_unstable();
        assert_eq!(ids, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn projection_nulls_unread_columns() {
        let (_t, h) = cluster();
        write(&h, "/t/f", 5, 10);
        let split = FileSplit::new("/t/f", 0, h.file_len("/t/f").unwrap());
        let r = RcReader::open(&h, schema(), &split)
            .unwrap()
            .with_projection(vec![0, 2]);
        let rows = collect_rows(r).unwrap();
        assert_eq!(rows[2][0], Value::Int(2));
        assert_eq!(rows[2][1], Value::Null);
        assert_eq!(rows[2][2], Value::Float(1.0));
    }

    #[test]
    fn row_filter_skips_rows_and_groups() {
        let (_t, h) = cluster();
        let offs = write(&h, "/t/f", 30, 10);
        let split = FileSplit::new("/t/f", 0, h.file_len("/t/f").unwrap());
        // Group 0: rows 2 and 4; group 2 omitted entirely.
        let mut filter = HashMap::new();
        filter.insert(offs[0], [2usize, 4].into_iter().collect::<Bitmap>());
        filter.insert(offs[10], [0usize].into_iter().collect::<Bitmap>());
        let before = h.stats().bytes_read.get();
        let r = RcReader::open(&h, schema(), &split)
            .unwrap()
            .with_row_filter(filter);
        let ids: Vec<i64> = collect_rows(r)
            .unwrap()
            .iter()
            .map(|r| r[0].as_i64().unwrap())
            .collect();
        assert_eq!(ids, vec![2, 4, 10]);
        // The third group was never fetched: bytes read stay well below file size.
        let read = h.stats().bytes_read.get() - before;
        assert!(read < h.file_len("/t/f").unwrap());
    }

    #[test]
    fn next_with_offset_reports_group_offsets() {
        let (_t, h) = cluster();
        let offs = write(&h, "/t/f", 12, 5);
        let split = FileSplit::new("/t/f", 0, h.file_len("/t/f").unwrap());
        let mut r = RcReader::open(&h, schema(), &split).unwrap();
        let mut got = Vec::new();
        while let Some((o, _)) = r.next_with_offset().unwrap() {
            got.push(o);
        }
        assert_eq!(got, offs);
    }

    #[test]
    fn corrupt_tail_is_rejected() {
        let (_t, h) = cluster();
        write(&h, "/t/f", 5, 10);
        // Not an RCFile.
        let mut w = h.create("/t/plain").unwrap();
        use std::io::Write as _;
        w.write_all(b"this is just text, long enough to pass length checks")
            .unwrap();
        w.close().unwrap();
        assert!(read_group_offsets(&h, "/t/plain").is_err());
    }

    #[test]
    fn empty_file_round_trips() {
        let (_t, h) = cluster();
        let w = RcWriter::create(&h, "/t/e", schema(), 10).unwrap();
        w.close().unwrap();
        assert!(read_group_offsets(&h, "/t/e").unwrap().is_empty());
        let split = FileSplit::new("/t/e", 0, h.file_len("/t/e").unwrap());
        assert!(collect_rows(RcReader::open(&h, schema(), &split).unwrap())
            .unwrap()
            .is_empty());
    }
}
