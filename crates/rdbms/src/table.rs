//! DBMS-X table write paths: WAL + heap, and WAL + clustered B-tree.
//!
//! Figure 3 of the paper compares ingest throughput of DBMS-X with an
//! index, DBMS-X without an index, and raw HDFS. The two table types here
//! are those first two bars:
//!
//! * [`HeapTable`] — WAL append + sequential heap pages ("without index").
//! * [`BTreeTable`] — WAL append + a clustered tree on the key: inserts in
//!   random key order dirty random leaf pages, splits allocate new pages,
//!   and the bounded buffer pool turns that into random-offset page
//!   write-back ("with index").

use std::io::{BufWriter, Write};
use std::path::Path;

use dgf_common::codec;
use dgf_common::{format_row, Result, Row};

use crate::pager::{Pager, PagerStats, PAGE_SIZE};

/// Write-ahead log: every insert appends its record image first.
pub struct Wal {
    file: BufWriter<std::fs::File>,
    bytes: u64,
}

impl Wal {
    /// Create a WAL at `path`.
    pub fn create(path: &Path) -> Result<Wal> {
        Ok(Wal {
            file: BufWriter::new(std::fs::File::create(path)?),
            bytes: 0,
        })
    }

    /// Append one record image.
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        self.file.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.file.write_all(payload)?;
        self.bytes += 4 + payload.len() as u64;
        Ok(())
    }

    /// Bytes logged.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Flush buffered log records.
    pub fn flush(&mut self) -> Result<()> {
        self.file.flush()?;
        Ok(())
    }
}

fn encode_record(row: &Row) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    codec::put_u32(&mut buf, row.len() as u32);
    for v in row {
        codec::put_value(&mut buf, v);
    }
    buf
}

/// Heap table: records appended to the current tail page.
pub struct HeapTable {
    pager: Pager,
    wal: Wal,
    tail: u64,
    tail_used: usize,
    rows: u64,
    bytes: u64,
}

impl HeapTable {
    /// Create a heap table under `dir`.
    pub fn create(dir: &Path) -> Result<HeapTable> {
        std::fs::create_dir_all(dir)?;
        let mut pager = Pager::create(dir.join("heap.db"), 64)?;
        let tail = pager.allocate()?;
        Ok(HeapTable {
            pager,
            wal: Wal::create(&dir.join("heap.wal"))?,
            tail,
            tail_used: 4, // row-count header
            rows: 0,
            bytes: 0,
        })
    }

    /// Insert one row (WAL first, then the heap page).
    pub fn insert(&mut self, row: &Row) -> Result<()> {
        let rec = encode_record(row);
        self.wal.append(&rec)?;
        if self.tail_used + rec.len() > PAGE_SIZE {
            self.tail = self.pager.allocate()?;
            self.tail_used = 4;
        }
        let page = self.pager.page_mut(self.tail)?;
        page[self.tail_used..self.tail_used + rec.len()].copy_from_slice(&rec);
        self.tail_used += rec.len();
        self.rows += 1;
        self.bytes += format_row(row).len() as u64 + 1;
        Ok(())
    }

    /// Flush WAL and dirty pages; returns `(logical_bytes, pager stats)`.
    pub fn finish(mut self) -> Result<(u64, PagerStats)> {
        self.wal.flush()?;
        self.pager.flush()?;
        Ok((self.bytes, self.pager.stats()))
    }

    /// Rows inserted so far.
    pub fn row_count(&self) -> u64 {
        self.rows
    }
}

/// Maximum encoded records per B-tree leaf before it splits.
const LEAF_CAPACITY_BYTES: usize = PAGE_SIZE - 64;

/// Clustered B-tree table: an in-memory leaf directory in key order;
/// every leaf's records are physically stored, sorted, in its pager page.
pub struct BTreeTable {
    pager: Pager,
    wal: Wal,
    key_col: usize,
    directory: Vec<Leaf>,
    rows: u64,
    bytes: u64,
}

struct Leaf {
    first_key: i64,
    page: u64,
    used: usize,
    /// Sorted `(key, encoded record)` pairs mirrored in the page image.
    records: Vec<(i64, Vec<u8>)>,
}

/// Serialize a record list into a page image (count header + records).
fn render_page(records: &[(i64, Vec<u8>)], page: &mut [u8]) {
    page.fill(0);
    page[..4].copy_from_slice(&(records.len() as u32).to_le_bytes());
    let mut at = 4;
    for (_, rec) in records {
        page[at..at + rec.len()].copy_from_slice(rec);
        at += rec.len();
    }
}

impl BTreeTable {
    /// Create a clustered table keyed on column `key_col` under `dir`.
    pub fn create(dir: &Path, key_col: usize) -> Result<BTreeTable> {
        std::fs::create_dir_all(dir)?;
        let mut pager = Pager::create(dir.join("btree.db"), 64)?;
        let page = pager.allocate()?;
        Ok(BTreeTable {
            pager,
            wal: Wal::create(&dir.join("btree.wal"))?,
            key_col,
            directory: vec![Leaf {
                first_key: i64::MIN,
                page,
                used: 4,
                records: Vec::new(),
            }],
            rows: 0,
            bytes: 0,
        })
    }

    /// Insert one row: WAL, locate the leaf by key, place the record in
    /// key position (rewriting the page image), split when full.
    pub fn insert(&mut self, row: &Row) -> Result<()> {
        let key = row[self.key_col].as_i64()?;
        let rec = encode_record(row);
        self.wal.append(&rec)?;
        self.insert_rec(key, rec)?;
        self.rows += 1;
        self.bytes += format_row(row).len() as u64 + 1;
        Ok(())
    }

    fn insert_rec(&mut self, key: i64, rec: Vec<u8>) -> Result<()> {
        let li = self
            .directory
            .partition_point(|l| l.first_key <= key)
            .saturating_sub(1);
        if self.directory[li].used + rec.len() > LEAF_CAPACITY_BYTES {
            self.split_leaf(li)?;
            return self.insert_rec(key, rec);
        }
        let leaf = &mut self.directory[li];
        let pos = leaf.records.partition_point(|(k, _)| *k <= key);
        leaf.used += rec.len();
        leaf.records.insert(pos, (key, rec));
        render_page(&leaf.records, self.pager.page_mut(leaf.page)?);
        Ok(())
    }

    fn split_leaf(&mut self, li: usize) -> Result<()> {
        let new_page = self.pager.allocate()?;
        let leaf = &mut self.directory[li];
        let mid = leaf.records.len() / 2;
        let right_records = leaf.records.split_off(mid);
        let right_first = right_records
            .first()
            .map(|(k, _)| *k)
            .unwrap_or(leaf.first_key);
        leaf.used = 4 + leaf.records.iter().map(|(_, r)| r.len()).sum::<usize>();
        let right = Leaf {
            first_key: right_first,
            page: new_page,
            used: 4 + right_records.iter().map(|(_, r)| r.len()).sum::<usize>(),
            records: right_records,
        };
        // Rewrite both page images — the write amplification a clustered
        // index pays for random-order inserts.
        let left_page = leaf.page;
        let left_records = std::mem::take(&mut self.directory[li].records);
        render_page(&left_records, self.pager.page_mut(left_page)?);
        self.directory[li].records = left_records;
        render_page(&right.records, self.pager.page_mut(new_page)?);
        self.directory.insert(li + 1, right);
        Ok(())
    }

    /// Flush WAL and dirty pages; returns `(logical_bytes, pager stats)`.
    pub fn finish(mut self) -> Result<(u64, PagerStats)> {
        self.wal.flush()?;
        self.pager.flush()?;
        Ok((self.bytes, self.pager.stats()))
    }

    /// Rows inserted so far.
    pub fn row_count(&self) -> u64 {
        self.rows
    }

    /// Leaf pages currently allocated.
    pub fn leaf_count(&self) -> usize {
        self.directory.len()
    }

    /// Decode every record from the leaf pages, in key order (integrity
    /// checks; also demonstrates the clustered layout is real).
    pub fn scan(&mut self) -> Result<Vec<Row>> {
        let mut out = Vec::with_capacity(self.rows as usize);
        let pages: Vec<u64> = self.directory.iter().map(|l| l.page).collect();
        for page_id in pages {
            let image = self.pager.page(page_id)?.to_vec();
            let mut dec = dgf_common::codec::Decoder::new(&image);
            let n = dec.u32()?;
            for _ in 0..n {
                let width = dec.u32()? as usize;
                let mut row = Vec::with_capacity(width);
                for _ in 0..width {
                    row.push(dgf_common::codec::get_value(&mut dec)?);
                }
                out.push(row);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_common::{TempDir, Value};

    fn row(i: i64) -> Row {
        vec![
            Value::Int(i),
            Value::Int(i % 11),
            Value::Float(i as f64),
            Value::Str(format!("padding-{i:08}")),
        ]
    }

    #[test]
    fn heap_insert_and_finish() {
        let t = TempDir::new("heap").unwrap();
        let mut h = HeapTable::create(t.path()).unwrap();
        for i in 0..2000 {
            h.insert(&row(i)).unwrap();
        }
        assert_eq!(h.row_count(), 2000);
        let (bytes, stats) = h.finish().unwrap();
        assert!(bytes > 0);
        assert!(stats.page_writes > 0);
    }

    #[test]
    fn btree_splits_under_random_inserts() {
        let t = TempDir::new("btree").unwrap();
        let mut b = BTreeTable::create(t.path(), 0).unwrap();
        // Pseudo-random key order.
        let mut k = 1i64;
        for _ in 0..3000 {
            k = (k * 48271) % 99991;
            b.insert(&row(k)).unwrap();
        }
        assert_eq!(b.row_count(), 3000);
        assert!(b.leaf_count() > 4, "splits must have happened");
        // Directory keys stay ordered.
        for w in b.directory.windows(2) {
            assert!(w[0].first_key <= w[1].first_key);
        }
        let (_, stats) = b.finish().unwrap();
        assert!(stats.page_writes > 0);
    }

    #[test]
    fn btree_random_inserts_write_more_pages_than_heap() {
        let t = TempDir::new("cmp").unwrap();
        let mut heap = HeapTable::create(&t.path().join("h")).unwrap();
        let mut btree = BTreeTable::create(&t.path().join("b"), 0).unwrap();
        let mut k = 7i64;
        for _ in 0..5000 {
            k = (k * 48271) % 99991;
            heap.insert(&row(k)).unwrap();
            btree.insert(&row(k)).unwrap();
        }
        let (_, hs) = heap.finish().unwrap();
        let (_, bs) = btree.finish().unwrap();
        assert!(
            bs.page_writes > hs.page_writes,
            "btree {} vs heap {}",
            bs.page_writes,
            hs.page_writes
        );
    }

    #[test]
    fn btree_scan_returns_all_rows_in_key_order() {
        let t = TempDir::new("btree-scan").unwrap();
        let mut b = BTreeTable::create(t.path(), 0).unwrap();
        let mut k = 13i64;
        let mut inserted = Vec::new();
        for _ in 0..1500 {
            k = (k * 48271) % 99991;
            inserted.push(k);
            b.insert(&row(k)).unwrap();
        }
        let rows = b.scan().unwrap();
        assert_eq!(rows.len(), 1500);
        let keys: Vec<i64> = rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        let mut expected = inserted.clone();
        expected.sort_unstable();
        assert_eq!(keys, expected, "clustered layout must be key-sorted");
        // The payload survives intact too.
        assert_eq!(rows[0][3], Value::Str(format!("padding-{:08}", keys[0])));
    }

    #[test]
    fn wal_records_all_inserts() {
        let t = TempDir::new("wal").unwrap();
        let mut h = HeapTable::create(t.path()).unwrap();
        for i in 0..10 {
            h.insert(&row(i)).unwrap();
        }
        h.finish().unwrap();
        let wal_len = std::fs::metadata(t.path().join("heap.wal")).unwrap().len();
        assert!(wal_len > 0);
    }
}
