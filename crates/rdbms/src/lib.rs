//! # dgf-rdbms
//!
//! "DBMS-X": a minimal paged storage engine with a write-ahead log and an
//! optional clustered B-tree, built solely to reproduce the paper's
//! Figure 3 (DBMS-X with index vs. DBMS-X without index vs. HDFS write
//! throughput) and the §3.2 migration argument. It is deliberately not a
//! full RDBMS — the reproduced quantity is the *ingest write path*:
//!
//! * every insert logs to the WAL,
//! * heap tables append to the tail page (sequential-ish),
//! * B-tree tables dirty random leaf pages and split them, which the
//!   bounded buffer pool turns into random-offset page write-back.

#![warn(missing_docs)]

pub mod pager;
pub mod table;

use std::path::Path;
use std::time::Duration;

use dgf_common::{Result, Row, Stopwatch};

pub use pager::{Pager, PagerStats, PAGE_SIZE};
pub use table::{BTreeTable, HeapTable, Wal};

/// Which write path to measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestTarget {
    /// WAL + heap pages ("DBMS-X without index").
    Heap,
    /// WAL + clustered B-tree on the key column ("DBMS-X with index").
    BTree {
        /// Column holding the clustering key.
        key_col: usize,
    },
}

/// Result of one ingest measurement.
#[derive(Debug, Clone, Copy)]
pub struct IngestReport {
    /// Logical bytes ingested (delimited-text size, matching how the
    /// HDFS side is measured).
    pub logical_bytes: u64,
    /// Wall time.
    pub elapsed: Duration,
    /// Pages written back.
    pub page_writes: u64,
}

impl IngestReport {
    /// Throughput in MB/s (the unit of the paper's Figure 3).
    pub fn mb_per_sec(&self) -> f64 {
        (self.logical_bytes as f64 / (1024.0 * 1024.0)) / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Ingest `rows` into a fresh table under `dir` and measure.
pub fn measure_ingest(dir: &Path, rows: &[Row], target: IngestTarget) -> Result<IngestReport> {
    let watch = Stopwatch::start();
    let (logical_bytes, stats) = match target {
        IngestTarget::Heap => {
            let mut t = HeapTable::create(dir)?;
            for r in rows {
                t.insert(r)?;
            }
            t.finish()?
        }
        IngestTarget::BTree { key_col } => {
            let mut t = BTreeTable::create(dir, key_col)?;
            for r in rows {
                t.insert(r)?;
            }
            t.finish()?
        }
    };
    Ok(IngestReport {
        logical_bytes,
        elapsed: watch.elapsed(),
        page_writes: stats.page_writes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_common::{TempDir, Value};

    fn rows(n: i64) -> Vec<Row> {
        let mut k = 7i64;
        (0..n)
            .map(|i| {
                k = (k * 48271) % 99991;
                vec![
                    Value::Int(k),
                    Value::Int(i % 11),
                    Value::Float(i as f64),
                    Value::Str(format!("meter-extra-fields-{i:010}")),
                ]
            })
            .collect()
    }

    #[test]
    fn ingest_reports_make_sense() {
        let t = TempDir::new("ingest").unwrap();
        let data = rows(4000);
        let heap = measure_ingest(&t.path().join("h"), &data, IngestTarget::Heap).unwrap();
        let btree = measure_ingest(
            &t.path().join("b"),
            &data,
            IngestTarget::BTree { key_col: 0 },
        )
        .unwrap();
        assert_eq!(heap.logical_bytes, btree.logical_bytes);
        assert!(heap.mb_per_sec() > 0.0);
        // The indexed path writes more pages — the Figure 3 ordering's
        // mechanical cause.
        assert!(btree.page_writes > heap.page_writes);
    }
}
