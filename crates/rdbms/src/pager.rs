//! A page store with a small buffer pool.
//!
//! This models the disk behaviour that makes an indexing RDBMS slow to
//! ingest (paper Figure 3 and §3.2 "low write throughput"): fixed-size
//! pages, a bounded buffer pool, and dirty-page write-back at the page's
//! (random) file offset, in contrast to HDFS's purely sequential appends.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

use dgf_common::{DgfError, Result};

/// Page size in bytes.
pub const PAGE_SIZE: usize = 8192;

/// A page image plus bookkeeping.
#[derive(Debug, Clone)]
struct Frame {
    data: Vec<u8>,
    dirty: bool,
    /// LRU tick of the last access.
    last_used: u64,
}

/// Write statistics for throughput experiments.
#[derive(Debug, Default, Clone, Copy)]
pub struct PagerStats {
    /// Pages written back to disk.
    pub page_writes: u64,
    /// Pages faulted in from disk.
    pub page_reads: u64,
}

/// A file of fixed-size pages behind a bounded buffer pool.
pub struct Pager {
    file: File,
    path: PathBuf,
    pool: HashMap<u64, Frame>,
    capacity: usize,
    next_page: u64,
    tick: u64,
    stats: PagerStats,
}

impl Pager {
    /// Create (truncate) a pager at `path` with `capacity` pool frames.
    pub fn create(path: impl Into<PathBuf>, capacity: usize) -> Result<Pager> {
        let path = path.into();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(Pager {
            file,
            path,
            pool: HashMap::with_capacity(capacity),
            capacity: capacity.max(1),
            next_page: 0,
            tick: 0,
            stats: PagerStats::default(),
        })
    }

    /// The backing file path.
    pub fn path(&self) -> &PathBuf {
        &self.path
    }

    /// Allocate a fresh zeroed page, returning its id.
    pub fn allocate(&mut self) -> Result<u64> {
        let id = self.next_page;
        self.next_page += 1;
        self.install(id, vec![0u8; PAGE_SIZE], true)?;
        Ok(id)
    }

    /// Number of pages allocated.
    pub fn page_count(&self) -> u64 {
        self.next_page
    }

    /// Counters.
    pub fn stats(&self) -> PagerStats {
        self.stats
    }

    fn install(&mut self, id: u64, data: Vec<u8>, dirty: bool) -> Result<()> {
        if self.pool.len() >= self.capacity && !self.pool.contains_key(&id) {
            self.evict_one()?;
        }
        self.tick += 1;
        self.pool.insert(
            id,
            Frame {
                data,
                dirty,
                last_used: self.tick,
            },
        );
        Ok(())
    }

    fn evict_one(&mut self) -> Result<()> {
        let victim = self
            .pool
            .iter()
            .min_by_key(|(_, f)| f.last_used)
            .map(|(id, _)| *id)
            .ok_or_else(|| DgfError::Io(std::io::Error::other("empty pool")))?;
        let frame = self.pool.remove(&victim).expect("victim present");
        if frame.dirty {
            self.write_page_raw(victim, &frame.data)?;
        }
        Ok(())
    }

    fn write_page_raw(&mut self, id: u64, data: &[u8]) -> Result<()> {
        self.file.seek(SeekFrom::Start(id * PAGE_SIZE as u64))?;
        self.file.write_all(data)?;
        self.stats.page_writes += 1;
        Ok(())
    }

    fn fault_in(&mut self, id: u64) -> Result<()> {
        if self.pool.contains_key(&id) {
            return Ok(());
        }
        let mut data = vec![0u8; PAGE_SIZE];
        self.file.seek(SeekFrom::Start(id * PAGE_SIZE as u64))?;
        // A page past EOF (allocated but never written) stays zeroed.
        let _ = self.file.read(&mut data)?;
        self.stats.page_reads += 1;
        self.install(id, data, false)
    }

    /// Read access to a page image.
    pub fn page(&mut self, id: u64) -> Result<&[u8]> {
        self.fault_in(id)?;
        self.tick += 1;
        let f = self.pool.get_mut(&id).expect("faulted in");
        f.last_used = self.tick;
        Ok(&f.data)
    }

    /// Mutable access; marks the page dirty.
    pub fn page_mut(&mut self, id: u64) -> Result<&mut [u8]> {
        self.fault_in(id)?;
        self.tick += 1;
        let f = self.pool.get_mut(&id).expect("faulted in");
        f.last_used = self.tick;
        f.dirty = true;
        Ok(&mut f.data)
    }

    /// Write back every dirty page.
    pub fn flush(&mut self) -> Result<()> {
        let dirty: Vec<u64> = self
            .pool
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(id, _)| *id)
            .collect();
        for id in dirty {
            let data = self.pool.get(&id).expect("listed").data.clone();
            self.write_page_raw(id, &data)?;
            self.pool.get_mut(&id).expect("listed").dirty = false;
        }
        self.file.flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_common::TempDir;

    #[test]
    fn allocate_write_read_back() {
        let t = TempDir::new("pager").unwrap();
        let mut p = Pager::create(t.path().join("db"), 4).unwrap();
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        p.page_mut(a).unwrap()[0] = 0xAA;
        p.page_mut(b).unwrap()[0] = 0xBB;
        p.flush().unwrap();
        assert_eq!(p.page(a).unwrap()[0], 0xAA);
        assert_eq!(p.page(b).unwrap()[0], 0xBB);
    }

    #[test]
    fn eviction_persists_dirty_pages() {
        let t = TempDir::new("pager").unwrap();
        let mut p = Pager::create(t.path().join("db"), 2).unwrap();
        let ids: Vec<u64> = (0..6).map(|_| p.allocate().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            p.page_mut(*id).unwrap()[0] = i as u8 + 1;
        }
        // Pool holds 2 frames; the rest were evicted and written.
        assert!(p.stats().page_writes >= 4);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(p.page(*id).unwrap()[0], i as u8 + 1, "page {id}");
        }
    }

    #[test]
    fn unwritten_page_reads_zeroed() {
        let t = TempDir::new("pager").unwrap();
        let mut p = Pager::create(t.path().join("db"), 2).unwrap();
        let a = p.allocate().unwrap();
        assert!(p.page(a).unwrap().iter().all(|b| *b == 0));
    }
}
