//! Shard-map construction: where to split the GFU keyspace.
//!
//! The split function is the same odometer order the planner's
//! prefix-scan runs exploit: GFU keys are order-preserving encodings of
//! cell coordinate vectors, so ranking cells in odometer order and
//! cutting the rank space into `N` near-equal stretches yields
//! boundaries that keep every run of consecutive cells contiguous
//! within a shard — a cross-shard run splits into at most one sub-range
//! per shard. Metadata keys (`m:*`), pyramid nodes (`p:*`, see
//! [`dgf_core::pyramid`]), staged keys (`s:*`), and the transaction
//! manifest (`t:*`) all sort *above* the `g:` GFU prefix, so the whole
//! commit protocol — and every aggregate-pyramid read — lands on the
//! last shard: the `m:view` visibility switch stays a single-key,
//! single-shard atomic put, and the pyramid delta publishes atomically
//! with it at no router change.

use std::sync::Arc;

use dgf_core::Extents;
use dgf_core::GfuKey;
use dgf_kvstore::{KvStore, MemKvStore, ShardedKv};

use dgf_common::Result;

/// Split keys partitioning the keyspace of `extents` into `shards`
/// near-equal stretches of odometer rank (returns `shards - 1` strictly
/// increasing keys). Grids smaller than the shard count get synthetic
/// boundaries past the last cell, leaving the surplus shards empty —
/// an explicitly supported (and tested) topology.
pub fn shard_boundaries(extents: &Extents, shards: usize) -> Vec<Vec<u8>> {
    if shards <= 1 {
        return Vec::new();
    }
    let sizes: Vec<u64> = extents
        .dims
        .iter()
        .map(|(lo, hi)| (hi - lo + 1).max(1) as u64)
        .collect();
    let total: u64 = sizes.iter().product();
    let rank_to_key = |rank: u64| -> Vec<u8> {
        let mut coords = vec![0i64; sizes.len()];
        let mut r = rank;
        for d in (0..sizes.len()).rev() {
            coords[d] = extents.dims[d].0 + (r % sizes[d]) as i64;
            r /= sizes[d];
        }
        GfuKey::new(coords).encode()
    };
    let mut boundaries = Vec::with_capacity(shards - 1);
    let mut prev_rank: Option<u64> = None;
    let mut overflow = 0i64;
    for i in 1..shards as u64 {
        let ideal = i * total / shards as u64;
        let rank = match prev_rank {
            Some(p) => ideal.max(p + 1),
            None => ideal.max(1),
        };
        if rank < total {
            boundaries.push(rank_to_key(rank));
            prev_rank = Some(rank);
        } else {
            // Past the last cell: synthesize keys beyond the grid by
            // walking dimension 0 past its extent. Order-preserving
            // encoding keeps them strictly increasing and greater than
            // every real key, so the shards they bound stay empty.
            overflow += 1;
            let mut coords: Vec<i64> = extents.dims.iter().map(|(lo, _)| *lo).collect();
            coords[0] = extents.dims[0].1 + overflow;
            boundaries.push(GfuKey::new(coords).encode());
            prev_rank = Some(total + overflow as u64);
        }
    }
    boundaries
}

/// A router over `shards` fresh in-memory stores split for `extents`.
///
/// ```
/// use dgf_core::{Extents, GfuKey};
/// use dgf_serve::sharded_mem;
///
/// let extents = Extents { dims: vec![(0, 9)] };
/// let router = sharded_mem(&extents, 4).unwrap();
/// // GFU keys spread across the shards; everything above the `g:`
/// // prefix — metadata, pyramid nodes, staged keys, the manifest —
/// // routes to the last shard, so the commit protocol and the
/// // aggregate pyramid stay single-shard atomic.
/// assert_eq!(router.shard_of(&GfuKey::new(vec![0]).encode()), 0);
/// assert_eq!(router.shard_of(b"m:view"), 3);
/// assert_eq!(router.shard_of(&dgf_core::pyramid::pyramid_key(2, &[1])), 3);
/// ```
pub fn sharded_mem(extents: &Extents, shards: usize) -> Result<ShardedKv> {
    let stores: Vec<Arc<dyn KvStore>> = (0..shards)
        .map(|_| Arc::new(MemKvStore::new()) as Arc<dyn KvStore>)
        .collect();
    ShardedKv::new(stores, shard_boundaries(extents, shards))
}

/// Copy every pair of `src` into `dst` (routed writes), returning the
/// pair count. This is how a serving tier is stood up next to an
/// existing single-node index: mirror the GFU store into the router,
/// then open the index over the router.
pub fn mirror_kv(src: &dyn KvStore, dst: &dyn KvStore) -> Result<u64> {
    let pairs = src.scan_prefix(b"")?;
    let n = pairs.len() as u64;
    for (k, v) in pairs {
        dst.put(&k, &v)?;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extents(dims: &[(i64, i64)]) -> Extents {
        Extents {
            dims: dims.to_vec(),
        }
    }

    #[test]
    fn boundaries_are_strictly_increasing_and_counted() {
        let e = extents(&[(0, 7), (0, 3)]); // 32 cells
        for shards in [1usize, 2, 4, 7] {
            let b = shard_boundaries(&e, shards);
            assert_eq!(b.len(), shards.saturating_sub(1));
            assert!(b.windows(2).all(|w| w[0] < w[1]), "{shards} shards");
        }
    }

    #[test]
    fn tiny_grid_yields_empty_tail_shards() {
        // 2 cells across 7 shards: boundaries must still be strictly
        // increasing, with the synthetic tail past the last cell.
        let e = extents(&[(0, 1)]);
        let b = shard_boundaries(&e, 7);
        assert_eq!(b.len(), 6);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        let kv = sharded_mem(&e, 7).unwrap();
        kv.put(&GfuKey::new(vec![0]).encode(), b"a").unwrap();
        kv.put(&GfuKey::new(vec![1]).encode(), b"b").unwrap();
        let occupied = kv.shards().iter().filter(|s| !s.is_empty()).count();
        assert!(occupied <= 2);
        assert_eq!(kv.len(), 2);
    }

    #[test]
    fn split_load_is_near_uniform_on_the_grid() {
        let e = extents(&[(0, 9), (0, 9)]); // 100 cells
        let kv = sharded_mem(&e, 4).unwrap();
        for x in 0..10 {
            for y in 0..10 {
                kv.put(&GfuKey::new(vec![x, y]).encode(), b"v").unwrap();
            }
        }
        for s in kv.shards() {
            assert_eq!(s.len(), 25);
        }
    }

    #[test]
    fn metadata_lands_on_the_last_shard() {
        let e = extents(&[(0, 9)]);
        let kv = sharded_mem(&e, 4).unwrap();
        for key in [&b"m:view"[..], b"m:pyramid", b"s:0001", b"t:manifest"] {
            assert_eq!(kv.shard_of(key), 3, "{}", String::from_utf8_lossy(key));
        }
        // Pyramid nodes route with the metadata, at every level and
        // coordinate — the whole `p:` prefix sorts above every `g:` key.
        for node in [
            dgf_core::pyramid::pyramid_key(1, &[0]),
            dgf_core::pyramid::pyramid_key(3, &[1]),
            dgf_core::pyramid::pyramid_key(12, &[-5]),
        ] {
            assert_eq!(kv.shard_of(&node), 3, "{}", String::from_utf8_lossy(&node));
        }
        // GFU keys spread below the metadata.
        assert_eq!(kv.shard_of(&GfuKey::new(vec![0]).encode()), 0);
    }

    #[test]
    fn mirror_copies_everything() {
        let src = MemKvStore::new();
        src.put(b"g:a", b"1").unwrap();
        src.put(b"m:view", b"2").unwrap();
        let e = extents(&[(0, 3)]);
        let dst = sharded_mem(&e, 2).unwrap();
        assert_eq!(mirror_kv(&src, &dst).unwrap(), 2);
        assert_eq!(dst.len(), 2);
        assert_eq!(dst.get(b"m:view").unwrap().unwrap(), b"2");
    }
}
