//! The concurrent query frontend: admission control and scheduling.
//!
//! [`ServeFrontend`] wraps a [`DgfEngine`] with the two mechanisms the
//! ingest path already proved out:
//!
//! * **Admission control** reuses the ingest byte-reservation pattern:
//!   each query reserves [`ServeOptions::query_cost_bytes`] against a
//!   shared in-flight budget with a single `fetch_add`; a reservation
//!   that would exceed [`ServeOptions::max_inflight_bytes`] is rolled
//!   back and the query is rejected with
//!   [`DgfError::Backpressure`], exactly like an over-budget append.
//! * **Scheduling** multiplexes many in-flight MDRQs over a bounded
//!   worker pool: a counting semaphore of [`ServeOptions::workers`]
//!   execution slots. Admitted queries queue for a slot (the wait is
//!   metered as `serve.queue_wait_us`), run to completion on the
//!   caller's thread, and release the slot.
//!
//! The frontend never touches answers: each query runs through the
//! ordinary planner against its own pinned view, so answers are
//! bit-identical to an unwrapped engine run — concurrency changes
//! throughput and latency, never bytes.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use dgf_common::obs::{names, MetricsRegistry};
use dgf_common::{DgfError, Result};
use dgf_core::{DgfEngine, MaintenanceReport, Maintainer};
use dgf_hive::ServeOptions;
use dgf_kvstore::FanoutStats;
use dgf_query::{Engine, EngineRun, Query, QueryResult, RunStats};

use crate::batcher::BatchStats;

/// Frontend counters (mirrored into a [`MetricsRegistry`] under the
/// `serve.*` names by [`ServeStats::record_into`]).
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Queries that cleared admission control.
    pub admitted: AtomicU64,
    /// Queries bounced with [`DgfError::Backpressure`].
    pub rejected: AtomicU64,
    /// Admitted queries that completed successfully.
    pub completed: AtomicU64,
    /// Admitted queries that returned an error.
    pub failed: AtomicU64,
    /// Total microseconds admitted queries spent waiting for a worker
    /// slot.
    pub queue_wait_us: AtomicU64,
    /// Maintenance passes that ran to completion through
    /// [`ServeFrontend::run_maintenance`].
    pub maintenance_runs: AtomicU64,
}

/// A point-in-time copy of [`ServeStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStatsSnapshot {
    /// Queries that cleared admission control.
    pub admitted: u64,
    /// Queries bounced with backpressure.
    pub rejected: u64,
    /// Admitted queries that completed successfully.
    pub completed: u64,
    /// Admitted queries that returned an error.
    pub failed: u64,
    /// Total slot-wait microseconds.
    pub queue_wait_us: u64,
    /// Completed maintenance passes.
    pub maintenance_runs: u64,
}

impl ServeStats {
    /// Read all counters at once.
    pub fn snapshot(&self) -> ServeStatsSnapshot {
        ServeStatsSnapshot {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            queue_wait_us: self.queue_wait_us.load(Ordering::Relaxed),
            maintenance_runs: self.maintenance_runs.load(Ordering::Relaxed),
        }
    }

    /// Mirror the counters into `reg` under the stable `serve.*` names.
    pub fn record_into(&self, reg: &MetricsRegistry) {
        let s = self.snapshot();
        reg.add(names::SERVE_ADMITTED, s.admitted);
        reg.add(names::SERVE_REJECTED, s.rejected);
        reg.add(names::SERVE_COMPLETED, s.completed);
        reg.add(names::SERVE_FAILED, s.failed);
        reg.add(names::SERVE_QUEUE_WAIT_US, s.queue_wait_us);
    }
}

/// Mirror a router's scatter counters into `reg` (`serve.scatters`,
/// `serve.shard_subops`).
pub fn record_fanout_into(fanout: &FanoutStats, reg: &MetricsRegistry) {
    let (multi_gets, scans, subops) = fanout.snapshot();
    reg.add(names::SERVE_SCATTERS, multi_gets + scans);
    reg.add(names::SERVE_SHARD_SUBOPS, subops);
}

/// Mirror a batcher's counters into `reg` (`serve.batch_flushes`,
/// `serve.batch_joins`).
pub fn record_batch_into(batch: &BatchStats, reg: &MetricsRegistry) {
    reg.add(names::SERVE_BATCH_FLUSHES, batch.flushes.load(Ordering::Relaxed));
    reg.add(names::SERVE_BATCH_JOINS, batch.joins.load(Ordering::Relaxed));
}

/// One client's outcome for one query in [`ServeFrontend::run_concurrent`].
#[derive(Debug, Clone)]
pub struct ServedQuery {
    /// Index of the query in the submitted batch.
    pub query_index: usize,
    /// The answer, or `None` if the query ultimately failed.
    pub result: Option<QueryResult>,
    /// Wall latency from first submission attempt to final outcome,
    /// including backpressure retries and slot waits.
    pub latency: Duration,
}

/// A finished [`ServeFrontend::run_concurrent`] batch.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-query outcomes, in submission (input) order.
    pub served: Vec<ServedQuery>,
    /// Wall time for the whole batch.
    pub wall: Duration,
}

impl ServeReport {
    /// Completed queries per wall-clock second.
    pub fn qps(&self) -> f64 {
        let ok = self.served.iter().filter(|s| s.result.is_some()).count();
        ok as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Latency at quantile `q` in `[0, 1]` over all served queries, in
    /// microseconds.
    pub fn latency_us_at(&self, q: f64) -> u64 {
        let mut lats: Vec<u64> = self
            .served
            .iter()
            .map(|s| s.latency.as_micros() as u64)
            .collect();
        if lats.is_empty() {
            return 0;
        }
        lats.sort_unstable();
        let idx = ((lats.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        lats[idx]
    }
}

/// A concurrent query frontend over one engine.
pub struct ServeFrontend {
    engine: DgfEngine,
    opts: ServeOptions,
    inflight_bytes: AtomicU64,
    free_slots: Mutex<usize>,
    slot_freed: Condvar,
    stats: ServeStats,
    totals: Mutex<RunStats>,
}

impl ServeFrontend {
    /// Wrap `engine` with admission control and a worker pool sized by
    /// `opts`.
    pub fn new(engine: DgfEngine, opts: ServeOptions) -> ServeFrontend {
        ServeFrontend {
            engine,
            free_slots: Mutex::new(opts.workers.max(1)),
            slot_freed: Condvar::new(),
            opts,
            inflight_bytes: AtomicU64::new(0),
            stats: ServeStats::default(),
            totals: Mutex::new(RunStats::default()),
        }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &DgfEngine {
        &self.engine
    }

    /// The frontend's options.
    pub fn options(&self) -> &ServeOptions {
        &self.opts
    }

    /// Frontend counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Accumulated [`RunStats`] across every completed query.
    pub fn totals(&self) -> RunStats {
        self.totals.lock().expect("totals poisoned").clone()
    }

    /// The shared admission + scheduling protocol: reserve `cost` bytes
    /// against the in-flight budget (or bounce with
    /// [`DgfError::Backpressure`]), wait for one of the `workers`
    /// execution slots, run `work`, release both. Queries and
    /// maintenance passes go through this same gate, so a maintenance
    /// pass can never oversubscribe a tier that is already at its
    /// serving budget — it waits or bounces exactly like a query.
    fn run_admitted<T>(&self, cost: u64, work: impl FnOnce() -> T) -> Result<T> {
        // Admission: optimistic reservation, rolled back on overshoot —
        // the same protocol the ingest buffer uses for append bytes.
        let already = self.inflight_bytes.fetch_add(cost, Ordering::SeqCst);
        if already + cost > self.opts.max_inflight_bytes {
            self.inflight_bytes.fetch_sub(cost, Ordering::SeqCst);
            self.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(DgfError::Backpressure(format!(
                "serving budget full: {} in-flight + {} requested > {} max",
                already, cost, self.opts.max_inflight_bytes
            )));
        }
        self.stats.admitted.fetch_add(1, Ordering::Relaxed);

        // Scheduling: one of `workers` execution slots.
        let waited = Instant::now();
        {
            let mut free = self.free_slots.lock().expect("slots poisoned");
            while *free == 0 {
                free = self.slot_freed.wait(free).expect("slots poisoned");
            }
            *free -= 1;
        }
        self.stats
            .queue_wait_us
            .fetch_add(waited.elapsed().as_micros() as u64, Ordering::Relaxed);

        let outcome = work();

        {
            let mut free = self.free_slots.lock().expect("slots poisoned");
            *free += 1;
        }
        self.slot_freed.notify_one();
        self.inflight_bytes.fetch_sub(cost, Ordering::SeqCst);
        Ok(outcome)
    }

    /// Serve one query: admit (or bounce with backpressure), wait for a
    /// worker slot, execute, release. Answers are byte-identical to
    /// running the wrapped engine directly.
    pub fn run(&self, query: &Query) -> Result<EngineRun> {
        let outcome = self.run_admitted(self.opts.query_cost_bytes, || self.engine.run(query))?;
        match &outcome {
            Ok(run) => {
                self.stats.completed.fetch_add(1, Ordering::Relaxed);
                self.totals
                    .lock()
                    .expect("totals poisoned")
                    .accumulate(&run.stats);
            }
            Err(_) => {
                self.stats.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        outcome
    }

    /// Run one maintenance pass through the frontend's admission gate.
    ///
    /// The pass is charged like a query (one `query_cost_bytes`
    /// reservation, one worker slot), so on a saturated tier it bounces
    /// with backpressure instead of stealing capacity from readers; the
    /// caller's daemon loop simply retries later. Readers never block on
    /// it either way — the pass publishes through the staged-commit
    /// protocol, and in-flight queries keep answering from their pinned
    /// views. `maintainer` should wrap the same index this frontend
    /// serves; running someone else's maintenance here only burns budget.
    pub fn run_maintenance(&self, maintainer: &Maintainer) -> Result<MaintenanceReport> {
        let outcome = self.run_admitted(self.opts.query_cost_bytes, || maintainer.run_once())?;
        match &outcome {
            Ok(_) => {
                self.stats.maintenance_runs.fetch_add(1, Ordering::Relaxed);
                self.stats.completed.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.stats.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        outcome
    }

    /// Drive `queries` to completion from `clients` concurrent threads,
    /// retrying backpressure rejections until each query lands. Returns
    /// per-query latencies and answers plus the batch wall time — the
    /// raw material for QPS / p50 / p99 in the serving bench.
    pub fn run_concurrent(&self, queries: &[Query], clients: usize) -> ServeReport {
        let clients = clients.max(1);
        let next = AtomicUsize::new(0);
        let batch_start = Instant::now();
        let mut served: Vec<Option<ServedQuery>> = Vec::new();
        served.resize_with(queries.len(), || None);
        let slots = Mutex::new(&mut served);
        std::thread::scope(|scope| {
            for _ in 0..clients {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= queries.len() {
                        break;
                    }
                    let started = Instant::now();
                    let result = loop {
                        match self.run(&queries[i]) {
                            Ok(run) => break Some(run.result),
                            Err(DgfError::Backpressure(_)) => {
                                std::thread::sleep(Duration::from_micros(100));
                            }
                            Err(_) => break None,
                        }
                    };
                    let outcome = ServedQuery {
                        query_index: i,
                        result,
                        latency: started.elapsed(),
                    };
                    slots.lock().expect("served poisoned")[i] = Some(outcome);
                });
            }
        });
        ServeReport {
            served: served
                .into_iter()
                .map(|s| s.expect("every query index visited"))
                .collect(),
            wall: batch_start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use dgf_common::{Schema, TempDir, Value, ValueType};
    use dgf_core::{DgfIndex, DimPolicy, SplittingPolicy};
    use dgf_format::FileFormat;
    use dgf_hive::HiveContext;
    use dgf_kvstore::MemKvStore;
    use dgf_mapreduce::MrEngine;
    use dgf_query::{AggFunc, ColumnRange, Predicate};
    use dgf_storage::SimHdfs;

    fn meter_frontend(opts: ServeOptions) -> (TempDir, ServeFrontend) {
        let tmp = TempDir::new("serve-front").unwrap();
        let hdfs = SimHdfs::open(tmp.path()).unwrap();
        let ctx = HiveContext::new(hdfs, MrEngine::new(2));
        let schema = Arc::new(Schema::from_pairs(&[
            ("city", ValueType::Int),
            ("meter_id", ValueType::Int),
            ("usage", ValueType::Float),
        ]));
        let table = ctx.create_table("meter", schema, FileFormat::Text).unwrap();
        let mut rows = Vec::new();
        for city in 0..4i64 {
            for meter in 0..12i64 {
                rows.push(vec![
                    Value::Int(city),
                    Value::Int(meter),
                    Value::Float((city * 100 + meter) as f64 / 4.0),
                ]);
            }
        }
        ctx.load_rows(&table, &rows, 2).unwrap();
        let policy = SplittingPolicy::new(vec![
            DimPolicy::int("city", 0, 2),
            DimPolicy::int("meter_id", 0, 4),
        ])
        .unwrap();
        let (index, _) = DgfIndex::build(
            ctx,
            table,
            policy,
            vec![AggFunc::Sum("usage".into()), AggFunc::Count],
            Arc::new(MemKvStore::new()),
            "dgf_serve_front",
        )
        .unwrap();
        let engine = DgfEngine::new(Arc::new(index));
        (tmp, ServeFrontend::new(engine, opts))
    }

    fn range_query(col: &str, lo: i64, hi: i64) -> Query {
        Query::Aggregate {
            aggs: vec![AggFunc::Sum("usage".into()), AggFunc::Count],
            predicate: Predicate::all().and(
                col,
                ColumnRange::half_open(Value::Int(lo), Value::Int(hi)),
            ),
        }
    }

    #[test]
    fn served_answers_match_the_bare_engine() {
        let (_tmp, front) = meter_frontend(ServeOptions::default());
        let query = range_query("city", 1, 3);
        let direct = front.engine().run(&query).unwrap();
        let served = front.run(&query).unwrap();
        assert!(served.result.approx_eq(&direct.result, 0.0));
        let snap = front.stats().snapshot();
        assert_eq!(snap.admitted, 1);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.failed, 0);
        assert!(front.totals().data_records_read > 0);
    }

    #[test]
    fn over_budget_queries_bounce_with_backpressure() {
        let (_tmp, front) = meter_frontend(ServeOptions {
            max_inflight_bytes: 10,
            query_cost_bytes: 16,
            ..ServeOptions::default()
        });
        match front.run(&range_query("city", 0, 4)) {
            Err(DgfError::Backpressure(msg)) => assert!(msg.contains("serving budget")),
            other => panic!("expected backpressure, got {other:?}"),
        }
        let snap = front.stats().snapshot();
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.admitted, 0);
    }

    #[test]
    fn concurrent_batch_answers_every_query() {
        let (_tmp, front) = meter_frontend(ServeOptions {
            workers: 2,
            ..ServeOptions::default()
        });
        let queries: Vec<Query> = (0..3).map(|c| range_query("city", c, c + 1)).collect();
        let oracle: Vec<QueryResult> = queries
            .iter()
            .map(|query| front.engine().run(query).unwrap().result)
            .collect();
        let report = front.run_concurrent(&queries, 4);
        assert_eq!(report.served.len(), 3);
        for (served, expect) in report.served.iter().zip(&oracle) {
            assert!(served.result.as_ref().unwrap().approx_eq(expect, 0.0));
        }
        assert!(report.qps() > 0.0);
        assert!(report.latency_us_at(0.99) >= report.latency_us_at(0.5));
        let snap = front.stats().snapshot();
        // The oracle ran on the bare engine, bypassing the frontend.
        assert_eq!(snap.completed, 3);
    }

    #[test]
    fn tight_budget_batch_retries_to_completion() {
        // Budget admits exactly one query at a time; three clients must
        // retry through backpressure and still all land.
        let (_tmp, front) = meter_frontend(ServeOptions {
            workers: 1,
            max_inflight_bytes: 1 << 20,
            query_cost_bytes: 1 << 20,
            ..ServeOptions::default()
        });
        let queries: Vec<Query> = (0..6).map(|m| range_query("meter_id", m, m + 1)).collect();
        let report = front.run_concurrent(&queries, 3);
        assert!(report.served.iter().all(|s| s.result.is_some()));
        let snap = front.stats().snapshot();
        assert_eq!(snap.completed, 6);
        assert_eq!(snap.failed, 0);
    }

    #[test]
    fn maintenance_runs_behind_the_admission_gate() {
        use dgf_core::MaintenanceConfig;
        let (_tmp, front) = meter_frontend(ServeOptions::default());
        let maintainer = Maintainer::new(
            Arc::clone(front.engine().index()),
            MaintenanceConfig::default(),
        );
        let query = range_query("city", 0, 4);
        let before = front.run(&query).unwrap();
        let report = front.run_maintenance(&maintainer).unwrap();
        assert_eq!(report.reclaimed_files, 0, "nothing deferred yet");
        let after = front.run(&query).unwrap();
        assert!(after.result.approx_eq(&before.result, 0.0));
        let snap = front.stats().snapshot();
        assert_eq!(snap.maintenance_runs, 1);
        assert_eq!(snap.completed, 3, "maintenance counts as completed work");
        assert_eq!(snap.failed, 0);
    }

    #[test]
    fn maintenance_bounces_when_the_budget_is_full() {
        use dgf_core::MaintenanceConfig;
        let (_tmp, front) = meter_frontend(ServeOptions {
            max_inflight_bytes: 10,
            query_cost_bytes: 16,
            ..ServeOptions::default()
        });
        let maintainer = Maintainer::new(
            Arc::clone(front.engine().index()),
            MaintenanceConfig::default(),
        );
        match front.run_maintenance(&maintainer) {
            Err(DgfError::Backpressure(_)) => {}
            other => panic!("expected backpressure, got {other:?}"),
        }
        let snap = front.stats().snapshot();
        assert_eq!(snap.maintenance_runs, 0);
        assert_eq!(snap.rejected, 1);
    }

    #[test]
    fn stats_project_into_metrics_registry() {
        let (_tmp, front) = meter_frontend(ServeOptions::default());
        front.run(&range_query("city", 0, 2)).unwrap();
        let reg = MetricsRegistry::new();
        front.stats().record_into(&reg);
        assert_eq!(reg.get(names::SERVE_ADMITTED), 1);
        assert_eq!(reg.get(names::SERVE_COMPLETED), 1);
    }
}
