//! The sharded scatter-gather serving tier (DESIGN.md §13).
//!
//! Three pieces turn the single-node engine into a serving stack:
//!
//! * [`shardmap`] — where to split the GFU keyspace: odometer-rank
//!   boundaries that keep prefix-scan runs contiguous per shard and
//!   route all metadata (everything above the `g:` prefix, including
//!   the aggregate pyramid's `p:` nodes) to the last shard, preserving
//!   the commit protocol's single-shard atomicity.
//! * [`batcher`] — [`BatchingKv`] coalesces concurrent point reads
//!   (view pins, header probes) from many in-flight queries into shared
//!   `multi_get` flushes.
//! * [`frontend`] — [`ServeFrontend`] adds admission control (the
//!   ingest byte-reservation pattern) and a bounded worker pool over a
//!   [`DgfEngine`](dgf_core::DgfEngine), multiplexing many concurrent
//!   MDRQs without ever changing an answer byte.
//!
//! The scatter itself lives below this crate: the
//! [`ShardedKv`](dgf_kvstore::ShardedKv) router fans batched reads out
//! per shard, and the planner's parallel run fetch
//! ([`IndexOptions::fetch_parallelism`](dgf_core::IndexOptions)) issues
//! per-run sub-plans concurrently while absorbing results strictly in
//! odometer order — which is why every answer is bit-identical to the
//! single-node engine at any shard count (`tests/serving_equivalence.rs`
//! proves it for 1, 2, 4 and 7 shards).

#![warn(missing_docs)]

pub mod batcher;
pub mod frontend;
pub mod shardmap;

pub use batcher::{BatchStats, BatchingKv};
pub use frontend::{
    record_batch_into, record_fanout_into, ServeFrontend, ServeReport, ServeStats,
    ServeStatsSnapshot, ServedQuery,
};
pub use shardmap::{mirror_kv, shard_boundaries, sharded_mem};
