//! Shared header-fetch batching across concurrent queries.
//!
//! Every query pins its `ReadView` with a point read of `m:view`, and
//! the point-get plan strategy reads GFU headers one key at a time.
//! Under a concurrent frontend many of those reads are issued within
//! microseconds of each other — against a real region server each would
//! be its own RPC. [`BatchingKv`] coalesces them: the first `get` in a
//! quiet store becomes the *leader*, waits one batch window for
//! followers to pile on, then issues a single `multi_get` for all
//! distinct pending keys and distributes the answers. Routed through a
//! [`ShardedKv`](dgf_kvstore::ShardedKv), that combined batch is served
//! under the router's exclusive gate, so the coalesced reads keep the
//! snapshot-atomicity contract they would have had individually — the
//! batch sees one store state, which is a superset of each follower's
//! single-key consistency.
//!
//! With a zero window the wrapper is a transparent pass-through; scans
//! and writes always pass straight through.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use dgf_common::{DgfError, Result};
use dgf_kvstore::{KvPair, KvStats, KvStore};

/// Counters for the batcher (see `serve.batch_*` metric names).
#[derive(Debug, Default)]
pub struct BatchStats {
    /// Combined `multi_get` flushes issued by batch leaders.
    pub flushes: AtomicU64,
    /// Point reads that joined another read's in-flight batch.
    pub joins: AtomicU64,
    /// Distinct keys served by combined flushes.
    pub batched_keys: AtomicU64,
}

/// A slot one waiting `get` parks on until its leader fills it. Errors
/// cross threads as `(is_transient, message)` so retry loops upstream
/// still see transient faults as transient.
type SlotResult = std::result::Result<Option<Vec<u8>>, (bool, String)>;

struct Slot {
    result: Mutex<Option<SlotResult>>,
    ready: Condvar,
}

struct Pending {
    key: Vec<u8>,
    slot: Arc<Slot>,
}

#[derive(Default)]
struct BatchState {
    pending: Vec<Pending>,
    leader_active: bool,
}

/// A [`KvStore`] decorator that coalesces concurrent point reads into
/// shared `multi_get` batches.
pub struct BatchingKv {
    inner: Arc<dyn KvStore>,
    window: Duration,
    state: Mutex<BatchState>,
    stats: BatchStats,
}

impl BatchingKv {
    /// Wrap `inner`; a zero `window` disables coalescing entirely.
    pub fn new(inner: Arc<dyn KvStore>, window: Duration) -> BatchingKv {
        BatchingKv {
            inner,
            window,
            state: Mutex::new(BatchState::default()),
            stats: BatchStats::default(),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &Arc<dyn KvStore> {
        &self.inner
    }

    /// Batching counters.
    pub fn batch_stats(&self) -> &BatchStats {
        &self.stats
    }

    fn flush(&self, batch: Vec<Pending>) {
        // Dedup keys so ten queries pinning the same `m:view` cost one
        // slot in the combined batch.
        let mut unique: Vec<Vec<u8>> = Vec::new();
        let mut slot_of: Vec<usize> = Vec::with_capacity(batch.len());
        for p in &batch {
            match unique.iter().position(|k| *k == p.key) {
                Some(i) => slot_of.push(i),
                None => {
                    unique.push(p.key.clone());
                    slot_of.push(unique.len() - 1);
                }
            }
        }
        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
        self.stats
            .batched_keys
            .fetch_add(unique.len() as u64, Ordering::Relaxed);
        let outcome = self.inner.multi_get(&unique);
        for (p, &ui) in batch.iter().zip(&slot_of) {
            let r: SlotResult = match &outcome {
                Ok(values) => Ok(values[ui].clone()),
                Err(e) => Err((dgf_common::fault::is_transient(e), e.to_string())),
            };
            *p.slot.result.lock().expect("slot poisoned") = Some(r);
            p.slot.ready.notify_all();
        }
    }
}

impl KvStore for BatchingKv {
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        if self.window.is_zero() {
            return self.inner.get(key);
        }
        let slot = Arc::new(Slot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        });
        let is_leader = {
            let mut st = self.state.lock().expect("batch state poisoned");
            st.pending.push(Pending {
                key: key.to_vec(),
                slot: Arc::clone(&slot),
            });
            if st.leader_active {
                self.stats.joins.fetch_add(1, Ordering::Relaxed);
                false
            } else {
                st.leader_active = true;
                true
            }
        };
        if is_leader {
            // Hold the batch open for one window, then take everything
            // that accumulated (our own read included) in one flush.
            std::thread::sleep(self.window);
            let batch = {
                let mut st = self.state.lock().expect("batch state poisoned");
                st.leader_active = false;
                std::mem::take(&mut st.pending)
            };
            self.flush(batch);
        }
        let mut guard = slot.result.lock().expect("slot poisoned");
        while guard.is_none() {
            guard = slot.ready.wait(guard).expect("slot poisoned");
        }
        match guard.take().expect("checked above") {
            Ok(v) => Ok(v),
            Err((true, msg)) => Err(DgfError::Transient(msg)),
            Err((false, msg)) => Err(DgfError::KvStore(msg)),
        }
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.inner.put(key, value)
    }

    fn delete(&self, key: &[u8]) -> Result<bool> {
        self.inner.delete(key)
    }

    fn scan_range(&self, start: &[u8], end: &[u8]) -> Result<Vec<KvPair>> {
        self.inner.scan_range(start, end)
    }

    fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<KvPair>> {
        self.inner.scan_prefix(prefix)
    }

    fn update(&self, key: &[u8], f: &mut dyn FnMut(Option<&[u8]>) -> Vec<u8>) -> Result<()> {
        self.inner.update(key, f)
    }

    fn multi_get(&self, keys: &[Vec<u8>]) -> Result<Vec<Option<Vec<u8>>>> {
        self.inner.multi_get(keys)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn logical_size_bytes(&self) -> u64 {
        self.inner.logical_size_bytes()
    }

    fn flush(&self) -> Result<()> {
        self.inner.flush()
    }

    fn maintain(&self) -> Result<u64> {
        self.inner.maintain()
    }

    fn stats(&self) -> &KvStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_kvstore::MemKvStore;

    #[test]
    fn zero_window_is_a_pass_through() {
        let kv = BatchingKv::new(Arc::new(MemKvStore::new()), Duration::ZERO);
        kv.put(b"a", b"1").unwrap();
        assert_eq!(kv.get(b"a").unwrap().unwrap(), b"1");
        assert_eq!(kv.batch_stats().flushes.load(Ordering::Relaxed), 0);
        // Pass-through gets hit the inner store's get counter.
        assert_eq!(kv.stats().snapshot().gets, 1);
    }

    #[test]
    fn single_get_still_answers_with_a_window() {
        let kv = BatchingKv::new(Arc::new(MemKvStore::new()), Duration::from_micros(200));
        kv.put(b"a", b"1").unwrap();
        assert_eq!(kv.get(b"a").unwrap().unwrap(), b"1");
        assert!(kv.get(b"missing").unwrap().is_none());
        assert_eq!(kv.batch_stats().flushes.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn concurrent_gets_share_one_flush() {
        let inner = Arc::new(MemKvStore::new());
        inner.put(b"m:view", b"42").unwrap();
        let kv = Arc::new(BatchingKv::new(
            inner.clone(),
            Duration::from_millis(20),
        ));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let kv = Arc::clone(&kv);
                std::thread::spawn(move || kv.get(b"m:view").unwrap().unwrap())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), b"42");
        }
        let flushes = kv.batch_stats().flushes.load(Ordering::Relaxed);
        let joins = kv.batch_stats().joins.load(Ordering::Relaxed);
        assert!(flushes >= 1);
        assert_eq!(
            flushes + joins,
            8,
            "every read either led a flush or joined one"
        );
        // Identical keys dedup inside each flush: the inner store saw
        // far fewer key slots than reads.
        let snap = inner.stats().snapshot();
        assert_eq!(snap.gets, 0, "no read bypassed the batcher");
        assert_eq!(snap.multi_gets, flushes);
        assert_eq!(snap.multi_get_keys, flushes, "one distinct key per flush");
    }

    #[test]
    fn distinct_keys_in_one_batch_all_answer() {
        let inner = Arc::new(MemKvStore::new());
        for i in 0..16u8 {
            inner.put(&[b'k', i], &[i]).unwrap();
        }
        let kv = Arc::new(BatchingKv::new(
            inner.clone(),
            Duration::from_millis(10),
        ));
        let handles: Vec<_> = (0..16u8)
            .map(|i| {
                let kv = Arc::clone(&kv);
                std::thread::spawn(move || kv.get(&[b'k', i]).unwrap().unwrap())
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.join().unwrap(), vec![i as u8]);
        }
    }
}
