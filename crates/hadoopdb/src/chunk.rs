//! A chunk database: the stand-in for one PostgreSQL instance.
//!
//! HadoopDB (paper §5.1–§5.2) bulk-loads each ~1 GB chunk into a separate
//! PostgreSQL database with a multi-column clustered index on
//! `(userId, regionId, time)`. This module reproduces the storage shape:
//! rows sorted by the composite key, packed into fixed-size **pages** on
//! disk, with an in-memory page directory keyed by the leading column — a
//! one-level clustered B-tree. A range query on the leading column seeks
//! to the first overlapping page and scans pages until past the range;
//! a query without a leading-column bound scans every page.

use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use dgf_common::codec::{self, Decoder};
use dgf_common::{DgfError, Result, Row};
use dgf_query::{BoundPredicate, ColumnRange, RowSink};

/// Rows per page. At ~60 B per meter row this approximates an 8 KB
/// PostgreSQL heap page.
pub const ROWS_PER_PAGE: usize = 128;

/// I/O counters shared across a HadoopDB deployment.
///
/// Chunk files are read with plain `File` I/O (they model local
/// PostgreSQL storage, not HDFS), so these counters are the *only*
/// account of HadoopDB's data traffic — [`ChunkStats::snapshot`] and
/// [`ChunkSnapshot::record_into`] route them through the same
/// delta/registry scheme as `IoStats` and `KvStats` instead of leaving
/// them as free-floating atomics.
#[derive(Debug, Default)]
pub struct ChunkStats {
    /// Pages fetched from disk.
    pub pages_read: AtomicU64,
    /// Rows decoded from fetched pages.
    pub rows_read: AtomicU64,
    /// Bytes read.
    pub bytes_read: AtomicU64,
}

impl ChunkStats {
    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> ChunkSnapshot {
        ChunkSnapshot {
            pages_read: self.pages_read.load(Ordering::Relaxed),
            rows_read: self.rows_read.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
        }
    }
}

/// A copyable snapshot of [`ChunkStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChunkSnapshot {
    /// Pages fetched from disk.
    pub pages_read: u64,
    /// Rows decoded from fetched pages.
    pub rows_read: u64,
    /// Bytes read.
    pub bytes_read: u64,
}

impl ChunkSnapshot {
    /// Counter deltas `self - earlier` (saturating).
    pub fn since(&self, earlier: &ChunkSnapshot) -> ChunkSnapshot {
        ChunkSnapshot {
            pages_read: self.pages_read.saturating_sub(earlier.pages_read),
            rows_read: self.rows_read.saturating_sub(earlier.rows_read),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
        }
    }

    /// Project into a registry under the `hadoopdb.*` names.
    pub fn record_into(&self, reg: &dgf_common::obs::MetricsRegistry) {
        use dgf_common::obs::names;
        reg.add(names::HADOOPDB_PAGES_READ, self.pages_read);
        reg.add(names::HADOOPDB_ROWS_READ, self.rows_read);
        reg.add(names::HADOOPDB_BYTES_READ, self.bytes_read);
    }
}

/// One clustered chunk on disk.
#[derive(Debug)]
pub struct ChunkDb {
    path: PathBuf,
    /// `(first_key_of_page, byte_offset, byte_len)` per page, in order.
    directory: Vec<(i64, u64, u32)>,
    /// Column index of the clustering key (leading index column).
    key_col: usize,
    rows: u64,
}

impl ChunkDb {
    /// Bulk-load `rows` (any order) into a chunk file at `path`,
    /// clustering on `key_col` then the remaining `sort_cols`.
    pub fn bulk_load(
        path: impl Into<PathBuf>,
        mut rows: Vec<Row>,
        key_col: usize,
        sort_cols: &[usize],
    ) -> Result<ChunkDb> {
        let path = path.into();
        rows.sort_by(|a, b| {
            a[key_col]
                .cmp(&b[key_col])
                .then_with(|| {
                    for c in sort_cols {
                        let ord = a[*c].cmp(&b[*c]);
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                })
        });
        let mut w = BufWriter::new(File::create(&path)?);
        let mut directory = Vec::new();
        let mut offset = 0u64;
        let total = rows.len() as u64;
        for page_rows in rows.chunks(ROWS_PER_PAGE) {
            let first_key = page_rows[0][key_col].as_i64().map_err(|_| {
                DgfError::Schema("chunk clustering key must be an integer column".into())
            })?;
            let mut buf = Vec::new();
            codec::put_u32(&mut buf, page_rows.len() as u32);
            for r in page_rows {
                codec::put_u32(&mut buf, r.len() as u32);
                for v in r {
                    codec::put_value(&mut buf, v);
                }
            }
            w.write_all(&buf)?;
            directory.push((first_key, offset, buf.len() as u32));
            offset += buf.len() as u64;
        }
        w.flush()?;
        Ok(ChunkDb {
            path,
            directory,
            key_col,
            rows: total,
        })
    }

    /// Rows stored.
    pub fn row_count(&self) -> u64 {
        self.rows
    }

    /// Pages stored.
    pub fn page_count(&self) -> usize {
        self.directory.len()
    }

    /// The chunk file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The page index range `[first, last)` overlapping a leading-key
    /// interval; the whole file when the interval is unbounded.
    fn page_range(&self, range: Option<&ColumnRange>) -> (usize, usize) {
        let Some(range) = range else {
            return (0, self.directory.len());
        };
        // First page that could contain the lower bound: the last page
        // whose first key <= bound (rows equal to the bound may start in
        // the previous page).
        let lo = match &range.low {
            std::ops::Bound::Unbounded => 0,
            std::ops::Bound::Included(v) | std::ops::Bound::Excluded(v) => {
                let key = v.as_i64().unwrap_or(i64::MIN);
                self.directory
                    .partition_point(|(first, _, _)| *first <= key)
                    .saturating_sub(1)
            }
        };
        let hi = match &range.high {
            std::ops::Bound::Unbounded => self.directory.len(),
            std::ops::Bound::Included(v) | std::ops::Bound::Excluded(v) => {
                let key = v.as_i64().unwrap_or(i64::MAX);
                // Pages whose first key > bound cannot contain matches.
                self.directory.partition_point(|(first, _, _)| *first <= key)
            }
        };
        (lo.min(hi), hi)
    }

    /// Run the predicate over the chunk via the clustered index, feeding
    /// matching rows into `sink`. Returns rows examined.
    pub fn query(
        &self,
        key_range: Option<&ColumnRange>,
        bound: &BoundPredicate,
        sink: &mut RowSink,
        stats: &ChunkStats,
    ) -> Result<u64> {
        let (first, last) = self.page_range(key_range);
        if first >= last {
            return Ok(0);
        }
        let mut f = File::open(&self.path)?;
        let start = self.directory[first].1;
        let end = self.directory[last - 1].1 + self.directory[last - 1].2 as u64;
        f.seek(SeekFrom::Start(start))?;
        let mut buf = vec![0u8; (end - start) as usize];
        f.read_exact(&mut buf)?;
        stats.pages_read.fetch_add((last - first) as u64, Ordering::Relaxed);
        stats.bytes_read.fetch_add(buf.len() as u64, Ordering::Relaxed);

        let mut examined = 0u64;
        let mut dec = Decoder::new(&buf);
        for _ in first..last {
            let n = dec.u32()? as usize;
            for _ in 0..n {
                let width = dec.u32()? as usize;
                let mut row = Vec::with_capacity(width);
                for _ in 0..width {
                    row.push(codec::get_value(&mut dec)?);
                }
                examined += 1;
                // Residual filter on the leading key (page granularity is
                // coarse) plus the rest of the predicate.
                let key_ok = key_range.is_none_or(|r| r.contains(&row[self.key_col]));
                if key_ok {
                    sink.push_if(&row, bound)?;
                }
            }
        }
        stats.rows_read.fetch_add(examined, Ordering::Relaxed);
        Ok(examined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_common::{Schema, TempDir, Value, ValueType};
    use dgf_query::{AggFunc, Predicate, Query};

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("user_id", ValueType::Int),
            ("region_id", ValueType::Int),
            ("power", ValueType::Float),
        ])
    }

    fn rows(n: i64) -> Vec<Row> {
        // Deliberately unsorted input.
        (0..n)
            .rev()
            .map(|i| {
                vec![
                    Value::Int(i % 500),
                    Value::Int(i % 7),
                    Value::Float(i as f64),
                ]
            })
            .collect()
    }

    fn count_query(pred: Predicate) -> Query {
        Query::Aggregate {
            aggs: vec![AggFunc::Count],
            predicate: pred,
        }
    }

    #[test]
    fn bulk_load_clusters_rows() {
        let t = TempDir::new("chunk").unwrap();
        let db = ChunkDb::bulk_load(t.path().join("c0"), rows(1000), 0, &[1]).unwrap();
        assert_eq!(db.row_count(), 1000);
        assert!(db.page_count() >= 1000 / ROWS_PER_PAGE);
        // Directory keys are nondecreasing.
        for w in db.directory.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn range_query_reads_subset_of_pages() {
        let t = TempDir::new("chunk").unwrap();
        let s = schema();
        let db = ChunkDb::bulk_load(t.path().join("c0"), rows(2000), 0, &[1]).unwrap();
        let stats = ChunkStats::default();
        let pred = Predicate::all().and(
            "user_id",
            ColumnRange::half_open(Value::Int(100), Value::Int(120)),
        );
        let q = count_query(pred.clone());
        let mut sink = RowSink::new(&q, &s, None).unwrap();
        let bound = pred.bind(&s).unwrap();
        db.query(
            pred.range_of("user_id"),
            &bound,
            &mut sink,
            &stats,
        )
        .unwrap();
        // 2000 rows, user = i%500: users 100..120 appear 4 times each.
        assert_eq!(sink.finish().into_scalars()[0], Value::Int(80));
        let pages = stats.pages_read.load(Ordering::Relaxed) as usize;
        assert!(pages < db.page_count(), "index must prune pages");
    }

    #[test]
    fn no_leading_bound_scans_all_pages() {
        let t = TempDir::new("chunk").unwrap();
        let s = schema();
        let db = ChunkDb::bulk_load(t.path().join("c0"), rows(1000), 0, &[1]).unwrap();
        let stats = ChunkStats::default();
        let pred = Predicate::all().and("region_id", ColumnRange::eq(Value::Int(3)));
        let q = count_query(pred.clone());
        let mut sink = RowSink::new(&q, &s, None).unwrap();
        let bound = pred.bind(&s).unwrap();
        db.query(None, &bound, &mut sink, &stats).unwrap();
        assert_eq!(
            stats.pages_read.load(Ordering::Relaxed) as usize,
            db.page_count()
        );
        let expected = (0..1000).filter(|i| i % 7 == 3).count() as i64;
        assert_eq!(sink.finish().into_scalars()[0], Value::Int(expected));
    }

    #[test]
    fn point_query_touches_one_or_two_pages() {
        let t = TempDir::new("chunk").unwrap();
        let s = schema();
        let db = ChunkDb::bulk_load(t.path().join("c0"), rows(5000), 0, &[1]).unwrap();
        let stats = ChunkStats::default();
        let pred = Predicate::all().and("user_id", ColumnRange::eq(Value::Int(250)));
        let q = count_query(pred.clone());
        let mut sink = RowSink::new(&q, &s, None).unwrap();
        let bound = pred.bind(&s).unwrap();
        db.query(pred.range_of("user_id"), &bound, &mut sink, &stats)
            .unwrap();
        assert_eq!(sink.finish().into_scalars()[0], Value::Int(10));
        assert!(stats.pages_read.load(Ordering::Relaxed) <= 2);
    }

    #[test]
    fn empty_range_reads_nothing() {
        let t = TempDir::new("chunk").unwrap();
        let s = schema();
        let db = ChunkDb::bulk_load(t.path().join("c0"), rows(100), 0, &[]).unwrap();
        let stats = ChunkStats::default();
        let pred = Predicate::all().and(
            "user_id",
            ColumnRange::half_open(Value::Int(10_000), Value::Int(20_000)),
        );
        let q = count_query(pred.clone());
        let mut sink = RowSink::new(&q, &s, None).unwrap();
        let bound = pred.bind(&s).unwrap();
        let examined = db
            .query(pred.range_of("user_id"), &bound, &mut sink, &stats)
            .unwrap();
        // The directory may charge one boundary page, no more.
        assert!(examined <= ROWS_PER_PAGE as u64);
        assert_eq!(sink.finish().into_scalars()[0], Value::Int(0));
    }
}
