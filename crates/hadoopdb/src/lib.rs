//! # dgf-hadoopdb
//!
//! The HadoopDB baseline (Abouzeid et al., VLDB 2009) as deployed in the
//! paper's §5.1/§5.2: meter data hash-partitioned by `userId` across
//! nodes (GlobalHasher), each node's partition hashed again into ~1 GB
//! chunks (LocalHasher), every chunk bulk-loaded into its own
//! PostgreSQL-like clustered store with a multi-column index on
//! `(userId, regionId, time)`. Queries are pushed into every chunk and a
//! MapReduce-style collection merges the results.
//!
//! The paper's observed behaviour — excellent at point queries, degrading
//! to scan-level at 12% selectivity because of "resources competition,
//! and the low batch reading performance of RDBMS" — is reproduced
//! structurally: each chunk query pays a fixed startup overhead
//! (connection/planning) and a bounded per-node worker pool serializes
//! concurrent chunk queries.

#![warn(missing_docs)]

pub mod chunk;

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use dgf_common::{DgfError, Result, Row, Schema, Stopwatch};
use dgf_query::{Engine, EngineRun, Query, RowSink, RunStats};

pub use chunk::{ChunkDb, ChunkSnapshot, ChunkStats, ROWS_PER_PAGE};

/// Deployment shape and cost model.
#[derive(Debug, Clone)]
pub struct HadoopDbConfig {
    /// Worker nodes (paper: 28).
    pub nodes: usize,
    /// Chunk databases per node (paper: 38).
    pub chunks_per_node: usize,
    /// Concurrent chunk queries per node — the resource-competition
    /// bound (PostgreSQL instances share the node's disks and cores).
    pub node_parallelism: usize,
    /// Fixed startup cost per chunk query (connection + planning).
    pub per_chunk_overhead: Duration,
}

impl Default for HadoopDbConfig {
    fn default() -> Self {
        HadoopDbConfig {
            nodes: 4,
            chunks_per_node: 6,
            node_parallelism: 2,
            per_chunk_overhead: Duration::from_micros(500),
        }
    }
}

fn hash_i64(x: i64, salt: u64) -> u64 {
    dgf_common::codec::fnv1a(&(x as u64 ^ salt).to_le_bytes())
}

/// A loaded HadoopDB deployment.
pub struct HadoopDb {
    config: HadoopDbConfig,
    schema: Schema,
    key_name: String,
    /// `nodes[n][c]` = chunk database `c` of node `n`.
    nodes: Vec<Vec<ChunkDb>>,
    stats: ChunkStats,
    /// Replicated dimension table (the paper copies the user table into
    /// every node's databases).
    right: Option<(Schema, Vec<Row>)>,
    total_rows: u64,
}

impl HadoopDb {
    /// Partition and bulk-load `rows` under `dir`.
    ///
    /// `key_col` is the GlobalHasher/LocalHasher column and the leading
    /// index column; `sort_cols` are the remaining index columns.
    pub fn load(
        dir: impl Into<PathBuf>,
        schema: Schema,
        rows: &[Row],
        key_col_name: &str,
        sort_col_names: &[&str],
        config: HadoopDbConfig,
    ) -> Result<HadoopDb> {
        if config.nodes == 0 || config.chunks_per_node == 0 {
            return Err(DgfError::Job("HadoopDB needs nodes and chunks".into()));
        }
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let key_col = schema.index_of(key_col_name)?;
        let sort_cols: Vec<usize> = sort_col_names
            .iter()
            .map(|c| schema.index_of(c))
            .collect::<Result<_>>()?;

        // GlobalHasher then LocalHasher.
        let mut buckets: Vec<Vec<Vec<Row>>> =
            vec![vec![Vec::new(); config.chunks_per_node]; config.nodes];
        for r in rows {
            let key = r[key_col].as_i64().map_err(|_| {
                DgfError::Schema("HadoopDB partition key must be an integer column".into())
            })?;
            let n = (hash_i64(key, 0x9E37) % config.nodes as u64) as usize;
            let c = (hash_i64(key, 0x85EB) % config.chunks_per_node as u64) as usize;
            buckets[n][c].push(r.clone());
        }

        let mut nodes = Vec::with_capacity(config.nodes);
        for (n, node_rows) in buckets.into_iter().enumerate() {
            let mut chunks = Vec::with_capacity(config.chunks_per_node);
            for (c, chunk_rows) in node_rows.into_iter().enumerate() {
                let path = dir.join(format!("node{n}-chunk{c}.db"));
                chunks.push(ChunkDb::bulk_load(path, chunk_rows, key_col, &sort_cols)?);
            }
            nodes.push(chunks);
        }
        Ok(HadoopDb {
            config,
            schema,
            key_name: key_col_name.to_owned(),
            nodes,
            stats: ChunkStats::default(),
            right: None,
            total_rows: rows.len() as u64,
        })
    }

    /// Replicate a small dimension table to every node (paper: the user
    /// table is put into all databases of every node).
    pub fn replicate_right(&mut self, schema: Schema, rows: Vec<Row>) {
        self.right = Some((schema, rows));
    }

    /// Total chunk databases.
    pub fn chunk_count(&self) -> usize {
        self.nodes.iter().map(|n| n.len()).sum()
    }

    /// Total rows loaded.
    pub fn row_count(&self) -> u64 {
        self.total_rows
    }

    /// Shared I/O counters.
    pub fn stats(&self) -> &ChunkStats {
        &self.stats
    }

    fn spin(d: Duration) {
        if d.is_zero() {
            return;
        }
        let s = std::time::Instant::now();
        while s.elapsed() < d {
            std::hint::spin_loop();
        }
    }

    /// Push the query into every chunk and merge (the paper extends
    /// HadoopDB's MapReduce task code to run these queries).
    pub fn query(&self, query: &Query) -> Result<RowSink> {
        let key_range = query.predicate().range_of(&self.key_name).cloned();
        let bound = query.predicate().bind(&self.schema)?;
        let right_ref = self.right.as_ref().map(|(s, r)| (s, r.as_slice()));

        let node_sinks: Mutex<Vec<RowSink>> = Mutex::new(Vec::new());
        let first_err: Mutex<Option<DgfError>> = Mutex::new(None);
        crossbeam::scope(|s| {
            // All nodes run concurrently (separate machines in the paper);
            // chunks inside a node contend for `node_parallelism` workers.
            for chunks in &self.nodes {
                s.spawn(|_| {
                    let work: Mutex<std::slice::Iter<'_, ChunkDb>> = Mutex::new(chunks.iter());
                    let local: Mutex<Vec<RowSink>> = Mutex::new(Vec::new());
                    crossbeam::scope(|ns| {
                        for _ in 0..self.config.node_parallelism.max(1) {
                            ns.spawn(|_| loop {
                                if first_err.lock().is_some() {
                                    return;
                                }
                                let chunk = { work.lock().next() };
                                let Some(chunk) = chunk else { return };
                                Self::spin(self.config.per_chunk_overhead);
                                let run = || -> Result<RowSink> {
                                    let mut sink =
                                        RowSink::new(query, &self.schema, right_ref)?;
                                    chunk.query(
                                        key_range.as_ref(),
                                        &bound,
                                        &mut sink,
                                        &self.stats,
                                    )?;
                                    Ok(sink)
                                };
                                match run() {
                                    Ok(sink) => local.lock().push(sink),
                                    Err(e) => {
                                        let mut slot = first_err.lock();
                                        if slot.is_none() {
                                            *slot = Some(e);
                                        }
                                        return;
                                    }
                                }
                            });
                        }
                    })
                    .expect("node scope");
                    node_sinks.lock().append(&mut local.into_inner());
                });
            }
        })
        .map_err(|_| DgfError::Job("a HadoopDB node panicked".into()))?;
        if let Some(e) = first_err.into_inner() {
            return Err(e);
        }

        let mut sinks = node_sinks.into_inner().into_iter();
        let mut total = match sinks.next() {
            Some(s) => s,
            None => RowSink::new(query, &self.schema, right_ref)?,
        };
        for s in sinks {
            total.merge(s)?;
        }
        Ok(total)
    }
}

/// The HadoopDB query engine.
pub struct HadoopDbEngine {
    db: Arc<HadoopDb>,
}

impl HadoopDbEngine {
    /// An engine over a loaded deployment.
    pub fn new(db: Arc<HadoopDb>) -> Self {
        HadoopDbEngine { db }
    }
}

impl Engine for HadoopDbEngine {
    fn name(&self) -> String {
        "HadoopDB".to_owned()
    }

    fn run(&self, query: &Query) -> Result<EngineRun> {
        let before = self.db.stats.snapshot();
        let watch = Stopwatch::start();
        let sink = self.db.query(query)?;
        let result = sink.finish();
        let delta = self.db.stats.snapshot().since(&before);
        Ok(EngineRun {
            result,
            stats: RunStats {
                data_time: watch.elapsed(),
                data_records_read: delta.rows_read,
                data_bytes_read: delta.bytes_read,
                splits_total: self.db.chunk_count() as u64,
                splits_read: self.db.chunk_count() as u64, // every chunk is probed
                ..RunStats::default()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_common::{TempDir, Value, ValueType};
    use dgf_query::{AggFunc, ColumnRange, Predicate};

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("user_id", ValueType::Int),
            ("region_id", ValueType::Int),
            ("day", ValueType::Int),
            ("power", ValueType::Float),
        ])
    }

    fn rows(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| {
                vec![
                    Value::Int(i % 300),
                    Value::Int(i % 11),
                    Value::Int(i % 30),
                    Value::Float((i % 50) as f64),
                ]
            })
            .collect()
    }

    fn config() -> HadoopDbConfig {
        HadoopDbConfig {
            nodes: 3,
            chunks_per_node: 4,
            node_parallelism: 2,
            per_chunk_overhead: Duration::ZERO,
        }
    }

    fn ground_truth_count(rows: &[Row], schema: &Schema, pred: &Predicate) -> i64 {
        let bound = pred.bind(schema).unwrap();
        rows.iter().filter(|r| bound.matches(r)).count() as i64
    }

    #[test]
    fn load_partitions_everything_exactly_once() {
        let t = TempDir::new("hdb").unwrap();
        let db = HadoopDb::load(
            t.path(),
            schema(),
            &rows(3000),
            "user_id",
            &["region_id", "day"],
            config(),
        )
        .unwrap();
        assert_eq!(db.chunk_count(), 12);
        assert_eq!(db.row_count(), 3000);
        let total: u64 = db.nodes.iter().flatten().map(|c| c.row_count()).sum();
        assert_eq!(total, 3000);
    }

    #[test]
    fn aggregation_matches_ground_truth() {
        let t = TempDir::new("hdb").unwrap();
        let data = rows(3000);
        let db = Arc::new(
            HadoopDb::load(
                t.path(),
                schema(),
                &data,
                "user_id",
                &["region_id", "day"],
                config(),
            )
            .unwrap(),
        );
        let pred = Predicate::all()
            .and("user_id", ColumnRange::half_open(Value::Int(50), Value::Int(120)))
            .and("day", ColumnRange::half_open(Value::Int(3), Value::Int(20)));
        let q = Query::Aggregate {
            aggs: vec![AggFunc::Count],
            predicate: pred.clone(),
        };
        let run = HadoopDbEngine::new(db).run(&q).unwrap();
        assert_eq!(
            run.result.into_scalars()[0],
            Value::Int(ground_truth_count(&data, &schema(), &pred))
        );
        assert!(run.stats.data_records_read > 0);
    }

    #[test]
    fn point_query_examines_far_fewer_rows_than_high_selectivity() {
        let t = TempDir::new("hdb").unwrap();
        let data = rows(20_000);
        let db = Arc::new(
            HadoopDb::load(
                t.path(),
                schema(),
                &data,
                "user_id",
                &["region_id", "day"],
                config(),
            )
            .unwrap(),
        );
        let point = Query::Aggregate {
            aggs: vec![AggFunc::Count],
            predicate: Predicate::all().and("user_id", ColumnRange::eq(Value::Int(17))),
        };
        let wide = Query::Aggregate {
            aggs: vec![AggFunc::Count],
            predicate: Predicate::all().and(
                "user_id",
                ColumnRange::half_open(Value::Int(0), Value::Int(290)),
            ),
        };
        let engine = HadoopDbEngine::new(db);
        let p = engine.run(&point).unwrap();
        let w = engine.run(&wide).unwrap();
        assert!(p.stats.data_records_read * 4 < w.stats.data_records_read);
    }

    #[test]
    fn group_by_and_join_work() {
        let t = TempDir::new("hdb").unwrap();
        let data = rows(2000);
        let mut db = HadoopDb::load(
            t.path(),
            schema(),
            &data,
            "user_id",
            &["region_id", "day"],
            config(),
        )
        .unwrap();
        let right_schema = Schema::from_pairs(&[
            ("user_id", ValueType::Int),
            ("name", ValueType::Str),
        ]);
        let right_rows: Vec<Row> = (0..300)
            .map(|i| vec![Value::Int(i), Value::Str(format!("u{i}"))])
            .collect();
        db.replicate_right(right_schema, right_rows);
        let db = Arc::new(db);
        let engine = HadoopDbEngine::new(db);

        let gb = Query::GroupBy {
            key: "region_id".into(),
            aggs: vec![AggFunc::Count],
            predicate: Predicate::all(),
        };
        let run = engine.run(&gb).unwrap();
        let groups = run.result.into_groups();
        assert_eq!(groups.len(), 11);
        assert_eq!(
            groups.iter().map(|(_, v)| v[0].as_i64().unwrap()).sum::<i64>(),
            2000
        );

        let join = Query::Join {
            left_key: "user_id".into(),
            right_key: "user_id".into(),
            left_project: vec!["power".into()],
            right_project: vec!["name".into()],
            predicate: Predicate::all().and("user_id", ColumnRange::eq(Value::Int(5))),
        };
        let run = engine.run(&join).unwrap();
        let out = run.result.into_rows();
        assert_eq!(out.len(), data.iter().filter(|r| r[0] == Value::Int(5)).count());
        assert!(out.iter().all(|r| r[0] == Value::Str("u5".into())));
    }

    #[test]
    fn invalid_config_rejected() {
        let t = TempDir::new("hdb").unwrap();
        let bad = HadoopDbConfig {
            nodes: 0,
            ..config()
        };
        assert!(HadoopDb::load(t.path(), schema(), &rows(10), "user_id", &[], bad).is_err());
        // Non-integer key column.
        assert!(HadoopDb::load(
            t.path(),
            schema(),
            &rows(10),
            "power",
            &[],
            config()
        )
        .is_err());
    }
}
