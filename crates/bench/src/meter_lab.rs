//! The smart-grid laboratory: one shared setup holding the meter dataset
//! and every engine the paper compares (§5.3).

use std::sync::Arc;

use dgf_common::{Result, Row, TempDir};
use dgf_core::{DgfEngine, DgfIndex, DimPolicy, SplittingPolicy};
use dgf_format::FileFormat;
use dgf_hadoopdb::{HadoopDb, HadoopDbEngine};
use dgf_hive::{
    BuildReport, CompactEngine, CompactIndex, HiveContext, ScanEngine, TableRef,
};
use dgf_kvstore::{KvStore, LatencyKv, MemKvStore};
use dgf_mapreduce::MrEngine;
use dgf_query::AggFunc;
use dgf_storage::{HdfsConfig, SimHdfs};
use dgf_workload::{generate_meter_data, generate_user_info, meter_schema, user_info_schema};

use crate::scale::BenchScale;

/// The paper's three `userId` interval settings (§5.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntervalSize {
    /// userId split into ~100 intervals.
    Large,
    /// ~1 000 intervals.
    Medium,
    /// ~10 000 intervals.
    Small,
}

impl IntervalSize {
    /// All three settings in paper order.
    pub fn all() -> [IntervalSize; 3] {
        [IntervalSize::Large, IntervalSize::Medium, IntervalSize::Small]
    }

    /// Index into per-variant arrays.
    pub fn idx(&self) -> usize {
        match self {
            IntervalSize::Large => 0,
            IntervalSize::Medium => 1,
            IntervalSize::Small => 2,
        }
    }

    /// Bench-table label.
    pub fn label(&self) -> &'static str {
        match self {
            IntervalSize::Large => "large",
            IntervalSize::Medium => "medium",
            IntervalSize::Small => "small",
        }
    }
}

/// Shared experiment state for the real-world (meter) dataset.
pub struct MeterLab {
    _tmp: TempDir,
    /// The scale this lab was built at.
    pub scale: BenchScale,
    /// Warehouse context.
    pub ctx: Arc<HiveContext>,
    /// The generated meter rows (ground truth).
    pub rows: Vec<Row>,
    /// TextFile base table (DGFIndex requires TextFile in the paper).
    pub text_table: TableRef,
    /// RCFile base table (the paper builds the Compact Index on RCFile).
    pub rc_table: TableRef,
    /// The archive user table.
    pub users: TableRef,
    /// 2-D Compact Index on (regionId, time) over the RCFile table.
    pub compact2: Arc<CompactIndex>,
    /// Build report of `compact2`.
    pub compact2_report: BuildReport,
    /// DGF indexes at Large/Medium/Small userId intervals.
    pub dgf: [Arc<DgfIndex>; 3],
    /// Build reports of the DGF variants.
    pub dgf_reports: [BuildReport; 3],
    /// The HadoopDB deployment.
    pub hadoopdb: Arc<HadoopDb>,
}

impl MeterLab {
    /// The paper's pre-compute list: `sum(powerConsumed)` (§5.3.1).
    pub fn precompute() -> Vec<AggFunc> {
        vec![AggFunc::Sum("power_consumed".into())]
    }

    /// Build the full lab (tables, indexes, deployment) at `scale`.
    pub fn build(scale: BenchScale) -> Result<MeterLab> {
        let tmp = TempDir::new("meterlab")?;
        let hdfs = SimHdfs::new(
            tmp.path().join("hdfs"),
            HdfsConfig {
                block_size: scale.block_size,
                replication: 2,
            },
        )?;
        let ctx = HiveContext::new(hdfs, MrEngine::new(scale.threads));

        let rows = generate_meter_data(&scale.meter);
        let user_rows = generate_user_info(&scale.meter);

        let text_table = ctx.create_table("meterdata_text", meter_schema(), FileFormat::Text)?;
        ctx.load_rows(&text_table, &rows, scale.files)?;
        let rc_table = ctx.create_table("meterdata_rc", meter_schema(), FileFormat::RcFile)?;
        ctx.load_rows(&rc_table, &rows, scale.files)?;
        let users = ctx.create_table("user_info", user_info_schema(), FileFormat::Text)?;
        ctx.load_rows(&users, &user_rows, 1)?;

        // Compact Index: the paper's initial 3-D attempt produced an index
        // nearly the size of the base table, so its production setting is
        // 2-D on the two low-cardinality dimensions (regionId, time).
        let (compact2, compact2_report) = CompactIndex::build(
            Arc::clone(&ctx),
            Arc::clone(&rc_table),
            vec!["region_id".into(), "ts".into()],
            "compact2_meter",
        )?;

        // DGF indexes: fixed intervals for regionId (1) and time (1 day);
        // userId interval varies Large/Medium/Small (§5.3.1).
        let intervals = scale.user_intervals();
        let mut dgf_vec = Vec::with_capacity(3);
        let mut report_vec = Vec::with_capacity(3);
        for (i, label) in ["large", "medium", "small"].iter().enumerate() {
            let policy = SplittingPolicy::new(vec![
                DimPolicy::int("user_id", 0, intervals[i]),
                DimPolicy::int("region_id", 0, 1),
                DimPolicy::date("ts", scale.meter.start_day, 1),
            ])?;
            let kv: Arc<dyn KvStore> = Arc::new(LatencyKv::new(
                MemKvStore::new(),
                scale.kv_latency,
            ));
            let (idx, report) = DgfIndex::build(
                Arc::clone(&ctx),
                Arc::clone(&text_table),
                policy,
                Self::precompute(),
                kv,
                &format!("dgf_{label}"),
            )?;
            dgf_vec.push(Arc::new(idx));
            report_vec.push(report);
        }
        let dgf: [Arc<DgfIndex>; 3] = dgf_vec
            .try_into()
            .unwrap_or_else(|_| unreachable!("three variants"));
        let dgf_reports: [BuildReport; 3] = report_vec
            .try_into()
            .unwrap_or_else(|_| unreachable!("three variants"));

        let mut hdb = HadoopDb::load(
            tmp.path().join("hadoopdb"),
            (*meter_schema()).clone(),
            &rows,
            "user_id",
            &["region_id", "ts"],
            scale.hadoopdb.clone(),
        )?;
        hdb.replicate_right((*user_info_schema()).clone(), user_rows);

        Ok(MeterLab {
            _tmp: tmp,
            scale,
            ctx,
            rows,
            text_table,
            rc_table,
            users,
            compact2: Arc::new(compact2),
            compact2_report,
            dgf,
            dgf_reports,
            hadoopdb: Arc::new(hdb),
        })
    }

    /// A scan engine over the text table.
    pub fn scan_engine(&self) -> ScanEngine {
        ScanEngine::new(Arc::clone(&self.ctx), Arc::clone(&self.text_table))
            .with_right(Arc::clone(&self.users))
    }

    /// The Compact Index engine.
    pub fn compact_engine(&self) -> CompactEngine {
        CompactEngine::new(Arc::clone(&self.compact2)).with_right(Arc::clone(&self.users))
    }

    /// A DGF engine at the given interval size.
    pub fn dgf_engine(&self, size: IntervalSize) -> DgfEngine {
        DgfEngine::new(Arc::clone(&self.dgf[size.idx()])).with_right(Arc::clone(&self.users))
    }

    /// The HadoopDB engine.
    pub fn hadoopdb_engine(&self) -> HadoopDbEngine {
        HadoopDbEngine::new(Arc::clone(&self.hadoopdb))
    }

    /// Exact matching-row count for a predicate (ground truth for the
    /// paper's "Accurate" table rows).
    pub fn accurate_count(&self, predicate: &dgf_query::Predicate) -> Result<u64> {
        let schema = meter_schema();
        let bound = predicate.bind(&schema)?;
        Ok(self.rows.iter().filter(|r| bound.matches(r)).count() as u64)
    }

    /// Build the 3-D Compact Index the paper attempted first (§5.3.1) —
    /// expensive by design, so callers opt in.
    pub fn build_compact3(&self) -> Result<(Arc<CompactIndex>, BuildReport)> {
        let (idx, report) = CompactIndex::build(
            Arc::clone(&self.ctx),
            Arc::clone(&self.rc_table),
            vec!["user_id".into(), "region_id".into(), "ts".into()],
            "compact3_meter",
        )?;
        Ok((Arc::new(idx), report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_query::{Engine, QueryResult};
    use dgf_workload::{aggregation_query, Selectivity};

    #[test]
    fn lab_builds_and_all_engines_agree() {
        let mut scale = BenchScale::small();
        scale.meter.users = 300;
        scale.meter.days = 10;
        scale.kv_latency = dgf_kvstore::LatencyModel::ZERO;
        scale.hadoopdb.per_chunk_overhead = std::time::Duration::ZERO;
        let lab = MeterLab::build(scale).unwrap();
        let q = aggregation_query(&lab.scale.meter, Selectivity::Frac(0.08));
        let truth: QueryResult = lab.scan_engine().run(&q).unwrap().result;
        for size in IntervalSize::all() {
            let r = lab.dgf_engine(size).run(&q).unwrap().result;
            assert!(r.approx_eq(&truth, 1e-6), "dgf {}", size.label());
        }
        let r = lab.compact_engine().run(&q).unwrap().result;
        assert!(r.approx_eq(&truth, 1e-6), "compact");
        let r = lab.hadoopdb_engine().run(&q).unwrap().result;
        assert!(r.approx_eq(&truth, 1e-6), "hadoopdb");
    }
}
