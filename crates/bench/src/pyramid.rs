//! Pyramid readpath experiment (DESIGN.md §14).
//!
//! The PR's tentpole claim: on an inner-heavy multidimensional range
//! query, decomposing the fully-covered region into canonical pyramid
//! nodes (`p:` keys) cuts the KV reads spent on headers by ≥10× versus
//! flat per-cell enumeration — with the merged inner states
//! **bit**-identical, because every strategy folds the inner region
//! through the same canonical merge tree.
//!
//! The lab synthesizes the store directly instead of reorganizing a
//! million-row table: deterministic per-cell headers are written as
//! `g:` leaves, [`pyramid::rebuild_all`] derives every `p:` node
//! bottom-up (the exact folds incremental maintenance would have
//! produced), and the index metadata — policy, aggregate keys, extents,
//! pyramid height, and a committed non-pending [`ReadView`] — is put
//! alongside, so a stock [`DgfIndex::open`] reader plans against it
//! like any live index. Three passes run the same inner-heavy query
//! under [`PlanStrategy::PrefixScan`], [`PlanStrategy::PointGets`], and
//! [`PlanStrategy::Pyramid`], each on a cold header cache, comparing
//! KV-stats deltas. It also assembles the `BENCH_pyramid.json`
//! document.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dgf_common::{Result, Schema, TempDir, Value, ValueType};
use dgf_core::gfu::{
    META_AGGS_KEY, META_EXTENT_KEY, META_POLICY_KEY, META_PYRAMID_KEY, META_VIEW_KEY,
};
use dgf_core::{
    pyramid, DgfEngine, DgfIndex, DimPolicy, Extents, GfuKey, GfuValue, PlanStrategy, ReadView,
    SplittingPolicy,
};
use dgf_format::FileFormat;
use dgf_hive::{HiveContext, TableRef};
use dgf_kvstore::{KvStore, MemKvStore};
use dgf_mapreduce::MrEngine;
use dgf_query::{AggFunc, AggSet, AggState, ColumnRange, Engine, Predicate, Query};
use dgf_storage::SimHdfs;

const INDEX: &str = "dgf_pyr_bench";

/// Shape of the pyramid readpath experiment.
#[derive(Debug, Clone, Copy)]
pub struct PyramidConfig {
    /// Grid cells per dimension (the grid is `n × n`).
    pub cells_per_dim: i64,
    /// Cells shaved off each side of the query box. A small odd margin
    /// keeps the box misaligned with every pyramid level, so the
    /// decomposition exercises its fringe descent instead of
    /// degenerating to one giant node.
    pub margin: i64,
    /// Pyramid height stored in `m:pyramid` and built by the backfill.
    pub levels: u8,
}

impl PyramidConfig {
    /// The release-bench acceptance configuration: a 1024×1024 grid,
    /// whose margin-3 query box covers 1018² ≈ 1.04M inner cells.
    pub fn acceptance() -> PyramidConfig {
        PyramidConfig {
            cells_per_dim: 1024,
            margin: 3,
            levels: 12,
        }
    }

    /// A debug-test-sized configuration (64×64 grid, 58² inner cells).
    pub fn tiny() -> PyramidConfig {
        PyramidConfig {
            cells_per_dim: 64,
            margin: 3,
            levels: 8,
        }
    }
}

/// The synthesized store plus the warehouse a reader opens against.
pub struct PyramidLab {
    _tmp: TempDir,
    cfg: PyramidConfig,
    ctx: Arc<HiveContext>,
    base: TableRef,
    /// The store holding leaves, pyramid nodes, and index metadata.
    pub kv: Arc<dyn KvStore>,
    /// Pyramid nodes the backfill wrote.
    pub nodes_built: u64,
    /// `g:` leaf headers written.
    pub leaves: u64,
}

/// One cold-cache planning pass's outcome under a fetch strategy.
#[derive(Debug, Clone)]
pub struct ReadPass {
    /// Strategy label (`prefix_scan` / `point_gets` / `pyramid`).
    pub strategy: &'static str,
    /// Wall time of plan assembly.
    pub wall: Duration,
    /// KV read round trips (gets + scans + multi_gets) the plan issued.
    pub read_ops: u64,
    /// Point-addressed keys requested (gets + multi_get keys).
    pub keys_requested: u64,
    /// Value bytes the store returned — scans included, so this is the
    /// one KV-level measure that sees every header a strategy fetched.
    pub bytes_read: u64,
    /// Headers merged into the inner accumulator (cells for the flat
    /// strategies; decomposition items for the pyramid).
    pub inner_gfus: u64,
    /// Records those headers summarize.
    pub inner_records: u64,
    /// Level ≥ 1 nodes merged (0 for the flat strategies).
    pub pyramid_nodes: u64,
    /// Leaf cells those nodes summarized.
    pub pyramid_cells: u64,
    /// Encoded merged inner states — byte equality here is bit
    /// identity of every compensated partial sum.
    pub states: Vec<u8>,
    /// Finalized scalar answers.
    pub answers: Vec<Value>,
}

fn aggs() -> Vec<AggFunc> {
    vec![AggFunc::Sum("v".into()), AggFunc::Count]
}

fn schema() -> Arc<Schema> {
    Arc::new(Schema::from_pairs(&[
        ("x", ValueType::Int),
        ("y", ValueType::Int),
        ("v", ValueType::Float),
    ]))
}

/// The deterministic per-cell header: a record count in `1..=3` and a
/// sum whose magnitude swings with the coordinates, so compensated
/// summation order is observable (uniform values would make any fold
/// order agree and the bit-identity check vacuous).
fn cell_header(x: i64, y: i64) -> (f64, u64) {
    let mix = (x * 1_009 + y * 9_176) % 9_973;
    let magnitude = 10f64.powi((mix % 7) as i32 - 3);
    (mix as f64 * magnitude, 1 + ((x + y) % 3) as u64)
}

impl PyramidLab {
    /// Synthesize the store: `n²` leaf headers, a full pyramid over
    /// them, and the metadata a reader needs to open and plan.
    pub fn build(cfg: PyramidConfig) -> Result<PyramidLab> {
        let tmp = TempDir::new("pyr-bench")?;
        let hdfs = SimHdfs::open(tmp.path())?;
        let ctx = HiveContext::new(hdfs, MrEngine::new(1));
        let base = ctx.create_table("pyr_base", schema(), FileFormat::Text)?;
        // The reader resolves `<index>_data` at open; it stays empty
        // because an inner-only plan never reads a Slice.
        ctx.create_table(&format!("{INDEX}_data"), schema(), FileFormat::Text)?;

        let set = AggSet::bind(&aggs(), &base.schema)?;
        let kv: Arc<dyn KvStore> = Arc::new(MemKvStore::new());
        let n = cfg.cells_per_dim;
        let mut leaves = 0u64;
        for x in 0..n {
            for y in 0..n {
                let (sum, count) = cell_header(x, y);
                let states = vec![
                    AggState::Sum {
                        sum,
                        comp: 0.0,
                        non_null: count,
                    },
                    AggState::Count(count),
                ];
                let value = GfuValue {
                    header: AggSet::encode_states(&states),
                    slices: Vec::new(),
                    record_count: count,
                };
                kv.put(&GfuKey::new(vec![x, y]).encode(), &value.encode())?;
                leaves += 1;
            }
        }
        let nodes_built = pyramid::rebuild_all(kv.as_ref(), 2, cfg.levels, &set)?;

        let policy = SplittingPolicy::new(vec![
            DimPolicy::int("x", 0, 1),
            DimPolicy::int("y", 0, 1),
        ])?;
        let extents = Extents {
            dims: vec![(0, n - 1), (0, n - 1)],
        };
        let agg_keys = aggs()
            .iter()
            .map(|a| a.key())
            .collect::<Vec<_>>()
            .join("\n");
        let view = ReadView {
            generation: 1,
            pending: false,
            watermark: 0,
            // No file accounting: the synthetic store has no reorganized
            // files, and `files: None` tells the freshness check so.
            files: None,
            extents: extents.clone(),
            data_files: Some(Vec::new()),
            policy: Some(policy.encode()),
            versioned: true,
        };
        kv.put(META_POLICY_KEY, &policy.encode())?;
        kv.put(META_AGGS_KEY, agg_keys.as_bytes())?;
        kv.put(META_EXTENT_KEY, &extents.encode())?;
        kv.put(META_PYRAMID_KEY, &pyramid::encode_meta(cfg.levels))?;
        kv.put(META_VIEW_KEY, &view.encode())?;

        Ok(PyramidLab {
            _tmp: tmp,
            cfg,
            ctx,
            base,
            kv,
            nodes_built,
            leaves,
        })
    }

    /// The inner-heavy query: the cell-aligned box `[margin, n-margin)`
    /// on both dimensions. Every cell in range is fully covered (cell
    /// width 1), so the flat strategies fetch each of the
    /// [`inner_cells`](Self::inner_cells) headers while the pyramid
    /// reads its decomposition.
    pub fn query(&self) -> Query {
        let (lo, hi) = (self.cfg.margin, self.cfg.cells_per_dim - self.cfg.margin);
        Query::Aggregate {
            aggs: aggs(),
            predicate: Predicate::all()
                .and("x", ColumnRange::half_open(Value::Int(lo), Value::Int(hi)))
                .and("y", ColumnRange::half_open(Value::Int(lo), Value::Int(hi))),
        }
    }

    /// Total grid cells.
    pub fn grid_cells(&self) -> u64 {
        (self.cfg.cells_per_dim * self.cfg.cells_per_dim) as u64
    }

    /// Cells the query's inner region covers.
    pub fn inner_cells(&self) -> u64 {
        let w = (self.cfg.cells_per_dim - 2 * self.cfg.margin) as u64;
        w * w
    }

    /// One cold pass: open a fresh reader (empty header cache), plan
    /// the query under `strategy` measuring the KV-stats delta, then
    /// finalize the answer through the engine.
    pub fn read_pass(&self, strategy: PlanStrategy) -> Result<ReadPass> {
        let reader = Arc::new(DgfIndex::open(
            Arc::clone(&self.ctx),
            Arc::clone(&self.base),
            Arc::clone(&self.kv),
            INDEX,
            aggs(),
        )?);
        let q = self.query();
        let before = self.kv.stats().snapshot();
        let watch = Instant::now();
        let plan = reader.plan_with_strategy(&q, true, strategy)?;
        let wall = watch.elapsed();
        let delta = self.kv.stats().snapshot().since(&before);
        let states = plan
            .inner_states
            .as_deref()
            .map(AggSet::encode_states)
            .unwrap_or_default();
        let answers = DgfEngine::new(reader)
            .with_strategy(strategy)
            .run(&q)?
            .result
            .into_scalars();
        Ok(ReadPass {
            strategy: match strategy {
                PlanStrategy::PointGets => "point_gets",
                PlanStrategy::PrefixScan => "prefix_scan",
                PlanStrategy::Pyramid => "pyramid",
            },
            wall,
            read_ops: delta.read_ops(),
            keys_requested: delta.gets + delta.multi_get_keys,
            bytes_read: delta.bytes_read,
            inner_gfus: plan.inner_gfus,
            inner_records: plan.inner_records,
            pyramid_nodes: plan.pyramid_nodes,
            pyramid_cells: plan.pyramid_cells,
            states,
            answers,
        })
    }
}

/// `flat / pyramid`, saturating to 0 when the denominator is 0 (an
/// all-cached pass read nothing — not a speedup worth claiming).
pub fn reduction(flat: u64, pyramid: u64) -> f64 {
    if pyramid == 0 {
        0.0
    } else {
        flat as f64 / pyramid as f64
    }
}

fn pass_json(p: &ReadPass) -> String {
    format!(
        concat!(
            "{{\"strategy\":\"{}\",\"wall_us\":{},\"read_ops\":{},",
            "\"keys_requested\":{},\"bytes_read\":{},\"inner_gfus\":{},",
            "\"inner_records\":{},\"pyramid_nodes\":{},\"pyramid_cells\":{}}}"
        ),
        p.strategy,
        p.wall.as_micros(),
        p.read_ops,
        p.keys_requested,
        p.bytes_read,
        p.inner_gfus,
        p.inner_records,
        p.pyramid_nodes,
        p.pyramid_cells,
    )
}

/// Assemble the `BENCH_pyramid.json` document: one entry per strategy
/// pass plus the pyramid's read reductions over flat enumeration (the
/// headline `kv_read_reduction` is byte-based — the one KV measure that
/// sees scan-returned headers too).
pub fn pyramid_json(config: &str, lab: &PyramidLab, passes: &[ReadPass]) -> String {
    let find = |name: &str| passes.iter().find(|p| p.strategy == name);
    let (mut ops_x, mut bytes_x, mut keys_x) = (0.0, 0.0, 0.0);
    if let (Some(scan), Some(points), Some(pyr)) =
        (find("prefix_scan"), find("point_gets"), find("pyramid"))
    {
        ops_x = reduction(scan.read_ops, pyr.read_ops);
        bytes_x = reduction(scan.bytes_read, pyr.bytes_read);
        keys_x = reduction(points.keys_requested, pyr.keys_requested);
    }
    let entries: Vec<String> = passes.iter().map(pass_json).collect();
    format!(
        concat!(
            "{{\"experiment\":\"pyramid\",\"config\":\"{}\",\"grid_cells\":{},",
            "\"inner_cells\":{},\"leaves\":{},\"nodes_built\":{},\"passes\":[{}],",
            "\"read_ops_reduction\":{:.2},\"keys_reduction\":{:.2},",
            "\"kv_read_reduction\":{:.2}}}"
        ),
        config,
        lab.grid_cells(),
        lab.inner_cells(),
        lab.leaves,
        lab.nodes_built,
        entries.join(","),
        ops_x,
        keys_x,
        bytes_x,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Debug-scale correctness: the three strategies merge bit-identical
    /// inner states and finalize identical scalars, and even a 64×64
    /// grid clears the ≥10× read-reduction bar.
    #[test]
    fn tiny_grid_passes_are_bit_identical_and_reduced() {
        let lab = PyramidLab::build(PyramidConfig::tiny()).unwrap();
        assert_eq!(lab.leaves, lab.grid_cells());
        assert!(lab.nodes_built > 0);

        let scan = lab.read_pass(PlanStrategy::PrefixScan).unwrap();
        let points = lab.read_pass(PlanStrategy::PointGets).unwrap();
        let pyr = lab.read_pass(PlanStrategy::Pyramid).unwrap();

        assert!(!scan.states.is_empty());
        assert_eq!(scan.states, points.states, "flat strategies diverged");
        assert_eq!(scan.states, pyr.states, "pyramid states not bit-identical");
        assert_eq!(scan.answers, pyr.answers);
        assert_eq!(scan.inner_records, pyr.inner_records);

        assert_eq!(scan.inner_gfus, lab.inner_cells());
        assert!(pyr.pyramid_nodes > 0);
        assert!(pyr.pyramid_cells > pyr.pyramid_nodes);
        assert!(
            reduction(scan.read_ops, pyr.read_ops) >= 10.0,
            "scan {} ops vs pyramid {} ops",
            scan.read_ops,
            pyr.read_ops
        );
        assert!(
            reduction(scan.bytes_read, pyr.bytes_read) >= 10.0,
            "scan {}B vs pyramid {}B",
            scan.bytes_read,
            pyr.bytes_read
        );
        assert!(
            reduction(points.keys_requested, pyr.keys_requested) >= 10.0,
            "points {} keys vs pyramid {} keys",
            points.keys_requested,
            pyr.keys_requested
        );
    }

    /// The JSON document carries the schema EXPERIMENTS.md documents.
    #[test]
    fn json_carries_the_documented_schema() {
        let lab = PyramidLab::build(PyramidConfig::tiny()).unwrap();
        let passes = vec![
            lab.read_pass(PlanStrategy::PrefixScan).unwrap(),
            lab.read_pass(PlanStrategy::PointGets).unwrap(),
            lab.read_pass(PlanStrategy::Pyramid).unwrap(),
        ];
        let json = pyramid_json("tiny", &lab, &passes);
        for needle in [
            "\"experiment\":\"pyramid\"",
            "\"passes\":[",
            "\"strategy\":\"prefix_scan\"",
            "\"strategy\":\"point_gets\"",
            "\"strategy\":\"pyramid\"",
            "\"pyramid_nodes\":",
            "\"read_ops_reduction\":",
            "\"keys_reduction\":",
            "\"kv_read_reduction\":",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }
}
