//! # dgf-bench
//!
//! The benchmark harness regenerating **every table and figure** of the
//! paper's evaluation (§5):
//!
//! | Experiment | Function |
//! |---|---|
//! | Figure 3 (write throughput) | [`experiments::fig3_write_throughput`] |
//! | Table 2 (index size/build) | [`experiments::table2_index_size`] |
//! | Table 3 + Figures 8–10 (aggregation) | [`experiments::agg_experiment`] |
//! | Table 4 + Figures 11–13 (GROUP BY) | [`experiments::groupby_experiment`] |
//! | Figures 14–16 (JOIN) | [`experiments::join_experiment`] |
//! | Figure 17 (partial query) | [`experiments::partial_experiment`] |
//! | Table 5 (TPC-H build) | [`experiments::table5_tpch_index`] |
//! | Table 6 + Figure 18 (TPC-H Q6) | [`experiments::tpch_q6_experiment`] |
//! | Ablations + §2.2 discussion | [`experiments::ablation_dgf_features`], [`experiments::partition_pressure_experiment`] |
//!
//! Run `cargo run --release -p dgf-bench --bin repro -- --scale medium`
//! to print them all, or `--out results.md` to also write Markdown.

#![warn(missing_docs)]

pub mod columnar;
pub mod compaction;
pub mod experiments;
pub mod meter_lab;
pub mod pyramid;
pub mod readpath;
pub mod report;
pub mod scale;
pub mod serving;
pub mod sidecar;
pub mod tpch_lab;

pub use meter_lab::{IntervalSize, MeterLab};
pub use report::{fmt_bytes, fmt_count, fmt_secs, ReportTable};
pub use scale::BenchScale;
pub use tpch_lab::TpchLab;
