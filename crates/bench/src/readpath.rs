//! Read-path micro-experiment: prefix-scan planning vs. per-cell point
//! gets, and the warm header cache, under an HBase-like latency model.
//!
//! The paper observes (§5.3.3, Figures 12–13) that small intervals blow
//! up the number of GFUs a query touches and the key-value round trips
//! dominate "read index time". This experiment quantifies the two
//! read-path optimizations on exactly that regime: a partially-specified
//! aggregation over a grid of ≥10⁴ cells, planned three ways — per-cell
//! point gets, cold prefix scans, and prefix scans with a warm header
//! cache.

use std::sync::Arc;
use std::time::Duration;

use dgf_common::obs::Profiler;
use dgf_common::{Result, Row, Schema, Stopwatch, TempDir, Value, ValueType};
use dgf_core::{DgfEngine, DgfIndex, DgfPlan, DimPolicy, PlanStrategy, SplittingPolicy};
use dgf_format::FileFormat;
use dgf_hive::HiveContext;
use dgf_kvstore::{KvStore, LatencyKv, LatencyModel, MemKvStore};
use dgf_mapreduce::MrEngine;
use dgf_query::{AggFunc, ColumnRange, Engine, Predicate, Query, RunStats};
use dgf_storage::{HdfsConfig, SimHdfs};

/// One planning pass's cost.
#[derive(Debug, Clone, Copy)]
pub struct PassCost {
    /// Key-value read round trips (gets + scans + multi-gets).
    pub read_ops: u64,
    /// Wall time of the planning call.
    pub time: Duration,
    /// Header-cache hits during the pass.
    pub cache_hits: u64,
    /// Header-cache misses during the pass.
    pub cache_misses: u64,
}

/// Outcome of the read-path experiment.
#[derive(Debug, Clone, Copy)]
pub struct ReadPathReport {
    /// Cells of the query hyper-rectangle.
    pub cells: u64,
    /// Per-cell point-get baseline.
    pub point_gets: PassCost,
    /// Prefix scans against a cold cache.
    pub cold_scan: PassCost,
    /// Prefix scans against a warm cache (repeat of the same query).
    pub warm_scan: PassCost,
}

impl ReadPathReport {
    /// How many times fewer read round trips cold prefix scanning needs
    /// than the point-get baseline.
    pub fn read_op_ratio(&self) -> f64 {
        self.point_gets.read_ops as f64 / self.cold_scan.read_ops.max(1) as f64
    }

    /// Warm-pass cache hit ratio in `[0, 1]`.
    pub fn warm_hit_ratio(&self) -> f64 {
        let total = self.warm_scan.cache_hits + self.warm_scan.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.warm_scan.cache_hits as f64 / total as f64
        }
    }
}

/// A built index over a `users × days` unit grid behind an HBase-like
/// latency model, plus the partially-specified query of the experiment.
pub struct ReadPathLab {
    _tmp: TempDir,
    /// The built index (over the latency-wrapped store).
    pub idx: DgfIndex,
    /// The latency-wrapped store, for counter snapshots.
    pub kv: Arc<LatencyKv<MemKvStore>>,
    /// The experiment query: `user` constrained, `day` left to extents.
    pub query: Query,
    /// Cells of the query hyper-rectangle.
    pub cells: u64,
}

impl ReadPathLab {
    /// Build the grid, the data, and the index. Rows are deterministic
    /// and sparse: most cells stay empty, which is exactly the regime
    /// where negative cache entries matter.
    pub fn build(
        users: i64,
        days: i64,
        n_rows: usize,
        model: LatencyModel,
    ) -> Result<ReadPathLab> {
        let tmp = TempDir::new("readpath")?;
        let hdfs = SimHdfs::new(
            tmp.path(),
            HdfsConfig {
                block_size: 1 << 20,
                replication: 1,
            },
        )?;
        let ctx = HiveContext::new(hdfs, MrEngine::new(4));
        let schema = Arc::new(Schema::from_pairs(&[
            ("user", ValueType::Int),
            ("day", ValueType::Int),
            ("power", ValueType::Float),
        ]));
        let table = ctx.create_table("meter_readpath", schema, FileFormat::Text)?;
        let rows: Vec<Row> = (0..n_rows)
            .map(|i| {
                let i = i as i64;
                vec![
                    Value::Int((i * 7) % users),
                    Value::Int((i * 13) % days),
                    Value::Float((i % 100) as f64 / 4.0),
                ]
            })
            .collect();
        ctx.load_rows(&table, &rows, 4)?;

        let kv = Arc::new(LatencyKv::new(MemKvStore::new(), model));
        let policy = SplittingPolicy::new(vec![
            DimPolicy::int("user", 0, 1),
            DimPolicy::int("day", 0, 1),
        ])?;
        let (idx, _) = DgfIndex::build(
            Arc::clone(&ctx),
            table,
            policy,
            vec![AggFunc::Sum("power".into()), AggFunc::Count],
            Arc::clone(&kv) as Arc<dyn KvStore>,
            "dgf_readpath",
        )?;

        // Partially specified: only `user` is constrained; `day` falls
        // back to the stored extents, so the rectangle spans
        // (users - 10) × days cells.
        let query = Query::Aggregate {
            aggs: vec![AggFunc::Sum("power".into())],
            predicate: Predicate::all().and(
                "user",
                ColumnRange::half_open(Value::Int(5), Value::Int(users - 5)),
            ),
        };
        Ok(ReadPathLab {
            _tmp: tmp,
            idx,
            kv,
            query,
            cells: (users - 10) as u64 * days as u64,
        })
    }

    /// Plan the experiment query once with `strategy`, returning the
    /// pass's key-value cost and the plan itself.
    pub fn pass(&self, strategy: PlanStrategy) -> Result<(PassCost, DgfPlan)> {
        let before = self.kv.stats().snapshot();
        let watch = Stopwatch::start();
        let plan = self.idx.plan_with_strategy(&self.query, true, strategy)?;
        let time = watch.elapsed();
        let delta = self.kv.stats().snapshot().since(&before);
        Ok((
            PassCost {
                read_ops: delta.read_ops(),
                time,
                cache_hits: plan.cache_hits,
                cache_misses: plan.cache_misses,
            },
            plan,
        ))
    }

    /// Run a boundary-heavy variant of the experiment query end to end
    /// through [`DgfEngine`] with a force-enabled profiler (regardless of
    /// `DGF_TRACE`), returning the run's [`RunStats`] — whose `profile`
    /// field carries the per-stage span tree. Consumes the lab: the
    /// engine wants the index behind an `Arc`.
    ///
    /// The variant adds a residual predicate on the non-dimension
    /// `power` column, which makes the pre-computed headers unusable and
    /// turns the whole covered region into boundary Slices — so the
    /// profile exercises both the planning stages (`plan.*`, from
    /// `dgf-core`) and the data scan (`hdfs.*`, from `dgf-storage`).
    pub fn profiled_run(self) -> Result<RunStats> {
        let ReadPathLab {
            _tmp,
            mut idx,
            query,
            ..
        } = self;
        let query = match query {
            Query::Aggregate { aggs, predicate } => Query::Aggregate {
                aggs,
                predicate: predicate.and(
                    "power",
                    ColumnRange::half_open(Value::Float(-1.0), Value::Float(1e9)),
                ),
            },
            other => other,
        };
        idx.set_profiler(Profiler::enabled());
        let engine = DgfEngine::new(Arc::new(idx));
        let run = engine.run(&query)?;
        Ok(run.stats)
    }
}

fn pass_json(p: &PassCost) -> String {
    format!(
        "{{\"read_ops\":{},\"time_us\":{},\"cache_hits\":{},\"cache_misses\":{}}}",
        p.read_ops,
        p.time.as_micros(),
        p.cache_hits,
        p.cache_misses
    )
}

/// Assemble the `BENCH_readpath.json` document: the three planning-pass
/// costs plus one fully profiled engine run, whose `profile` array is the
/// per-stage span tree (`query` → `query.plan`/`query.scan` → `plan.*`)
/// with `kv.*`, `plan.*` and `hdfs.*` metrics attached to the stages that
/// incurred them. See DESIGN.md §8 for the schema.
pub fn readpath_json(config: &str, report: &ReadPathReport, stats: &RunStats) -> String {
    format!(
        concat!(
            "{{\"experiment\":\"readpath\",\"config\":\"{config}\",\"cells\":{cells},",
            "\"passes\":{{\"point_gets\":{pg},\"cold_scan\":{cold},\"warm_scan\":{warm}}},",
            "\"query\":{{\"index_time_us\":{itime},\"data_time_us\":{dtime},",
            "\"index_records_read\":{irec},\"data_records_read\":{drec},",
            "\"data_bytes_read\":{dbytes},\"splits_total\":{st},\"splits_read\":{sr},",
            "\"index_cache_hits\":{ch},\"index_cache_misses\":{cm},",
            "\"retries_absorbed\":{ra},\"profile\":{profile}}}}}"
        ),
        config = config,
        cells = report.cells,
        pg = pass_json(&report.point_gets),
        cold = pass_json(&report.cold_scan),
        warm = pass_json(&report.warm_scan),
        itime = stats.index_time.as_micros(),
        dtime = stats.data_time.as_micros(),
        irec = stats.index_records_read,
        drec = stats.data_records_read,
        dbytes = stats.data_bytes_read,
        st = stats.splits_total,
        sr = stats.splits_read,
        ch = stats.index_cache_hits,
        cm = stats.index_cache_misses,
        ra = stats.retries_absorbed,
        profile = stats.profile.to_json(),
    )
}

/// Run a partially-specified aggregation over a `users × days` unit grid
/// with all three fetch strategies and report their key-value costs.
///
/// Wrap the store in [`LatencyModel::hbase_like`] to see the paper's
/// RPC-bound regime in the reported times, or [`LatencyModel::ZERO`] to
/// isolate the pure CPU cost of planning.
pub fn readpath_experiment(
    users: i64,
    days: i64,
    n_rows: usize,
    model: LatencyModel,
) -> Result<ReadPathReport> {
    let lab = ReadPathLab::build(users, days, n_rows, model)?;
    let (point_gets, base_plan) = lab.pass(PlanStrategy::PointGets)?;
    let (cold_scan, cold_plan) = lab.pass(PlanStrategy::PrefixScan)?;
    let (warm_scan, warm_plan) = lab.pass(PlanStrategy::PrefixScan)?;

    // The strategies must agree before their costs are comparable.
    for plan in [&cold_plan, &warm_plan] {
        assert_eq!(base_plan.inner_states, plan.inner_states);
        assert_eq!(base_plan.inner_gfus, plan.inner_gfus);
        assert_eq!(base_plan.boundary_gfus, plan.boundary_gfus);
        assert_eq!(base_plan.inputs, plan.inputs);
    }

    Ok(ReadPathReport {
        cells: lab.cells,
        point_gets,
        cold_scan,
        warm_scan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The PR's acceptance criteria, asserted at the required scale: a
    /// partially-specified aggregation over a ≥10⁴-cell grid issues ≥10×
    /// fewer key-value operations than the per-key baseline, and the
    /// repeated query is ≥90 % cache hits with zero gets for the cell
    /// region (the two remaining gets are the per-plan metadata reads).
    #[test]
    fn readpath_meets_acceptance_criteria() {
        let report = readpath_experiment(110, 100, 3_000, LatencyModel::hbase_like()).unwrap();
        assert!(report.cells >= 10_000, "grid too small: {}", report.cells);
        assert!(
            report.read_op_ratio() >= 10.0,
            "expected ≥10× fewer read ops, got {:.1}× ({} vs {})",
            report.read_op_ratio(),
            report.point_gets.read_ops,
            report.cold_scan.read_ops,
        );
        assert!(
            report.warm_hit_ratio() >= 0.9,
            "expected ≥90% warm hits, got {:.1}% ({} hits / {} misses)",
            report.warm_hit_ratio() * 100.0,
            report.warm_scan.cache_hits,
            report.warm_scan.cache_misses,
        );
        // Warm pass: the cell region costs zero KV reads; only the two
        // metadata gets (freshness + extents) remain.
        assert_eq!(report.warm_scan.read_ops, 2);
        assert_eq!(report.warm_scan.cache_misses, 0);
        // The latency model makes the round-trip savings visible in wall
        // time too.
        assert!(report.cold_scan.time < report.point_gets.time);
    }

    /// The bench JSON document must carry per-stage profile data sourced
    /// from at least two crates: planning stages (`plan.*`, attached in
    /// `dgf-core`) and data-scan I/O (`hdfs.*`, attached by
    /// `dgf-storage`'s `SimHdfs`).
    #[test]
    fn bench_json_has_per_stage_profile_from_core_and_storage() {
        let report = readpath_experiment(25, 25, 800, LatencyModel::ZERO).unwrap();
        let stats = ReadPathLab::build(25, 25, 800, LatencyModel::ZERO)
            .unwrap()
            .profiled_run()
            .unwrap();
        assert!(!stats.profile.is_empty(), "profiled run produced no spans");
        let violations = stats.profile.check_nesting();
        assert!(violations.is_empty(), "nesting violations: {violations:?}");
        // Core-side planning stages with their metrics.
        assert!(stats.profile.find("plan.fetch").is_some());
        assert!(stats.profile.find("plan.splits").is_some());
        assert!(stats.profile.metric_total("kv.gets") + stats.profile.metric_total("kv.scans") > 0);
        // Storage-side scan I/O attributed to the scan stage.
        let scan = stats.profile.find("query.scan").expect("scan stage");
        assert!(scan.metrics.get("hdfs.bytes_read").copied().unwrap_or(0) > 0);
        let json = readpath_json("test 25x25", &report, &stats);
        for needle in [
            "\"experiment\":\"readpath\"",
            "\"passes\":",
            "\"warm_scan\":",
            "\"profile\":[",
            "plan.fetch",
            "hdfs.bytes_read",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }
}
