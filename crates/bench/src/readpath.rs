//! Read-path micro-experiment: prefix-scan planning vs. per-cell point
//! gets, and the warm header cache, under an HBase-like latency model.
//!
//! The paper observes (§5.3.3, Figures 12–13) that small intervals blow
//! up the number of GFUs a query touches and the key-value round trips
//! dominate "read index time". This experiment quantifies the two
//! read-path optimizations on exactly that regime: a partially-specified
//! aggregation over a grid of ≥10⁴ cells, planned three ways — per-cell
//! point gets, cold prefix scans, and prefix scans with a warm header
//! cache.

use std::sync::Arc;
use std::time::Duration;

use dgf_common::{Result, Row, Schema, Stopwatch, TempDir, Value, ValueType};
use dgf_core::{DgfIndex, DgfPlan, DimPolicy, PlanStrategy, SplittingPolicy};
use dgf_format::FileFormat;
use dgf_hive::HiveContext;
use dgf_kvstore::{KvStore, LatencyKv, LatencyModel, MemKvStore};
use dgf_mapreduce::MrEngine;
use dgf_query::{AggFunc, ColumnRange, Predicate, Query};
use dgf_storage::{HdfsConfig, SimHdfs};

/// One planning pass's cost.
#[derive(Debug, Clone, Copy)]
pub struct PassCost {
    /// Key-value read round trips (gets + scans + multi-gets).
    pub read_ops: u64,
    /// Wall time of the planning call.
    pub time: Duration,
    /// Header-cache hits during the pass.
    pub cache_hits: u64,
    /// Header-cache misses during the pass.
    pub cache_misses: u64,
}

/// Outcome of the read-path experiment.
#[derive(Debug, Clone, Copy)]
pub struct ReadPathReport {
    /// Cells of the query hyper-rectangle.
    pub cells: u64,
    /// Per-cell point-get baseline.
    pub point_gets: PassCost,
    /// Prefix scans against a cold cache.
    pub cold_scan: PassCost,
    /// Prefix scans against a warm cache (repeat of the same query).
    pub warm_scan: PassCost,
}

impl ReadPathReport {
    /// How many times fewer read round trips cold prefix scanning needs
    /// than the point-get baseline.
    pub fn read_op_ratio(&self) -> f64 {
        self.point_gets.read_ops as f64 / self.cold_scan.read_ops.max(1) as f64
    }

    /// Warm-pass cache hit ratio in `[0, 1]`.
    pub fn warm_hit_ratio(&self) -> f64 {
        let total = self.warm_scan.cache_hits + self.warm_scan.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.warm_scan.cache_hits as f64 / total as f64
        }
    }
}

/// A built index over a `users × days` unit grid behind an HBase-like
/// latency model, plus the partially-specified query of the experiment.
pub struct ReadPathLab {
    _tmp: TempDir,
    /// The built index (over the latency-wrapped store).
    pub idx: DgfIndex,
    /// The latency-wrapped store, for counter snapshots.
    pub kv: Arc<LatencyKv<MemKvStore>>,
    /// The experiment query: `user` constrained, `day` left to extents.
    pub query: Query,
    /// Cells of the query hyper-rectangle.
    pub cells: u64,
}

impl ReadPathLab {
    /// Build the grid, the data, and the index. Rows are deterministic
    /// and sparse: most cells stay empty, which is exactly the regime
    /// where negative cache entries matter.
    pub fn build(
        users: i64,
        days: i64,
        n_rows: usize,
        model: LatencyModel,
    ) -> Result<ReadPathLab> {
        let tmp = TempDir::new("readpath")?;
        let hdfs = SimHdfs::new(
            tmp.path(),
            HdfsConfig {
                block_size: 1 << 20,
                replication: 1,
            },
        )?;
        let ctx = HiveContext::new(hdfs, MrEngine::new(4));
        let schema = Arc::new(Schema::from_pairs(&[
            ("user", ValueType::Int),
            ("day", ValueType::Int),
            ("power", ValueType::Float),
        ]));
        let table = ctx.create_table("meter_readpath", schema, FileFormat::Text)?;
        let rows: Vec<Row> = (0..n_rows)
            .map(|i| {
                let i = i as i64;
                vec![
                    Value::Int((i * 7) % users),
                    Value::Int((i * 13) % days),
                    Value::Float((i % 100) as f64 / 4.0),
                ]
            })
            .collect();
        ctx.load_rows(&table, &rows, 4)?;

        let kv = Arc::new(LatencyKv::new(MemKvStore::new(), model));
        let policy = SplittingPolicy::new(vec![
            DimPolicy::int("user", 0, 1),
            DimPolicy::int("day", 0, 1),
        ])?;
        let (idx, _) = DgfIndex::build(
            Arc::clone(&ctx),
            table,
            policy,
            vec![AggFunc::Sum("power".into()), AggFunc::Count],
            Arc::clone(&kv) as Arc<dyn KvStore>,
            "dgf_readpath",
        )?;

        // Partially specified: only `user` is constrained; `day` falls
        // back to the stored extents, so the rectangle spans
        // (users - 10) × days cells.
        let query = Query::Aggregate {
            aggs: vec![AggFunc::Sum("power".into())],
            predicate: Predicate::all().and(
                "user",
                ColumnRange::half_open(Value::Int(5), Value::Int(users - 5)),
            ),
        };
        Ok(ReadPathLab {
            _tmp: tmp,
            idx,
            kv,
            query,
            cells: (users - 10) as u64 * days as u64,
        })
    }

    /// Plan the experiment query once with `strategy`, returning the
    /// pass's key-value cost and the plan itself.
    pub fn pass(&self, strategy: PlanStrategy) -> Result<(PassCost, DgfPlan)> {
        let before = self.kv.stats().snapshot();
        let watch = Stopwatch::start();
        let plan = self.idx.plan_with_strategy(&self.query, true, strategy)?;
        let time = watch.elapsed();
        let delta = self.kv.stats().snapshot().since(&before);
        Ok((
            PassCost {
                read_ops: delta.read_ops(),
                time,
                cache_hits: plan.cache_hits,
                cache_misses: plan.cache_misses,
            },
            plan,
        ))
    }
}

/// Run a partially-specified aggregation over a `users × days` unit grid
/// with all three fetch strategies and report their key-value costs.
///
/// Wrap the store in [`LatencyModel::hbase_like`] to see the paper's
/// RPC-bound regime in the reported times, or [`LatencyModel::ZERO`] to
/// isolate the pure CPU cost of planning.
pub fn readpath_experiment(
    users: i64,
    days: i64,
    n_rows: usize,
    model: LatencyModel,
) -> Result<ReadPathReport> {
    let lab = ReadPathLab::build(users, days, n_rows, model)?;
    let (point_gets, base_plan) = lab.pass(PlanStrategy::PointGets)?;
    let (cold_scan, cold_plan) = lab.pass(PlanStrategy::PrefixScan)?;
    let (warm_scan, warm_plan) = lab.pass(PlanStrategy::PrefixScan)?;

    // The strategies must agree before their costs are comparable.
    for plan in [&cold_plan, &warm_plan] {
        assert_eq!(base_plan.inner_states, plan.inner_states);
        assert_eq!(base_plan.inner_gfus, plan.inner_gfus);
        assert_eq!(base_plan.boundary_gfus, plan.boundary_gfus);
        assert_eq!(base_plan.inputs, plan.inputs);
    }

    Ok(ReadPathReport {
        cells: lab.cells,
        point_gets,
        cold_scan,
        warm_scan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The PR's acceptance criteria, asserted at the required scale: a
    /// partially-specified aggregation over a ≥10⁴-cell grid issues ≥10×
    /// fewer key-value operations than the per-key baseline, and the
    /// repeated query is ≥90 % cache hits with zero gets for the cell
    /// region (the two remaining gets are the per-plan metadata reads).
    #[test]
    fn readpath_meets_acceptance_criteria() {
        let report = readpath_experiment(110, 100, 3_000, LatencyModel::hbase_like()).unwrap();
        assert!(report.cells >= 10_000, "grid too small: {}", report.cells);
        assert!(
            report.read_op_ratio() >= 10.0,
            "expected ≥10× fewer read ops, got {:.1}× ({} vs {})",
            report.read_op_ratio(),
            report.point_gets.read_ops,
            report.cold_scan.read_ops,
        );
        assert!(
            report.warm_hit_ratio() >= 0.9,
            "expected ≥90% warm hits, got {:.1}% ({} hits / {} misses)",
            report.warm_hit_ratio() * 100.0,
            report.warm_scan.cache_hits,
            report.warm_scan.cache_misses,
        );
        // Warm pass: the cell region costs zero KV reads; only the two
        // metadata gets (freshness + extents) remain.
        assert_eq!(report.warm_scan.read_ops, 2);
        assert_eq!(report.warm_scan.cache_misses, 0);
        // The latency model makes the round-trip savings visible in wall
        // time too.
        assert!(report.cold_scan.time < report.point_gets.time);
    }
}
