//! One function per table/figure of the paper's evaluation (§5), each
//! returning a [`ReportTable`] with the same rows/series the paper plots.

use std::time::Duration;

use dgf_common::{Result, TempDir};
use dgf_query::{Engine, EngineRun, Query};
use dgf_rdbms::{measure_ingest, IngestTarget};
use dgf_workload::{
    aggregation_query, generate_meter_data, group_by_query, join_query, partial_query,
    tpch::q6, MeterConfig, Selectivity,
};

use crate::meter_lab::{IntervalSize, MeterLab};
use crate::report::{fmt_bytes, fmt_count, fmt_secs, ReportTable};
use crate::scale::BenchScale;
use crate::tpch_lab::TpchLab;

/// Run an engine `runs` times; times are averaged, counters come from the
/// final run (they are deterministic anyway).
pub fn run_avg(engine: &dyn Engine, query: &Query, runs: usize) -> Result<EngineRun> {
    let runs = runs.max(1);
    let mut index_time = Duration::ZERO;
    let mut data_time = Duration::ZERO;
    let mut last: Option<EngineRun> = None;
    for _ in 0..runs {
        let r = engine.run(query)?;
        index_time += r.stats.index_time;
        data_time += r.stats.data_time;
        last = Some(r);
    }
    let mut run = last.expect("runs >= 1");
    run.stats.index_time = index_time / runs as u32;
    run.stats.data_time = data_time / runs as u32;
    Ok(run)
}

fn time_cells(run: &EngineRun) -> [String; 3] {
    [
        fmt_secs(run.stats.data_time),
        fmt_secs(run.stats.index_time),
        fmt_secs(run.stats.total_time()),
    ]
}

// ---------------------------------------------------------------------
// Figure 3: DBMS-X vs HDFS write throughput.
// ---------------------------------------------------------------------

/// Figure 3: ingest the same meter records into DBMS-X with a clustered
/// index, DBMS-X without an index, and HDFS; report MB/s.
pub fn fig3_write_throughput(scale: &BenchScale) -> Result<ReportTable> {
    let tmp = TempDir::new("fig3")?;
    let cfg = MeterConfig {
        users: (scale.ingest_rows / 30).max(1),
        days: 30,
        ..scale.meter.clone()
    };
    let rows = generate_meter_data(&cfg);
    let runs = scale.runs.max(2); // ingest is noisy: warm caches, keep the best

    // DBMS-X paths: best of `runs` fresh ingests (the first run pays cold
    // file-system caches).
    let mut btree: Option<dgf_rdbms::IngestReport> = None;
    let mut heap: Option<dgf_rdbms::IngestReport> = None;
    for i in 0..runs {
        let b = measure_ingest(
            &tmp.path().join(format!("dbmsx-indexed-{i}")),
            &rows,
            IngestTarget::BTree { key_col: 0 },
        )?;
        if btree.as_ref().is_none_or(|x| b.mb_per_sec() > x.mb_per_sec()) {
            btree = Some(b);
        }
        let h = measure_ingest(
            &tmp.path().join(format!("dbmsx-plain-{i}")),
            &rows,
            IngestTarget::Heap,
        )?;
        if heap.as_ref().is_none_or(|x| h.mb_per_sec() > x.mb_per_sec()) {
            heap = Some(h);
        }
    }
    let btree = btree.expect("runs >= 1");
    let heap = heap.expect("runs >= 1");

    // HDFS: plain sequential text appends, same best-of-N discipline.
    let hdfs = dgf_storage::SimHdfs::new(
        tmp.path().join("hdfs"),
        dgf_storage::HdfsConfig {
            block_size: scale.block_size,
            replication: 2,
        },
    )?;
    let mut hdfs_mbps = 0f64;
    for i in 0..runs {
        let watch = dgf_common::Stopwatch::start();
        let mut w = dgf_format::TextWriter::create(&hdfs, &format!("/ingest/part-{i}"))?;
        for r in &rows {
            w.write_row(r)?;
        }
        let bytes = w.close()?;
        let mbps = (bytes as f64 / (1024.0 * 1024.0)) / watch.secs().max(1e-9);
        hdfs_mbps = hdfs_mbps.max(mbps);
    }

    let mut t = ReportTable::new(
        "Figure 3: DBMS-X vs HDFS Write Throughput",
        &["system", "throughput (MB/s)", "pages written"],
    );
    t.row(vec![
        "DBMS-X with index".into(),
        format!("{:.1}", btree.mb_per_sec()),
        fmt_count(btree.page_writes),
    ]);
    t.row(vec![
        "DBMS-X without index".into(),
        format!("{:.1}", heap.mb_per_sec()),
        fmt_count(heap.page_writes),
    ]);
    t.row(vec![
        "HDFS".into(),
        format!("{hdfs_mbps:.1}"),
        "-".into(),
    ]);
    t.note(format!(
        "{} records ingested; expected shape: HDFS > DBMS-X(no index) > DBMS-X(index)",
        fmt_count(rows.len() as u64)
    ));
    Ok(t)
}

// ---------------------------------------------------------------------
// Table 2: index size and construction time (meter data).
// ---------------------------------------------------------------------

/// Table 2: index size and construction time for Compact-3D, Compact-2D,
/// and DGF Large/Medium/Small.
pub fn table2_index_size(lab: &MeterLab) -> Result<ReportTable> {
    let mut t = ReportTable::new(
        "Table 2: Index Size and Construction Time",
        &["index", "table type", "dims", "size", "entries", "time"],
    );
    let (_, c3) = lab.build_compact3()?;
    t.row(vec![
        "Compact".into(),
        "RCFile".into(),
        "3".into(),
        fmt_bytes(c3.index_size_bytes),
        fmt_count(c3.index_entries),
        fmt_secs(c3.build_time),
    ]);
    t.row(vec![
        "Compact".into(),
        "RCFile".into(),
        "2".into(),
        fmt_bytes(lab.compact2_report.index_size_bytes),
        fmt_count(lab.compact2_report.index_entries),
        fmt_secs(lab.compact2_report.build_time),
    ]);
    for size in IntervalSize::all() {
        let r = &lab.dgf_reports[size.idx()];
        t.row(vec![
            format!("DGF-{}", size.label()),
            "TextFile".into(),
            "3".into(),
            fmt_bytes(r.index_size_bytes),
            fmt_count(r.index_entries),
            fmt_secs(r.build_time),
        ]);
    }
    let base = lab.ctx.table_size_bytes(&lab.rc_table);
    t.note(format!(
        "RCFile base table: {}; expected shape: Compact-3D ~ base table size, \
         DGF sizes tiny and growing as intervals shrink, DGF build slower than Compact-2D",
        fmt_bytes(base)
    ));
    Ok(t)
}

// ---------------------------------------------------------------------
// Queries at the paper's three selectivities over four engines.
// ---------------------------------------------------------------------

struct EngineSet<'a> {
    lab: &'a MeterLab,
}

impl EngineSet<'_> {
    /// `(name, engine)` in the paper's presentation order. DGF appears
    /// once per interval size.
    fn run_all(
        &self,
        query: &Query,
        runs: usize,
    ) -> Result<Vec<(String, EngineRun)>> {
        let mut out = Vec::new();
        for size in IntervalSize::all() {
            let e = self.lab.dgf_engine(size);
            out.push((format!("DGF-{}", size.label()), run_avg(&e, query, runs)?));
        }
        let e = self.lab.compact_engine();
        out.push(("Compact-2D".into(), run_avg(&e, query, runs)?));
        let e = self.lab.hadoopdb_engine();
        out.push(("HadoopDB".into(), run_avg(&e, query, runs)?));
        let e = self.lab.scan_engine();
        out.push(("ScanTable".into(), run_avg(&e, query, runs)?));
        Ok(out)
    }
}

fn selectivity_experiment(
    lab: &MeterLab,
    title_times: &str,
    title_records: &str,
    make_query: impl Fn(&MeterConfig, Selectivity) -> Query,
) -> Result<(ReportTable, ReportTable)> {
    let engines = EngineSet { lab };
    let mut times = ReportTable::new(
        title_times,
        &[
            "selectivity",
            "engine",
            "read data+process",
            "read index+other",
            "total",
        ],
    );
    let mut records = ReportTable::new(
        title_records,
        &["index type", "point", "5%", "12%"],
    );
    let mut per_engine: Vec<(String, Vec<String>)> = Vec::new();
    let mut accurate: Vec<String> = Vec::new();
    for sel in Selectivity::paper_settings() {
        let q = make_query(&lab.scale.meter, sel);
        accurate.push(fmt_count(lab.accurate_count(q.predicate())?));
        for (name, run) in engines.run_all(&q, lab.scale.runs)? {
            let [data, index, total] = time_cells(&run);
            times.row(vec![sel.label(), name.clone(), data, index, total]);
            match per_engine.iter_mut().find(|(n, _)| *n == name) {
                Some((_, cells)) => cells.push(fmt_count(run.stats.data_records_read)),
                None => per_engine.push((name, vec![fmt_count(run.stats.data_records_read)])),
            }
        }
    }
    for (name, cells) in per_engine {
        let mut row = vec![name];
        row.extend(cells);
        records.row(row);
    }
    let mut acc_row = vec!["Accurate".to_owned()];
    acc_row.extend(accurate);
    records.row(acc_row);
    Ok((times, records))
}

/// Figures 8–10 (aggregation query time) and Table 3 (records read).
pub fn agg_experiment(lab: &MeterLab) -> Result<(ReportTable, ReportTable)> {
    let (mut times, mut records) = selectivity_experiment(
        lab,
        "Figures 8-10: Aggregation Query Time (point / 5% / 12%)",
        "Table 3: Records Read for Aggregation Query",
        aggregation_query,
    )?;
    times.note(
        "expected shape: DGF nearly selectivity-independent (pre-computed headers); \
         Compact/HadoopDB degrade toward ScanTable as selectivity grows",
    );
    records.note(
        "expected shape: DGF reads boundary-region records only (<< accurate at 5%/12%); \
         Compact reads whole chosen splits (>> accurate)",
    );
    Ok((times, records))
}

/// Figures 11–13 (GROUP BY time) and Table 4 (records read).
pub fn groupby_experiment(lab: &MeterLab) -> Result<(ReportTable, ReportTable)> {
    let (mut times, mut records) = selectivity_experiment(
        lab,
        "Figures 11-13: Group By Query Time (point / 5% / 12%)",
        "Table 4: Records Read for Group By Query",
        group_by_query,
    )?;
    times.note(
        "expected shape: no pre-computation applies; DGF still wins ~2-5x by reading \
         only query-related Slices; index-read time grows as intervals shrink",
    );
    records.note("expected shape: DGF slightly above accurate (boundary over-read)");
    Ok((times, records))
}

/// Figures 14–16: join query time at the three selectivities.
pub fn join_experiment(lab: &MeterLab) -> Result<ReportTable> {
    let (mut times, _) = selectivity_experiment(
        lab,
        "Figures 14-16: Join Query Time (point / 5% / 12%)",
        "(records for join — same predicate as Table 4)",
        join_query,
    )?;
    times.note("records read equal Table 4 (same predicate, per the paper)");
    Ok(times)
}

/// Figure 17: partially-specified query — DGF with pre-computation, DGF
/// without, Compact — across interval sizes.
pub fn partial_experiment(lab: &MeterLab) -> Result<ReportTable> {
    let q = partial_query(&lab.scale.meter);
    let mut t = ReportTable::new(
        "Figure 17: Partially-Specified Query Time",
        &["interval size", "engine", "total", "data records"],
    );
    for size in IntervalSize::all() {
        let pre = run_avg(&lab.dgf_engine(size), &q, lab.scale.runs)?;
        let nopre = run_avg(
            &lab.dgf_engine(size).without_precompute(),
            &q,
            lab.scale.runs,
        )?;
        t.row(vec![
            size.label().into(),
            "DGF-precompute".into(),
            fmt_secs(pre.stats.total_time()),
            fmt_count(pre.stats.data_records_read),
        ]);
        t.row(vec![
            size.label().into(),
            "DGF-noprecompute".into(),
            fmt_secs(nopre.stats.total_time()),
            fmt_count(nopre.stats.data_records_read),
        ]);
    }
    let compact = run_avg(&lab.compact_engine(), &q, lab.scale.runs)?;
    t.row(vec![
        "-".into(),
        "Compact-2D".into(),
        fmt_secs(compact.stats.total_time()),
        fmt_count(compact.stats.data_records_read),
    ]);
    t.note(
        "missing userId dimension completed from stored extents (paper §5.3.4); \
         expected shape: DGF-precompute < DGF-noprecompute < Compact",
    );
    Ok(t)
}

// ---------------------------------------------------------------------
// TPC-H (§5.4): Tables 5–6 and Figure 18.
// ---------------------------------------------------------------------

/// Table 5: TPC-H index size and construction time.
pub fn table5_tpch_index(lab: &TpchLab) -> Result<ReportTable> {
    let mut t = ReportTable::new(
        "Table 5: Index Size and Construction Time (TPC-H)",
        &["index", "table type", "dims", "size", "entries", "time"],
    );
    t.row(vec![
        "Compact".into(),
        "RCFile".into(),
        "3".into(),
        fmt_bytes(lab.compact3_report.index_size_bytes),
        fmt_count(lab.compact3_report.index_entries),
        fmt_secs(lab.compact3_report.build_time),
    ]);
    t.row(vec![
        "Compact".into(),
        "RCFile".into(),
        "2".into(),
        fmt_bytes(lab.compact2_report.index_size_bytes),
        fmt_count(lab.compact2_report.index_entries),
        fmt_secs(lab.compact2_report.build_time),
    ]);
    t.row(vec![
        "DGFIndex".into(),
        "TextFile".into(),
        "3".into(),
        fmt_bytes(lab.dgf_report.index_size_bytes),
        fmt_count(lab.dgf_report.index_entries),
        fmt_secs(lab.dgf_report.build_time),
    ]);
    Ok(t)
}

/// Table 6 (records read for Q6) and Figure 18 (Q6 time).
pub fn tpch_q6_experiment(lab: &TpchLab) -> Result<(ReportTable, ReportTable)> {
    let q = q6(1994, 0.06, 24.0);
    let runs = lab.scale.runs;
    let scan = run_avg(&lab.scan_engine(), &q, runs)?;
    let dgf = run_avg(&lab.dgf_engine(), &q, runs)?;
    let dgf_nopre = run_avg(&lab.dgf_engine().without_precompute(), &q, runs)?;
    let c2 = run_avg(&lab.compact2_engine(), &q, runs)?;
    let c3 = run_avg(&lab.compact3_engine(), &q, runs)?;

    let mut records = ReportTable::new(
        "Table 6: Records Read for the TPC-H Workload (Q6)",
        &["index type", "record number"],
    );
    records.row(vec![
        "Whole Table".into(),
        fmt_count(scan.stats.data_records_read),
    ]);
    records.row(vec![
        "Compact-3".into(),
        fmt_count(c3.stats.data_records_read),
    ]);
    records.row(vec![
        "Compact-2".into(),
        fmt_count(c2.stats.data_records_read),
    ]);
    records.row(vec![
        "DGFIndex".into(),
        fmt_count(dgf.stats.data_records_read),
    ]);
    records.row(vec![
        "DGFIndex-noprecompute".into(),
        fmt_count(dgf_nopre.stats.data_records_read),
    ]);
    records.row(vec![
        "Accurate".into(),
        fmt_count(lab.accurate_count(q.predicate())?),
    ]);
    records.note(
        "expected shape: Compact reads (nearly) the whole table — evenly scattered \
         values defeat split filtering; DGF without pre-computation reads slightly \
         more than accurate (the paper's Table 6 setting); with the pre-computed \
         revenue UDF it reads only the boundary region",
    );

    let mut times = ReportTable::new(
        "Figure 18: TPC-H Q6 Query Time",
        &["engine", "read data+process", "read index+other", "total"],
    );
    for (name, run) in [
        ("DGFIndex", &dgf),
        ("Compact-2D", &c2),
        ("Compact-3D", &c3),
        ("ScanTable", &scan),
    ] {
        let [data, index, total] = time_cells(run);
        times.row(vec![name.into(), data, index, total]);
    }
    times.note("expected shape: DGF much faster; Compact slower than scanning");
    Ok((records, times))
}

// ---------------------------------------------------------------------
// Ablations and §2.2 discussion.
// ---------------------------------------------------------------------

/// Ablation: pre-computation and slice-skipping contributions, per
/// selectivity (aggregation query, medium intervals).
pub fn ablation_dgf_features(lab: &MeterLab) -> Result<ReportTable> {
    let mut t = ReportTable::new(
        "Ablation: DGFIndex features (aggregation query, medium intervals)",
        &["selectivity", "variant", "total", "data records"],
    );
    for sel in Selectivity::paper_settings() {
        let q = aggregation_query(&lab.scale.meter, sel);
        let variants: Vec<(&str, EngineRun)> = vec![
            (
                "full",
                run_avg(&lab.dgf_engine(IntervalSize::Medium), &q, lab.scale.runs)?,
            ),
            (
                "no precompute",
                run_avg(
                    &lab.dgf_engine(IntervalSize::Medium).without_precompute(),
                    &q,
                    lab.scale.runs,
                )?,
            ),
            (
                "no slice skipping",
                run_avg(
                    &lab
                        .dgf_engine(IntervalSize::Medium)
                        .without_slice_skipping(),
                    &q,
                    lab.scale.runs,
                )?,
            ),
            (
                "neither",
                run_avg(
                    &lab
                        .dgf_engine(IntervalSize::Medium)
                        .without_precompute()
                        .without_slice_skipping(),
                    &q,
                    lab.scale.runs,
                )?,
            ),
        ];
        for (name, run) in variants {
            t.row(vec![
                sel.label(),
                name.into(),
                fmt_secs(run.stats.total_time()),
                fmt_count(run.stats.data_records_read),
            ]);
        }
    }
    t.note("both features reduce records read; precompute dominates for aggregation");
    Ok(t)
}

/// Ablation (paper §8 future work): Slice placement — hash of the full
/// GFUKey vs prefix locality, measured as coalesced read ranges, seeks,
/// and time for a long time-range query.
pub fn ablation_slice_placement(scale: &BenchScale) -> Result<ReportTable> {
    use dgf_core::{DgfEngine, DgfIndex, DimPolicy, SlicePlacement, SplittingPolicy};
    use dgf_hive::{HiveContext, ScanInput};
    use dgf_kvstore::MemKvStore;
    use dgf_mapreduce::MrEngine;
    use dgf_query::ColumnRange;
    use dgf_storage::{HdfsConfig, SimHdfs};
    use dgf_workload::{generate_meter_data, meter_schema};
    use std::sync::Arc;

    let tmp = TempDir::new("placement")?;
    let hdfs = SimHdfs::new(
        tmp.path(),
        HdfsConfig {
            block_size: scale.block_size,
            replication: 1,
        },
    )?;
    let ctx = HiveContext::new(hdfs, MrEngine::new(scale.threads.max(8)));
    let cfg = dgf_workload::MeterConfig {
        users: scale.meter.users.min(5_000),
        days: scale.meter.days,
        ..scale.meter.clone()
    };
    let rows = generate_meter_data(&cfg);
    let interval = (cfg.users / 50).max(1) as i64;

    let mut t = ReportTable::new(
        "Ablation: Slice placement (long time-range query, one user cell)",
        &["placement", "read ranges", "seeks", "data records", "total"],
    );
    for (label, placement) in [
        ("key-hash", SlicePlacement::KeyHash),
        ("prefix-locality", SlicePlacement::PrefixLocality { prefix_dims: 2 }),
    ] {
        let table = ctx.create_table(
            &format!("meter_{label}"),
            meter_schema(),
            dgf_format::FileFormat::Text,
        )?;
        ctx.load_rows(&table, &rows, scale.files.max(8))?;
        let policy = SplittingPolicy::new(vec![
            DimPolicy::int("user_id", 0, interval),
            DimPolicy::int("region_id", 0, 1),
            DimPolicy::date("ts", cfg.start_day, 1),
        ])?;
        let (idx, _) = DgfIndex::build_with_placement(
            Arc::clone(&ctx),
            table,
            policy,
            vec![],
            Arc::new(MemKvStore::new()),
            &format!("dgf_{label}"),
            placement,
        )?;
        let idx = Arc::new(idx);
        // One (user-cell, region) prefix across every day — a meter
        // time-series read. GROUP BY forces the pure slice-read path.
        // Under key-hash placement the 30 day-slices scatter over all
        // reducer files; under prefix locality they are one byte run.
        let q = dgf_query::Query::GroupBy {
            key: "ts".into(),
            aggs: vec![dgf_query::AggFunc::Sum("power_consumed".into())],
            predicate: dgf_query::Predicate::all()
                .and(
                    "user_id",
                    ColumnRange::half_open(
                        dgf_common::Value::Int(0),
                        dgf_common::Value::Int(interval),
                    ),
                )
                .and("region_id", ColumnRange::eq(dgf_common::Value::Int(3))),
        };
        let plan = idx.plan(&q, false)?;
        let ranges: usize = plan
            .inputs
            .iter()
            .map(|i| match i {
                ScanInput::TextRanges { ranges, .. } => ranges.len(),
                _ => 1,
            })
            .sum();
        let seeks_before = ctx.hdfs.stats().seeks.get();
        let run = run_avg(&DgfEngine::new(Arc::clone(&idx)), &q, scale.runs)?;
        let seeks = (ctx.hdfs.stats().seeks.get() - seeks_before) / scale.runs.max(1) as u64;
        t.row(vec![
            label.into(),
            fmt_count(ranges as u64),
            fmt_count(seeks),
            fmt_count(run.stats.data_records_read),
            fmt_secs(run.stats.total_time()),
        ]);
    }
    t.note(
        "prefix locality places each (user-cell, region)'s whole time series \
         contiguously: far fewer read ranges and seeks for the same records",
    );
    Ok(t)
}

/// §2.2 discussion: NameNode memory under multidimensional partitioning.
pub fn partition_pressure_experiment() -> Result<ReportTable> {
    let tmp = TempDir::new("nn")?;
    let mut t = ReportTable::new(
        "Discussion §2.2: NameNode memory of multidimensional partitioning",
        &["partition dims", "distinct per dim", "directories", "NameNode memory"],
    );
    for (dims, card) in [(1usize, 100u64), (2, 32), (3, 10), (3, 100)] {
        // Directories only (no files needed for the arithmetic): create
        // the partition tree the way Hive's dynamic partitioning would.
        let hdfs = dgf_storage::SimHdfs::open(tmp.path().join(format!("d{dims}c{card}")))?;
        if dims == 3 && card == 100 {
            // 1M directories — compute analytically like the paper, do
            // not actually create them.
            let leaf = card.pow(3);
            let dirs = leaf + card.pow(2) + card + 2;
            t.row(vec![
                "3 (analytic)".into(),
                card.to_string(),
                fmt_count(leaf),
                fmt_bytes(dirs * dgf_storage::BYTES_PER_OBJECT),
            ]);
            continue;
        }
        let mut leaves = 0u64;
        let build = |prefix: &str| -> Result<()> {
            hdfs.mkdirs(prefix)?;
            Ok(())
        };
        match dims {
            1 => {
                for a in 0..card {
                    build(&format!("/t/a={a}"))?;
                    leaves += 1;
                }
            }
            2 => {
                for a in 0..card {
                    for b in 0..card {
                        build(&format!("/t/a={a}/b={b}"))?;
                        leaves += 1;
                    }
                }
            }
            _ => {
                for a in 0..card {
                    for b in 0..card {
                        for c in 0..card {
                            build(&format!("/t/a={a}/b={b}/c={c}"))?;
                            leaves += 1;
                        }
                    }
                }
            }
        }
        t.row(vec![
            dims.to_string(),
            card.to_string(),
            fmt_count(leaves),
            fmt_bytes(hdfs.namenode_memory_bytes()),
        ]);
    }
    t.note("paper: 3 dims x 100 values = 1M directories = 143MB of NameNode heap");
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> BenchScale {
        let mut s = BenchScale::small();
        s.meter.users = 200;
        s.meter.days = 10;
        s.tpch.rows = 3_000;
        s.ingest_rows = 3_000;
        s.kv_latency = dgf_kvstore::LatencyModel::ZERO;
        s.hadoopdb.per_chunk_overhead = Duration::ZERO;
        s.runs = 1;
        s
    }

    #[test]
    fn fig3_produces_three_rows() {
        let t = fig3_write_throughput(&tiny_scale()).unwrap();
        assert_eq!(t.rows.len(), 3);
    }

    #[test]
    fn meter_experiments_run_end_to_end() {
        let lab = MeterLab::build(tiny_scale()).unwrap();
        let t2 = table2_index_size(&lab).unwrap();
        assert_eq!(t2.rows.len(), 5);
        let (times, records) = agg_experiment(&lab).unwrap();
        assert_eq!(times.rows.len(), 3 * 6); // 3 selectivities x 6 engines
        assert_eq!(records.rows.len(), 7); // 6 engines + accurate
        let fig17 = partial_experiment(&lab).unwrap();
        assert_eq!(fig17.rows.len(), 7);
        let ab = ablation_dgf_features(&lab).unwrap();
        assert_eq!(ab.rows.len(), 12);
    }

    #[test]
    fn tpch_experiments_run_end_to_end() {
        let lab = TpchLab::build(tiny_scale()).unwrap();
        let t5 = table5_tpch_index(&lab).unwrap();
        assert_eq!(t5.rows.len(), 3);
        let (t6, fig18) = tpch_q6_experiment(&lab).unwrap();
        assert_eq!(t6.rows.len(), 6);
        assert_eq!(fig18.rows.len(), 4);
    }

    #[test]
    fn partition_pressure_matches_arithmetic() {
        let t = partition_pressure_experiment().unwrap();
        assert_eq!(t.rows.len(), 4);
        // The analytic 3x100 row reports ~143MB-scale memory.
        let mem = &t.rows[3][3];
        assert!(mem.ends_with("MB"), "{mem}");
    }
}
