//! Serving-tier throughput experiment (DESIGN.md §13).
//!
//! The PR's tentpole claim: range-partitioning the GFU keyspace across
//! N latency-realistic shards and scattering each query's prefix-scan
//! runs across them (`IndexOptions::fetch_parallelism`) lifts QPS on a
//! mixed ingest+query meter workload by ≥2× at 4 shards — with answers
//! bit-identical to the single-node engine. This module stands up the
//! lab: build the index once on a plain in-memory store, mirror it into
//! a [`ShardedKv`] of [`LatencyKv`]-wrapped shards per shard count, and
//! drive a [`ServeFrontend`] with concurrent clients while a background
//! writer lands appends through the same router. It also assembles the
//! `BENCH_serving.json` document.

use std::sync::Arc;
use std::time::Duration;

use dgf_common::{Result, Row, TempDir, Value};
use dgf_core::{
    DgfEngine, DgfIndex, DimPolicy, Extents, IndexOptions, SplittingPolicy,
};
use dgf_format::FileFormat;
use dgf_hive::{HiveContext, ServeOptions, TableRef};
use dgf_kvstore::{KvStore, LatencyKv, LatencyModel, MemKvStore, ShardedKv};
use dgf_mapreduce::MrEngine;
use dgf_query::{AggFunc, ColumnRange, Engine, Predicate, Query, QueryResult};
use dgf_serve::{mirror_kv, shard_boundaries, ServeFrontend};
use dgf_storage::{HdfsConfig, SimHdfs};
use dgf_workload::{generate_meter_data, meter_schema, MeterConfig};

const INDEX: &str = "dgf_serving";

/// Shape of the serving experiment.
#[derive(Debug, Clone, Copy)]
pub struct ServingConfig {
    /// Distinct meter users (the wide dimension).
    pub users: u64,
    /// Loaded collection days.
    pub days: u64,
    /// Extra days generated for the background appender.
    pub append_days: u64,
    /// Users per grid cell on the `user_id` dimension.
    pub user_span: i64,
    /// User cells each query's band covers (each becomes one
    /// prefix-scan run, i.e. one unit of scatter).
    pub band_cells: u64,
    /// Queries per pass.
    pub queries: usize,
    /// Concurrent client threads.
    pub clients: usize,
}

impl ServingConfig {
    /// The release-bench acceptance configuration.
    pub fn acceptance() -> ServingConfig {
        ServingConfig {
            users: 5_120,
            days: 8,
            append_days: 2,
            user_span: 4,
            band_cells: 16,
            queries: 80,
            clients: 4,
        }
    }

    /// A debug-test-sized configuration.
    pub fn tiny() -> ServingConfig {
        ServingConfig {
            users: 64,
            days: 4,
            append_days: 1,
            user_span: 4,
            band_cells: 4,
            queries: 8,
            clients: 4,
        }
    }
}

/// The built single-node index plus everything a serving pass mirrors.
pub struct ServingLab {
    _tmp: TempDir,
    cfg: ServingConfig,
    /// The warehouse the passes run in.
    pub ctx: Arc<HiveContext>,
    /// The base meter table.
    pub base: TableRef,
    /// The plain store holding the built index — the mirror source and
    /// the single-node oracle's store.
    pub single: Arc<dyn KvStore>,
    /// Grid extents of the built index (drives the shard boundaries).
    pub extents: Extents,
    /// Rows loaded into the base table.
    pub rows: u64,
    append_batch: Vec<Row>,
    start_day: i64,
}

/// One serving pass's outcome at a given shard count.
#[derive(Debug, Clone)]
pub struct ServePass {
    /// Shards behind the router (1 = single-node layout).
    pub shards: usize,
    /// Wall time of the whole batch.
    pub wall: Duration,
    /// Completed queries per second.
    pub qps: f64,
    /// Median query latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile query latency, microseconds.
    pub p99_us: u64,
    /// Queries completed / rejected-then-retried / failed.
    pub completed: u64,
    /// Backpressure rejections absorbed by client retries.
    pub rejected: u64,
    /// Queries that ultimately failed.
    pub failed: u64,
    /// Per-shard sub-operations issued by cross-shard fan-outs.
    pub shard_subops: u64,
    /// The answers, in query order (`None` for failed queries).
    pub answers: Vec<Option<QueryResult>>,
}

fn aggs() -> Vec<AggFunc> {
    vec![AggFunc::Sum("power_consumed".into()), AggFunc::Count]
}

impl ServingLab {
    /// Generate the meter table, build the index on a plain store, and
    /// hold back `append_days` of rows for the background writer.
    pub fn build(cfg: ServingConfig) -> Result<ServingLab> {
        let tmp = TempDir::new("serving")?;
        let hdfs = SimHdfs::new(
            tmp.path(),
            HdfsConfig {
                block_size: 4 << 20,
                replication: 1,
            },
        )?;
        let ctx = HiveContext::new(hdfs, MrEngine::new(2));
        let base = ctx.create_table("meter_serve", meter_schema(), FileFormat::Text)?;
        let mcfg = MeterConfig {
            users: cfg.users,
            days: cfg.days + cfg.append_days,
            ..MeterConfig::default()
        };
        let all = generate_meter_data(&mcfg);
        let per_day = all.len() / mcfg.days as usize;
        let (loaded, held_back) = all.split_at(cfg.days as usize * per_day);
        ctx.load_rows(&base, loaded, 2)?;
        let policy = SplittingPolicy::new(vec![
            DimPolicy::int("user_id", 0, cfg.user_span),
            DimPolicy::date("ts", mcfg.start_day, 1),
        ])?;
        let single: Arc<dyn KvStore> = Arc::new(MemKvStore::new());
        let (index, _) = DgfIndex::build(
            Arc::clone(&ctx),
            Arc::clone(&base),
            policy,
            aggs(),
            Arc::clone(&single),
            INDEX,
        )?;
        let extents = index.extents()?;
        Ok(ServingLab {
            _tmp: tmp,
            cfg,
            ctx,
            base,
            single,
            extents,
            rows: loaded.len() as u64,
            append_batch: held_back.to_vec(),
            start_day: mcfg.start_day,
        })
    }

    /// The pass's query list: cell-aligned SUM+COUNT bands marching
    /// across the `user_id` dimension, each spanning
    /// [`ServingConfig::band_cells`] grid cells (= that many scatter
    /// units) and half the loaded days. Aligned bounds mean headers
    /// answer every query — planning cost is pure index traffic, which
    /// is what the serving tier scatters.
    pub fn queries(&self) -> Vec<Query> {
        let band = self.cfg.band_cells as i64 * self.cfg.user_span;
        let day_lo = self.start_day + (self.cfg.days as i64) / 4;
        let day_hi = day_lo + ((self.cfg.days as i64) / 2).max(1);
        (0..self.cfg.queries)
            .map(|i| {
                let lo = (i as i64 * band) % (self.cfg.users as i64 - band + 1);
                Query::Aggregate {
                    aggs: aggs(),
                    predicate: Predicate::all()
                        .and(
                            "user_id",
                            ColumnRange::half_open(Value::Int(lo), Value::Int(lo + band)),
                        )
                        .and(
                            "ts",
                            ColumnRange::half_open(Value::Date(day_lo), Value::Date(day_hi)),
                        ),
                }
            })
            .collect()
    }

    /// Single-node oracle answers over the plain store.
    pub fn oracle(&self) -> Result<Vec<QueryResult>> {
        let index = DgfIndex::open(
            Arc::clone(&self.ctx),
            Arc::clone(&self.base),
            Arc::clone(&self.single),
            INDEX,
            aggs(),
        )?;
        let engine = DgfEngine::new(Arc::new(index));
        self.queries()
            .iter()
            .map(|q| Ok(engine.run(q)?.result))
            .collect()
    }

    /// Run one serving pass: mirror the index into `shards`
    /// latency-realistic stores, open the engine over the router with
    /// `fetch_parallelism = shards`, and drive the query list from
    /// concurrent clients while (optionally) a background writer lands
    /// the held-back days through the same router.
    pub fn serve_pass(&self, shards: usize, with_ingest: bool) -> Result<ServePass> {
        let stores: Vec<Arc<dyn KvStore>> = (0..shards)
            .map(|_| {
                Arc::new(LatencyKv::new(MemKvStore::new(), LatencyModel::hbase_like()))
                    as Arc<dyn KvStore>
            })
            .collect();
        let router = Arc::new(ShardedKv::new(
            stores,
            shard_boundaries(&self.extents, shards),
        )?);
        let kv: Arc<dyn KvStore> = Arc::clone(&router) as Arc<dyn KvStore>;
        mirror_kv(self.single.as_ref(), kv.as_ref())?;

        let reader = DgfIndex::open_with_options(
            Arc::clone(&self.ctx),
            Arc::clone(&self.base),
            Arc::clone(&kv),
            INDEX,
            aggs(),
            IndexOptions {
                // The 1-shard pass is the single-node baseline (the
                // stock sequential engine); sharded passes scatter one
                // in-flight fetch per shard.
                fetch_parallelism: shards,
                ..IndexOptions::default()
            },
        )?;
        let frontend = ServeFrontend::new(
            DgfEngine::new(Arc::new(reader)),
            ServeOptions {
                workers: self.cfg.clients,
                ..ServeOptions::default()
            },
        );
        let queries = self.queries();

        let report = std::thread::scope(|scope| -> Result<_> {
            let writer = if with_ingest {
                let writer_index = DgfIndex::open_with_options(
                    Arc::clone(&self.ctx),
                    Arc::clone(&self.base),
                    Arc::clone(&kv),
                    INDEX,
                    aggs(),
                    IndexOptions::default(),
                )?;
                let batch = &self.append_batch;
                Some(scope.spawn(move || -> Result<()> {
                    // Two half-day commits: each bumps the index
                    // generation mid-batch, so concurrent queries keep
                    // re-reading headers instead of serving a warm
                    // cache — the mixed-workload shape of the bar.
                    for chunk in batch.chunks((batch.len() / 2).max(1)) {
                        writer_index.append(chunk)?;
                    }
                    Ok(())
                }))
            } else {
                None
            };
            let report = frontend.run_concurrent(&queries, self.cfg.clients);
            if let Some(w) = writer {
                w.join().expect("appender panicked")?;
            }
            Ok(report)
        })?;

        let snap = frontend.stats().snapshot();
        let (_, _, shard_subops) = router.fanout().snapshot();
        Ok(ServePass {
            shards,
            wall: report.wall,
            qps: report.qps(),
            p50_us: report.latency_us_at(0.5),
            p99_us: report.latency_us_at(0.99),
            completed: snap.completed,
            rejected: snap.rejected,
            failed: snap.failed,
            shard_subops,
            answers: report.served.into_iter().map(|s| s.result).collect(),
        })
    }
}

fn pass_json(p: &ServePass) -> String {
    format!(
        concat!(
            "{{\"shards\":{},\"qps\":{:.2},\"p50_us\":{},\"p99_us\":{},",
            "\"wall_us\":{},\"completed\":{},\"rejected\":{},\"failed\":{},",
            "\"shard_subops\":{}}}"
        ),
        p.shards,
        p.qps,
        p.p50_us,
        p.p99_us,
        p.wall.as_micros(),
        p.completed,
        p.rejected,
        p.failed,
        p.shard_subops,
    )
}

/// Assemble the `BENCH_serving.json` document: one entry per shard
/// count plus the 4-shard acceptance speedup over the 1-shard layout.
pub fn serving_json(config: &str, rows: u64, passes: &[ServePass]) -> String {
    let qps_at = |n: usize| passes.iter().find(|p| p.shards == n).map(|p| p.qps);
    let speedup = match (qps_at(1), qps_at(4)) {
        (Some(base), Some(four)) if base > 0.0 => four / base,
        _ => 0.0,
    };
    let entries: Vec<String> = passes.iter().map(pass_json).collect();
    format!(
        concat!(
            "{{\"experiment\":\"serving\",\"config\":\"{}\",\"rows\":{},",
            "\"passes\":[{}],\"speedup_4_shards\":{:.2}}}"
        ),
        config,
        rows,
        entries.join(","),
        speedup,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Debug-scale correctness: every shard count answers bit-identically
    /// to the single-node oracle (ingest off, so the store is quiescent),
    /// and the fan-out counters show the scatter actually happened.
    #[test]
    fn quiescent_passes_match_the_oracle_at_every_shard_count() {
        let lab = ServingLab::build(ServingConfig::tiny()).unwrap();
        let oracle = lab.oracle().unwrap();
        for shards in [1usize, 2, 4] {
            let pass = lab.serve_pass(shards, false).unwrap();
            assert_eq!(pass.failed, 0, "{shards} shards");
            assert_eq!(pass.answers.len(), oracle.len());
            for (got, want) in pass.answers.iter().zip(&oracle) {
                assert!(
                    got.as_ref().unwrap().approx_eq(want, 0.0),
                    "{shards} shards diverged from the single-node oracle"
                );
            }
        }
    }

    /// Mixed ingest+query still completes every query, and the JSON
    /// document carries the schema EXPERIMENTS.md documents.
    #[test]
    fn mixed_ingest_pass_completes_and_reports() {
        let lab = ServingLab::build(ServingConfig::tiny()).unwrap();
        let p1 = lab.serve_pass(1, true).unwrap();
        let p4 = lab.serve_pass(4, true).unwrap();
        assert_eq!(p1.failed, 0);
        assert_eq!(p4.failed, 0);
        assert_eq!(p1.completed as usize, lab.queries().len());
        let json = serving_json("tiny", lab.rows, &[p1, p4]);
        for needle in [
            "\"experiment\":\"serving\"",
            "\"passes\":[",
            "\"shards\":1",
            "\"shards\":4",
            "\"p99_us\":",
            "\"speedup_4_shards\":",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }
}
