//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p dgf-bench --bin repro -- [--scale small|medium|large]
//!                                                 [--only fig3,table2,agg,groupby,join,partial,tpch,ablation,partitions]
//!                                                 [--out results.md]
//!                                                 [--profile-json BENCH_profile.json]
//! ```
//!
//! `--profile-json` additionally runs one fully profiled boundary-heavy
//! aggregation through the DGFIndex engine and writes the per-stage
//! span tree (`query` → `query.plan`/`query.scan`, with `kv.*`, `plan.*`
//! and `hdfs.*` metrics) as JSON — see DESIGN.md §8 for the schema.

use std::io::Write;

use dgf_bench::experiments::{
    ablation_dgf_features, ablation_slice_placement, agg_experiment, fig3_write_throughput,
    groupby_experiment, join_experiment, partial_experiment, partition_pressure_experiment,
    table2_index_size, table5_tpch_index, tpch_q6_experiment,
};
use dgf_bench::readpath::{readpath_experiment, readpath_json, ReadPathLab};
use dgf_bench::{BenchScale, MeterLab, ReportTable, TpchLab};
use dgf_common::Stopwatch;
use dgf_kvstore::LatencyModel;

struct Args {
    scale: BenchScale,
    only: Option<Vec<String>>,
    out: Option<String>,
    profile_json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut scale = BenchScale::medium();
    let mut only = None;
    let mut out = None;
    let mut profile_json = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                scale = BenchScale::by_name(&v)
                    .ok_or_else(|| format!("unknown scale {v:?} (small|medium|large)"))?;
            }
            "--only" => {
                let v = it.next().ok_or("--only needs a value")?;
                only = Some(v.split(',').map(|s| s.trim().to_owned()).collect());
            }
            "--out" => out = Some(it.next().ok_or("--out needs a value")?),
            "--profile-json" => {
                profile_json = Some(it.next().ok_or("--profile-json needs a path")?)
            }
            "--help" | "-h" => {
                return Err("usage: repro [--scale small|medium|large] \
                            [--only fig3,table2,agg,groupby,join,partial,tpch,ablation,partitions] \
                            [--out results.md] [--profile-json BENCH_profile.json]"
                    .into())
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Args {
        scale,
        only,
        out,
        profile_json,
    })
}

fn wanted(only: &Option<Vec<String>>, key: &str) -> bool {
    match only {
        Some(keys) => keys.iter().any(|k| k == key),
        None => true,
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(args) {
        eprintln!("repro failed: {e}");
        std::process::exit(1);
    }
}

fn run(args: Args) -> dgf_common::Result<()> {
    let total = Stopwatch::start();
    println!(
        "DGFIndex paper reproduction — scale '{}' ({} meter rows, {} lineitem rows)\n",
        args.scale.name,
        args.scale.meter.row_count(),
        args.scale.tpch.rows
    );
    let mut tables: Vec<ReportTable> = Vec::new();
    let mut emit = |t: ReportTable| {
        println!("{t}");
        tables.push(t);
    };

    if wanted(&args.only, "fig3") {
        emit(fig3_write_throughput(&args.scale)?);
    }
    if wanted(&args.only, "partitions") {
        emit(partition_pressure_experiment()?);
    }

    let need_meter = ["table2", "agg", "groupby", "join", "partial", "ablation"]
        .iter()
        .any(|k| wanted(&args.only, k));
    if need_meter {
        eprintln!("building meter lab (tables, 3 DGF variants, Compact, HadoopDB)...");
        let watch = Stopwatch::start();
        let lab = MeterLab::build(args.scale.clone())?;
        eprintln!("meter lab ready in {:.1}s\n", watch.secs());
        if wanted(&args.only, "table2") {
            emit(table2_index_size(&lab)?);
        }
        if wanted(&args.only, "agg") {
            let (times, records) = agg_experiment(&lab)?;
            emit(records);
            emit(times);
        }
        if wanted(&args.only, "groupby") {
            let (times, records) = groupby_experiment(&lab)?;
            emit(records);
            emit(times);
        }
        if wanted(&args.only, "join") {
            emit(join_experiment(&lab)?);
        }
        if wanted(&args.only, "partial") {
            emit(partial_experiment(&lab)?);
        }
        if wanted(&args.only, "ablation") {
            emit(ablation_dgf_features(&lab)?);
            emit(ablation_slice_placement(&args.scale)?);
        }
    }

    if wanted(&args.only, "tpch") {
        eprintln!("building TPC-H lab (tables, DGF, Compact-2D/3D)...");
        let watch = Stopwatch::start();
        let lab = TpchLab::build(args.scale.clone())?;
        eprintln!("tpch lab ready in {:.1}s\n", watch.secs());
        emit(table5_tpch_index(&lab)?);
        let (records, times) = tpch_q6_experiment(&lab)?;
        emit(records);
        emit(times);
    }

    if let Some(path) = &args.profile_json {
        eprintln!("running profiled boundary-heavy query for {path}...");
        let report = readpath_experiment(110, 100, 3_000, LatencyModel::hbase_like())?;
        let stats = ReadPathLab::build(110, 100, 3_000, LatencyModel::hbase_like())?
            .profiled_run()?;
        std::fs::write(path, readpath_json("fine 110x100, hbase-like", &report, &stats))?;
        eprintln!("wrote per-stage profile JSON to {path}");
    }

    if let Some(path) = &args.out {
        let mut f = std::fs::File::create(path)?;
        writeln!(
            f,
            "# DGFIndex reproduction results (scale: {})\n",
            args.scale.name
        )?;
        for t in &tables {
            f.write_all(t.to_markdown().as_bytes())?;
        }
        eprintln!("wrote {} tables to {path}", tables.len());
    }
    eprintln!("\nall experiments done in {:.1}s", total.secs());
    Ok(())
}
