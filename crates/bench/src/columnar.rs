//! Columnar scan/aggregate micro-experiment (DESIGN.md §12).
//!
//! The PR's tentpole claim: decoding each RCFile row group once into a
//! typed [`dgf_common::ColumnBatch`] and folding aggregates with slice
//! kernels makes full-scan SUM/AVG aggregation over ≥10⁵-row meter
//! tables ≥3× faster than the row-at-a-time path, with bit-identical
//! answers. This module measures the end-to-end passes (row-wise oracle,
//! columnar, columnar + double-buffered prefetch) and the individual
//! kernels (group decode, predicate selection, sum/extreme folds), and
//! assembles the `BENCH_columnar.json` document.

use std::sync::Arc;
use std::time::Duration;

use dgf_common::batch::{ColumnBatch, Selection};
use dgf_common::stats::ScanSnapshot;
use dgf_common::{Result, Row, Stopwatch, TempDir};
use dgf_format::{FileFormat, RcReader};
use dgf_hive::{HiveContext, ScanEngine, ScanOptions, TableRef};
use dgf_mapreduce::MrEngine;
use dgf_query::{AggFunc, AggSet, ColumnRange, Engine, Predicate, Query, QueryResult};
use dgf_storage::{HdfsConfig, SimHdfs};
use dgf_workload::{generate_meter_data, meter_schema, MeterConfig};

/// A meter table stored as RCFile, ready for scan passes.
pub struct ColumnarLab {
    _tmp: TempDir,
    /// The warehouse the passes run in.
    pub ctx: Arc<HiveContext>,
    /// The RCFile meter table.
    pub table: TableRef,
    /// Rows in the table.
    pub rows: u64,
}

/// One end-to-end scan pass's outcome.
#[derive(Debug, Clone)]
pub struct ScanPass {
    /// Wall time of the engine run.
    pub time: Duration,
    /// The query answer (all passes must agree bit-for-bit).
    pub result: QueryResult,
    /// Columnar-scan counters for the pass.
    pub scan: ScanSnapshot,
}

/// Busy time of each kernel over one full pass of the table.
#[derive(Debug, Clone, Copy)]
pub struct KernelTimings {
    /// Rows in the decoded batches.
    pub rows: u64,
    /// Row groups decoded.
    pub batches: u64,
    /// Decode all groups into typed batches.
    pub decode: Duration,
    /// Predicate kernel: selection vectors over every batch.
    pub select: Duration,
    /// SUM+AVG slice fold over every batch (full selection).
    pub sum: Duration,
    /// MIN+MAX slice fold over every batch (full selection).
    pub minmax: Duration,
    /// The same SUM+AVG fold done row-at-a-time through a scratch row —
    /// the per-kernel baseline the slice fold is compared against.
    pub rowwise_sum: Duration,
}

impl ColumnarLab {
    /// Generate the meter table and store it as RCFile.
    pub fn build(cfg: &MeterConfig, rows_per_group: usize, num_files: usize) -> Result<ColumnarLab> {
        let tmp = TempDir::new("columnar")?;
        let hdfs = SimHdfs::new(
            tmp.path(),
            HdfsConfig {
                block_size: 4 << 20,
                replication: 1,
            },
        )?;
        let ctx = HiveContext::new(hdfs, MrEngine::new(4));
        let created = ctx.create_table("meter_col", meter_schema(), FileFormat::RcFile)?;
        let mut desc = (*created).clone();
        desc.rows_per_group = rows_per_group;
        let rows = generate_meter_data(cfg);
        ctx.load_rows(&desc, &rows, num_files)?;
        Ok(ColumnarLab {
            _tmp: tmp,
            ctx,
            table: Arc::new(desc),
            rows: rows.len() as u64,
        })
    }

    /// The experiment query: full-scan SUM/AVG/COUNT over the power
    /// column — the paper's Listing 4 shape at selectivity 1.
    pub fn query(&self) -> Query {
        Query::Aggregate {
            aggs: vec![
                AggFunc::Sum("power_consumed".into()),
                AggFunc::Avg("power_consumed".into()),
                AggFunc::Count,
            ],
            predicate: Predicate::all(),
        }
    }

    /// Run the experiment query once under `options`, best-of-`reps`.
    pub fn scan_pass(&self, options: ScanOptions, reps: usize) -> Result<ScanPass> {
        self.ctx.set_scan_options(options);
        let mut best: Option<ScanPass> = None;
        for _ in 0..reps.max(1) {
            let before = self.ctx.scan_stats.snapshot();
            let watch = Stopwatch::start();
            let run = ScanEngine::new(Arc::clone(&self.ctx), Arc::clone(&self.table))
                .run(&self.query())?;
            let time = watch.elapsed();
            let scan = self.ctx.scan_stats.snapshot().since(&before);
            if best.as_ref().is_none_or(|b| time < b.time) {
                best = Some(ScanPass {
                    time,
                    result: run.result,
                    scan,
                });
            }
        }
        Ok(best.expect("reps >= 1"))
    }

    /// Decode the whole table once and time each kernel over the decoded
    /// batches. The decode timing is the first full drain; selection and
    /// fold timings run over the held batches, so they measure pure
    /// kernel cost without I/O.
    pub fn kernel_micro(&self) -> Result<KernelTimings> {
        let schema = &self.table.schema;
        let mut batches: Vec<ColumnBatch> = Vec::new();
        let decode_watch = Stopwatch::start();
        for split in self.ctx.table_splits(&self.table) {
            let mut r = RcReader::open(&self.ctx.hdfs, schema.clone(), &split)?;
            while let Some(b) = r.next_batch()? {
                batches.push(b);
            }
        }
        let decode = decode_watch.elapsed();
        let rows: u64 = batches.iter().map(|b| b.len() as u64).sum();

        // Selection kernel: a half-open range on user_id (~50% selective).
        let pred = Predicate::all()
            .and(
                "user_id",
                ColumnRange::half_open(
                    dgf_common::Value::Int(0),
                    dgf_common::Value::Int(i64::MAX / 2),
                ),
            )
            .bind(schema)?;
        let select_watch = Stopwatch::start();
        let mut selected = 0u64;
        for b in &batches {
            selected += pred.select(b).len() as u64;
        }
        let select = select_watch.elapsed();
        std::hint::black_box(selected);

        let full: Vec<Selection> = batches.iter().map(|b| Selection::All(b.len())).collect();
        let time_fold = |aggs: &[AggFunc]| -> Result<Duration> {
            let set = AggSet::bind(aggs, schema)?;
            let mut states = set.new_states();
            let watch = Stopwatch::start();
            for (b, sel) in batches.iter().zip(&full) {
                set.update_batch(&mut states, b, sel, schema)?;
            }
            let t = watch.elapsed();
            std::hint::black_box(&states);
            Ok(t)
        };
        let sum = time_fold(&[
            AggFunc::Sum("power_consumed".into()),
            AggFunc::Avg("power_consumed".into()),
        ])?;
        let minmax = time_fold(&[
            AggFunc::Min("power_consumed".into()),
            AggFunc::Max("power_consumed".into()),
        ])?;

        // Row-wise baseline for the same SUM+AVG fold: one scratch row,
        // refilled per record, pushed through the scalar update path.
        let set = AggSet::bind(
            &[
                AggFunc::Sum("power_consumed".into()),
                AggFunc::Avg("power_consumed".into()),
            ],
            schema,
        )?;
        let mut states = set.new_states();
        let mut scratch = Row::new();
        let watch = Stopwatch::start();
        for b in &batches {
            for i in 0..b.len() {
                b.read_row_into(i, &mut scratch);
                set.update(&mut states, &scratch, schema)?;
            }
        }
        let rowwise_sum = watch.elapsed();
        std::hint::black_box(&states);

        Ok(KernelTimings {
            rows,
            batches: batches.len() as u64,
            decode,
            select,
            sum,
            minmax,
            rowwise_sum,
        })
    }
}

fn pass_json(p: &ScanPass) -> String {
    format!(
        concat!(
            "{{\"time_us\":{},\"batches\":{},\"rows_decoded\":{},\"rows_selected\":{},",
            "\"decode_us\":{},\"kernel_us\":{},\"prefetch_waits\":{},",
            "\"prefetch_wait_us\":{},\"rowwise_rows\":{}}}"
        ),
        p.time.as_micros(),
        p.scan.batches,
        p.scan.rows_decoded,
        p.scan.rows_selected,
        p.scan.decode_us,
        p.scan.kernel_us,
        p.scan.prefetch_waits,
        p.scan.prefetch_wait_us,
        p.scan.rowwise_rows,
    )
}

/// Assemble the `BENCH_columnar.json` document: the three end-to-end
/// passes, the acceptance speedup, and the per-kernel busy times.
pub fn columnar_json(
    config: &str,
    rows: u64,
    rowwise: &ScanPass,
    columnar: &ScanPass,
    prefetch: &ScanPass,
    kernels: &KernelTimings,
) -> String {
    let speedup = rowwise.time.as_secs_f64() / columnar.time.as_secs_f64().max(1e-9);
    format!(
        concat!(
            "{{\"experiment\":\"columnar\",\"config\":\"{config}\",\"rows\":{rows},",
            "\"passes\":{{\"rowwise\":{rw},\"columnar\":{col},\"columnar_prefetch\":{pre}}},",
            "\"speedup\":{speedup:.2},",
            "\"kernels\":{{\"rows\":{krows},\"batches\":{kbatches},",
            "\"decode_us\":{decode},\"select_us\":{select},\"sum_us\":{sum},",
            "\"minmax_us\":{minmax},\"rowwise_sum_us\":{rsum}}}}}"
        ),
        config = config,
        rows = rows,
        rw = pass_json(rowwise),
        col = pass_json(columnar),
        pre = pass_json(prefetch),
        speedup = speedup,
        krows = kernels.rows,
        kbatches = kernels.batches,
        decode = kernels.decode.as_micros(),
        select = kernels.select.as_micros(),
        sum = kernels.sum.as_micros(),
        minmax = kernels.minmax.as_micros(),
        rsum = kernels.rowwise_sum.as_micros(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small-scale correctness: the three passes agree bit-for-bit and
    /// the counters describe what each pass did. (The ≥3× speedup is
    /// asserted in the release-mode bench runner, not under `--cfg test`
    /// debug timing.)
    #[test]
    fn passes_agree_and_counters_describe_the_paths() {
        let cfg = MeterConfig {
            users: 300,
            days: 10,
            ..MeterConfig::default()
        };
        let lab = ColumnarLab::build(&cfg, 512, 2).unwrap();
        let rowwise = lab
            .scan_pass(
                ScanOptions {
                    columnar: false,
                    prefetch: false,
                    sidecar: true,
                },
                1,
            )
            .unwrap();
        let columnar = lab
            .scan_pass(
                ScanOptions {
                    columnar: true,
                    prefetch: false,
                    sidecar: true,
                },
                1,
            )
            .unwrap();
        let prefetch = lab.scan_pass(ScanOptions::default(), 1).unwrap();
        assert_eq!(rowwise.result, columnar.result);
        assert_eq!(rowwise.result, prefetch.result);
        assert_eq!(rowwise.scan.batches, 0);
        assert_eq!(rowwise.scan.rowwise_rows, lab.rows);
        assert_eq!(columnar.scan.rows_decoded, lab.rows);
        assert_eq!(columnar.scan.rows_selected, lab.rows);
        assert_eq!(prefetch.scan.rows_decoded, lab.rows);

        let kernels = lab.kernel_micro().unwrap();
        assert_eq!(kernels.rows, lab.rows);
        let json = columnar_json("test", lab.rows, &rowwise, &columnar, &prefetch, &kernels);
        for needle in [
            "\"experiment\":\"columnar\"",
            "\"passes\":",
            "\"columnar_prefetch\":",
            "\"speedup\":",
            "\"kernels\":",
            "\"rowwise_sum_us\":",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }
}
