//! Sub-slice skipping micro-experiment (DESIGN.md §15).
//!
//! The sidecar PR's tentpole claim: for *selective* queries — boundary
//! Slices narrowed by a clustered non-grid-dimension range, or a
//! low-cardinality equality the grid cannot see — zone-map and bitmap
//! pruning lets the scan read ≤ 25% of the slice bytes the unpruned
//! plan reads, with bit-identical answers. The ratio is measured from
//! the [`ScanStats`](dgf_common::stats::ScanStats) bytes-skipped
//! ledger, which `tests/profile_invariants.rs` proves reconciles
//! exactly with the unpruned pass, and cross-checked here against an
//! actual pruning-off run. This module assembles `BENCH_sidecar.json`.

use std::sync::Arc;
use std::time::Duration;

use dgf_common::stats::ScanSnapshot;
use dgf_common::{Result, Row, Schema, Stopwatch, TempDir, Value, ValueType};
use dgf_core::{DgfEngine, DgfIndex, DimPolicy, SplittingPolicy};
use dgf_format::FileFormat;
use dgf_hive::{HiveContext, ScanOptions};
use dgf_kvstore::MemKvStore;
use dgf_mapreduce::MrEngine;
use dgf_query::{AggFunc, ColumnRange, Engine, Predicate, Query, QueryResult};
use dgf_storage::{HdfsConfig, SimHdfs};

/// A built DGFIndex over an RCFile table whose slices carry sidecars:
/// `user_id × day` is the grid; `seq` (clustered) and `cat`
/// (low-cardinality, block-clustered) are visible only to the sidecar.
pub struct SidecarLab {
    _tmp: TempDir,
    /// The warehouse the passes run in.
    pub ctx: Arc<HiveContext>,
    /// The built index.
    pub idx: Arc<DgfIndex>,
    /// Rows in the table.
    pub rows: u64,
}

/// One query's pruned-vs-unpruned outcome.
#[derive(Debug, Clone)]
pub struct SidecarPass {
    /// Query label for the report.
    pub name: &'static str,
    /// Wall time with pruning on.
    pub pruned_time: Duration,
    /// Wall time with pruning off.
    pub unpruned_time: Duration,
    /// Slice bytes read with pruning on.
    pub pruned_bytes: u64,
    /// Slice bytes read with pruning off.
    pub unpruned_bytes: u64,
    /// Scan counters of the pruned pass (the sidecar ledger).
    pub scan: ScanSnapshot,
    /// The (identical) answer.
    pub result: QueryResult,
}

impl SidecarPass {
    /// Fraction of the unpruned pass's slice bytes the pruned pass
    /// read, computed from the bytes-skipped ledger.
    pub fn bytes_ratio(&self) -> f64 {
        let would_read = self.pruned_bytes + self.scan.sidecar_bytes_skipped;
        self.pruned_bytes as f64 / would_read.max(1) as f64
    }
}

impl SidecarLab {
    /// Generate `n` rows, store them as RCFile with `rows_per_group`
    /// groups, and build the index. Small groups relative to the slice
    /// size give the sidecar room to skip inside each boundary Slice.
    pub fn build(n: usize, rows_per_group: usize) -> Result<SidecarLab> {
        let tmp = TempDir::new("sidecar")?;
        let hdfs = SimHdfs::new(
            tmp.path(),
            HdfsConfig {
                block_size: 4 << 20,
                replication: 1,
            },
        )?;
        let ctx = HiveContext::new(hdfs, MrEngine::new(4));
        let schema = Arc::new(Schema::from_pairs(&[
            ("user_id", ValueType::Int),
            ("day", ValueType::Int),
            ("seq", ValueType::Int),
            ("cat", ValueType::Int),
            ("power", ValueType::Float),
        ]));
        let created = ctx.create_table("meter_scx", schema, FileFormat::RcFile)?;
        let mut desc = (*created).clone();
        desc.rows_per_group = rows_per_group;
        let rows: Vec<Row> = (0..n)
            .map(|i| {
                let i = i as i64;
                vec![
                    Value::Int((i * 7) % 32),
                    Value::Int((i * 13) % 8),
                    // Clustered: groups partition the seq range.
                    Value::Int(i),
                    // Block-clustered low-cardinality: one value per
                    // sixteenth of the table, so most groups hold 1–2
                    // distinct values and the bitmap level-1 gate bites.
                    Value::Int(i * 16 / n as i64),
                    Value::Float((i % 97) as f64 / 3.0),
                ]
            })
            .collect();
        ctx.load_rows(&desc, &rows, 4)?;
        let policy = SplittingPolicy::new(vec![
            DimPolicy::int("user_id", 0, 8),
            DimPolicy::int("day", 0, 2),
        ])?;
        let (idx, _) = DgfIndex::build(
            Arc::clone(&ctx),
            Arc::new(desc),
            policy,
            vec![AggFunc::Count, AggFunc::Sum("power".into())],
            Arc::new(MemKvStore::new()),
            "dgf_sidecar",
        )?;
        Ok(SidecarLab {
            _tmp: tmp,
            ctx,
            idx: Arc::new(idx),
            rows: n as u64,
        })
    }

    /// The selective query set: each mixes misaligned grid ranges
    /// (boundary Slices) with a predicate only the sidecar can narrow.
    pub fn queries(&self) -> Vec<(&'static str, Query)> {
        let n = self.rows as i64;
        vec![
            (
                "zone_seq_range",
                Query::Aggregate {
                    aggs: vec![AggFunc::Count, AggFunc::Sum("power".into())],
                    predicate: Predicate::all().and(
                        "seq",
                        ColumnRange::half_open(Value::Int(n / 10), Value::Int(n / 10 + n / 20)),
                    ),
                },
            ),
            (
                "zone_seq_boundary",
                Query::Aggregate {
                    aggs: vec![AggFunc::Count, AggFunc::Sum("power".into())],
                    predicate: Predicate::all()
                        .and(
                            "user_id",
                            ColumnRange::half_open(Value::Int(3), Value::Int(29)),
                        )
                        .and(
                            "seq",
                            ColumnRange::half_open(Value::Int(n / 2), Value::Int(n / 2 + n / 16)),
                        ),
                },
            ),
            (
                "bitmap_cat_eq",
                Query::Aggregate {
                    aggs: vec![AggFunc::Count, AggFunc::Sum("power".into())],
                    predicate: Predicate::all().and("cat", ColumnRange::eq(Value::Int(11))),
                },
            ),
        ]
    }

    /// Run one query with pruning on and off, best-of-`reps` each, and
    /// check the answers agree in float bits.
    pub fn pass(&self, name: &'static str, q: &Query, reps: usize) -> Result<SidecarPass> {
        measure_pass(&self.ctx, &self.idx, name, q, reps)
    }
}

/// Run one query over `idx` with pruning on and off, best-of-`reps`
/// each, and check the answers agree. Shared by the sidecar and
/// compaction labs so both reports measure the same way.
pub fn measure_pass(
    ctx: &Arc<HiveContext>,
    idx: &Arc<DgfIndex>,
    name: &'static str,
    q: &Query,
    reps: usize,
) -> Result<SidecarPass> {
    let run = |sidecar: bool| -> Result<(Duration, u64, ScanSnapshot, QueryResult)> {
        ctx.set_scan_options(ScanOptions {
            columnar: true,
            prefetch: true,
            sidecar,
        });
        let mut best: Option<(Duration, u64, ScanSnapshot, QueryResult)> = None;
        for _ in 0..reps.max(1) {
            let watch = Stopwatch::start();
            let r = DgfEngine::new(Arc::clone(idx)).run(q)?;
            let t = watch.elapsed();
            if best.as_ref().is_none_or(|b| t < b.0) {
                best = Some((t, r.stats.data_bytes_read, r.stats.scan, r.result));
            }
        }
        Ok(best.expect("reps >= 1"))
    };
    let (pruned_time, pruned_bytes, scan, result) = run(true)?;
    let (unpruned_time, unpruned_bytes, _, baseline) = run(false)?;
    assert_eq!(result, baseline, "{name}: pruning changed the answer");
    Ok(SidecarPass {
        name,
        pruned_time,
        unpruned_time,
        pruned_bytes,
        unpruned_bytes,
        scan,
        result,
    })
}

fn pass_json(p: &SidecarPass) -> String {
    format!(
        concat!(
            "{{\"name\":\"{}\",\"pruned_time_us\":{},\"unpruned_time_us\":{},",
            "\"pruned_bytes\":{},\"unpruned_bytes\":{},\"bytes_ratio\":{:.4},",
            "\"sidecar_hits\":{},\"sidecar_bytes\":{},\"groups_pruned\":{},",
            "\"bytes_skipped\":{}}}"
        ),
        p.name,
        p.pruned_time.as_micros(),
        p.unpruned_time.as_micros(),
        p.pruned_bytes,
        p.unpruned_bytes,
        p.bytes_ratio(),
        p.scan.sidecar_hits,
        p.scan.sidecar_bytes,
        p.scan.sidecar_groups_pruned,
        p.scan.sidecar_bytes_skipped,
    )
}

/// Assemble the `BENCH_sidecar.json` document.
pub fn sidecar_json(config: &str, rows: u64, passes: &[SidecarPass]) -> String {
    let worst = passes
        .iter()
        .map(SidecarPass::bytes_ratio)
        .fold(0.0f64, f64::max);
    let queries: Vec<String> = passes.iter().map(pass_json).collect();
    format!(
        concat!(
            "{{\"experiment\":\"sidecar\",\"config\":\"{}\",\"rows\":{},",
            "\"queries\":[{}],\"worst_bytes_ratio\":{:.4},\"acceptance_max_ratio\":0.25}}"
        ),
        config,
        rows,
        queries.join(","),
        worst,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The bytes ratio is a deterministic property of the data layout,
    /// not a timing, so the acceptance bar holds in debug builds too:
    /// every selective query reads ≤ 25% of the unpruned slice bytes,
    /// the ledger agrees with the real pruning-off pass, and answers
    /// are identical.
    #[test]
    fn selective_queries_skip_three_quarters_of_slice_bytes() {
        let lab = SidecarLab::build(40_000, 128).unwrap();
        for (name, q) in lab.queries() {
            let p = lab.pass(name, &q, 1).unwrap();
            assert!(p.scan.sidecar_hits > 0, "{name}: no sidecar consulted");
            assert!(
                p.bytes_ratio() <= 0.25,
                "{name}: read {:.1}% of unpruned slice bytes (need <= 25%)",
                p.bytes_ratio() * 100.0
            );
            // The ledger's denominator is the real unpruned pass.
            assert_eq!(
                p.pruned_bytes + p.scan.sidecar_bytes_skipped,
                p.unpruned_bytes,
                "{name}: ledger does not reconcile"
            );
        }
        let json = sidecar_json("test", lab.rows, &[]);
        for needle in [
            "\"experiment\":\"sidecar\"",
            "\"worst_bytes_ratio\":",
            "\"acceptance_max_ratio\":0.25",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }
}
