//! The TPC-H laboratory (§5.4): lineitem tables, the DGF grid on
//! (l_discount, l_quantity, l_shipdate), and the 2-D/3-D Compact Indexes.

use std::sync::Arc;

use dgf_common::{Result, Row, TempDir};
use dgf_core::{DgfEngine, DgfIndex, DimPolicy, SplittingPolicy};
use dgf_format::FileFormat;
use dgf_hive::{BuildReport, CompactEngine, CompactIndex, HiveContext, ScanEngine, TableRef};
use dgf_kvstore::{KvStore, LatencyKv, MemKvStore};
use dgf_mapreduce::MrEngine;
use dgf_storage::{HdfsConfig, SimHdfs};
use dgf_workload::tpch::{generate_lineitem, lineitem_schema, q6_revenue_agg, ship_min_day};

use crate::scale::BenchScale;

/// Shared experiment state for the TPC-H dataset.
pub struct TpchLab {
    _tmp: TempDir,
    /// The scale this lab was built at.
    pub scale: BenchScale,
    /// Warehouse context.
    pub ctx: Arc<HiveContext>,
    /// Generated lineitem rows.
    pub rows: Vec<Row>,
    /// TextFile base (DGFIndex).
    pub text_table: TableRef,
    /// RCFile base (Compact Indexes).
    pub rc_table: TableRef,
    /// DGFIndex with the paper's intervals: discount 0.01, quantity 1.0,
    /// shipdate 100 days.
    pub dgf: Arc<DgfIndex>,
    /// DGF build report.
    pub dgf_report: BuildReport,
    /// 2-D Compact Index on (l_discount, l_quantity).
    pub compact2: Arc<CompactIndex>,
    /// Its build report.
    pub compact2_report: BuildReport,
    /// 3-D Compact Index on (l_discount, l_quantity, l_shipdate).
    pub compact3: Arc<CompactIndex>,
    /// Its build report.
    pub compact3_report: BuildReport,
}

impl TpchLab {
    /// Build the lab at `scale`.
    pub fn build(scale: BenchScale) -> Result<TpchLab> {
        let tmp = TempDir::new("tpchlab")?;
        let hdfs = SimHdfs::new(
            tmp.path().join("hdfs"),
            HdfsConfig {
                block_size: scale.block_size,
                replication: 2,
            },
        )?;
        let ctx = HiveContext::new(hdfs, MrEngine::new(scale.threads));
        let rows = generate_lineitem(&scale.tpch);

        let text_table = ctx.create_table("lineitem_text", lineitem_schema(), FileFormat::Text)?;
        ctx.load_rows(&text_table, &rows, scale.files)?;
        let rc_table = ctx.create_table("lineitem_rc", lineitem_schema(), FileFormat::RcFile)?;
        ctx.load_rows(&rc_table, &rows, scale.files)?;

        // Paper §5.4: "we set the interval size of l_discount, l_quantity
        // and l_shipdate to 0.01, 1.0 and 100 days respectively".
        let policy = SplittingPolicy::new(vec![
            DimPolicy::float("l_discount", 0.0, 0.01),
            DimPolicy::float("l_quantity", 1.0, 1.0),
            DimPolicy::date("l_shipdate", ship_min_day(), 100),
        ])?;
        let kv: Arc<dyn KvStore> =
            Arc::new(LatencyKv::new(MemKvStore::new(), scale.kv_latency));
        let (dgf, dgf_report) = DgfIndex::build(
            Arc::clone(&ctx),
            Arc::clone(&text_table),
            policy,
            vec![q6_revenue_agg()],
            kv,
            "dgf_lineitem",
        )?;

        let (compact2, compact2_report) = CompactIndex::build(
            Arc::clone(&ctx),
            Arc::clone(&rc_table),
            vec!["l_discount".into(), "l_quantity".into()],
            "compact2_lineitem",
        )?;
        let (compact3, compact3_report) = CompactIndex::build(
            Arc::clone(&ctx),
            Arc::clone(&rc_table),
            vec![
                "l_discount".into(),
                "l_quantity".into(),
                "l_shipdate".into(),
            ],
            "compact3_lineitem",
        )?;

        Ok(TpchLab {
            _tmp: tmp,
            scale,
            ctx,
            rows,
            text_table,
            rc_table,
            dgf: Arc::new(dgf),
            dgf_report,
            compact2: Arc::new(compact2),
            compact2_report,
            compact3: Arc::new(compact3),
            compact3_report,
        })
    }

    /// Scan baseline over the text table.
    pub fn scan_engine(&self) -> ScanEngine {
        ScanEngine::new(Arc::clone(&self.ctx), Arc::clone(&self.text_table))
    }

    /// DGF engine.
    pub fn dgf_engine(&self) -> DgfEngine {
        DgfEngine::new(Arc::clone(&self.dgf))
    }

    /// 2-D Compact engine.
    pub fn compact2_engine(&self) -> CompactEngine {
        CompactEngine::new(Arc::clone(&self.compact2))
    }

    /// 3-D Compact engine.
    pub fn compact3_engine(&self) -> CompactEngine {
        CompactEngine::new(Arc::clone(&self.compact3))
    }

    /// Exact matching-row count for the "Accurate" row of Table 6.
    pub fn accurate_count(&self, predicate: &dgf_query::Predicate) -> Result<u64> {
        let schema = lineitem_schema();
        let bound = predicate.bind(&schema)?;
        Ok(self.rows.iter().filter(|r| bound.matches(r)).count() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_query::Engine;
    use dgf_workload::tpch::q6;

    #[test]
    fn q6_agrees_across_engines() {
        let mut scale = BenchScale::small();
        scale.tpch.rows = 8_000;
        scale.kv_latency = dgf_kvstore::LatencyModel::ZERO;
        let lab = TpchLab::build(scale).unwrap();
        let q = q6(1994, 0.06, 24.0);
        let truth = lab.scan_engine().run(&q).unwrap();
        let dgf = lab.dgf_engine().run(&q).unwrap();
        assert!(dgf.result.approx_eq(&truth.result, 1e-6));
        let c2 = lab.compact2_engine().run(&q).unwrap();
        assert!(c2.result.approx_eq(&truth.result, 1e-6));
        let c3 = lab.compact3_engine().run(&q).unwrap();
        assert!(c3.result.approx_eq(&truth.result, 1e-6));
        // The paper's Table 6 shape: DGF reads far less than Compact,
        // which reads (nearly) everything on scattered data.
        assert!(dgf.stats.data_records_read * 4 < c2.stats.data_records_read);
        assert!(c2.stats.data_records_read as f64 >= 0.9 * lab.rows.len() as f64);
    }
}
