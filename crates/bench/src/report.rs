//! Plain-text report tables, printed in the same row/series layout as the
//! paper's tables and figures.

use std::fmt;

/// One experiment's output table.
#[derive(Debug, Clone)]
pub struct ReportTable {
    /// e.g. `"Table 2: Index Size and Construction Time"`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (substitutions, expected shape).
    pub notes: Vec<String>,
}

impl ReportTable {
    /// Start a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> ReportTable {
        ReportTable {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Append a note.
    pub fn note(&mut self, n: impl Into<String>) {
        self.notes.push(n.into());
    }

    /// Render as a Markdown table (for EXPERIMENTS output files).
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for r in &self.rows {
            out.push_str(&format!("| {} |\n", r.join(" | ")));
        }
        for n in &self.notes {
            out.push_str(&format!("\n_{n}_\n"));
        }
        out.push('\n');
        out
    }
}

impl fmt::Display for ReportTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                write!(f, "{:<w$}  ", c, w = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        writeln!(f, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()))?;
        for r in &self.rows {
            line(f, r)?;
        }
        for n in &self.notes {
            writeln!(f, "note: {n}")?;
        }
        Ok(())
    }
}

/// Format a byte count like the paper's tables (GB / MB / KB).
pub fn fmt_bytes(b: u64) -> String {
    const K: f64 = 1024.0;
    let b = b as f64;
    if b >= K * K * K {
        format!("{:.2}GB", b / (K * K * K))
    } else if b >= K * K {
        format!("{:.2}MB", b / (K * K))
    } else if b >= K {
        format!("{:.2}KB", b / K)
    } else {
        format!("{b:.0}B")
    }
}

/// Format a duration in seconds with millisecond resolution.
pub fn fmt_secs(d: std::time::Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

/// Thousands-separated integer (the paper prints `4, 756, 501, 768`).
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders() {
        let mut t = ReportTable::new("Table X", &["a", "bee"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("hello");
        let text = t.to_string();
        assert!(text.contains("Table X"));
        assert!(text.contains("bee"));
        assert!(text.contains("note: hello"));
        let md = t.to_markdown();
        assert!(md.contains("| a | bee |"));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.00KB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00MB");
        assert_eq!(fmt_count(1234567), "1,234,567");
        assert_eq!(fmt_count(42), "42");
        assert_eq!(fmt_secs(std::time::Duration::from_millis(1500)), "1.500s");
    }
}
