//! Benchmark scale presets.
//!
//! The paper runs on 29 nodes over ~1 TB; this reproduction runs on one
//! machine, so every experiment takes a scale knob. `small` keeps CI
//! fast; `medium` is the default for `repro`; `large` approaches the
//! biggest dataset a laptop comfortably grinds through.

use dgf_hadoopdb::HadoopDbConfig;
use dgf_kvstore::LatencyModel;
use dgf_workload::{MeterConfig, TpchConfig};

/// Everything size- or cost-related in one place.
#[derive(Debug, Clone)]
pub struct BenchScale {
    /// Human name of the preset.
    pub name: &'static str,
    /// Meter dataset shape.
    pub meter: MeterConfig,
    /// TPC-H dataset shape.
    pub tpch: TpchConfig,
    /// Simulated HDFS block size.
    pub block_size: u64,
    /// Number of base-table data files.
    pub files: usize,
    /// MapReduce worker threads.
    pub threads: usize,
    /// HadoopDB deployment shape.
    pub hadoopdb: HadoopDbConfig,
    /// Key-value store RPC latency model (HBase stand-in).
    pub kv_latency: LatencyModel,
    /// Repetitions per measurement (the paper averages 3 runs).
    pub runs: usize,
    /// `userId` interval counts for the Large/Medium/Small DGF variants.
    /// The paper splits userId into 100 / 1 000 / 10 000 intervals over
    /// 14 M users; at laptop scale the counts are capped so the smallest
    /// cell still holds multiple records per (region, day) — preserving
    /// the paper's records-per-GFU regime rather than its raw counts.
    pub interval_counts: [u64; 3],
    /// Rows ingested by the Figure 3 write experiment.
    pub ingest_rows: u64,
}

impl BenchScale {
    /// Seconds-scale preset for CI and tests.
    pub fn small() -> BenchScale {
        BenchScale {
            name: "small",
            meter: MeterConfig {
                users: 2_000,
                days: 30,
                ..MeterConfig::default()
            },
            tpch: TpchConfig {
                rows: 40_000,
                seed: 7,
            },
            block_size: 256 * 1024,
            files: 4,
            threads: 4,
            hadoopdb: HadoopDbConfig {
                nodes: 4,
                chunks_per_node: 4,
                node_parallelism: 2,
                per_chunk_overhead: std::time::Duration::from_micros(300),
            },
            kv_latency: LatencyModel::ZERO,
            runs: 1,
            interval_counts: [10, 30, 90],
            ingest_rows: 20_000,
        }
    }

    /// The default preset for `repro` (minutes on a laptop).
    pub fn medium() -> BenchScale {
        BenchScale {
            name: "medium",
            meter: MeterConfig {
                users: 20_000,
                days: 30,
                ..MeterConfig::default()
            },
            tpch: TpchConfig {
                rows: 400_000,
                seed: 7,
            },
            block_size: 1024 * 1024,
            files: 8,
            threads: dgf_mapreduce::default_parallelism(),
            hadoopdb: HadoopDbConfig {
                nodes: 7,
                chunks_per_node: 6,
                node_parallelism: 2,
                per_chunk_overhead: std::time::Duration::from_micros(500),
            },
            kv_latency: LatencyModel::hbase_like(),
            runs: 3,
            interval_counts: [100, 300, 900],
            ingest_rows: 100_000,
        }
    }

    /// A heavier preset (tens of minutes).
    pub fn large() -> BenchScale {
        BenchScale {
            name: "large",
            meter: MeterConfig {
                users: 100_000,
                days: 30,
                ..MeterConfig::default()
            },
            tpch: TpchConfig {
                rows: 2_000_000,
                seed: 7,
            },
            block_size: 4 * 1024 * 1024,
            files: 16,
            threads: dgf_mapreduce::default_parallelism(),
            hadoopdb: HadoopDbConfig {
                nodes: 7,
                chunks_per_node: 10,
                node_parallelism: 2,
                per_chunk_overhead: std::time::Duration::from_micros(500),
            },
            kv_latency: LatencyModel::hbase_like(),
            runs: 3,
            interval_counts: [100, 1_000, 4_500],
            ingest_rows: 400_000,
        }
    }

    /// Look up a preset by name.
    pub fn by_name(name: &str) -> Option<BenchScale> {
        match name {
            "small" => Some(BenchScale::small()),
            "medium" => Some(BenchScale::medium()),
            "large" => Some(BenchScale::large()),
            _ => None,
        }
    }

    /// The three `userId` interval sizes (Large, Medium, Small) in value
    /// units, derived from the interval counts.
    pub fn user_intervals(&self) -> [i64; 3] {
        let u = self.meter.users.max(1);
        self.interval_counts
            .map(|count| (u as f64 / count as f64).ceil().max(1.0) as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_resolve() {
        assert!(BenchScale::by_name("small").is_some());
        assert!(BenchScale::by_name("medium").is_some());
        assert!(BenchScale::by_name("large").is_some());
        assert!(BenchScale::by_name("nope").is_none());
    }

    #[test]
    fn interval_sizes_decrease_with_count() {
        let s = BenchScale::small();
        let [l, m, sm] = s.user_intervals();
        assert!(l > m && m > sm, "{l} {m} {sm}");
        assert!(sm >= 1);
    }
}
