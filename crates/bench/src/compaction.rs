//! Delta-compaction micro-experiment (DESIGN.md §16).
//!
//! The maintenance PR's measurable claim: a sustained streaming
//! workload scatters the grid across many small flush deltas, and one
//! maintenance pass (a) brings the live data-file count back within the
//! delta budget and (b) leaves the flushed rows in contiguous,
//! sidecar-covered slices on which selective boundary scans hit the
//! sidecar bar — ≤ 25% of the unpruned slice bytes — with answers
//! **bit-identical** to the pre-compaction index (headers are copied
//! verbatim; compaction is pure data movement). This module assembles
//! `BENCH_compaction.json`.

use std::sync::Arc;

use dgf_common::{Result, Row, Schema, TempDir, Value, ValueType};
use dgf_core::{DgfIndex, DimPolicy, MaintenanceConfig, MaintenanceReport, Maintainer, SplittingPolicy};
use dgf_format::{is_sidecar_path, FileFormat};
use dgf_hive::HiveContext;
use dgf_ingest::{IngestConfig, StreamIngestor};
use dgf_kvstore::MemKvStore;
use dgf_mapreduce::MrEngine;
use dgf_query::{AggFunc, ColumnRange, Predicate, Query};
use dgf_storage::{HdfsConfig, SimHdfs};

use crate::sidecar::SidecarPass;

/// An RCFile-backed index whose second half arrived through streaming
/// flushes: half the rows are bulk-built, the rest land as one small
/// delta file per flush. `user_id × day` is the grid; `seq` (clustered)
/// and `cat` (low-cardinality) are visible only to the sidecars.
pub struct CompactionLab {
    _tmp: TempDir,
    /// The warehouse the passes run in.
    pub ctx: Arc<HiveContext>,
    /// The index, half bulk-built, half streamed.
    pub idx: Arc<DgfIndex>,
    /// Total rows in the table.
    pub rows: u64,
}

impl CompactionLab {
    /// Generate `n` rows, bulk-build the first half, then stream the
    /// second half through `flushes` ingest flushes — each one lands a
    /// separate delta file, the accumulation a maintenance pass exists
    /// to undo.
    pub fn build(n: usize, rows_per_group: usize, flushes: usize) -> Result<CompactionLab> {
        let tmp = TempDir::new("compaction")?;
        let hdfs = SimHdfs::new(
            tmp.path(),
            HdfsConfig {
                block_size: 4 << 20,
                replication: 1,
            },
        )?;
        let ctx = HiveContext::new(hdfs, MrEngine::new(4));
        let schema = Arc::new(Schema::from_pairs(&[
            ("user_id", ValueType::Int),
            ("day", ValueType::Int),
            ("seq", ValueType::Int),
            ("cat", ValueType::Int),
            ("power", ValueType::Float),
        ]));
        let created = ctx.create_table("meter_cpt", schema, FileFormat::RcFile)?;
        let mut desc = (*created).clone();
        desc.rows_per_group = rows_per_group;
        let rows: Vec<Row> = (0..n)
            .map(|i| {
                let i = i as i64;
                vec![
                    Value::Int((i * 7) % 32),
                    Value::Int((i * 13) % 8),
                    // Clustered: each flush batch covers a narrow band.
                    Value::Int(i),
                    // Low-cardinality, block-clustered.
                    Value::Int(i * 16 / n as i64),
                    Value::Float((i % 97) as f64 / 3.0),
                ]
            })
            .collect();
        let seeded = &rows[..n / 2];
        ctx.load_rows(&desc, seeded, 4)?;
        let policy = SplittingPolicy::new(vec![
            DimPolicy::int("user_id", 0, 8),
            DimPolicy::int("day", 0, 2),
        ])?;
        let (idx, _) = DgfIndex::build(
            Arc::clone(&ctx),
            Arc::new(desc),
            policy,
            vec![AggFunc::Count, AggFunc::Sum("power".into())],
            Arc::new(MemKvStore::new()),
            "dgf_compaction",
        )?;
        let idx = Arc::new(idx);
        let ingestor = StreamIngestor::open(
            Arc::clone(&idx),
            tmp.path().join("ingest.wal"),
            IngestConfig {
                flush_rows: u64::MAX,
                auto_flush_interval: None,
                ..IngestConfig::default()
            },
        )?;
        let streamed = &rows[n / 2..];
        let chunk = (streamed.len() / flushes.max(1)).max(1);
        for batch in streamed.chunks(chunk) {
            ingestor.ingest(batch)?;
            ingestor.flush()?;
        }
        ingestor.close()?;
        Ok(CompactionLab {
            _tmp: tmp,
            ctx,
            idx,
            rows: n as u64,
        })
    }

    /// Live (non-sidecar, non-retired) data files of the index.
    pub fn delta_files(&self) -> usize {
        let gc: std::collections::HashSet<String> =
            self.idx.gc_list().unwrap_or_default().into_iter().collect();
        self.ctx
            .hdfs
            .list_files(&self.idx.data.location)
            .into_iter()
            .filter(|(p, _)| !is_sidecar_path(p) && !gc.contains(p))
            .count()
    }

    /// Selective queries whose predicates land on the *flushed* half of
    /// the table (`seq >= n/2`, high `cat` values), each mixing a
    /// misaligned grid range with a predicate only the sidecar narrows.
    pub fn queries(&self) -> Vec<(&'static str, Query)> {
        let n = self.rows as i64;
        vec![
            (
                "flushed_seq_range",
                Query::Aggregate {
                    aggs: vec![AggFunc::Count, AggFunc::Sum("power".into())],
                    predicate: Predicate::all().and(
                        "seq",
                        ColumnRange::half_open(
                            Value::Int(n / 2 + n / 10),
                            Value::Int(n / 2 + n / 10 + n / 20),
                        ),
                    ),
                },
            ),
            (
                "flushed_seq_boundary",
                Query::Aggregate {
                    aggs: vec![AggFunc::Count, AggFunc::Sum("power".into())],
                    predicate: Predicate::all()
                        .and(
                            "user_id",
                            ColumnRange::half_open(Value::Int(3), Value::Int(29)),
                        )
                        .and(
                            "seq",
                            ColumnRange::half_open(
                                Value::Int(3 * n / 4),
                                Value::Int(3 * n / 4 + n / 16),
                            ),
                        ),
                },
            ),
            (
                "flushed_bitmap_cat_eq",
                Query::Aggregate {
                    aggs: vec![AggFunc::Count, AggFunc::Sum("power".into())],
                    predicate: Predicate::all().and("cat", ColumnRange::eq(Value::Int(13))),
                },
            ),
        ]
    }

    /// One pruned-vs-unpruned measurement (borrowing the sidecar lab's
    /// pass shape so both reports read the same).
    pub fn pass(&self, name: &'static str, q: &Query, reps: usize) -> Result<SidecarPass> {
        crate::sidecar::measure_pass(&self.ctx, &self.idx, name, q, reps)
    }

    /// Run the maintenance daemon to convergence: one pass to compact
    /// back within `budget` live files, one more to end the retired
    /// files' grace round. Returns both reports.
    pub fn maintain(&self, budget: usize) -> Result<(MaintenanceReport, MaintenanceReport)> {
        let maintainer = Maintainer::new(
            Arc::clone(&self.idx),
            MaintenanceConfig {
                delta_file_budget: budget,
                ..MaintenanceConfig::default()
            },
        );
        Ok((maintainer.run_once()?, maintainer.run_once()?))
    }
}

fn pass_json(p: &SidecarPass) -> String {
    format!(
        concat!(
            "{{\"name\":\"{}\",\"pruned_time_us\":{},\"unpruned_time_us\":{},",
            "\"pruned_bytes\":{},\"unpruned_bytes\":{},\"bytes_ratio\":{:.4},",
            "\"groups_pruned\":{},\"bytes_skipped\":{}}}"
        ),
        p.name,
        p.pruned_time.as_micros(),
        p.unpruned_time.as_micros(),
        p.pruned_bytes,
        p.unpruned_bytes,
        p.bytes_ratio(),
        p.scan.sidecar_groups_pruned,
        p.scan.sidecar_bytes_skipped,
    )
}

/// Assemble the `BENCH_compaction.json` document: delta-file counts and
/// per-query boundary-scan bytes before/after one maintenance pass.
pub fn compaction_json(
    config: &str,
    rows: u64,
    budget: usize,
    files_before: usize,
    files_after: usize,
    before: &[SidecarPass],
    after: &[SidecarPass],
) -> String {
    let worst_after = after
        .iter()
        .map(SidecarPass::bytes_ratio)
        .fold(0.0f64, f64::max);
    let b: Vec<String> = before.iter().map(pass_json).collect();
    let a: Vec<String> = after.iter().map(pass_json).collect();
    format!(
        concat!(
            "{{\"experiment\":\"compaction\",\"config\":\"{}\",\"rows\":{},",
            "\"delta_file_budget\":{},\"files_before\":{},\"files_after\":{},",
            "\"before\":[{}],\"after\":[{}],",
            "\"worst_after_bytes_ratio\":{:.4},\"acceptance_max_ratio\":0.25}}"
        ),
        config,
        rows,
        budget,
        files_before,
        files_after,
        b.join(","),
        a.join(","),
        worst_after,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The file-count bound and the bytes ratio are deterministic
    /// properties of the data layout, so the acceptance bar holds in
    /// debug builds: maintenance brings live files within budget, every
    /// selective query over the flushed rows then reads ≤ 25% of the
    /// unpruned slice bytes, and answers do not move a float bit.
    #[test]
    fn maintenance_restores_the_sidecar_bar_on_flushed_data() {
        let lab = CompactionLab::build(40_000, 128, 8).unwrap();
        let budget = 4;
        let files_before = lab.delta_files();
        assert!(files_before > budget, "streaming produced too few deltas");

        let before: Vec<SidecarPass> = lab
            .queries()
            .into_iter()
            .map(|(name, q)| lab.pass(name, &q, 1).unwrap())
            .collect();

        let (r1, r2) = lab.maintain(budget).unwrap();
        assert!(r1.compacted_files > 0, "nothing compacted: {r1:?}");
        assert_eq!(r2.reclaimed_files, r1.compacted_files);
        assert!(lab.delta_files() <= budget);

        for (p, (name, q)) in before.iter().zip(lab.queries()) {
            let a = lab.pass(name, &q, 1).unwrap();
            assert_eq!(
                a.result, p.result,
                "{name}: compaction changed the answer"
            );
            assert!(a.scan.sidecar_hits > 0, "{name}: no sidecar consulted");
            assert!(
                a.bytes_ratio() <= 0.25,
                "{name}: read {:.1}% of unpruned slice bytes after compaction",
                a.bytes_ratio() * 100.0
            );
        }

        let json = compaction_json("test", lab.rows, budget, files_before, lab.delta_files(), &before, &[]);
        for needle in [
            "\"experiment\":\"compaction\"",
            "\"files_before\":",
            "\"worst_after_bytes_ratio\":",
            "\"acceptance_max_ratio\":0.25",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }
}
