//! Columnar scan bench: vectorized batch kernels + double-buffered
//! prefetch vs. the row-at-a-time oracle on a ≥10⁵-row RCFile meter
//! table (DESIGN.md §12). Asserts the PR's ≥3× full-scan aggregate
//! acceptance bar and writes `BENCH_columnar.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use dgf_bench::columnar::{columnar_json, ColumnarLab};
use dgf_hive::ScanOptions;
use dgf_workload::MeterConfig;

fn bench(c: &mut Criterion) {
    // 6000 users × 20 days = 120k rows of the 17-column meter schema,
    // 4096-row groups across 4 files — the acceptance configuration.
    let cfg = MeterConfig {
        users: 6_000,
        days: 20,
        ..MeterConfig::default()
    };
    let lab = ColumnarLab::build(&cfg, 4096, 4).unwrap();
    let reps = 5;

    let rowwise = lab
        .scan_pass(
            ScanOptions {
                columnar: false,
                prefetch: false,
                sidecar: true,
            },
            reps,
        )
        .unwrap();
    let columnar = lab
        .scan_pass(
            ScanOptions {
                columnar: true,
                prefetch: false,
                sidecar: true,
            },
            reps,
        )
        .unwrap();
    let prefetch = lab.scan_pass(ScanOptions::default(), reps).unwrap();

    assert_eq!(
        rowwise.result, columnar.result,
        "columnar pass diverged from the row-wise oracle"
    );
    assert_eq!(
        rowwise.result, prefetch.result,
        "prefetch pass diverged from the row-wise oracle"
    );

    let speedup = rowwise.time.as_secs_f64() / columnar.time.as_secs_f64();
    let speedup_pre = rowwise.time.as_secs_f64() / prefetch.time.as_secs_f64();
    println!(
        "columnar [{} rows]: row-wise {:.3?} | columnar {:.3?} ({speedup:.1}x) | \
         columnar+prefetch {:.3?} ({speedup_pre:.1}x, {} waits)",
        lab.rows, rowwise.time, columnar.time, prefetch.time, prefetch.scan.prefetch_waits,
    );

    let kernels = lab.kernel_micro().unwrap();
    println!(
        "columnar kernels [{} rows, {} groups]: decode {:.3?} | select {:.3?} | \
         sum+avg fold {:.3?} | min/max fold {:.3?} | row-wise sum+avg {:.3?}",
        kernels.rows, kernels.batches, kernels.decode, kernels.select, kernels.sum,
        kernels.minmax, kernels.rowwise_sum,
    );

    // The PR's acceptance bar: vectorized full-scan SUM/AVG ≥3× faster
    // than row-at-a-time on the same slices.
    assert!(
        speedup >= 3.0,
        "vectorized full-scan aggregate is only {speedup:.2}x the row-wise path (need >= 3x)"
    );

    let json = columnar_json(
        "meter 6000x20, groups 4096, 4 files",
        lab.rows,
        &rowwise,
        &columnar,
        &prefetch,
        &kernels,
    );
    let path = std::env::var("DGF_BENCH_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_columnar.json").to_owned()
    });
    match std::fs::write(&path, &json) {
        Ok(()) => println!("columnar: wrote kernel timings JSON to {path}"),
        Err(e) => eprintln!("columnar: could not write {path}: {e}"),
    }

    // Keep one criterion-timed sample so the harness reports a stable
    // number for regression tracking.
    c.bench_function("columnar_full_scan_sum_avg", |b| {
        b.iter(|| lab.scan_pass(ScanOptions::default(), 1).unwrap())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
