//! Delta-compaction bench: a sustained streaming workload followed by
//! one maintenance pass (DESIGN.md §16). Measures the live delta-file
//! count and the boundary-scan bytes on flushed data before and after
//! maintenance, asserts the file budget and the ≤ 25%-of-slice-bytes
//! sidecar bar on the compacted layout, and writes
//! `BENCH_compaction.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use dgf_bench::compaction::{compaction_json, CompactionLab};
use dgf_bench::sidecar::SidecarPass;

fn bench(c: &mut Criterion) {
    // 200k rows, half bulk-built, half streamed through 16 flushes of
    // ~6k rows each: every flush lands one delta file, so maintenance
    // starts ~20 files over a 4-file budget.
    let lab = CompactionLab::build(200_000, 512, 16).unwrap();
    let budget = 4;
    let reps = 5;

    let files_before = lab.delta_files();
    assert!(
        files_before > budget,
        "streaming produced only {files_before} files"
    );
    let before: Vec<SidecarPass> = lab
        .queries()
        .into_iter()
        .map(|(name, q)| lab.pass(name, &q, reps).unwrap())
        .collect();

    let (r1, r2) = lab.maintain(budget).unwrap();
    let files_after = lab.delta_files();
    println!(
        "compaction: {files_before} files -> {files_after} (budget {budget}); \
         pass 1 compacted {} files / {} GFUs, pass 2 reclaimed {}",
        r1.compacted_files, r1.compacted_gfus, r2.reclaimed_files
    );
    assert!(r1.compacted_files > 0, "nothing compacted: {r1:?}");
    assert!(
        files_after <= budget,
        "maintenance left {files_after} live files over a budget of {budget}"
    );

    let after: Vec<SidecarPass> = lab
        .queries()
        .into_iter()
        .map(|(name, q)| lab.pass(name, &q, reps).unwrap())
        .collect();
    for (b, a) in before.iter().zip(&after) {
        println!(
            "compaction {}: before {:.3?} ({} bytes, ratio {:.1}%) | \
             after {:.3?} ({} bytes, ratio {:.1}%)",
            a.name,
            b.pruned_time,
            b.pruned_bytes,
            b.bytes_ratio() * 100.0,
            a.pruned_time,
            a.pruned_bytes,
            a.bytes_ratio() * 100.0,
        );
        // Compaction is pure data movement: answers must not move a bit.
        assert_eq!(a.result, b.result, "{}: compaction changed the answer", a.name);
        // The acceptance bar: boundary scans over the flushed (now
        // compacted) rows read ≤ 25% of the unpruned slice bytes.
        assert!(
            a.bytes_ratio() <= 0.25,
            "{}: read {:.1}% of unpruned slice bytes after maintenance",
            a.name,
            a.bytes_ratio() * 100.0
        );
    }

    let json = compaction_json(
        "meter_cpt 200k rows, groups 512, 16 flushes, budget 4",
        lab.rows,
        budget,
        files_before,
        files_after,
        &before,
        &after,
    );
    let path = std::env::var("DGF_BENCH_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_compaction.json").to_owned()
    });
    match std::fs::write(&path, &json) {
        Ok(()) => println!("compaction: wrote maintenance report JSON to {path}"),
        Err(e) => eprintln!("compaction: could not write {path}: {e}"),
    }

    // One criterion-timed sample for regression tracking: the most
    // selective pruned pass on the compacted layout.
    let (name, q) = lab.queries().remove(0);
    c.bench_function("compaction_pruned_boundary_scan", |b| {
        b.iter(|| lab.pass(name, &q, 1).unwrap())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
