//! Serving-tier bench: scatter-gather QPS across shard counts on the
//! mixed ingest+query meter workload (DESIGN.md §13). Asserts the PR's
//! ≥2× QPS-at-4-shards acceptance bar and writes `BENCH_serving.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use dgf_bench::serving::{serving_json, ServingConfig, ServingLab};

fn bench(c: &mut Criterion) {
    let cfg = ServingConfig::acceptance();
    let lab = ServingLab::build(cfg).unwrap();

    // Quiescent oracle check first: every shard count must answer the
    // whole query list bit-identically to the single-node engine.
    let oracle = lab.oracle().unwrap();
    for shards in [1usize, 2, 4] {
        let pass = lab.serve_pass(shards, false).unwrap();
        for (got, want) in pass.answers.iter().zip(&oracle) {
            assert!(
                got.as_ref().unwrap().approx_eq(want, 0.0),
                "{shards}-shard quiescent pass diverged from the single-node engine"
            );
        }
    }

    // The measured sweep: concurrent clients + background appends.
    // Best-of-3 per shard count: a single pass is at the mercy of OS
    // scheduling noise (the appender races the clients on few cores),
    // and the acceptance bar is about capability, not jitter.
    let mut passes = Vec::new();
    for shards in [1usize, 2, 4] {
        let pass = (0..3)
            .map(|_| {
                let p = lab.serve_pass(shards, true).unwrap();
                assert_eq!(p.failed, 0, "{shards}-shard pass dropped queries");
                p
            })
            .max_by(|a, b| a.qps.total_cmp(&b.qps))
            .unwrap();
        println!(
            "serving [{} rows, {} queries, {} clients, {} shards]: \
             {:.1} qps | p50 {}us | p99 {}us | {} subops | wall {:.3?}",
            lab.rows,
            cfg.queries,
            cfg.clients,
            shards,
            pass.qps,
            pass.p50_us,
            pass.p99_us,
            pass.shard_subops,
            pass.wall,
        );
        passes.push(pass);
    }

    let qps_1 = passes[0].qps;
    let qps_4 = passes[2].qps;
    let speedup = qps_4 / qps_1.max(1e-9);

    // The PR's acceptance bar: ≥2× QPS at 4 shards over the 1-shard
    // layout on the same mixed workload.
    assert!(
        speedup >= 2.0,
        "4-shard serving is only {speedup:.2}x the 1-shard QPS (need >= 2x)"
    );

    let json = serving_json(
        "meter 5120x8 +2 append days, 80 queries, 4 clients, hbase-like shards",
        lab.rows,
        &passes,
    );
    let path = std::env::var("DGF_BENCH_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_serving.json").to_owned()
    });
    match std::fs::write(&path, &json) {
        Ok(()) => println!("serving: wrote shard sweep JSON to {path}"),
        Err(e) => eprintln!("serving: could not write {path}: {e}"),
    }

    // One criterion-timed sample for regression tracking: a quiescent
    // 4-shard pass (deterministic work, no appender races).
    c.bench_function("serving_scatter_gather_4_shards", |b| {
        b.iter(|| lab.serve_pass(4, false).unwrap())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
