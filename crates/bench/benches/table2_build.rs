//! Table 2: index construction cost — Compact vs DGF Large/Medium/Small.

mod common;

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use dgf_core::{DgfIndex, DimPolicy, SplittingPolicy};
use dgf_format::FileFormat;
use dgf_hive::{CompactIndex, HiveContext};
use dgf_kvstore::MemKvStore;
use dgf_mapreduce::MrEngine;
use dgf_storage::{HdfsConfig, SimHdfs};
use dgf_workload::{generate_meter_data, meter_schema};

fn bench(c: &mut Criterion) {
    let scale = common::bench_scale();
    let rows = generate_meter_data(&scale.meter);
    let tmp = dgf_common::TempDir::new("bench-build").unwrap();
    let hdfs = SimHdfs::new(
        tmp.path(),
        HdfsConfig {
            block_size: scale.block_size,
            replication: 1,
        },
    )
    .unwrap();
    let ctx = HiveContext::new(hdfs, MrEngine::new(scale.threads));
    let text = ctx
        .create_table("meter_text", meter_schema(), FileFormat::Text)
        .unwrap();
    ctx.load_rows(&text, &rows, scale.files).unwrap();
    let rc = ctx
        .create_table("meter_rc", meter_schema(), FileFormat::RcFile)
        .unwrap();
    ctx.load_rows(&rc, &rows, scale.files).unwrap();

    let mut g = c.benchmark_group("table2_index_build");
    g.sample_size(10);
    let counter = std::sync::atomic::AtomicU64::new(0);
    g.bench_function("compact_2d", |b| {
        b.iter(|| {
            let n = counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let (idx, report) = CompactIndex::build(
                Arc::clone(&ctx),
                Arc::clone(&rc),
                vec!["region_id".into(), "ts".into()],
                &format!("bench_c2_{n}"),
            )
            .unwrap();
            ctx.drop_table(idx.index_table().name.as_str()).unwrap();
            report
        })
    });
    for (label, count) in [("large", 10u64), ("medium", 30), ("small", 90)] {
        g.bench_function(format!("dgf_{label}"), |b| {
            b.iter(|| {
                let n = counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let interval = (scale.meter.users / count).max(1) as i64;
                let policy = SplittingPolicy::new(vec![
                    DimPolicy::int("user_id", 0, interval),
                    DimPolicy::int("region_id", 0, 1),
                    DimPolicy::date("ts", scale.meter.start_day, 1),
                ])
                .unwrap();
                let (idx, report) = DgfIndex::build(
                    Arc::clone(&ctx),
                    Arc::clone(&text),
                    policy,
                    vec![dgf_query::AggFunc::Sum("power_consumed".into())],
                    Arc::new(MemKvStore::new()),
                    &format!("bench_dgf_{label}_{n}"),
                )
                .unwrap();
                ctx.drop_table(&idx.data.name).unwrap();
                report
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
