//! Pyramid readpath bench: KV header reads under flat enumeration vs
//! the aggregate-pyramid decomposition on a ~10⁶-cell inner-heavy query
//! (DESIGN.md §14). Asserts the PR's ≥10× read-reduction acceptance bar
//! and bit-identical inner states, and writes `BENCH_pyramid.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use dgf_bench::pyramid::{pyramid_json, reduction, PyramidConfig, PyramidLab};
use dgf_core::PlanStrategy;

fn bench(c: &mut Criterion) {
    let cfg = PyramidConfig::acceptance();
    let lab = PyramidLab::build(cfg).unwrap();
    println!(
        "pyramid lab: {} leaves, {} nodes built, {} inner cells in the query box",
        lab.leaves,
        lab.nodes_built,
        lab.inner_cells(),
    );

    let passes = vec![
        lab.read_pass(PlanStrategy::PrefixScan).unwrap(),
        lab.read_pass(PlanStrategy::PointGets).unwrap(),
        lab.read_pass(PlanStrategy::Pyramid).unwrap(),
    ];
    for p in &passes {
        println!(
            "pyramid [{} inner cells, {}]: {} read ops | {} keys | {} bytes | \
             {} inner gfus | {} nodes | wall {:.3?}",
            lab.inner_cells(),
            p.strategy,
            p.read_ops,
            p.keys_requested,
            p.bytes_read,
            p.inner_gfus,
            p.pyramid_nodes,
            p.wall,
        );
    }
    let (scan, points, pyr) = (&passes[0], &passes[1], &passes[2]);

    // Bit-identity first: a read reduction that changed an answer bit
    // would be a bug, not an optimization.
    assert!(!scan.states.is_empty(), "flat pass merged no inner states");
    assert_eq!(scan.states, points.states, "flat strategies diverged");
    assert_eq!(
        scan.states, pyr.states,
        "pyramid inner states are not bit-identical to flat enumeration"
    );
    assert_eq!(scan.answers, pyr.answers, "finalized answers diverged");

    // The PR's acceptance bar: ≥10× fewer KV header reads on the
    // inner-heavy query, on every axis a strategy actually uses —
    // round trips and bytes vs the scanning baseline, point keys vs
    // the point-get baseline.
    for (axis, flat, got) in [
        ("read ops", scan.read_ops, pyr.read_ops),
        ("bytes read", scan.bytes_read, pyr.bytes_read),
        ("keys requested", points.keys_requested, pyr.keys_requested),
    ] {
        let x = reduction(flat, got);
        assert!(
            x >= 10.0,
            "pyramid {axis} reduction is only {x:.1}x ({flat} vs {got}, need >= 10x)"
        );
    }

    let json = pyramid_json(
        "1024x1024 grid, margin-3 box (1018^2 inner cells), 12 levels",
        &lab,
        &passes,
    );
    let path = std::env::var("DGF_BENCH_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_pyramid.json").to_owned()
    });
    match std::fs::write(&path, &json) {
        Ok(()) => println!("pyramid: wrote readpath JSON to {path}"),
        Err(e) => eprintln!("pyramid: could not write {path}: {e}"),
    }

    // One criterion-timed sample for regression tracking: a cold
    // pyramid pass (open + plan + finalize).
    c.bench_function("pyramid_readpath_cold_plan", |b| {
        b.iter(|| lab.read_pass(PlanStrategy::Pyramid).unwrap())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
