//! Figure 17: the partially-specified query (no userId condition) —
//! DGF with and without pre-computation, vs Compact.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use dgf_bench::{IntervalSize, MeterLab};
use dgf_query::Engine;
use dgf_workload::partial_query;

fn bench(c: &mut Criterion) {
    let lab = MeterLab::build(common::bench_scale()).unwrap();
    let q = partial_query(&lab.scale.meter);
    let mut g = c.benchmark_group("fig17_partial_query");
    g.sample_size(10);
    for size in IntervalSize::all() {
        let engine = lab.dgf_engine(size);
        g.bench_function(format!("dgf_precompute/{}", size.label()), |b| {
            b.iter(|| engine.run(&q).unwrap())
        });
        let engine = lab.dgf_engine(size).without_precompute();
        g.bench_function(format!("dgf_noprecompute/{}", size.label()), |b| {
            b.iter(|| engine.run(&q).unwrap())
        });
    }
    let engine = lab.compact_engine();
    g.bench_function("compact2", |b| b.iter(|| engine.run(&q).unwrap()));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
