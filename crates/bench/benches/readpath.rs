//! Read-path bench: prefix-scan planning and the warm header cache vs.
//! the per-cell point-get baseline, swept over interval size (grid
//! granularity) and latency model, plus timed steady-state planning.

use criterion::{criterion_group, criterion_main, Criterion};
use dgf_bench::readpath::{readpath_experiment, readpath_json, ReadPathLab};
use dgf_core::PlanStrategy;
use dgf_kvstore::LatencyModel;

fn bench(c: &mut Criterion) {
    // The Figure 12–13 trend: finer grids mean more GFUs per query and
    // more round trips for the baseline, while prefix scans stay flat.
    // Swept across grid granularity × latency model; the 110×100 grid
    // under `hbase_like` is the PR's recorded acceptance configuration.
    for (label, users, days) in [
        ("coarse 25x25", 25i64, 25i64),
        ("medium 55x50", 55, 50),
        ("fine  110x100", 110, 100),
    ] {
        for (model_label, model) in [
            ("zero-latency", LatencyModel::ZERO),
            ("hbase-like", LatencyModel::hbase_like()),
        ] {
            let report = readpath_experiment(users, days, 3_000, model).unwrap();
            println!(
                "readpath [{label}, {model_label}]: {} cells | point-gets {} ops in {:.3?} | \
                 cold prefix-scan {} ops in {:.3?} ({:.0}x fewer ops) | \
                 warm {} ops in {:.3?} ({:.1}% cache hits)",
                report.cells,
                report.point_gets.read_ops,
                report.point_gets.time,
                report.cold_scan.read_ops,
                report.cold_scan.time,
                report.read_op_ratio(),
                report.warm_scan.read_ops,
                report.warm_scan.time,
                report.warm_hit_ratio() * 100.0,
            );
        }
    }

    // BENCH_readpath.json: the acceptance configuration's pass costs plus
    // one fully profiled engine run with its per-stage span tree. Goes to
    // $DGF_BENCH_JSON if set, else target/BENCH_readpath.json (which the
    // CI bench job uploads as an artifact).
    let report = readpath_experiment(110, 100, 3_000, LatencyModel::hbase_like()).unwrap();
    let stats = ReadPathLab::build(110, 100, 3_000, LatencyModel::hbase_like())
        .unwrap()
        .profiled_run()
        .unwrap();
    let json = readpath_json("fine 110x100, hbase-like", &report, &stats);
    let path = std::env::var("DGF_BENCH_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_readpath.json").to_owned()
    });
    match std::fs::write(&path, &json) {
        Ok(()) => println!("readpath: wrote per-stage profile JSON to {path}"),
        Err(e) => eprintln!("readpath: could not write {path}: {e}"),
    }

    let lab = ReadPathLab::build(110, 100, 3_000, LatencyModel::hbase_like()).unwrap();
    let mut g = c.benchmark_group("readpath");
    // Mostly-warm after the first iteration: the steady state of a
    // dashboard re-issuing the same query.
    g.bench_function("plan_10k_cells_prefix_scan", |b| {
        b.iter(|| lab.pass(PlanStrategy::PrefixScan).unwrap())
    });
    g.bench_function("plan_10k_cells_point_gets", |b| {
        b.iter(|| lab.pass(PlanStrategy::PointGets).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
